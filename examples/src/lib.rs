//! Example binaries live in `src/bin/`. Run e.g.
//! `cargo run -p acceval-examples --bin quickstart --release`.
