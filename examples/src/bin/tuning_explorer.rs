//! Tuning explorer: sweep a model's tuning space on one benchmark —
//! Figure 1's "performance variation by tuning", magnified.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin tuning_explorer -- EP OpenMPC
//! ```

use acceval::benchmarks::{benchmark_named, Scale};
use acceval::models::{model, ModelKind, TuningPoint};
use acceval::sim::MachineConfig;

fn parse_model(s: &str) -> ModelKind {
    match s.to_ascii_lowercase().as_str() {
        "pgi" | "pgiaccelerator" => ModelKind::PgiAccelerator,
        "openacc" | "acc" => ModelKind::OpenAcc,
        "hmpp" => ModelKind::Hmpp,
        "openmpc" | "mpc" => ModelKind::OpenMpc,
        "hicuda" => ModelKind::HiCuda,
        other => {
            eprintln!("unknown model {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = benchmark_named(args.first().map(String::as_str).unwrap_or("EP")).expect("benchmark");
    let kind = parse_model(args.get(1).map(String::as_str).unwrap_or("OpenMPC"));

    let cfg = MachineConfig::keeneland_node();
    let ds = bench.dataset(Scale::Test);
    let oracle = acceval::run_baseline(bench.as_ref(), &ds, &cfg);
    println!("{} under {} — CPU baseline {:.3} ms", bench.spec().name, kind.display(), oracle.secs * 1e3);
    println!(
        "\n{:>7} {:>6} {:>10} {:>9} {:>8} {:>8} | {:>10} {:>9}",
        "block", "swap", "transpose", "caching", "tiling", "", "time(ms)", "speedup"
    );

    // The model's own space, plus a denser block sweep.
    let mut points = model(kind).tuning_space();
    for bs in [32u32, 96, 192, 384, 768] {
        points.push(TuningPoint { block_x: bs, ..points[0] });
    }
    let mut best: Option<(f64, TuningPoint)> = None;
    let mut worst: Option<(f64, TuningPoint)> = None;
    for pt in points {
        let run = acceval::run_model(bench.as_ref(), kind, &ds, &cfg, &oracle, Some(&pt));
        let ok = run.valid.is_ok();
        println!(
            "{:>4}x{:<2} {:>6} {:>10} {:>9} {:>8} {:>8} | {:>10.3} {:>8.2}x{}",
            pt.block_x,
            pt.block_y,
            pt.loop_swap.map(|b| if b { "on" } else { "off" }).unwrap_or("auto"),
            pt.transpose_expansion,
            pt.caching,
            pt.tiling,
            "",
            run.secs * 1e3,
            run.speedup,
            if ok { "" } else { "  (INVALID)" }
        );
        if ok {
            if best.as_ref().map(|(s, _)| run.speedup > *s).unwrap_or(true) {
                best = Some((run.speedup, pt));
            }
            if worst.as_ref().map(|(s, _)| run.speedup < *s).unwrap_or(true) {
                worst = Some((run.speedup, pt));
            }
        }
    }
    let (hi, hp) = best.expect("at least one valid point");
    let (lo, _) = worst.expect("at least one valid point");
    println!("\ntuning variation: {lo:.2}x .. {hi:.2}x  ({:.1}x swing)", hi / lo);
    println!(
        "best point: block {}x{}, swap {:?}, transpose {}",
        hp.block_x, hp.block_y, hp.loop_swap, hp.transpose_expansion
    );
}
