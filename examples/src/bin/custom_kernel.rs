//! Bring your own program: build a *new* directive-annotated application
//! with the public IR builder (not one of the paper's thirteen), check which
//! models can translate it, and run it under two of them.
//!
//! The program is a damped 9-point blur filter — an OpenMP loop nest any
//! directive model should handle — plus a histogram with a critical section,
//! which only OpenMPC accepts.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin custom_kernel
//! ```

use acceval::benchmarks::{BenchSpec, Benchmark, Port, Scale, Suite};
use acceval::ir::analysis::region_features;
use acceval::ir::builder::*;
use acceval::ir::expr::{ld, v};
use acceval::ir::program::{DataSet, Program};
use acceval::ir::types::{Value, VarRef};
use acceval::models::lower::HintMap;
use acceval::models::{model, ModelKind};
use acceval::sim::MachineConfig;

struct Blur;

fn build() -> Program {
    let mut pb = ProgramBuilder::new("blur9");
    let n = pb.iscalar("n");
    let i = pb.iscalar("i");
    let j = pb.iscalar("j");
    let b = pb.iscalar("b");
    let img = pb.farray("img", vec![v(n), v(n)]);
    let out = pb.farray("out", vec![v(n), v(n)]);
    let hist = pb.farray("hist", vec![16i64.into()]);

    // 9-point blur over the interior
    let mut sum = ld(img, vec![v(i), v(j)]) * 0.2;
    for (di, dj) in [(-1i64, -1i64), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)] {
        sum = sum + ld(img, vec![v(i) + di, v(j) + dj]) * 0.1;
    }
    pb.main(vec![
        parallel(
            "blur.stencil",
            vec![pfor(i, 1i64, v(n) - 1i64, vec![sfor(j, 1i64, v(n) - 1i64, vec![store(out, vec![v(i), v(j)], sum)])])],
        ),
        // 16-bin brightness histogram via a critical section
        parallel_with(
            "blur.hist",
            vec![pfor(
                i,
                0i64,
                v(n),
                vec![sfor(
                    j,
                    0i64,
                    v(n),
                    vec![
                        assign(b, (ld(out, vec![v(i), v(j)]) * 16.0).floor().to_i().max(0i64).min(15i64)),
                        critical(vec![store(hist, vec![v(b)], ld(hist, vec![v(b)]) + 1.0)]),
                    ],
                )],
            )],
            vec![VarRef::Array(hist)],
        ),
    ]);
    pb.outputs(vec![out, hist]);
    pb.build()
}

impl Benchmark for Blur {
    fn spec(&self) -> BenchSpec {
        BenchSpec { name: "BLUR9", suite: Suite::Kernel, domain: "Image filter (demo)", base_loc: 120, tolerance: 1e-9 }
    }
    fn original(&self) -> Program {
        build()
    }
    fn dataset(&self, _scale: Scale) -> DataSet {
        let p = build();
        let n = 192usize;
        DataSet {
            scalars: vec![(p.scalar_named("n"), Value::I(n as i64))],
            arrays: vec![(p.array_named("img"), acceval::benchmarks::data::random_f64(n * n, 0.0, 1.0, 42))],
            label: format!("{n}x{n} image"),
        }
    }
    fn port(&self, _model: ModelKind) -> Port {
        // No restructuring: hand every model the original program.
        Port { program: build(), hints: HintMap::new(), changes: vec![] }
    }
}

fn main() {
    let bench = Blur;
    let prog = bench.original();
    println!("custom program:\n{}", acceval::ir::pretty::program(&prog));

    println!("model applicability:");
    for kind in ModelKind::coverage_models() {
        let m = model(kind);
        for r in prog.regions() {
            let f = region_features(&prog, r);
            match m.accepts(&f) {
                Ok(()) => println!("  {:16} accepts {}", kind.display(), r.label),
                Err(e) => println!("  {:16} rejects {} ({})", kind.display(), r.label, e.reason),
            }
        }
    }

    let cfg = MachineConfig::keeneland_node();
    let ds = bench.dataset(Scale::Test);
    let oracle = acceval::run_baseline(&bench, &ds, &cfg);
    println!("\nCPU baseline {:.3} ms", oracle.secs * 1e3);
    for kind in [ModelKind::OpenAcc, ModelKind::OpenMpc] {
        let run = acceval::run_model(&bench, kind, &ds, &cfg, &oracle, None);
        println!(
            "{:16} {:.3} ms, speedup {:.2}x, {} regions on host, valid: {}",
            kind.display(),
            run.secs * 1e3,
            run.speedup,
            run.unsupported_regions,
            run.valid.is_ok()
        );
    }
    println!("\nNote: under OpenACC the histogram region stays on the host (critical");
    println!("section); OpenMPC converts it into a GPU array reduction.");
}
