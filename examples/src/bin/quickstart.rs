//! Quickstart: port one OpenMP benchmark to the GPU through a directive
//! model, run it on the simulated Keeneland node, and inspect the result.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin quickstart
//! ```

use acceval::benchmarks::{Benchmark, Scale};
use acceval::ir::pretty;
use acceval::models::ModelKind;
use acceval::sim::{Event, MachineConfig};
use acceval::{compile_port, run_baseline, run_gpu_program};

fn main() {
    // 1. Pick a benchmark and a problem size.
    let bench = acceval::benchmarks::jacobi::Jacobi;
    let ds = bench.dataset(Scale::Test);
    let cfg = MachineConfig::keeneland_node();
    println!("benchmark: JACOBI ({})", ds.label);
    println!("machine:   {} + {} over PCIe\n", cfg.host.name, cfg.device.name);

    // 2. The sequential CPU baseline doubles as the correctness oracle.
    let oracle = run_baseline(&bench, &ds, &cfg);
    println!("CPU baseline: {:.3} ms ({} ops, {} memory accesses)\n", oracle.secs * 1e3, oracle.ops, oracle.accesses);

    // 3. Port to OpenACC: the port carries the restructured input program
    //    plus the ledger of code changes the port needed.
    let port = bench.port(ModelKind::OpenAcc);
    println!("OpenACC port changes:");
    for c in &port.changes {
        println!("  +{:>3} lines  {:?}: {}", c.lines, c.kind, c.note);
    }

    // 4. Compile: every parallel region becomes GPU kernels.
    let compiled = compile_port(&port, ModelKind::OpenAcc, &ds, None);
    println!("\ncompiled {} regions into kernels:", compiled.kernels.len());
    for ks in compiled.kernels.values() {
        for k in ks {
            println!("--- generated kernel ---\n{}", pretty::kernel(&compiled.program, k));
        }
    }

    // 5. Run the GPU version and walk its timeline.
    let run = run_gpu_program(&compiled, &ds, &cfg).expect("gpu run");
    println!("GPU version: {:.3} ms  => speedup {:.2}x", run.secs * 1e3, oracle.secs / run.secs);
    let s = run.timeline.summary();
    println!(
        "  {} kernels, {} transfers ({:.1} KiB up / {:.1} KiB down), host {:.3} ms",
        s.kernels_launched,
        s.transfers,
        s.h2d_bytes as f64 / 1024.0,
        s.d2h_bytes as f64 / 1024.0,
        s.host_secs * 1e3
    );
    println!("\nfirst timeline events:");
    for e in run.timeline.events.iter().take(8) {
        match e {
            Event::Host { label, secs } => println!("  host     {label:<24} {:.1} us", secs * 1e6),
            Event::Transfer { array, dir, bytes, secs } => {
                println!("  transfer {array:<24} {:?} {bytes} B, {:.1} us", dir, secs * 1e6)
            }
            Event::Kernel { name, cost, totals } => println!(
                "  kernel   {name:<24} {:.1} us ({:?}-bound, {} transactions)",
                cost.time_secs * 1e6,
                cost.bound,
                totals.global_transactions
            ),
        }
    }

    // 6. Validate against the oracle.
    let a = bench.original().array_named("a");
    let diff = oracle.data.bufs[a.0 as usize].max_abs_diff(&run.data.bufs[a.0 as usize]);
    println!("\nmax |GPU - CPU| on output: {diff:.3e}");
    assert!(diff < 1e-10);
    println!("OK");
}
