//! Per-event debugging of one benchmark under selected models.
use acceval::benchmarks::{benchmark_named, Scale};
use acceval::models::ModelKind;
use acceval::sim::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().expect("usage: dbg <bench> [test]");
    let scale = if args.iter().any(|a| a == "test") { Scale::Test } else { Scale::Paper };
    let b = benchmark_named(name).expect("unknown benchmark");
    let ds = b.dataset(scale);
    let cfg = MachineConfig::keeneland_node();
    let oracle = acceval::run_baseline(b.as_ref(), &ds, &cfg);
    println!("CPU baseline: {:.3}ms  ({})", oracle.secs * 1e3, ds.label);
    for kind in ModelKind::figure1_models() {
        let port = b.port(kind);
        let c = acceval::compile_port(&port, kind, &ds, None);
        let run = acceval::run_gpu_program(&c, &ds, &cfg).expect("gpu run");
        println!("== {:?} {:.3}ms (speedup {:.2})", kind, run.secs * 1e3, oracle.secs / run.secs);
        let mut agg: std::collections::BTreeMap<String, (u64, f64, u64)> = Default::default();
        for e in &run.timeline.events {
            match e {
                acceval::sim::Event::Kernel { name, cost, totals } => {
                    let a = agg.entry(format!("K {name} [{:?}]", cost.bound)).or_default();
                    a.0 += 1;
                    a.1 += cost.time_secs;
                    a.2 += totals.global_transactions;
                }
                acceval::sim::Event::Transfer { array, secs, bytes, .. } => {
                    let a = agg.entry(format!("T {array}")).or_default();
                    a.0 += 1;
                    a.1 += secs;
                    a.2 += bytes;
                }
                acceval::sim::Event::Host { label, secs } => {
                    let a = agg.entry(format!("H {label}")).or_default();
                    a.0 += 1;
                    a.1 += secs;
                }
            }
        }
        let mut rows: Vec<_> = agg.into_iter().collect();
        rows.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).unwrap());
        for (k, (n, secs, tx)) in rows.iter().take(12) {
            println!("   {k:45} x{n:<5} {:.3}ms  tx/bytes {tx}", secs * 1e3);
        }
    }
}
