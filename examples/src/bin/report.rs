//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin report -- table1
//! cargo run -p acceval-examples --release --bin report -- table2
//! cargo run -p acceval-examples --release --bin report -- figure1 [--test-scale] [--no-tuning] [--csv] [--json] [--device-c1060] [bench...]
//! cargo run -p acceval-examples --release --bin report -- all
//! ```

use acceval::benchmarks::Scale;
use acceval::codesize::codesize_table;
use acceval::coverage::coverage_table;
use acceval::figures::{figure1_subset_with_manifest, figure1_with_manifest};
use acceval::report::{figure1_csv, render_figure1, render_sweep_summary, render_table2};
use acceval::sim::MachineConfig;
use acceval::tables::render_table1;

/// Where the sweep manifest lands, next to `results/figure1.csv`.
const MANIFEST_PATH: &str = "results/figure1_sweep.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let test_scale = args.iter().any(|a| a == "--test-scale");
    let no_tuning = args.iter().any(|a| a == "--no-tuning");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let benches: Vec<&str> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let mut cfg = MachineConfig::keeneland_node();
    if args.iter().any(|a| a == "--device-c1060") {
        // Performance-portability study (paper SVI): same ports, previous
        // GPU generation (GT200-class: 64-byte segments, fewer resident
        // warps, slower atomics).
        cfg.device = acceval::sim::DeviceConfig::tesla_c1060();
    }
    let scale = if test_scale { Scale::Test } else { Scale::Paper };

    if cmd == "table1" || cmd == "all" {
        println!("{}", render_table1());
    }
    if cmd == "table2" || cmd == "all" {
        println!("{}", render_table2(&coverage_table(), &codesize_table()));
    }
    if cmd == "figure1" || cmd == "all" {
        let (fig, manifest) = if benches.is_empty() {
            figure1_with_manifest(&cfg, scale, !no_tuning)
        } else {
            match figure1_subset_with_manifest(&benches, &cfg, scale, !no_tuning) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        };
        if csv {
            println!("{}", figure1_csv(&fig));
        } else if json {
            println!("{}", serde_json_string(&fig));
        } else {
            println!("{}", render_figure1(&fig));
        }
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(MANIFEST_PATH, acceval::figures_json(&manifest)))
        {
            Ok(()) => eprintln!("{}wrote {MANIFEST_PATH}", render_sweep_summary(&manifest)),
            Err(e) => eprintln!("warning: could not write {MANIFEST_PATH}: {e}"),
        }
    }
    if !["table1", "table2", "figure1", "all"].contains(&cmd) {
        eprintln!("unknown command {cmd}; use table1 | table2 | figure1 | all");
        std::process::exit(2);
    }
}

fn serde_json_string(fig: &acceval::figures::Figure1) -> String {
    acceval::figures_json(fig)
}
