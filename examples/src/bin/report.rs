//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin report -- table1
//! cargo run -p acceval-examples --release --bin report -- table2
//! cargo run -p acceval-examples --release --bin report -- figure1 [--test-scale] [--no-tuning] [--csv] [--json] [--device-c1060] [bench...]
//! cargo run -p acceval-examples --release --bin report -- all
//! ```

use acceval::benchmarks::Scale;
use acceval::codesize::codesize_table;
use acceval::coverage::coverage_table;
use acceval::figures::{figure1, figure1_subset};
use acceval::report::{figure1_csv, render_figure1, render_table2};
use acceval::sim::MachineConfig;
use acceval::tables::render_table1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let test_scale = args.iter().any(|a| a == "--test-scale");
    let no_tuning = args.iter().any(|a| a == "--no-tuning");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let benches: Vec<&str> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let mut cfg = MachineConfig::keeneland_node();
    if args.iter().any(|a| a == "--device-c1060") {
        // Performance-portability study (paper SVI): same ports, previous
        // GPU generation (GT200-class: 64-byte segments, fewer resident
        // warps, slower atomics).
        cfg.device = acceval::sim::DeviceConfig::tesla_c1060();
    }
    let scale = if test_scale { Scale::Test } else { Scale::Paper };

    if cmd == "table1" || cmd == "all" {
        println!("{}", render_table1());
    }
    if cmd == "table2" || cmd == "all" {
        println!("{}", render_table2(&coverage_table(), &codesize_table()));
    }
    if cmd == "figure1" || cmd == "all" {
        let fig = if benches.is_empty() {
            figure1(&cfg, scale, !no_tuning)
        } else {
            figure1_subset(&benches, &cfg, scale, !no_tuning)
        };
        if csv {
            println!("{}", figure1_csv(&fig));
        } else if json {
            println!("{}", serde_json_string(&fig));
        } else {
            println!("{}", render_figure1(&fig));
        }
    }
    if !["table1", "table2", "figure1", "all"].contains(&cmd) {
        eprintln!("unknown command {cmd}; use table1 | table2 | figure1 | all");
        std::process::exit(2);
    }
}

fn serde_json_string(fig: &acceval::figures::Figure1) -> String {
    acceval::figures_json(fig)
}
