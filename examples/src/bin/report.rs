//! Regenerate the paper's tables and figures, and profile single runs.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin report -- table1
//! cargo run -p acceval-examples --release --bin report -- table2
//! cargo run -p acceval-examples --release --bin report -- figure1 [--test-scale] [--no-tuning] [--csv] [--json] [--device-c1060] [bench...]
//! cargo run -p acceval-examples --release --bin report -- devices [--test-scale] [--with-tuning] [--csv] [--json] [device...]
//! cargo run -p acceval-examples --release --bin report -- profile <benchmark> <model> [--test-scale] [--device-c1060]
//! cargo run -p acceval-examples --release --bin report -- all
//! ```

use acceval::benchmarks::{benchmark_named, Scale};
use acceval::codesize::codesize_table;
use acceval::coverage::coverage_table;
use acceval::figures::{figure1_subset_with_manifest, figure1_with_manifest};
use acceval::models::ModelKind;
use acceval::profile::{chrome_trace, RunProfile};
use acceval::report::{
    bench_sweep_json, figure1_csv, render_figure1, render_profile, render_sweep_summary, render_table2,
};
use acceval::sim::{MachineConfig, RecordingSink, TraceEvent};
use acceval::sweep::{cached_compile, cached_dataset, cached_oracle};
use acceval::tables::render_table1;

/// Where the sweep manifest lands, next to `results/figure1.csv`.
const MANIFEST_PATH: &str = "results/figure1_sweep.json";
/// Machine-readable sweep benchmark record (total wall time, per-benchmark
/// task times, engine name). Schema: see EXPERIMENTS.md.
const BENCH_PATH: &str = "results/BENCH_sweep.json";
/// Where `report -- devices` lands the device-generation matrix.
const MATRIX_PATH: &str = "results/device_matrix.csv";

const USAGE: &str = "usage: report -- <command> [flags]
commands:
  table1                         render Table I
  table2                         render Table II
  figure1 [flags] [bench...]     run the sweep and render Figure 1
  devices [flags] [device...]    run the device-generation matrix (default:
                                 every preset) and render the per-generation
                                 model ranking; writes results/device_matrix.csv
  profile <benchmark> <model>    profile one run; prints a cost attribution
                                 table and writes results/profile_<bench>_<model>.json
                                 (Chrome trace format, open in chrome://tracing)
  store [stats|clear]            inspect or wipe the persistent launch store
                                 (results/.acceval-store, see ACCEVAL_STORE)
  all                            table1 + table2 + figure1
flags:
  --test-scale                   tiny datasets (fast; not the paper's inputs)
  --no-tuning                    figure1/all: skip the tuning-variation sweep
  --with-tuning                  devices: add the tuning-variation points
  --csv | --json                 figure1/devices/all: machine-readable output
  --device-c1060                 simulate the previous-generation Tesla C1060
environment:
  ACCEVAL_DEVICE=<preset>            device generation for figure1/profile/all
                                     (tesla|fermi|kepler|pascal|volta)
  ACCEVAL_STORE=auto|on|off|<path>   persistent launch-result store mode
  ACCEVAL_STORE_CAP_MB=<n>           disk cap for the store (default 2048)
  ACCEVAL_STORE_EPOCH=<label>        override the build-epoch invalidation tag
  ACCEVAL_OPT=auto|on|off            bytecode optimizer (results are identical
                                     either way; off is for perf comparison)
  ACCEVAL_ENGINE=tree|bytecode|native|auto
                                     kernel engine tier; auto starts on the
                                     bytecode VM and promotes hot plans to
                                     native closures (results are identical)
  ACCEVAL_NATIVE_THRESHOLD=<n>       auto promotes a plan after n launches
                                     (default 8)";

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    // Malformed ACCEVAL_* settings are a usage error up front, not a
    // mid-sweep panic (or a silently ignored knob) half an hour in.
    if let Err(e) = acceval::ir::env::validate_env() {
        usage_error(&format!("invalid environment: {e}"));
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    if !["table1", "table2", "figure1", "devices", "profile", "store", "all"].contains(&cmd) {
        usage_error(&format!("unknown command `{cmd}`"));
    }

    // Strict flag validation: an unknown or misspelled flag is an error, not
    // a silently ignored no-op.
    let allowed: &[&str] = match cmd {
        "table1" | "table2" | "store" => &[],
        "profile" => &["--test-scale", "--device-c1060"],
        "devices" => &["--test-scale", "--with-tuning", "--csv", "--json"],
        _ => &["--test-scale", "--no-tuning", "--csv", "--json", "--device-c1060"],
    };
    for a in args.iter().skip(1).filter(|a| a.starts_with("--")) {
        if !allowed.contains(&a.as_str()) {
            usage_error(&format!("unknown flag `{a}` for `{cmd}`"));
        }
    }

    let test_scale = args.iter().any(|a| a == "--test-scale");
    let no_tuning = args.iter().any(|a| a == "--no-tuning");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let positionals: Vec<&str> = args.iter().skip(1).filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if ["table1", "table2", "all"].contains(&cmd) && !positionals.is_empty() {
        usage_error(&format!("`{cmd}` takes no positional arguments"));
    }

    // Device selection: ACCEVAL_DEVICE swaps the Keeneland node's GPU for
    // another preset of the generation family; --device-c1060 (the older
    // flag) wins when both are given. validate_env has already vetted the
    // name, so the lookup here cannot fail after startup.
    let mut cfg = MachineConfig::keeneland_node();
    if let Ok(v) = std::env::var("ACCEVAL_DEVICE") {
        match acceval::sim::DeviceConfig::preset(&v) {
            Some(d) => cfg.device = d,
            None => usage_error(&format!("ACCEVAL_DEVICE: unknown device preset `{v}`")),
        }
    }
    if args.iter().any(|a| a == "--device-c1060") {
        // Performance-portability study (paper SVI): same ports, previous
        // GPU generation (GT200-class: 64-byte segments, fewer resident
        // warps, slower atomics).
        cfg.device = acceval::sim::DeviceConfig::tesla_c1060();
    }
    let scale = if test_scale { Scale::Test } else { Scale::Paper };

    if cmd == "store" {
        run_store(&positionals);
        return;
    }

    if cmd == "devices" {
        run_devices(&positionals, &cfg, scale, &args);
        return;
    }

    if cmd == "profile" {
        run_profile(&positionals, &cfg, scale);
        return;
    }

    if cmd == "table1" || cmd == "all" {
        println!("{}", render_table1());
    }
    if cmd == "table2" || cmd == "all" {
        println!("{}", render_table2(&coverage_table(), &codesize_table()));
    }
    if cmd == "figure1" || cmd == "all" {
        let (fig, manifest) = if positionals.is_empty() {
            figure1_with_manifest(&cfg, scale, !no_tuning)
        } else {
            match figure1_subset_with_manifest(&positionals, &cfg, scale, !no_tuning) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        };
        if csv {
            println!("{}", figure1_csv(&fig));
        } else if json {
            println!("{}", serde_json_string(&fig));
        } else {
            println!("{}", render_figure1(&fig));
        }
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(MANIFEST_PATH, acceval::figures_json(&manifest)))
        {
            Ok(()) => eprintln!("{}wrote {MANIFEST_PATH}", render_sweep_summary(&manifest)),
            Err(e) => eprintln!("warning: could not write {MANIFEST_PATH}: {e}"),
        }
        let engine = acceval::ir::interp::gpu::engine_name();
        match std::fs::write(BENCH_PATH, bench_sweep_json(&manifest, engine)) {
            Ok(()) => eprintln!("wrote {BENCH_PATH} (engine: {engine})"),
            Err(e) => eprintln!("warning: could not write {BENCH_PATH}: {e}"),
        }
        // Drain the write-behind spiller so the store is complete on disk
        // before the process exits (the next run warm-starts from it).
        acceval::ir::interp::store::flush_store();
    }
}

/// `report -- devices [device...]`: run the device-generation matrix sweep
/// (every preset when no names are given), write `results/device_matrix.csv`,
/// and print the per-generation model ranking (or the CSV/JSON with a
/// format flag). Unknown preset names are a usage error, exit 2.
fn run_devices(positionals: &[&str], cfg: &MachineConfig, scale: Scale, args: &[String]) {
    use acceval::benchmarks::all_benchmarks;
    use acceval::devices::{device_matrix_csv, device_slices, render_device_rankings};
    use acceval::sim::DeviceConfig;
    use acceval::sweep::run_device_matrix;

    let with_tuning = args.iter().any(|a| a == "--with-tuning");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let all_slugs: Vec<&str> = DeviceConfig::presets().iter().map(|(s, _)| *s).collect();
    let devices: &[&str] = if positionals.is_empty() { &all_slugs } else { positionals };

    let benches = all_benchmarks();
    let refs: Vec<&dyn acceval::benchmarks::Benchmark> = benches.iter().map(|b| b.as_ref()).collect();
    let manifest = match run_device_matrix(&refs, cfg, scale, with_tuning, devices) {
        Ok(m) => m,
        Err(e) => usage_error(&e),
    };

    let matrix = device_matrix_csv(&manifest);
    if csv {
        println!("{matrix}");
    } else if json {
        println!("{}", acceval::figures_json(&device_slices(&manifest)));
    } else {
        println!("{}", render_device_rankings(&manifest));
    }
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(MATRIX_PATH, &matrix)) {
        Ok(()) => eprintln!("{}wrote {MATRIX_PATH}", render_sweep_summary(&manifest)),
        Err(e) => eprintln!("warning: could not write {MATRIX_PATH}: {e}"),
    }
    acceval::ir::interp::store::flush_store();
}

/// `report -- store [stats|clear]`: inspect or wipe the persistent store.
fn run_store(positionals: &[&str]) {
    use acceval::ir::interp::store::{clear_store, store_stats};
    let action = match positionals {
        [] | ["stats"] => "stats",
        ["clear"] => "clear",
        _ => usage_error("`store` takes at most one argument: stats | clear"),
    };
    let s = store_stats();
    let Some(root) = &s.root else {
        println!("store: disabled (set ACCEVAL_STORE=on or a path, or run from a dir with results/)");
        return;
    };
    if action == "clear" {
        let removed = clear_store();
        println!("store: cleared {removed} entr(ies) under {}", root.display());
        return;
    }
    println!(
        "store: {} entr(ies), {} bytes (cap {} bytes), {} quarantined, at {}",
        s.entries,
        s.bytes,
        s.cap_bytes,
        s.quarantined,
        root.display()
    );
}

/// `report -- profile <benchmark> <model>`: run one (benchmark, model) pair
/// at its default tuning point with the tracer attached, print the cost
/// attribution table, and write the Chrome-trace JSON.
///
/// The run happens on this thread — no rayon — and every event is emitted in
/// simulation order, so the trace is byte-identical at any thread count.
fn run_profile(positionals: &[&str], cfg: &MachineConfig, scale: Scale) {
    let [bench_name, model_name] = positionals else {
        usage_error("`profile` needs exactly two arguments: <benchmark> <model>");
    };
    let Some(bench) = benchmark_named(bench_name) else {
        usage_error(&format!("unknown benchmark `{bench_name}`"));
    };
    let Some(model) = ModelKind::parse(model_name) else {
        let known: Vec<&str> = ModelKind::figure1_models().iter().map(|m| m.slug()).collect();
        usage_error(&format!("unknown model `{model_name}`; known: {}", known.join(" ")));
    };

    let ds = cached_dataset(bench.as_ref(), scale);
    let oracle = cached_oracle(bench.as_ref(), scale, cfg);
    let compiled = cached_compile(bench.as_ref(), model, scale, None);

    let mut sink = RecordingSink::new();
    let run = acceval::run_compiled_traced(bench.as_ref(), &compiled, &ds, cfg, &oracle.run, &mut sink);
    let events: Vec<TraceEvent> = sink.take();

    let profile = RunProfile::from_events(bench_name, model, &events);
    println!("{}", render_profile(&profile));

    // Per-kernel optimizer attribution: the run above compiled (and, unless
    // ACCEVAL_OPT=off, optimized) every launched plan, and the plans share
    // their engine caches with the launch path.
    println!("bytecode optimizer ({}):", acceval::ir::interp::opt::opt_name());
    let mut region_ids: Vec<u32> = compiled.kernels.keys().copied().collect();
    region_ids.sort_unstable();
    let mut any = false;
    for rid in region_ids {
        for plan in &compiled.kernels[&rid] {
            let Some(st) = plan.engine_cache.opt_stats() else { continue };
            any = true;
            let frac = if st.ops_pre > 0 { st.prelude_ops as f64 / st.ops_pre as f64 * 100.0 } else { 0.0 };
            println!(
                "  {:<28} {:>4} -> {:<4} ops  prelude {:>2} ({:>4.1}%)  cse {:<3} folded {:<3} sr {:<2} dce {:<2} typed {}",
                plan.name,
                st.ops_pre,
                st.ops_post,
                st.prelude_ops,
                frac,
                st.cse_hits,
                st.folded,
                st.strength_reduced,
                st.dce_removed,
                if st.typed { "yes" } else { "no" },
            );
        }
    }
    if !any {
        println!("  (no optimized kernels: optimizer off, tree engine, or no bytecode-eligible plans)");
    }

    // Per-kernel engine-tier attribution: which tier each plan's launches
    // ran on, where `auto` promoted it, and what the one-time native
    // compile cost. Reads the same shared engine caches as the table above.
    println!("engine tiers ({}):", acceval::ir::interp::gpu::engine_name());
    let mut region_ids: Vec<u32> = compiled.kernels.keys().copied().collect();
    region_ids.sort_unstable();
    let mut any = false;
    for rid in region_ids {
        for plan in &compiled.kernels[&rid] {
            let launches = plan.engine_cache.launches();
            if launches == 0 {
                continue;
            }
            any = true;
            let native = plan.engine_cache.native_launches();
            let promoted = match plan.engine_cache.promoted_at() {
                Some(n) => format!("promoted at launch {n}"),
                None if native > 0 => "forced native".to_string(),
                None => "never promoted".to_string(),
            };
            let compile = match plan.engine_cache.native_kernel() {
                Some(nk) => format!("compile {:.1}us", nk.compile_nanos as f64 / 1e3),
                None => "not compiled".to_string(),
            };
            println!(
                "  {:<28} {:>4} launches  {:>4} native / {:<4} bytecode-or-tree  {:<22} {}",
                plan.name,
                launches,
                native,
                launches - native,
                promoted,
                compile,
            );
        }
    }
    if !any {
        println!("  (no launches recorded)");
    }
    let (nk, nnanos, nl, np, ni) = acceval::ir::interp::native::native_totals();
    println!(
        "  totals: {nk} native kernel(s) compiled in {:.1}us, {nl} native launch(es), {np} promotion(s), {ni} ineligible",
        nnanos as f64 / 1e3
    );
    println!();
    println!(
        "speedup {:.2}x over serial CPU ({:.6}s / {:.6}s), validation {}",
        run.speedup,
        oracle.run.secs,
        run.secs,
        match &run.valid {
            Ok(()) => "OK".to_string(),
            Err(e) => format!("FAILED: {e}"),
        }
    );

    let path = format!("results/profile_{}_{}.json", bench_name, model.slug());
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, chrome_trace(&events))) {
        Ok(()) => eprintln!("wrote {path} ({} events; open in chrome://tracing or Perfetto)", events.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn serde_json_string(fig: &acceval::figures::Figure1) -> String {
    acceval::figures_json(fig)
}
