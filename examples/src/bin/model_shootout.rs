//! Model shootout: run one benchmark through every programming model,
//! print the acceptance verdicts (coverage), port costs, and speedups.
//!
//! ```text
//! cargo run -p acceval-examples --release --bin model_shootout -- CG
//! ```

use acceval::benchmarks::{benchmark_named, ledger_lines, Scale};
use acceval::ir::analysis::region_features;
use acceval::models::{model, ModelKind};
use acceval::sim::MachineConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "CG".to_string());
    let bench = benchmark_named(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}");
        std::process::exit(2);
    });
    let spec = bench.spec();
    println!("{} — {} ({} LoC OpenMP original)\n", spec.name, spec.domain, spec.base_loc);

    // Coverage: which regions does each directive model accept?
    let orig = bench.original();
    let regions = orig.regions();
    println!("{} parallel regions:", regions.len());
    for kind in ModelKind::coverage_models() {
        let m = model(kind);
        let mut ok = 0;
        let mut reasons = vec![];
        for r in &regions {
            match m.accepts(&region_features(&orig, r)) {
                Ok(()) => ok += 1,
                Err(e) => reasons.push(format!("{}: {}", r.label, e.reason)),
            }
        }
        println!("  {:16} {:>2}/{}", kind.display(), ok, regions.len());
        for why in reasons.iter().take(3) {
            println!("        rejected {why}");
        }
    }

    // Ports + speedups.
    let cfg = MachineConfig::keeneland_node();
    let ds = bench.dataset(Scale::Test);
    let oracle = acceval::run_baseline(bench.as_ref(), &ds, &cfg);
    println!("\nCPU baseline {:.3} ms ({})\n", oracle.secs * 1e3, ds.label);
    println!(
        "{:18} {:>10} {:>10} {:>9} {:>9} {:>11}",
        "model", "port(+LoC)", "time(ms)", "speedup", "kernels", "PCIe(KiB)"
    );
    for kind in ModelKind::figure1_models() {
        let port = bench.port(kind);
        let added = ledger_lines(&port.changes);
        let run = acceval::run_model(bench.as_ref(), kind, &ds, &cfg, &oracle, None);
        let s = &run.summary;
        println!(
            "{:18} {:>10} {:>10.3} {:>8.2}x {:>9} {:>11.0}",
            kind.display(),
            added,
            run.secs * 1e3,
            run.speedup,
            s.kernels_launched,
            (s.h2d_bytes + s.d2h_bytes) as f64 / 1024.0
        );
        if let Err(e) = &run.valid {
            println!("   !! INVALID: {e}");
        }
    }
}
