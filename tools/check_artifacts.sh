#!/usr/bin/env bash
# Guard against drift between the committed result artifacts and the code:
# regenerate results/table1.txt, results/table2.txt, results/figure1.csv,
# and results/device_matrix.csv with the report binary and fail on any diff.
#
# Runs the report binary from a scratch directory: `figure1` writes a sweep
# manifest (wall-clock timings, nondeterministic) next to its outputs as a
# side effect, which must not land in — or be compared against — the
# committed results/ tree.
#
# Usage: tools/check_artifacts.sh        (from the repo root; ~2 min, the
#                                         figure1 sweep runs at paper scale)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cargo build --release -p acceval-examples
report="$repo/target/release/report"

# Artifact regeneration must never depend on warm state: pin the persistent
# launch store off so a stale results/.acceval-store cannot shadow a code
# change (entries are epoch-keyed, but drift checks take no chances), and
# drop any store a previous tool left under the committed results/ tree.
export ACCEVAL_STORE=off
rm -rf "$repo/results/.acceval-store"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

"$report" table1 > table1.txt
"$report" table2 > table2.txt
"$report" figure1 --no-tuning --csv > figure1.csv 2> figure1.log
# The devices command writes the matrix next to its own manifest; lift the
# CSV out of the scratch results/ tree for the diff below.
"$report" devices > device_rankings.txt 2> device_matrix.log
mv results/device_matrix.csv device_matrix.csv

status=0
for f in table1.txt table2.txt figure1.csv device_matrix.csv; do
    if ! diff -u "$repo/results/$f" "$f"; then
        echo "DRIFT: results/$f no longer matches the report binary's output" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "artifacts up to date: table1.txt table2.txt figure1.csv device_matrix.csv"
fi
exit "$status"
