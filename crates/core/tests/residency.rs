//! Focused tests of the runtime's transfer planning: residency tracking,
//! pristine-zero elision, update directives, host/device synchronization,
//! and the per-policy transfer counts.

use acceval_benchmarks::Port;
use acceval_ir::builder::*;
use acceval_ir::expr::{ld, v};
use acceval_ir::program::{DataSet, Program};
use acceval_ir::stmt::{DataClauses, UpdateDir};
use acceval_ir::types::Value;
use acceval_models::lower::HintMap;
use acceval_models::{DataPolicy, ModelKind};
use acceval_sim::{Dir, Event, MachineConfig};

use acceval::{compile_port, run_gpu_program};

/// x (dataset-provided) is read by two kernel regions in a host loop; y is
/// scratch the kernels produce and the host never touches.
fn two_region_program(host_touches_x: bool) -> Program {
    let mut pb = ProgramBuilder::new("t");
    let n = pb.iscalar("n");
    let it = pb.iscalar("it");
    let i = pb.iscalar("i");
    let x = pb.farray("x", vec![v(n)]);
    let y = pb.farray("y", vec![v(n)]);
    let mut loop_body = vec![
        parallel("t.r1", vec![pfor(i, 0i64, v(n), vec![store(y, vec![v(i)], ld(x, vec![v(i)]) + 1.0)])]),
        parallel("t.r2", vec![pfor(i, 0i64, v(n), vec![store(x, vec![v(i)], ld(y, vec![v(i)]) * 0.5)])]),
    ];
    if host_touches_x {
        // host reads and rewrites one element between regions
        loop_body.push(store(x, vec![0i64.into()], ld(x, vec![0i64.into()]) + 1.0));
    }
    pb.main(vec![sfor(it, 0i64, 4i64, loop_body)]);
    pb.outputs(vec![x]);
    pb.build()
}

fn make_port(p: Program) -> Port {
    Port { program: p, hints: HintMap::new(), changes: vec![] }
}

fn dataset(p: &Program, n: i64) -> DataSet {
    DataSet {
        scalars: vec![(p.scalar_named("n"), Value::I(n))],
        arrays: vec![(
            p.array_named("x"),
            acceval_sim::Buffer::from_f64(acceval_sim::ElemType::F64, (0..n).map(|k| k as f64).collect()),
        )],
        label: "t".into(),
    }
}

fn transfer_count(events: &[Event], array: &str, dir: Dir) -> usize {
    events.iter().filter(|e| matches!(e, Event::Transfer { array: a, dir: d, .. } if a == array && *d == dir)).count()
}

#[test]
fn automatic_policy_moves_each_array_once() {
    let p = two_region_program(false);
    let port = make_port(p);
    let ds = dataset(&port.program, 256);
    let mut c = compile_port(&port, ModelKind::OpenMpc, &ds, None);
    c.policy = DataPolicy::Automatic;
    let run = run_gpu_program(&c, &ds, &MachineConfig::keeneland_node()).expect("gpu run");
    // x: one upload, one final download for the output; y: pristine scratch,
    // no transfers at all.
    assert_eq!(transfer_count(&run.timeline.events, "x", Dir::HostToDevice), 1);
    assert_eq!(transfer_count(&run.timeline.events, "x", Dir::DeviceToHost), 1);
    assert_eq!(transfer_count(&run.timeline.events, "y", Dir::HostToDevice), 0);
    assert_eq!(transfer_count(&run.timeline.events, "y", Dir::DeviceToHost), 0);
}

#[test]
fn naive_policy_transfers_every_region() {
    let p = two_region_program(false);
    let port = make_port(p);
    let ds = dataset(&port.program, 256);
    let mut c = compile_port(&port, ModelKind::OpenMpc, &ds, None);
    c.policy = DataPolicy::PerRegion;
    let run = run_gpu_program(&c, &ds, &MachineConfig::keeneland_node()).expect("gpu run");
    // 4 iterations x 2 regions, x is read or written by both.
    assert!(transfer_count(&run.timeline.events, "x", Dir::HostToDevice) >= 4, "naive should re-upload x repeatedly");
    assert!(transfer_count(&run.timeline.events, "x", Dir::DeviceToHost) >= 4);
}

#[test]
fn host_touch_forces_resync() {
    let p = two_region_program(true);
    let port = make_port(p);
    let ds = dataset(&port.program, 256);
    let mut c = compile_port(&port, ModelKind::OpenMpc, &ds, None);
    c.policy = DataPolicy::Automatic;
    let cfg = MachineConfig::keeneland_node();
    let run = run_gpu_program(&c, &ds, &cfg).expect("gpu run");
    // the host store to x[0] each iteration forces D2H (read) + H2D (next use)
    assert!(transfer_count(&run.timeline.events, "x", Dir::HostToDevice) >= 4);
    assert!(transfer_count(&run.timeline.events, "x", Dir::DeviceToHost) >= 4);

    // ... and the results must still be right: compare with sequential run.
    let oracle = acceval_ir::interp::cpu::run_cpu(&port.program, &ds, &cfg.host);
    let xi = port.program.array_named("x").0 as usize;
    assert!(oracle.data.bufs[xi].max_abs_diff(&run.data.bufs[xi]) < 1e-12);
}

#[test]
fn update_directives_force_transfers() {
    let mut pb = ProgramBuilder::new("u");
    let n = pb.iscalar("n");
    let i = pb.iscalar("i");
    let x = pb.farray("x", vec![v(n)]);
    pb.main(vec![data_region(
        DataClauses { copyin: vec![x], copyout: vec![x], copy: vec![], create: vec![] },
        vec![
            parallel("u.r", vec![pfor(i, 0i64, v(n), vec![store(x, vec![v(i)], ld(x, vec![v(i)]) + 1.0)])]),
            update(vec![x], UpdateDir::Host),
            update(vec![x], UpdateDir::Device),
            parallel("u.r2", vec![pfor(i, 0i64, v(n), vec![store(x, vec![v(i)], ld(x, vec![v(i)]) * 2.0)])]),
        ],
    )]);
    pb.outputs(vec![x]);
    let p = pb.build();
    let port = make_port(p);
    let ds = dataset(&port.program, 128);
    let c = compile_port(&port, ModelKind::PgiAccelerator, &ds, None);
    assert_eq!(c.policy, DataPolicy::DataRegionScoped);
    let run = run_gpu_program(&c, &ds, &MachineConfig::keeneland_node()).expect("gpu run");
    // copyin + explicit update-device = 2 uploads; update-host + copyout = 2 downloads
    assert_eq!(transfer_count(&run.timeline.events, "x", Dir::HostToDevice), 2);
    assert_eq!(transfer_count(&run.timeline.events, "x", Dir::DeviceToHost), 2);
}

#[test]
fn untranslated_regions_run_on_host_with_sync() {
    // A region with a critical section that is NOT a reduction: every model
    // leaves it on the host; the runtime must keep data coherent.
    let mut pb = ProgramBuilder::new("h");
    let n = pb.iscalar("n");
    let i = pb.iscalar("i");
    let x = pb.farray("x", vec![v(n)]);
    let y = pb.farray("y", vec![v(n)]);
    pb.main(vec![
        parallel("h.gpu", vec![pfor(i, 0i64, v(n), vec![store(y, vec![v(i)], ld(x, vec![v(i)]) + 1.0)])]),
        parallel(
            "h.cpu",
            vec![pfor(i, 0i64, v(n), vec![critical(vec![store(x, vec![v(i)], ld(y, vec![v(i)]) * 3.0)])])],
        ),
        parallel("h.gpu2", vec![pfor(i, 0i64, v(n), vec![store(y, vec![v(i)], ld(x, vec![v(i)]) - 1.0)])]),
    ]);
    pb.outputs(vec![y]);
    let p = pb.build();
    let port = make_port(p);
    let ds = dataset(&port.program, 64);
    let cfg = MachineConfig::keeneland_node();
    let c = compile_port(&port, ModelKind::OpenAcc, &ds, None);
    assert_eq!(c.unsupported.len(), 1, "the critical region stays on the host");
    let run = run_gpu_program(&c, &ds, &cfg).expect("gpu run");
    let oracle = acceval_ir::interp::cpu::run_cpu(&port.program, &ds, &cfg.host);
    let yi = port.program.array_named("y").0 as usize;
    assert!(oracle.data.bufs[yi].max_abs_diff(&run.data.bufs[yi]) < 1e-12);
    // y crossed the bus: GPU wrote it, host region read it, GPU read it again
    assert!(transfer_count(&run.timeline.events, "y", Dir::DeviceToHost) >= 1);
    assert!(transfer_count(&run.timeline.events, "y", Dir::HostToDevice) >= 1);
}
