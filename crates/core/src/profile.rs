//! Run profiles: fold a structured trace into per-kernel cost attribution
//! and per-array transfer accounting, and render the raw event stream as
//! Chrome-trace-format JSON (openable in `chrome://tracing` / Perfetto).
//!
//! The profile answers the question the paper's Figure 1 discussion keeps
//! asking — *why* is this port slow: which kernel dominates, whether it is
//! compute-, bandwidth-, latency-, or shared-memory-bound, how badly its
//! access pattern amplifies DRAM traffic, and how many bytes each array
//! moved over PCIe in each direction.

use acceval_models::ModelKind;
use acceval_sim::trace::TraceEvent;
use acceval_sim::{Bound, Dir};
use serde::{Json, Serialize};

/// Aggregated cost attribution for one kernel (all launches of that name).
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Number of launches folded into this row.
    pub launches: u64,
    /// Total simulated seconds across launches (incl. launch overhead).
    pub time_secs: f64,
    /// Per-term roofline cycles summed over launches.
    pub compute_cycles: f64,
    pub mem_bw_cycles: f64,
    pub mem_lat_cycles: f64,
    pub shared_cycles: f64,
    pub atomic_cycles: f64,
    /// The dominating term of the summed roofline.
    pub bound: Bound,
    /// Worst (minimum) occupancy fraction seen across launches.
    pub occupancy: f64,
    /// Warp-wide global-memory requests summed over launches.
    pub global_requests: u64,
    /// Global-memory transactions summed over launches.
    pub global_transactions: u64,
    /// Useful bytes (lane accesses × element size).
    pub useful_bytes: u64,
    /// DRAM bytes actually moved.
    pub traffic_bytes: u64,
    /// Serialized shared-memory slots.
    pub shared_slots: u64,
}

impl KernelRow {
    /// Moved bytes over useful bytes (1.0 = perfectly coalesced).
    pub fn traffic_amplification(&self) -> f64 {
        if self.useful_bytes == 0 {
            0.0
        } else {
            self.traffic_bytes as f64 / self.useful_bytes as f64
        }
    }
}

/// Aggregated PCIe traffic for one (array, direction) pair.
#[derive(Debug, Clone, Serialize)]
pub struct TransferRow {
    /// Array name (reduction readbacks appear as `kernel(red)`).
    pub array: String,
    /// Transfer direction.
    pub dir: Dir,
    /// Number of transfers.
    pub transfers: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total simulated link seconds.
    pub secs: f64,
}

/// A complete run profile: what the simulated time was spent on.
#[derive(Debug, Clone, Serialize)]
pub struct RunProfile {
    /// Benchmark name.
    pub benchmark: String,
    /// Programming model of the profiled port.
    pub model: ModelKind,
    /// Total simulated seconds (host + transfers + kernels).
    pub total_secs: f64,
    /// Sequential host seconds.
    pub host_secs: f64,
    /// PCIe seconds.
    pub transfer_secs: f64,
    /// Kernel seconds.
    pub kernel_secs: f64,
    /// Upload bytes.
    pub h2d_bytes: u64,
    /// Download bytes.
    pub d2h_bytes: u64,
    /// Per-kernel attribution, in first-launch order.
    pub kernels: Vec<KernelRow>,
    /// Per-(array, direction) transfer accounting, in first-seen order.
    pub transfers: Vec<TransferRow>,
    /// Number of trace events the profile was folded from.
    pub events: usize,
}

impl RunProfile {
    /// Fold a recorded event stream into a profile. Events must be in
    /// emission (simulation) order; rows keep first-seen order so the
    /// profile is as deterministic as the trace.
    pub fn from_events(benchmark: &str, model: ModelKind, events: &[TraceEvent]) -> Self {
        let mut p = RunProfile {
            benchmark: benchmark.to_string(),
            model,
            total_secs: 0.0,
            host_secs: 0.0,
            transfer_secs: 0.0,
            kernel_secs: 0.0,
            h2d_bytes: 0,
            d2h_bytes: 0,
            kernels: Vec::new(),
            transfers: Vec::new(),
            events: events.len(),
        };
        for e in events {
            p.total_secs += e.secs();
            match e {
                TraceEvent::Host { secs, .. } => p.host_secs += secs,
                TraceEvent::Transfer { array, dir, bytes, secs } => {
                    p.transfer_secs += secs;
                    match dir {
                        Dir::HostToDevice => p.h2d_bytes += bytes,
                        Dir::DeviceToHost => p.d2h_bytes += bytes,
                    }
                    let row = match p.transfers.iter_mut().find(|r| r.array == *array && r.dir == *dir) {
                        Some(r) => r,
                        None => {
                            p.transfers.push(TransferRow {
                                array: array.clone(),
                                dir: *dir,
                                transfers: 0,
                                bytes: 0,
                                secs: 0.0,
                            });
                            p.transfers.last_mut().expect("just pushed")
                        }
                    };
                    row.transfers += 1;
                    row.bytes += bytes;
                    row.secs += secs;
                }
                TraceEvent::KernelLaunch { name, cost, totals, traffic_bytes, .. } => {
                    p.kernel_secs += cost.time_secs;
                    let row = match p.kernels.iter_mut().find(|r| r.name == *name) {
                        Some(r) => r,
                        None => {
                            p.kernels.push(KernelRow {
                                name: name.clone(),
                                launches: 0,
                                time_secs: 0.0,
                                compute_cycles: 0.0,
                                mem_bw_cycles: 0.0,
                                mem_lat_cycles: 0.0,
                                shared_cycles: 0.0,
                                atomic_cycles: 0.0,
                                bound: Bound::LaunchOverhead,
                                occupancy: f64::INFINITY,
                                global_requests: 0,
                                global_transactions: 0,
                                useful_bytes: 0,
                                traffic_bytes: 0,
                                shared_slots: 0,
                            });
                            p.kernels.last_mut().expect("just pushed")
                        }
                    };
                    row.launches += 1;
                    row.time_secs += cost.time_secs;
                    row.compute_cycles += cost.compute_cycles;
                    row.mem_bw_cycles += cost.mem_bw_cycles;
                    row.mem_lat_cycles += cost.mem_lat_cycles;
                    row.shared_cycles += cost.shared_cycles;
                    row.atomic_cycles += cost.atomic_cycles;
                    row.occupancy = row.occupancy.min(cost.occupancy.fraction);
                    row.global_requests += totals.global_requests;
                    row.global_transactions += totals.global_transactions;
                    row.useful_bytes += totals.useful_bytes;
                    row.traffic_bytes += traffic_bytes;
                    row.shared_slots += totals.shared_slots;
                }
                // Evidence events contribute no time; they stay in the raw
                // trace (Chrome JSON) rather than the folded table.
                TraceEvent::CoalesceSite { .. } | TraceEvent::CacheCounters { .. } | TraceEvent::TaskSpan { .. } => {}
            }
        }
        for row in &mut p.kernels {
            if !row.occupancy.is_finite() {
                row.occupancy = 0.0;
            }
            row.bound = dominant_bound(row);
        }
        p
    }
}

/// The dominating term of a kernel row's summed roofline.
fn dominant_bound(r: &KernelRow) -> Bound {
    let candidates = [
        (Bound::Compute, r.compute_cycles),
        (Bound::MemBandwidth, r.mem_bw_cycles),
        (Bound::MemLatency, r.mem_lat_cycles),
        (Bound::Shared, r.shared_cycles),
        (Bound::Atomic, r.atomic_cycles),
    ];
    let (bound, cycles) = candidates
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .copied()
        .expect("non-empty");
    if cycles > 0.0 {
        bound
    } else {
        Bound::LaunchOverhead
    }
}

// ---------------------------------------------------------------------------
// Chrome trace format.
// ---------------------------------------------------------------------------

/// Virtual thread ids used in the Chrome trace.
const TID_HOST: u64 = 0;
const TID_PCIE: u64 = 1;
const TID_GPU: u64 = 2;

/// Render an event stream as Chrome-trace-format JSON (the
/// `{"traceEvents": [...]}` object form), with simulated time as the
/// timeline: `ts`/`dur` are simulated microseconds, lanes are `host`,
/// `pcie`, and `gpu`. Evidence events (coalescing sites, cache counters,
/// task spans) become instant/counter events at their emission time.
///
/// The output is a pure function of the event stream, so a trace recorded
/// from a deterministic run is byte-stable across thread counts.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 3);
    for (tid, name) in [(TID_HOST, "host"), (TID_PCIE, "pcie"), (TID_GPU, "gpu")] {
        out.push(obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U(0)),
            ("tid", Json::U(tid)),
            ("args", obj(vec![("name", Json::Str(name.into()))])),
        ]));
    }
    let mut ts = 0.0f64; // simulated microseconds
    for e in events {
        match e {
            TraceEvent::Host { label, secs } => {
                out.push(complete(label, "host", TID_HOST, ts, secs * 1e6, vec![]));
            }
            TraceEvent::Transfer { array, dir, bytes, secs } => {
                let dirname = match dir {
                    Dir::HostToDevice => "HostToDevice",
                    Dir::DeviceToHost => "DeviceToHost",
                };
                out.push(complete(
                    &format!("{array} {dirname}"),
                    "pcie",
                    TID_PCIE,
                    ts,
                    secs * 1e6,
                    vec![
                        ("array", Json::Str(array.clone())),
                        ("dir", Json::Str(dirname.into())),
                        ("bytes", Json::U(*bytes)),
                    ],
                ));
            }
            TraceEvent::KernelLaunch { name, footprint, cost, totals, traffic_bytes } => {
                out.push(complete(
                    name,
                    "kernel",
                    TID_GPU,
                    ts,
                    cost.time_secs * 1e6,
                    vec![
                        ("bound", Json::Str(format!("{:?}", cost.bound))),
                        ("grid_blocks", Json::U(footprint.grid_blocks)),
                        ("threads_per_block", Json::U(footprint.threads_per_block as u64)),
                        ("shared_bytes_per_block", Json::U(footprint.shared_bytes_per_block as u64)),
                        ("occupancy", Json::F(cost.occupancy.fraction)),
                        ("compute_cycles", Json::F(cost.compute_cycles)),
                        ("mem_bw_cycles", Json::F(cost.mem_bw_cycles)),
                        ("mem_lat_cycles", Json::F(cost.mem_lat_cycles)),
                        ("shared_cycles", Json::F(cost.shared_cycles)),
                        ("atomic_cycles", Json::F(cost.atomic_cycles)),
                        ("global_requests", Json::U(totals.global_requests)),
                        ("global_transactions", Json::U(totals.global_transactions)),
                        ("useful_bytes", Json::U(totals.useful_bytes)),
                        ("traffic_bytes", Json::U(*traffic_bytes)),
                    ],
                ));
            }
            TraceEvent::CoalesceSite {
                kernel,
                site,
                array,
                space,
                requests,
                transactions,
                lane_accesses,
                shared_slots,
            } => {
                out.push(instant(
                    &format!("{kernel}#site{site}"),
                    "coalesce",
                    TID_GPU,
                    ts,
                    vec![
                        ("array", Json::Str(array.clone())),
                        ("space", Json::Str(space.clone())),
                        ("requests", Json::U(*requests)),
                        ("transactions", Json::U(*transactions)),
                        ("lane_accesses", Json::U(*lane_accesses)),
                        ("shared_slots", Json::U(*shared_slots)),
                    ],
                ));
            }
            TraceEvent::CacheCounters { cache, hits, misses } => {
                out.push(obj(vec![
                    ("name", Json::Str(cache.clone())),
                    ("cat", Json::Str("cache".into())),
                    ("ph", Json::Str("C".into())),
                    ("ts", Json::F(ts)),
                    ("pid", Json::U(0)),
                    ("tid", Json::U(TID_GPU)),
                    ("args", obj(vec![("hits", Json::U(*hits)), ("misses", Json::U(*misses))])),
                ]));
            }
            TraceEvent::TaskSpan { task, benchmark, model, tuning, oracle_cached, compile_cached } => {
                out.push(instant(
                    &format!("task{task} {benchmark}/{model}"),
                    "sweep",
                    TID_HOST,
                    ts,
                    vec![
                        ("task", Json::U(*task as u64)),
                        ("benchmark", Json::Str(benchmark.clone())),
                        ("model", Json::Str(model.clone())),
                        ("tuning", tuning.as_ref().map(|t| Json::Str(t.clone())).unwrap_or(Json::Null)),
                        ("oracle_cached", Json::Bool(*oracle_cached)),
                        ("compile_cached", Json::Bool(*compile_cached)),
                    ],
                ));
            }
        }
        ts += e.secs() * 1e6;
    }
    let root = obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".into())),
        ("otherData", obj(vec![("generator", Json::Str("acceval report profile".into()))])),
    ]);
    serde_json::to_string_pretty(&root).expect("chrome trace serializes")
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn complete(name: &str, cat: &str, tid: u64, ts: f64, dur: f64, args: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::Str(name.to_string())),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("X".into())),
        ("ts", Json::F(ts)),
        ("dur", Json::F(dur)),
        ("pid", Json::U(0)),
        ("tid", Json::U(tid)),
    ];
    if !args.is_empty() {
        fields.push(("args", obj(args)));
    }
    obj(fields)
}

fn instant(name: &str, cat: &str, tid: u64, ts: f64, args: Vec<(&str, Json)>) -> Json {
    obj(vec![
        ("name", Json::Str(name.to_string())),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("i".into())),
        ("ts", Json::F(ts)),
        ("pid", Json::U(0)),
        ("tid", Json::U(tid)),
        ("s", Json::Str("t".into())),
        ("args", obj(args)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use acceval_benchmarks::{benchmark_named, Scale};
    use acceval_sim::{MachineConfig, RecordingSink};

    fn record(bench: &str, model: ModelKind) -> (Vec<TraceEvent>, crate::eval::ModelRun) {
        let cfg = MachineConfig::keeneland_node();
        let b = benchmark_named(bench).expect("benchmark exists");
        let ds = crate::sweep::cached_dataset(b.as_ref(), Scale::Test);
        let oracle = crate::sweep::cached_oracle(b.as_ref(), Scale::Test, &cfg);
        let compiled = crate::sweep::cached_compile(b.as_ref(), model, Scale::Test, None);
        let mut sink = RecordingSink::new();
        let run = crate::eval::run_compiled_traced(b.as_ref(), &compiled, &ds, &cfg, &oracle.run, &mut sink);
        (sink.events, run)
    }

    #[test]
    fn profile_accounts_for_total_time() {
        let (events, run) = record("jacobi", ModelKind::OpenMpc);
        assert!(!events.is_empty(), "traced run must emit events");
        let p = RunProfile::from_events("jacobi", ModelKind::OpenMpc, &events);
        // The profile's timed events reconstruct the run's wall time.
        assert!((p.total_secs - run.secs).abs() < 1e-12 * run.secs.max(1.0), "{} vs {}", p.total_secs, run.secs);
        assert!((p.host_secs + p.transfer_secs + p.kernel_secs - p.total_secs).abs() < 1e-9);
        assert!(!p.kernels.is_empty());
        assert!(p.kernels.iter().all(|k| k.launches > 0));
        // Transfer bytes match the timeline summary.
        assert_eq!(p.h2d_bytes, run.summary.h2d_bytes);
        assert_eq!(p.d2h_bytes, run.summary.d2h_bytes);
    }

    #[test]
    fn chrome_trace_is_valid_and_ordered() {
        let (events, _) = record("jacobi", ModelKind::OpenMpc);
        let s = chrome_trace(&events);
        let v = serde_json::from_str(&s).expect("chrome trace parses");
        let Json::Obj(fields) = &v else { panic!("root must be an object") };
        let (_, Json::Arr(evs)) = fields.iter().find(|(k, _)| k == "traceEvents").expect("traceEvents") else {
            panic!("traceEvents must be an array")
        };
        assert!(evs.len() > events.len(), "metadata + one entry per event");
        // ts must be monotonically non-decreasing (simulated order).
        let mut last = -1.0;
        for e in evs {
            let Json::Obj(f) = e else { panic!("event must be an object") };
            if let Some((_, Json::F(ts))) = f.iter().find(|(k, _)| k == "ts") {
                assert!(*ts >= last, "ts went backwards: {ts} < {last}");
                last = *ts;
            }
        }
    }

    #[test]
    fn dominant_bound_prefers_largest_term() {
        let (events, _) = record("jacobi", ModelKind::OpenMpc);
        let p = RunProfile::from_events("jacobi", ModelKind::OpenMpc, &events);
        for k in &p.kernels {
            let max =
                k.compute_cycles.max(k.mem_bw_cycles).max(k.mem_lat_cycles).max(k.shared_cycles).max(k.atomic_cycles);
            if max > 0.0 {
                assert_ne!(k.bound, Bound::LaunchOverhead, "{}: non-zero roofline must not be launch-bound", k.name);
            }
        }
    }
}
