//! Speedup measurement: the machinery behind Figure 1.
//!
//! Every benchmark runs once sequentially on the CPU model (the baseline and
//! correctness oracle), then once per model through its port; speedup is
//! baseline-seconds over GPU-version-seconds, and GPU outputs are validated
//! against the oracle.

use acceval_benchmarks::{Benchmark, Scale};
use acceval_ir::interp::cpu::{run_cpu, CpuRun};
use acceval_ir::program::DataSet;
use acceval_models::{ModelKind, TuningPoint};
use acceval_sim::{MachineConfig, NullSink, Summary, TraceSink};
use serde::Serialize;

use crate::compile::{compile_port, CompiledProgram};
use crate::runtime::run_gpu_program_traced;

/// One GPU-version run.
#[derive(Debug, Clone, Serialize)]
pub struct ModelRun {
    pub model: ModelKind,
    pub secs: f64,
    pub speedup: f64,
    pub summary: Summary,
    /// `Ok` if outputs matched the oracle within tolerance.
    pub valid: Result<(), String>,
    /// Regions that stayed on the host.
    pub unsupported_regions: usize,
    /// The costliest kernel of the run's timeline (None if the run failed
    /// or launched no kernels) — the next optimization target.
    pub kernel_hotspot: Option<KernelHotspot>,
}

/// The costliest kernel of one run: simulated seconds and launch count
/// summed over every launch with the same kernel name.
#[derive(Debug, Clone, Serialize)]
pub struct KernelHotspot {
    pub kernel: String,
    /// Simulated seconds across all launches of this kernel.
    pub secs: f64,
    pub launches: u64,
}

/// Aggregate a timeline's kernel launches by name (first-launch order) and
/// return the costliest one by total simulated seconds (ties keep the
/// earlier kernel, so the answer is deterministic).
fn kernel_hotspot_of(timeline: &acceval_sim::Timeline) -> Option<KernelHotspot> {
    let mut agg: Vec<KernelHotspot> = Vec::new();
    for e in &timeline.events {
        if let acceval_sim::Event::Kernel { name, cost, .. } = e {
            match agg.iter_mut().find(|h| h.kernel == *name) {
                Some(h) => {
                    h.secs += cost.time_secs;
                    h.launches += 1;
                }
                None => agg.push(KernelHotspot { kernel: name.clone(), secs: cost.time_secs, launches: 1 }),
            }
        }
    }
    agg.into_iter().reduce(|best, h| if h.secs > best.secs { h } else { best })
}

/// All results for one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct BenchResult {
    pub name: String,
    pub dataset: String,
    pub cpu_secs: f64,
    pub runs: Vec<ModelRun>,
    /// (model, min speedup, max speedup) over the tuning space.
    pub tuning_bands: Vec<(ModelKind, f64, f64)>,
}

impl BenchResult {
    /// The default-point speedup of a model (None if absent/invalid).
    pub fn speedup_of(&self, kind: ModelKind) -> Option<f64> {
        self.runs.iter().find(|r| r.model == kind && r.valid.is_ok()).map(|r| r.speedup)
    }
}

/// Run the sequential CPU baseline.
pub fn run_baseline(bench: &dyn Benchmark, ds: &DataSet, cfg: &MachineConfig) -> CpuRun {
    run_cpu(&bench.original(), ds, &cfg.host)
}

/// Validate a GPU run's outputs against the oracle.
fn validate(
    bench: &dyn Benchmark,
    oracle: &CpuRun,
    run: &crate::runtime::GpuRun,
    compiled: &crate::compile::CompiledProgram,
) -> Result<(), String> {
    let orig = bench.original();
    let tol = bench.spec().tolerance;
    for out in &orig.outputs {
        let name = orig.array_name(*out);
        let oid = compiled.program.array_named(name);
        let a = &oracle.data.bufs[out.0 as usize];
        let b = &run.data.bufs[oid.0 as usize];
        if a.len() != b.len() {
            return Err(format!("{name}: length mismatch"));
        }
        // scale-aware comparison
        let mut scale: f64 = 1.0;
        for i in 0..a.len() {
            scale = scale.max(a.get_f(i).abs());
        }
        let d = a.max_abs_diff(b);
        if d > tol * scale {
            return Err(format!("{name}: max diff {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"));
        }
    }
    for s in &orig.output_scalars {
        let name = &orig.scalars[s.0 as usize].name;
        let sid = compiled.program.scalar_named(name);
        let a = oracle.scalars[s.0 as usize].as_f();
        let b = run.scalars[sid.0 as usize].as_f();
        if (a - b).abs() > tol * a.abs().max(1.0) {
            return Err(format!("scalar {name}: {a} vs {b}"));
        }
    }
    Ok(())
}

/// Run an already-compiled GPU version and score it against the oracle.
///
/// This is the single execution path every consumer (sweep, `run_model`,
/// benches) funnels through. A simulated time that is zero, negative, or
/// non-finite cannot yield a meaningful speedup; it is surfaced as a
/// validation error instead of an infinite/NaN ratio.
pub fn run_compiled(
    bench: &dyn Benchmark,
    compiled: &CompiledProgram,
    ds: &DataSet,
    cfg: &MachineConfig,
    oracle: &CpuRun,
) -> ModelRun {
    run_compiled_traced(bench, compiled, ds, cfg, oracle, &mut NullSink)
}

/// [`run_compiled`], streaming the run's structured trace into `sink`.
/// Scores are bit-identical to the untraced path; the sink additionally
/// receives every host span, transfer, and kernel launch in simulation
/// order.
pub fn run_compiled_traced(
    bench: &dyn Benchmark,
    compiled: &CompiledProgram,
    ds: &DataSet,
    cfg: &MachineConfig,
    oracle: &CpuRun,
    sink: &mut dyn TraceSink,
) -> ModelRun {
    let run = match run_gpu_program_traced(compiled, ds, cfg, sink) {
        Ok(run) => run,
        Err(e) => {
            return ModelRun {
                model: compiled.kind,
                secs: 0.0,
                speedup: 0.0,
                summary: acceval_sim::Timeline::new().summary(),
                valid: Err(format!("runtime error: {e}")),
                unsupported_regions: compiled.unsupported.len(),
                kernel_hotspot: None,
            }
        }
    };
    let mut valid = validate(bench, oracle, &run, compiled);
    let speedup = if run.secs.is_finite() && run.secs > 0.0 {
        oracle.secs / run.secs
    } else {
        if valid.is_ok() {
            valid = Err(format!("non-physical simulated time: {} s", run.secs));
        }
        0.0
    };
    ModelRun {
        model: compiled.kind,
        secs: run.secs,
        speedup,
        summary: run.timeline.summary(),
        valid,
        unsupported_regions: compiled.unsupported.len(),
        kernel_hotspot: kernel_hotspot_of(&run.timeline),
    }
}

/// Run one model's port at one tuning point.
pub fn run_model(
    bench: &dyn Benchmark,
    kind: ModelKind,
    ds: &DataSet,
    cfg: &MachineConfig,
    oracle: &CpuRun,
    tuning: Option<&TuningPoint>,
) -> ModelRun {
    let port = bench.port(kind);
    let compiled = compile_port(&port, kind, ds, tuning);
    run_compiled(bench, &compiled, ds, cfg, oracle)
}

/// Evaluate one benchmark across the Figure 1 models.
///
/// With `with_tuning`, every model's tuning space is swept to produce the
/// "performance variation by tuning" band. This runs a single-benchmark
/// [`crate::sweep`], so it shares the sweep's oracle and compile caches and
/// its parallel work-stealing execution.
pub fn evaluate_benchmark(bench: &dyn Benchmark, cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> BenchResult {
    let manifest = crate::sweep::run_sweep(&[bench], cfg, scale, with_tuning);
    crate::sweep::bench_results(&manifest).pop().expect("one benchmark in, one result out")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_end_to_end() {
        let cfg = MachineConfig::keeneland_node();
        let r = evaluate_benchmark(&acceval_benchmarks::jacobi::Jacobi, &cfg, Scale::Test, false);
        assert_eq!(r.runs.len(), 5);
        for run in &r.runs {
            assert!(run.valid.is_ok(), "{:?}: {:?}", run.model, run.valid);
            assert!(run.speedup > 0.0);
        }
    }

    #[test]
    fn tuning_band_brackets_default() {
        let cfg = MachineConfig::keeneland_node();
        let r = evaluate_benchmark(&acceval_benchmarks::jacobi::Jacobi, &cfg, Scale::Test, true);
        for (kind, lo, hi) in &r.tuning_bands {
            let d = r.speedup_of(*kind).unwrap();
            assert!(*lo <= d + 1e-9 && d <= *hi + 1e-9, "{kind:?}: {lo} <= {d} <= {hi}");
        }
    }
}
