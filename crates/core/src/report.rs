//! Renderers: ASCII tables (paper-style), CSV series, JSON dumps.

use std::fmt::Write;

use acceval_models::ModelKind;

use crate::codesize::CodeSizeRow;
use crate::coverage::CoverageRow;
use crate::figures::Figure1;
use crate::sweep::SweepManifest;

/// Render Table II (coverage + code-size increase).
pub fn render_table2(cov: &[CoverageRow], size: &[CodeSizeRow]) -> String {
    let mut out = String::new();
    out.push_str("TABLE II. PROGRAM COVERAGE AND NORMALIZED, AVERAGE CODE-SIZE INCREASE\n\n");
    let _ = writeln!(out, "{:18}| {:22}| {:22}", "GPU Models", "Program Coverage (%)", "Code-Size Increase (%)");
    out.push_str(&"-".repeat(66));
    out.push('\n');
    for c in cov {
        let s = size.iter().find(|s| s.model == c.model);
        let pct = format!("{:.1} ({}/{})", c.percent(), c.translated, c.total);
        let inc = s.map(|s| format!("{:.1}", s.average_percent)).unwrap_or_default();
        let _ = writeln!(out, "{:18}| {:22}| {:22}", c.model.display(), pct, inc);
    }
    out
}

/// Render Figure 1 as an ASCII table plus log-scale bars.
pub fn render_figure1(fig: &Figure1) -> String {
    let mut out = String::new();
    out.push_str("FIGURE 1. Speedups over serial CPU (largest evaluated inputs)\n\n");
    let models = ModelKind::figure1_models();
    let _ = write!(out, "{:10}", "Benchmark");
    for m in models {
        let _ = write!(out, "| {:>18}", m.display());
    }
    out.push_str("| tuning min..max (per model)\n");
    out.push_str(&"-".repeat(10 + 20 * models.len() + 30));
    out.push('\n');
    for r in &fig.results {
        let _ = write!(out, "{:10}", r.name);
        for m in models {
            match r.runs.iter().find(|x| x.model == m) {
                Some(run) if run.valid.is_ok() => {
                    let _ = write!(out, "| {:>18.2}", run.speedup);
                }
                Some(_) => {
                    let _ = write!(out, "| {:>18}", "INVALID");
                }
                None => {
                    let _ = write!(out, "| {:>18}", "-");
                }
            }
        }
        out.push_str("| ");
        for (m, lo, hi) in &r.tuning_bands {
            let _ = write!(out, "{}:{:.1}..{:.1} ", short(*m), lo, hi);
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&render_figure1_bars(fig));
    out
}

pub(crate) fn short(m: ModelKind) -> &'static str {
    match m {
        ModelKind::PgiAccelerator => "PGI",
        ModelKind::OpenAcc => "ACC",
        ModelKind::Hmpp => "HMPP",
        ModelKind::OpenMpc => "MPC",
        ModelKind::RStream => "RS",
        ModelKind::HiCuda => "HI",
        ModelKind::ManualCuda => "CUDA",
    }
}

/// Log-scale ASCII bar chart (like the paper's log-scale Figure 1).
pub fn render_figure1_bars(fig: &Figure1) -> String {
    let mut out = String::new();
    out.push_str("log-scale bars (each char = 0.25 decades; '.' = 1x, left edge = 0.1x)\n");
    for r in &fig.results {
        out.push_str(&format!("{}\n", r.name));
        for run in &r.runs {
            let s = run.speedup.max(0.1);
            let chars = ((s.log10() + 1.0) / 0.25).round().max(0.0) as usize;
            let _ = writeln!(out, "  {:5} {}| {:.2}x", short(run.model), "#".repeat(chars), run.speedup);
        }
    }
    out
}

/// Render the sweep manifest's timing report: totals, parallel efficiency,
/// the slowest tasks, and per-group wall-clock breakdowns.
pub fn render_sweep_summary(m: &SweepManifest) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} tasks ({} scale, tuning {}) on {} worker(s) in {:.2}s wall",
        m.tasks,
        m.scale,
        if m.with_tuning { "on" } else { "off" },
        m.workers,
        m.wall_secs
    );
    let _ = writeln!(
        out,
        "  serial-equivalent {:.2}s (oracles {:.2}s) | critical path {:.2}s | efficiency {:.0}%",
        m.task_wall_secs,
        m.oracle_wall_secs,
        m.critical_path_secs,
        m.parallel_efficiency * 100.0
    );
    out.push_str("  slowest tasks:\n");
    for s in &m.slowest_tasks {
        let _ =
            writeln!(out, "    #{:<4} {:10} {:18} {:.3}s", s.task, s.benchmark, format!("{:?}", s.model), s.wall_secs);
    }
    // Name the dominant kernel inside the critical-path task so the next
    // optimization target is visible without a separate profile run.
    if let Some(s) = m.slowest_tasks.first() {
        if let Some(h) = m.records.iter().find(|r| r.task == s.task).and_then(|r| r.kernel_hotspot.as_ref()) {
            let _ = writeln!(
                out,
                "  slowest kernel in #{}: {} ({:.3}s simulated over {} launch(es))",
                s.task, h.kernel, h.secs, h.launches
            );
        }
    }
    out.push_str("  wall seconds by model:\n");
    for g in &m.by_model {
        let _ = writeln!(out, "    {:18} {:4} tasks  {:.3}s", g.name, g.tasks, g.wall_secs);
    }
    let probes = m.launch_cache_hits + m.launch_cache_disk_hits + m.launch_cache_misses;
    let rate = |h: u64, miss: u64| {
        let n = h + miss;
        if n > 0 {
            h as f64 / n as f64 * 100.0
        } else {
            0.0
        }
    };
    let _ = writeln!(
        out,
        "  launch cache ({}): {} memory + {} disk hits / {} misses ({:.0}% hit rate), {} eviction(s), {:.3}s hashing",
        m.launch_cache,
        m.launch_cache_hits,
        m.launch_cache_disk_hits,
        m.launch_cache_misses,
        rate(m.launch_cache_hits + m.launch_cache_disk_hits, m.launch_cache_misses),
        m.launch_cache_evictions,
        m.launch_cache_digest_secs
    );
    let _ = writeln!(
        out,
        "  store ({}): {} spill(s) ({} bytes), {} quarantined, {} evicted",
        m.store, m.store_spills, m.store_spill_bytes, m.store_quarantined, m.store_evicted
    );
    if probes > 0 {
        out.push_str("  launch cache by benchmark:\n");
        for g in &m.by_benchmark {
            let _ = writeln!(
                out,
                "    {:10} {:>6} hits / {:>6} misses ({:.0}%)",
                g.name,
                g.launch_cache_hits,
                g.launch_cache_misses,
                rate(g.launch_cache_hits, g.launch_cache_misses)
            );
        }
    }
    out
}

/// Render a [`RunProfile`] as a per-kernel cost attribution table plus a
/// transfer breakdown — the "where did the simulated time go" view behind a
/// Figure 1 bar.
pub fn render_profile(p: &crate::profile::RunProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROFILE {} / {} ({} trace events)", p.benchmark, p.model.display(), p.events);
    let _ = writeln!(
        out,
        "  total {:.6}s = host {:.6}s + pcie {:.6}s + kernels {:.6}s",
        p.total_secs, p.host_secs, p.transfer_secs, p.kernel_secs
    );
    let _ = writeln!(out, "  pcie bytes: {} H2D, {} D2H", p.h2d_bytes, p.d2h_bytes);
    out.push('\n');
    let _ = writeln!(
        out,
        "{:24}| {:>8}| {:>10}| {:>6}| {:12}| {:>5}| {:>8}| {:>8}| {:>6}",
        "Kernel", "launches", "time (s)", "%time", "bound", "occ%", "cmp%", "mem%", "amp"
    );
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for k in &p.kernels {
        let cycles = k.compute_cycles + k.mem_bw_cycles + k.mem_lat_cycles + k.shared_cycles + k.atomic_cycles;
        let pct = |c: f64| if cycles > 0.0 { c / cycles * 100.0 } else { 0.0 };
        let mem_pct = pct(k.mem_bw_cycles + k.mem_lat_cycles + k.shared_cycles + k.atomic_cycles);
        let time_pct = if p.kernel_secs > 0.0 { k.time_secs / p.kernel_secs * 100.0 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:24}| {:>8}| {:>10.6}| {:>5.1}%| {:12}| {:>4.0}%| {:>7.1}%| {:>7.1}%| {:>5.2}x",
            k.name,
            k.launches,
            k.time_secs,
            time_pct,
            format!("{:?}", k.bound),
            k.occupancy * 100.0,
            pct(k.compute_cycles),
            mem_pct,
            k.traffic_amplification()
        );
    }
    out.push('\n');
    let _ =
        writeln!(out, "{:24}| {:12}| {:>10}| {:>14}| {:>12}", "Transfer", "direction", "count", "bytes", "time (s)");
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for t in &p.transfers {
        let _ = writeln!(
            out,
            "{:24}| {:12}| {:>10}| {:>14}| {:>12.6}",
            t.array,
            format!("{:?}", t.dir),
            t.transfers,
            t.bytes,
            t.secs
        );
    }
    out
}

/// Figure 1 as CSV (benchmark, model, speedup, tuning_min, tuning_max).
pub fn figure1_csv(fig: &Figure1) -> String {
    let mut out = String::from("benchmark,model,speedup,valid,tuning_min,tuning_max\n");
    for r in &fig.results {
        for run in &r.runs {
            let band = r.tuning_bands.iter().find(|(m, _, _)| *m == run.model);
            let (lo, hi) = band.map(|(_, l, h)| (*l, *h)).unwrap_or((run.speedup, run.speedup));
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{:.4},{:.4}",
                r.name,
                short(run.model),
                run.speedup,
                run.valid.is_ok(),
                lo,
                hi
            );
        }
    }
    out
}

/// Machine-readable benchmark record for the whole sweep: total wall time
/// plus per-benchmark task timings, tagged with the kernel engine that
/// produced it. Schema documented in `EXPERIMENTS.md`; written to
/// `results/BENCH_sweep.json` by `report -- figure1`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchSweep {
    /// Schema tag, bumped on layout changes.
    pub schema: String,
    /// Kernel engine the sweep ran on (`tree`/`bytecode`/`native`/`auto`).
    pub engine: String,
    pub scale: String,
    pub with_tuning: bool,
    /// Device generation slugs the sweep's records cover (one for a plain
    /// Figure 1 sweep, one per preset for a device-matrix sweep).
    pub devices: Vec<String>,
    pub workers: usize,
    pub tasks: usize,
    /// Wall seconds for the whole sweep (the headline number).
    pub wall_secs: f64,
    /// Sum of per-task wall seconds (serial-equivalent cost).
    pub task_wall_secs: f64,
    /// The longest oracle-then-slowest-task chain in wall seconds: the
    /// floor any schedule (and intra-launch parallelism) is chipping at.
    pub critical_path_secs: f64,
    /// Per-benchmark wall/sim accounting, one entry per benchmark.
    pub benchmarks: Vec<crate::sweep::GroupTotals>,
    /// Launch-cache policy the sweep ran under (`auto`/`on`/`off`).
    pub launch_cache: String,
    /// Launch-cache memory (LRU) hits summed over the sweep's tasks.
    pub launch_cache_hits: u64,
    /// Launch-cache hits served from the persistent disk store.
    pub launch_cache_disk_hits: u64,
    /// Launch-cache misses summed over the sweep's tasks.
    pub launch_cache_misses: u64,
    /// Launch-cache evictions (process-lifetime total).
    pub launch_cache_evictions: u64,
    /// Wall seconds spent hashing buffer contents for cache keys/captures.
    pub launch_cache_digest_secs: f64,
    /// Persistent-store policy (`auto`/`auto-off`/`on`/`off`/`path`).
    pub store: String,
    /// Entries spilled to the persistent store (process lifetime).
    pub store_spills: u64,
    /// Bytes spilled to the persistent store (process lifetime).
    pub store_spill_bytes: u64,
    /// Store entries quarantined after failing verification.
    pub store_quarantined: u64,
    /// Store entries evicted under the disk byte cap.
    pub store_evicted: u64,
    /// Bytecode-optimizer policy the sweep ran under (`auto`/`on`/`off`).
    pub opt: String,
    /// Kernels the optimizer rewrote during the sweep (once per distinct
    /// plan; memoized plans don't recount).
    pub opt_kernels: u64,
    /// Instruction count of those kernels before optimization.
    pub opt_ops_pre: u64,
    /// Instruction count after optimization (launch preludes excluded).
    pub opt_ops_post: u64,
    /// CSE eliminations summed over those kernels.
    pub opt_cse_hits: u64,
    /// Launches executed through the native closure tier.
    pub native_launches: u64,
    /// Plans `auto` promoted to the native tier mid-sweep.
    pub promotions: u64,
    /// Native-tier launches that fell back to bytecode.
    pub native_ineligible: u64,
}

/// Build the `results/BENCH_sweep.json` payload from a sweep manifest.
pub fn bench_sweep_json(m: &SweepManifest, engine: &str) -> String {
    let payload = BenchSweep {
        schema: "acceval-bench-sweep/7".to_string(),
        engine: engine.to_string(),
        scale: m.scale.clone(),
        with_tuning: m.with_tuning,
        devices: m.devices.clone(),
        workers: m.workers,
        tasks: m.tasks,
        wall_secs: m.wall_secs,
        task_wall_secs: m.task_wall_secs,
        critical_path_secs: m.critical_path_secs,
        benchmarks: m.by_benchmark.clone(),
        launch_cache: m.launch_cache.clone(),
        launch_cache_hits: m.launch_cache_hits,
        launch_cache_disk_hits: m.launch_cache_disk_hits,
        launch_cache_misses: m.launch_cache_misses,
        launch_cache_evictions: m.launch_cache_evictions,
        launch_cache_digest_secs: m.launch_cache_digest_secs,
        store: m.store.clone(),
        store_spills: m.store_spills,
        store_spill_bytes: m.store_spill_bytes,
        store_quarantined: m.store_quarantined,
        store_evicted: m.store_evicted,
        opt: m.opt.clone(),
        opt_kernels: m.opt_kernels,
        opt_ops_pre: m.opt_ops_pre,
        opt_ops_post: m.opt_ops_post,
        opt_cse_hits: m.opt_cse_hits,
        native_launches: m.native_launches,
        promotions: m.promotions,
        native_ineligible: m.native_ineligible,
    };
    serde_json::to_string_pretty(&payload).expect("bench sweep serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codesize::codesize_of;
    use crate::coverage::coverage_of;
    use acceval_benchmarks::Benchmark;

    #[test]
    fn table2_renders() {
        let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(acceval_benchmarks::jacobi::Jacobi)];
        let cov: Vec<_> = ModelKind::coverage_models().into_iter().map(|k| coverage_of(k, &benches)).collect();
        let size: Vec<_> = ModelKind::coverage_models().into_iter().map(|k| codesize_of(k, &benches)).collect();
        let txt = render_table2(&cov, &size);
        assert!(txt.contains("PGI Accelerator"));
        assert!(txt.contains("R-Stream"));
        assert!(txt.contains("(2/2)"));
    }
}
