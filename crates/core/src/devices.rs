//! The device-generation matrix: Figure 1 re-asked across GPU generations.
//!
//! The paper could only rank the directive models on Fermi-class silicon;
//! this module folds a device-matrix sweep ([`crate::sweep::run_device_matrix`])
//! into one Figure 1 per generation and reports how the model ranking shifts
//! from Tesla/Fermi to Pascal/Volta — the question later OpenMP-offload
//! evaluations re-asked on V100.
//!
//! Output is a pure fold of the manifest's records (collected in task
//! order), so the CSV and the ranking table are byte-identical at any
//! worker count and under any launch-cache mode.

use std::fmt::Write;

use acceval_models::ModelKind;

use crate::eval::BenchResult;
use crate::report::short;
use crate::sweep::{bench_results_for_device, SweepManifest};

/// One generation's slice of the matrix: its Figure 1 over the shared CPU
/// denominator.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DeviceSlice {
    /// Preset slug (`tesla`, `fermi`, `kepler`, `pascal`, `volta`).
    pub device: String,
    pub results: Vec<BenchResult>,
}

/// Split a (matrix) manifest into per-device Figure 1 slices, devices in
/// task order.
pub fn device_slices(m: &SweepManifest) -> Vec<DeviceSlice> {
    m.devices.iter().map(|d| DeviceSlice { device: d.clone(), results: bench_results_for_device(m, d) }).collect()
}

/// The matrix as CSV: `figure1.csv` with a leading `device` column. One row
/// per (device × benchmark × model) default-point run; the band columns
/// collapse onto the speedup when the sweep ran without tuning.
pub fn device_matrix_csv(m: &SweepManifest) -> String {
    let mut out = String::from("device,benchmark,model,speedup,valid,tuning_min,tuning_max\n");
    for slice in device_slices(m) {
        for r in &slice.results {
            for run in &r.runs {
                let band = r.tuning_bands.iter().find(|(k, _, _)| *k == run.model);
                let (lo, hi) = band.map(|(_, l, h)| (*l, *h)).unwrap_or((run.speedup, run.speedup));
                let _ = writeln!(
                    out,
                    "{},{},{},{:.4},{},{:.4},{:.4}",
                    slice.device,
                    r.name,
                    short(run.model),
                    run.speedup,
                    run.valid.is_ok(),
                    lo,
                    hi
                );
            }
        }
    }
    out
}

/// A model's standing on one device: geometric-mean speedup over the
/// benchmarks where its default-point run validated.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModelStanding {
    pub model: ModelKind,
    /// Geometric mean of valid default-point speedups (0 when none).
    pub geomean: f64,
    /// Benchmarks whose default-point run validated.
    pub valid_benches: usize,
}

/// Rank the Figure 1 models on one device slice, best first.
///
/// The geometric mean matches the paper's cross-benchmark summary style and
/// is denominator-free across devices (the CPU baseline cancels in the
/// ranking). Models with no valid run sort last; ties break in Figure 1
/// model order so the table is deterministic.
pub fn rank_models(results: &[BenchResult]) -> Vec<ModelStanding> {
    let mut standings: Vec<ModelStanding> = ModelKind::figure1_models()
        .into_iter()
        .map(|kind| {
            let valid: Vec<f64> = results
                .iter()
                .filter_map(|r| r.runs.iter().find(|x| x.model == kind))
                .filter(|x| x.valid.is_ok() && x.speedup > 0.0)
                .map(|x| x.speedup)
                .collect();
            let geomean = if valid.is_empty() {
                0.0
            } else {
                (valid.iter().map(|s| s.ln()).sum::<f64>() / valid.len() as f64).exp()
            };
            ModelStanding { model: kind, geomean, valid_benches: valid.len() }
        })
        .collect();
    // Stable sort: equal geomeans keep Figure 1 model order.
    standings.sort_by(|a, b| b.geomean.partial_cmp(&a.geomean).unwrap_or(std::cmp::Ordering::Equal));
    standings
}

/// Render the per-generation model ranking: one row per device (best model
/// first), then the rank shifts relative to the paper's platform (`fermi`
/// when present in the matrix, otherwise the first device).
pub fn render_device_rankings(m: &SweepManifest) -> String {
    let slices = device_slices(m);
    let mut out = String::new();
    let n_benches = slices.first().map_or(0, |s| s.results.len());
    let _ = writeln!(
        out,
        "DEVICE MATRIX. Model ranking per GPU generation (geometric-mean speedup over {n_benches} benchmark(s), default tuning points)\n"
    );
    let _ = write!(out, "{:8}", "device");
    for i in 1..=ModelKind::figure1_models().len() {
        let _ = write!(out, "| {:>14}", format!("#{i}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(8 + 16 * ModelKind::figure1_models().len()));
    out.push('\n');
    let ranked: Vec<(String, Vec<ModelStanding>)> =
        slices.iter().map(|s| (s.device.clone(), rank_models(&s.results))).collect();
    for (device, standings) in &ranked {
        let _ = write!(out, "{device:8}");
        for s in standings {
            let cell = if s.valid_benches == 0 {
                format!("{} n/a", short(s.model))
            } else {
                format!("{} {:.1}x", short(s.model), s.geomean)
            };
            let _ = write!(out, "| {cell:>14}");
        }
        out.push('\n');
    }

    // Rank shifts against the paper's platform.
    let baseline = ranked.iter().find(|(d, _)| d == "fermi").or_else(|| ranked.first());
    if let Some((base_name, base)) = baseline {
        let rank_of = |standings: &[ModelStanding], kind: ModelKind| {
            standings.iter().position(|s| s.model == kind).unwrap_or(standings.len()) + 1
        };
        let _ = writeln!(out, "\nranking shifts vs {base_name}:");
        for (device, standings) in &ranked {
            if device == base_name {
                continue;
            }
            let moves: Vec<String> = ModelKind::figure1_models()
                .into_iter()
                .filter_map(|kind| {
                    let (from, to) = (rank_of(base, kind), rank_of(standings, kind));
                    (from != to).then(|| format!("{} #{from}->#{to}", short(kind)))
                })
                .collect();
            if moves.is_empty() {
                let _ = writeln!(out, "  {device:8} same order as {base_name}");
            } else {
                let _ = writeln!(out, "  {device:8} {}", moves.join(", "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ModelRun;
    use acceval_sim::Summary;

    fn run(model: ModelKind, speedup: f64, valid: bool) -> ModelRun {
        ModelRun {
            model,
            secs: 1.0 / speedup.max(1e-9),
            speedup,
            summary: Summary::default(),
            valid: if valid { Ok(()) } else { Err("mismatch".into()) },
            unsupported_regions: 0,
            kernel_hotspot: None,
        }
    }

    fn bench(name: &str, runs: Vec<ModelRun>) -> BenchResult {
        BenchResult { name: name.into(), dataset: "d".into(), cpu_secs: 1.0, runs, tuning_bands: vec![] }
    }

    #[test]
    fn ranking_is_geomean_ordered_and_deterministic() {
        let results = vec![
            bench("a", vec![run(ModelKind::ManualCuda, 8.0, true), run(ModelKind::OpenAcc, 2.0, true)]),
            bench("b", vec![run(ModelKind::ManualCuda, 2.0, true), run(ModelKind::OpenAcc, 2.0, true)]),
        ];
        let ranked = rank_models(&results);
        assert_eq!(ranked[0].model, ModelKind::ManualCuda);
        assert!((ranked[0].geomean - 4.0).abs() < 1e-12, "geomean of 8 and 2 is 4");
        assert_eq!(ranked[1].model, ModelKind::OpenAcc);
        // Models with no runs at all rank after models with valid runs.
        assert!(ranked[2..].iter().all(|s| s.valid_benches == 0));
    }

    #[test]
    fn invalid_runs_never_enter_the_ranking() {
        let results =
            vec![bench("a", vec![run(ModelKind::ManualCuda, 100.0, false), run(ModelKind::OpenAcc, 2.0, true)])];
        let ranked = rank_models(&results);
        assert_eq!(ranked[0].model, ModelKind::OpenAcc);
        let cuda = ranked.iter().find(|s| s.model == ModelKind::ManualCuda).unwrap();
        assert_eq!(cuda.valid_benches, 0);
        assert_eq!(cuda.geomean, 0.0);
    }
}
