//! # acceval
//!
//! The evaluation engine reproducing Lee & Vetter, *"Early Evaluation of
//! Directive-Based GPU Programming Models for Productive Exascale
//! Computing"* (SC'12), on the ACCEVAL simulated platform.
//!
//! * [`compile`] — compile a ported benchmark's parallel regions into kernel
//!   plans with a model's compiler;
//! * [`runtime`] — execute a GPU version: host statements on the CPU model,
//!   regions as simulated kernels, transfers per the model's data policy
//!   with residency tracking;
//! * [`eval`] — speedups over the sequential CPU baseline, with output
//!   validation against the oracle;
//! * [`sweep`] — the flat work-stealing (benchmark × model × tuning-point)
//!   sweep with memoized oracles/compiles and the JSON sweep manifest;
//! * [`profile`] — fold a run's structured trace into per-kernel cost
//!   attribution and render it as Chrome-trace-format JSON;
//! * [`coverage`] / [`codesize`] — Table II; [`tables`] — Table I;
//! * [`figures`] — Figure 1 series incl. tuning-variation bands;
//! * [`devices`] — the device-generation matrix: per-generation Figure 1
//!   slices and the model-ranking shift report;
//! * [`report`] — ASCII/CSV/JSON renderers.
//!
//! # Example
//!
//! ```
//! use acceval::benchmarks::{Benchmark, Scale};
//! use acceval::models::ModelKind;
//! use acceval::sim::MachineConfig;
//!
//! let bench = acceval::benchmarks::jacobi::Jacobi;
//! let cfg = MachineConfig::keeneland_node();          // X5660 + M2090 + PCIe 2.0
//! let ds = bench.dataset(Scale::Test);
//!
//! let oracle = acceval::run_baseline(&bench, &ds, &cfg);          // serial CPU
//! let port = bench.port(ModelKind::OpenAcc);                      // the paper's port
//! let compiled = acceval::compile_port(&port, ModelKind::OpenAcc, &ds, None);
//! let run = acceval::run_gpu_program(&compiled, &ds, &cfg).unwrap(); // simulated GPU
//! assert!(oracle.secs / run.secs > 0.1);
//! ```

#![forbid(unsafe_code)]

pub mod codesize;
pub mod compile;
pub mod coverage;
pub mod devices;
pub mod eval;
pub mod figures;
pub mod profile;
pub mod report;
pub mod runtime;
pub mod sweep;
pub mod tables;

pub use compile::{compile_port, CompiledProgram};
pub use coverage::{coverage_table, CoverageRow};
pub use devices::{device_matrix_csv, render_device_rankings};
pub use eval::{evaluate_benchmark, run_baseline, run_compiled, run_compiled_traced, run_model, BenchResult, ModelRun};
pub use profile::{chrome_trace, KernelRow, RunProfile, TransferRow};
pub use runtime::{run_gpu_program, run_gpu_program_traced, GpuRun};
pub use sweep::{run_device_matrix, run_sweep, run_sweep_profiled, RunRecord, SweepManifest};

// Re-export the full stack so downstream users need only this crate.
pub use acceval_benchmarks as benchmarks;
pub use acceval_ir as ir;
pub use acceval_models as models;
pub use acceval_sim as sim;

/// Serialize any of the report structures to pretty JSON (convenience for
/// binaries; avoids every consumer depending on serde_json directly).
pub fn figures_json<T: serde::Serialize>(t: &T) -> String {
    serde_json::to_string_pretty(t).expect("report structures serialize")
}
