//! Table II, column 1: program coverage — the percentage of the suite's
//! OpenMP parallel regions each model can translate to GPU kernels.

use acceval_benchmarks::{all_benchmarks, Benchmark};
use acceval_ir::analysis::region_features;
use acceval_models::{model, ModelKind};
use serde::Serialize;

/// One model's coverage over the suite.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageRow {
    pub model: ModelKind,
    pub translated: u32,
    pub total: u32,
    /// (benchmark, region label, reason) for every rejection.
    pub rejections: Vec<(String, String, String)>,
}

impl CoverageRow {
    pub fn percent(&self) -> f64 {
        100.0 * self.translated as f64 / self.total as f64
    }
}

/// Coverage of one model over a set of benchmarks.
pub fn coverage_of(kind: ModelKind, benches: &[Box<dyn Benchmark>]) -> CoverageRow {
    let m = model(kind);
    let mut translated = 0;
    let mut total = 0;
    let mut rejections = Vec::new();
    for b in benches {
        let prog = b.original();
        for r in prog.regions() {
            total += 1;
            let f = region_features(&prog, r);
            match m.accepts(&f) {
                Ok(()) => translated += 1,
                Err(e) => rejections.push((b.spec().name.to_string(), r.label.clone(), e.reason)),
            }
        }
    }
    CoverageRow { model: kind, translated, total, rejections }
}

/// The full Table II coverage column (all five models, all benchmarks).
pub fn coverage_table() -> Vec<CoverageRow> {
    let benches = all_benchmarks();
    ModelKind::coverage_models().into_iter().map(|k| coverage_of(k, &benches)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coverage of the three implemented-first benchmarks behaves per paper:
    /// OpenMPC accepts everything; the loop models reject only EP's region.
    #[test]
    fn early_benchmarks_coverage() {
        let benches: Vec<Box<dyn Benchmark>> = vec![
            Box::new(acceval_benchmarks::jacobi::Jacobi),
            Box::new(acceval_benchmarks::ep::Ep),
            Box::new(acceval_benchmarks::spmul::Spmul),
        ];
        let mpc = coverage_of(ModelKind::OpenMpc, &benches);
        assert_eq!((mpc.translated, mpc.total), (5, 5));
        let pgi = coverage_of(ModelKind::PgiAccelerator, &benches);
        assert_eq!((pgi.translated, pgi.total), (4, 5));
        assert_eq!(pgi.rejections[0].0, "EP");
        let rs = coverage_of(ModelKind::RStream, &benches);
        assert_eq!(rs.translated, 2, "only the two affine JACOBI regions: {:?}", rs.rejections);
    }
}
