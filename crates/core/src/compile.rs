//! Compile a ported benchmark with a model's compiler: every parallel
//! region becomes a list of kernel plans (or stays on the host if the model
//! cannot translate it).

use std::collections::HashMap;
use std::sync::Arc;

use acceval_ir::interp::gpu::env_from_dataset;
use acceval_ir::kernel::KernelPlan;
use acceval_ir::program::{DataSet, Program};
use acceval_ir::types::Value;
use acceval_models::lower::{lower_region, manual_lowering, retarget_block_geometry, RegionHints};
use acceval_models::{model, DataPolicy, ModelKind, TuningPoint, Unsupported};

use acceval_benchmarks::Port;

/// A ported program compiled for execution.
#[derive(Clone)]
pub struct CompiledProgram {
    /// The program the runtime walks (shared: geometry retargets reuse it).
    pub program: Arc<Program>,
    /// Kernel plans per region id (absent = region runs on the host).
    pub kernels: HashMap<u32, Vec<KernelPlan>>,
    /// Regions the model could not translate, with reasons.
    pub unsupported: Vec<(String, Unsupported)>,
    /// The model's transfer-planning policy.
    pub policy: DataPolicy,
    /// The model this was compiled for.
    pub kind: ModelKind,
}

/// Compile `port` for `kind` at `tuning` (None = the model's default point).
pub fn compile_port(port: &Port, kind: ModelKind, ds: &DataSet, tuning: Option<&TuningPoint>) -> CompiledProgram {
    let (opts, policy) = match kind {
        ModelKind::ManualCuda => (manual_lowering(), DataPolicy::Automatic),
        k => {
            let m = model(k);
            (m.lowering(), m.data_policy())
        }
    };
    let default_t = TuningPoint::best_for(kind);
    let tuning = tuning.unwrap_or(&default_t);

    let mut program = port.program.clone();
    // Plausible env for profitability analyses: dataset scalars, everything
    // else 1.
    let mut env: Vec<Value> = env_from_dataset(&program, ds);
    for (i, v) in env.iter_mut().enumerate() {
        if !program.scalars[i].is_float && v.as_i() == 0 {
            *v = Value::I(1);
        }
    }

    let regions: Vec<_> = program.regions().into_iter().cloned().collect();
    let mut kernels = HashMap::new();
    let mut unsupported = Vec::new();
    let empty = RegionHints::default();
    for r in regions {
        let hints = port.hints.get(&r.label).unwrap_or(&empty);
        match lower_region(&mut program, &r, &opts, hints, tuning, &env) {
            Ok(ks) => {
                kernels.insert(r.id.0, ks);
            }
            Err(e) => unsupported.push((r.label.clone(), e)),
        }
    }
    // lower_region may have added fresh scalars (collapse); renumber.
    program.finalize();
    CompiledProgram { program: Arc::new(program), kernels, unsupported, policy, kind }
}

impl CompiledProgram {
    /// This compilation re-pointed at a different launch geometry, without
    /// re-lowering. Only sound for a `tuning` point whose
    /// [`TuningPoint::lowering_basis`] matches the point this program was
    /// compiled at — the geometry-independent knobs must agree.
    pub fn with_geometry(&self, tuning: &TuningPoint) -> CompiledProgram {
        let mut out = self.clone();
        for plans in out.kernels.values_mut() {
            retarget_block_geometry(plans, tuning);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acceval_benchmarks::{Benchmark, Scale};

    #[test]
    fn jacobi_compiles_for_all_figure1_models() {
        let b = acceval_benchmarks::jacobi::Jacobi;
        let ds = b.dataset(Scale::Test);
        for kind in ModelKind::figure1_models() {
            let port = b.port(kind);
            let c = compile_port(&port, kind, &ds, None);
            assert!(c.unsupported.is_empty(), "{kind:?}: {:?}", c.unsupported);
            assert_eq!(c.kernels.len(), 2, "{kind:?} should compile both regions");
        }
    }

    #[test]
    fn ep_port_differs_by_model() {
        let b = acceval_benchmarks::ep::Ep;
        let ds = b.dataset(Scale::Test);
        // OpenMPC compiles the original (critical-section) region.
        let mpc = compile_port(&b.port(ModelKind::OpenMpc), ModelKind::OpenMpc, &ds, None);
        assert!(mpc.unsupported.is_empty(), "{:?}", mpc.unsupported);
        let ks = mpc.kernels.values().next().unwrap();
        assert!(!ks[0].reductions.is_empty());
        // PGI compiles the decomposed port.
        let pgi = compile_port(&b.port(ModelKind::PgiAccelerator), ModelKind::PgiAccelerator, &ds, None);
        assert!(pgi.unsupported.is_empty(), "{:?}", pgi.unsupported);
        // Row-wise expansion for PGI, column-wise for OpenMPC.
        use acceval_ir::kernel::Expansion;
        let pk = pgi.kernels.values().next().unwrap();
        assert!(pk[0].private_arrays.iter().all(|p| p.expansion == Expansion::RowWise));
        let mk = mpc.kernels.values().next().unwrap();
        assert!(mk[0].private_arrays.iter().all(|p| p.expansion == Expansion::ColumnWise));
    }

    #[test]
    fn manual_hints_are_honored() {
        let b = acceval_benchmarks::jacobi::Jacobi;
        let ds = b.dataset(Scale::Test);
        let c = compile_port(&b.port(ModelKind::ManualCuda), ModelKind::ManualCuda, &ds, None);
        let compute = c.kernels.get(&0).expect("compute kernel");
        assert_eq!(compute[0].block, (32, 4)); // row-major warps (hint)
        assert_eq!(compute[0].axes.len(), 2);
    }
}
