//! Table II, column 2: normalized average code-size increase per model —
//! how much code had to be added to port the suite to each model.

use acceval_benchmarks::{all_benchmarks, ledger_lines, Benchmark};
use acceval_models::ModelKind;
use serde::Serialize;

/// Code-size accounting for one model.
#[derive(Debug, Clone, Serialize)]
pub struct CodeSizeRow {
    pub model: ModelKind,
    /// Per-benchmark (name, base LoC, added lines, increase %).
    pub per_bench: Vec<(String, u32, u32, f64)>,
    /// Normalized average increase over the suite, in percent.
    pub average_percent: f64,
}

/// Compute the code-size increase of one model over a benchmark set.
pub fn codesize_of(kind: ModelKind, benches: &[Box<dyn Benchmark>]) -> CodeSizeRow {
    let mut per_bench = Vec::new();
    let mut sum = 0.0;
    for b in benches {
        let spec = b.spec();
        let port = b.port(kind);
        let added = ledger_lines(&port.changes);
        let pct = 100.0 * added as f64 / spec.base_loc as f64;
        per_bench.push((spec.name.to_string(), spec.base_loc, added, pct));
        sum += pct;
    }
    CodeSizeRow { model: kind, average_percent: sum / benches.len().max(1) as f64, per_bench }
}

/// The full Table II code-size column.
pub fn codesize_table() -> Vec<CodeSizeRow> {
    let benches = all_benchmarks();
    ModelKind::coverage_models().into_iter().map(|k| codesize_of(k, &benches)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openmpc_needs_least_restructuring() {
        let benches: Vec<Box<dyn Benchmark>> = vec![
            Box::new(acceval_benchmarks::jacobi::Jacobi),
            Box::new(acceval_benchmarks::ep::Ep),
            Box::new(acceval_benchmarks::spmul::Spmul),
        ];
        let mpc = codesize_of(ModelKind::OpenMpc, &benches).average_percent;
        for k in [ModelKind::PgiAccelerator, ModelKind::OpenAcc, ModelKind::Hmpp] {
            let other = codesize_of(k, &benches).average_percent;
            assert!(mpc < other, "OpenMPC {mpc:.1}% should be below {k:?} {other:.1}%");
        }
    }
}
