//! Execute a compiled GPU version: host statements run on the CPU model,
//! parallel regions launch simulated kernels, and every byte over PCIe is
//! planned by the model's data policy and charged to the timeline.

use std::collections::HashMap;

use acceval_ir::analysis::{arrays_touched, Touched};
use acceval_ir::interp::cpu::CpuMachine;
use acceval_ir::interp::gpu::{launch_traced, DeviceState};
use acceval_ir::interp::{Hooks, Interp};
use acceval_ir::program::{DataSet, HostData};
use acceval_ir::stmt::{DataClauses, ParallelRegion, Stmt, UpdateDir};
use acceval_ir::types::{ArrayId, Value, VarRef};
use acceval_sim::{Dir, MachineConfig, NullSink, SimError, Timeline, TraceEvent, TraceSink};

use acceval_models::DataPolicy;

use crate::compile::CompiledProgram;

/// Per-array residency state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Resident {
    host_valid: bool,
    dev_valid: bool,
}

struct GpuHooks<'c> {
    compiled: &'c CompiledProgram,
    cfg: &'c MachineConfig,
    dev: DeviceState,
    res: Vec<Resident>,
    /// Arrays still in their pristine zero-filled state (not provided by the
    /// dataset and never written by host code): the planner may allocate
    /// them on the device without a transfer, soundly.
    pristine_zero: Vec<bool>,
    /// Arrays covered by enclosing data regions (count per array, so nested
    /// regions compose).
    scoped: Vec<u32>,
    timeline: Timeline,
    /// CPU cycles already flushed into the timeline.
    flushed_cycles: f64,
    /// Read/write sets per region id (computed lazily).
    region_touch: HashMap<u32, Touched>,
    /// Structured trace consumer (NullSink for untraced runs).
    sink: &'c mut dyn TraceSink,
    /// First runtime error (the `Hooks` trait cannot surface `Result`s, so
    /// errors latch here and short-circuit the remaining hooks; the driver
    /// reads the latch when the walk finishes).
    error: Option<SimError>,
}

impl<'c> GpuHooks<'c> {
    fn new(compiled: &'c CompiledProgram, cfg: &'c MachineConfig, ds: &DataSet, sink: &'c mut dyn TraceSink) -> Self {
        let n = compiled.program.arrays.len();
        let mut pristine_zero = vec![true; n];
        for (id, _) in &ds.arrays {
            pristine_zero[id.0 as usize] = false;
        }
        GpuHooks {
            compiled,
            cfg,
            dev: DeviceState::new(&compiled.program, &cfg.device),
            res: vec![Resident { host_valid: true, dev_valid: false }; n],
            pristine_zero,
            scoped: vec![0; n],
            timeline: Timeline::new(),
            flushed_cycles: 0.0,
            region_touch: HashMap::new(),
            sink,
            error: None,
        }
    }

    /// Move accumulated host cycles into the timeline as one event.
    fn flush_host(&mut self, it: &mut Interp<CpuMachine>, label: &str) {
        let delta = it.m.cycles - self.flushed_cycles;
        if delta > 0.0 {
            let secs = self.cfg.host.cycles_to_secs(delta);
            self.timeline.host(label, secs);
            self.flushed_cycles = it.m.cycles;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::Host { label: label.to_string(), secs });
            }
        }
    }

    fn h2d(&mut self, it: &Interp<CpuMachine>, a: ArrayId) {
        let buf = &it.m.data.bufs[a.0 as usize];
        // A forced re-transfer of an already-valid device copy moves
        // identical bytes: charge the timeline, skip the memcpy.
        if !self.res[a.0 as usize].dev_valid {
            self.dev.upload(a, buf);
        }
        let bytes = buf.size_bytes();
        let secs = self.cfg.link.transfer_secs(bytes);
        let name = self.compiled.program.array_name(a);
        self.timeline.transfer(name, Dir::HostToDevice, bytes, secs);
        if self.sink.enabled() {
            self.sink.emit(buf.transfer_event(name, Dir::HostToDevice, secs));
        }
        self.res[a.0 as usize].dev_valid = true;
    }

    fn d2h(&mut self, it: &mut Interp<CpuMachine>, a: ArrayId) -> Result<(), SimError> {
        let buf = &mut it.m.data.bufs[a.0 as usize];
        // Same elision on the way down: a valid host copy already holds the
        // bytes this transfer would move.
        if !self.res[a.0 as usize].host_valid {
            self.dev.download(a, buf).map_err(|e| match e {
                SimError::DownloadUnallocated { .. } => {
                    SimError::DownloadUnallocated { array: self.compiled.program.array_name(a).to_string() }
                }
            })?;
        }
        let bytes = buf.size_bytes();
        let secs = self.cfg.link.transfer_secs(bytes);
        let name = self.compiled.program.array_name(a);
        self.timeline.transfer(name, Dir::DeviceToHost, bytes, secs);
        if self.sink.enabled() {
            self.sink.emit(buf.transfer_event(name, Dir::DeviceToHost, secs));
        }
        self.res[a.0 as usize].host_valid = true;
        Ok(())
    }

    /// Make the device copy valid (transfer or allocate as needed).
    /// `force` re-transfers even when already valid (naive per-region plans).
    fn ensure_device(&mut self, it: &Interp<CpuMachine>, a: ArrayId, force: bool) {
        let r = self.res[a.0 as usize];
        // Pristine zero-filled arrays match a zeroed device allocation
        // exactly; every planner elides that transfer.
        if self.pristine_zero[a.0 as usize] && !r.dev_valid {
            self.dev.alloc(a, &it.m.data.bufs[a.0 as usize]);
            self.res[a.0 as usize].dev_valid = true;
            return;
        }
        if force || !r.dev_valid {
            if r.host_valid {
                self.h2d(it, a);
            } else if !r.dev_valid {
                // neither side valid: first touch; allocate zeroed
                self.dev.alloc(a, &it.m.data.bufs[a.0 as usize]);
                self.res[a.0 as usize].dev_valid = true;
            }
        } else if !self.dev.is_allocated(a) {
            self.dev.alloc(a, &it.m.data.bufs[a.0 as usize]);
        }
    }

    /// Make the host copy valid.
    fn ensure_host(&mut self, it: &mut Interp<CpuMachine>, a: ArrayId) -> Result<(), SimError> {
        if !self.res[a.0 as usize].host_valid {
            self.d2h(it, a)?;
        }
        Ok(())
    }

    /// Latch the first runtime error; later hooks short-circuit on it.
    fn latch(&mut self, r: Result<(), SimError>) {
        if let Err(e) = r {
            self.error.get_or_insert(e);
        }
    }

    fn touched_of_region(&mut self, r: &ParallelRegion) -> Touched {
        if let Some(t) = self.region_touch.get(&r.id.0) {
            return t.clone();
        }
        let t = arrays_touched(&self.compiled.program, &r.body);
        self.region_touch.insert(r.id.0, t.clone());
        t
    }
}

impl Hooks<CpuMachine> for GpuHooks<'_> {
    fn on_parallel(&mut self, it: &mut Interp<CpuMachine>, r: &ParallelRegion) -> bool {
        if self.error.is_some() {
            return true; // a latched error aborts the run; skip the region
        }
        let Some(kernels) = self.compiled.kernels.get(&r.id.0) else {
            // Untranslated region: run sequentially on the host. Host code
            // reads/writes host memory, so sync first.
            let t = self.touched_of_region(r);
            for a in t.all() {
                let r = self.ensure_host(it, a);
                self.latch(r);
            }
            for a in &t.writes {
                self.res[a.0 as usize].dev_valid = false;
            }
            return false;
        };
        self.flush_host(it, "host");

        // Plan transfers for the region's footprint.
        let t = self.touched_of_region(r);
        let naive = match self.compiled.policy {
            DataPolicy::PerRegion => true,
            DataPolicy::Automatic => false,
            DataPolicy::DataRegionScoped => false, // per-array below
        };
        // Private (expanded) arrays live entirely on the device; they are
        // neither uploaded nor downloaded.
        let private: Vec<ArrayId> = kernels
            .iter()
            .flat_map(|k| k.private_arrays.iter().map(|p| p.array))
            .chain(r.private.iter().filter_map(|v| match v {
                VarRef::Array(a) => Some(*a),
                _ => None,
            }))
            .collect();
        let red_targets: Vec<ArrayId> = kernels
            .iter()
            .flat_map(|k| k.reductions.iter())
            .filter_map(|t| match t.target {
                VarRef::Array(a) => Some(a),
                _ => None,
            })
            .collect();
        for a in t.all() {
            if private.contains(&a) {
                if red_targets.contains(&a) {
                    // reduction targets combine into prior device contents
                    self.ensure_device(it, a, false);
                } else if !self.dev.is_allocated(a) {
                    // plain privates are expanded scratch: allocate only
                    self.dev.alloc(a, &it.m.data.bufs[a.0 as usize]);
                }
                continue;
            }
            let force = match self.compiled.policy {
                DataPolicy::PerRegion => naive,
                DataPolicy::DataRegionScoped => self.scoped[a.0 as usize] == 0,
                DataPolicy::Automatic => false,
            };
            self.ensure_device(it, a, force);
        }

        // Walk the region body: work-sharing loops launch their compiled
        // kernel; anything else executes on the host (region splitting).
        let mut next_kernel = 0usize;
        for s in &r.body {
            if let Stmt::For { par: Some(_), .. } = s {
                let plan = &kernels[next_kernel];
                next_kernel += 1;
                let scalar_reds = plan.reductions.iter().filter(|t| matches!(t.target, VarRef::Scalar(_))).count();
                let mut scal = std::mem::take(&mut it.scal);
                let res =
                    launch_traced(&self.compiled.program, plan, &mut self.dev, &mut scal, &self.cfg.device, self.sink);
                it.scal = scal;
                self.timeline.kernel(&plan.name, res.cost, res.totals);
                if scalar_reds > 0 {
                    // reduction results come back over PCIe
                    let bytes = 8 * scalar_reds as u64;
                    let secs = self.cfg.link.transfer_secs(bytes);
                    let label = format!("{}(red)", plan.name);
                    if self.sink.enabled() {
                        self.sink.emit(TraceEvent::Transfer {
                            array: label.clone(),
                            dir: Dir::DeviceToHost,
                            bytes,
                            secs,
                        });
                    }
                    self.timeline.transfer(label, Dir::DeviceToHost, bytes, secs);
                }
            } else {
                it.exec_plain(s);
            }
        }
        debug_assert_eq!(next_kernel, kernels.len(), "kernel count mismatch in {}", r.label);
        self.flush_host(it, "region-host");

        // Array-reduction targets were combined into the device buffers.
        for k in kernels {
            for t in &k.reductions {
                if let VarRef::Array(a) = t.target {
                    self.pristine_zero[a.0 as usize] = false;
                    self.res[a.0 as usize].dev_valid = true;
                    self.res[a.0 as usize].host_valid = false;
                    if self.compiled.policy == DataPolicy::PerRegion {
                        let r = self.d2h(it, a);
                        self.latch(r);
                    }
                }
            }
        }

        // Written arrays are now device-fresh.
        for a in &t.writes {
            self.pristine_zero[a.0 as usize] = false;
            if private.contains(a) {
                continue;
            }
            self.res[a.0 as usize].dev_valid = true;
            self.res[a.0 as usize].host_valid = false;
            if self.compiled.policy == DataPolicy::PerRegion {
                let r = self.d2h(it, *a); // naive: copy results out immediately
                self.latch(r);
            }
        }
        true
    }

    fn on_data_region(&mut self, it: &mut Interp<CpuMachine>, c: &DataClauses, entering: bool) {
        self.flush_host(it, "host");
        if entering {
            for a in c.copyin.iter().chain(&c.copy) {
                self.ensure_device(it, *a, true);
                self.scoped[a.0 as usize] += 1;
            }
            for a in c.copyout.iter().chain(&c.create) {
                self.dev.alloc(*a, &it.m.data.bufs[a.0 as usize]);
                self.res[a.0 as usize].dev_valid = true;
                self.scoped[a.0 as usize] += 1;
            }
        } else {
            for a in c.copyout.iter().chain(&c.copy) {
                let r = self.d2h(it, *a);
                self.latch(r);
                self.scoped[a.0 as usize] = self.scoped[a.0 as usize].saturating_sub(1);
            }
            for a in c.copyin.iter().chain(&c.create) {
                self.scoped[a.0 as usize] = self.scoped[a.0 as usize].saturating_sub(1);
            }
        }
    }

    fn on_update(&mut self, it: &mut Interp<CpuMachine>, arrays: &[ArrayId], dir: UpdateDir) {
        self.flush_host(it, "host");
        for a in arrays {
            match dir {
                UpdateDir::Host => {
                    let r = self.ensure_host(it, *a);
                    self.latch(r);
                }
                UpdateDir::Device => self.ensure_device(it, *a, true),
            }
        }
    }

    fn on_host_leaf(&mut self, it: &mut Interp<CpuMachine>, s: &Stmt) {
        // Host code about to touch arrays: sync reads, invalidate writes.
        let t = arrays_touched(&self.compiled.program, std::slice::from_ref(s));
        if t.reads.is_empty() && t.writes.is_empty() {
            return;
        }
        for a in t.reads.iter() {
            let r = self.ensure_host(it, *a);
            self.latch(r);
        }
        for a in &t.writes {
            let r = self.ensure_host(it, *a); // partial writes must not lose device data
            self.latch(r);
            self.res[a.0 as usize].dev_valid = false;
            self.pristine_zero[a.0 as usize] = false;
        }
    }
}

/// Result of executing a GPU version.
pub struct GpuRun {
    /// Final host memory (outputs synced back).
    pub data: HostData,
    /// Final scalar environment.
    pub scalars: Vec<Value>,
    /// The full event timeline.
    pub timeline: Timeline,
    /// Total wall seconds.
    pub secs: f64,
}

/// Execute a compiled program on the simulated machine.
///
/// Fails (instead of panicking) when the run needs a transfer the device
/// cannot satisfy, e.g. downloading an array that was never allocated.
pub fn run_gpu_program(compiled: &CompiledProgram, ds: &DataSet, cfg: &MachineConfig) -> Result<GpuRun, SimError> {
    run_gpu_program_traced(compiled, ds, cfg, &mut NullSink)
}

/// [`run_gpu_program`], streaming structured trace events (host spans,
/// PCIe transfers, kernel launches with per-site coalescing evidence) into
/// `sink`. The simulated result is bit-identical to the untraced run.
pub fn run_gpu_program_traced(
    compiled: &CompiledProgram,
    ds: &DataSet,
    cfg: &MachineConfig,
    sink: &mut dyn TraceSink,
) -> Result<GpuRun, SimError> {
    let data = HostData::materialize(&compiled.program, ds);
    let m = CpuMachine::new(&cfg.host, data);
    let mut it = Interp::new(&compiled.program, m, ds);
    let mut hooks = GpuHooks::new(compiled, cfg, ds, sink);
    let main = compiled.program.main.clone();
    it.run_with(&main, &mut hooks);
    // Sync program outputs back to the host.
    for a in compiled.program.outputs.clone() {
        let r = hooks.ensure_host(&mut it, a);
        hooks.latch(r);
    }
    if let Some(e) = hooks.error {
        return Err(e);
    }
    hooks.flush_host(&mut it, "host-final");
    let secs = hooks.timeline.total_secs();
    Ok(GpuRun { data: it.m.data, scalars: it.scal, timeline: hooks.timeline, secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_port;
    use acceval_benchmarks::{Benchmark, Scale};
    use acceval_ir::interp::cpu::run_cpu;
    use acceval_models::ModelKind;

    fn check_model(b: &dyn Benchmark, kind: ModelKind) -> (f64, f64) {
        let ds = b.dataset(Scale::Test);
        let cfg = MachineConfig::keeneland_node();
        let oracle = run_cpu(&b.original(), &ds, &cfg.host);
        let port = b.port(kind);
        let compiled = compile_port(&port, kind, &ds, None);
        assert!(compiled.unsupported.is_empty(), "{kind:?}: {:?}", compiled.unsupported);
        let run = run_gpu_program(&compiled, &ds, &cfg).expect("gpu run");
        // outputs must match the oracle
        let spec = b.spec();
        for out in &b.original().outputs {
            let name = b.original().array_name(*out).to_string();
            let oid = compiled.program.array_named(&name);
            let d = oracle.data.bufs[out.0 as usize].max_abs_diff(&run.data.bufs[oid.0 as usize]);
            assert!(d < spec.tolerance.max(1e-7), "{kind:?} {name}: diff {d}");
        }
        (oracle.secs, run.secs)
    }

    #[test]
    fn jacobi_all_models_correct_and_faster() {
        for kind in ModelKind::figure1_models() {
            let (cpu, gpu) = check_model(&acceval_benchmarks::jacobi::Jacobi, kind);
            assert!(gpu > 0.0);
            let speedup = cpu / gpu;
            assert!(speedup > 0.1, "{kind:?} speedup {speedup}");
        }
    }

    #[test]
    fn ep_all_models_correct() {
        for kind in ModelKind::figure1_models() {
            check_model(&acceval_benchmarks::ep::Ep, kind);
        }
    }

    #[test]
    fn spmul_all_models_correct() {
        for kind in ModelKind::figure1_models() {
            check_model(&acceval_benchmarks::spmul::Spmul, kind);
        }
    }

    #[test]
    fn data_region_reduces_transfers_vs_naive() {
        // Compare PGI (data-region policy) against a forced naive policy.
        let b = acceval_benchmarks::jacobi::Jacobi;
        let ds = b.dataset(Scale::Test);
        let cfg = MachineConfig::keeneland_node();
        let port = b.port(ModelKind::PgiAccelerator);
        let mut compiled = compile_port(&port, ModelKind::PgiAccelerator, &ds, None);
        let scoped = run_gpu_program(&compiled, &ds, &cfg).expect("gpu run");
        compiled.policy = acceval_models::DataPolicy::PerRegion;
        let naive = run_gpu_program(&compiled, &ds, &cfg).expect("gpu run");
        let s1 = scoped.timeline.summary();
        let s2 = naive.timeline.summary();
        assert!(
            s2.h2d_bytes + s2.d2h_bytes > 3 * (s1.h2d_bytes + s1.d2h_bytes),
            "naive {} vs scoped {}",
            s2.h2d_bytes + s2.d2h_bytes,
            s1.h2d_bytes + s1.d2h_bytes
        );
        assert!(naive.secs > scoped.secs);
    }

    #[test]
    fn ep_expansion_layout_decides_performance() {
        // OpenMPC (column-wise) must beat PGI (row-wise) on EP.
        let (_, mpc) = check_model(&acceval_benchmarks::ep::Ep, ModelKind::OpenMpc);
        let (_, pgi) = check_model(&acceval_benchmarks::ep::Ep, ModelKind::PgiAccelerator);
        assert!(pgi > 1.5 * mpc, "row-wise EP ({pgi:.6}s) should be much slower than column-wise ({mpc:.6}s)");
    }
}
