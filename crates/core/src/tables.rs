//! Table I: the qualitative feature matrix.

use acceval_models::features::FEATURE_LABELS;
use acceval_models::{model, FeatureRow, ModelKind};

/// Table I as (model, row) pairs in paper column order.
pub fn table1() -> Vec<(ModelKind, FeatureRow)> {
    ModelKind::table1_models().into_iter().map(|k| (k, model(k).features())).collect()
}

/// Render Table I as ASCII.
pub fn render_table1() -> String {
    let cols = table1();
    let mut out = String::new();
    out.push_str("TABLE I. FEATURE TABLE — type of information GPU directives can provide\n\n");
    let name_w = FEATURE_LABELS.iter().map(|l| l.len()).max().unwrap_or(0) + 2;
    // header
    out.push_str(&format!("{:name_w$}", "Features"));
    for (k, _) in &cols {
        out.push_str(&format!("| {:20}", k.display()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(name_w + cols.len() * 22));
    out.push('\n');
    for (i, label) in FEATURE_LABELS.iter().enumerate() {
        out.push_str(&format!("{label:name_w$}"));
        for (_, row) in &cols {
            out.push_str(&format!("| {:20}", row.cells()[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_models() {
        assert_eq!(table1().len(), 6);
    }

    #[test]
    fn render_contains_all_features_and_models() {
        let txt = render_table1();
        for l in FEATURE_LABELS {
            assert!(txt.contains(l), "missing row {l}");
        }
        for k in ModelKind::table1_models() {
            assert!(txt.contains(k.display()));
        }
        assert!(txt.contains("implicit"));
        assert!(txt.contains("explicit"));
    }
}
