//! Figure 1: speedups of GPU programs translated by the directive compilers,
//! over serial CPU, per benchmark — plus the tuning-variation band.
//!
//! Both entry points run the flat work-stealing [`crate::sweep`]: one task
//! per (benchmark × model × tuning-point), oracle and compile results
//! memoized, records collected in task order so output is deterministic.

use acceval_benchmarks::{all_benchmarks, Benchmark, Scale};
use acceval_models::ModelKind;
use acceval_sim::MachineConfig;
use serde::Serialize;

use crate::eval::BenchResult;
use crate::sweep::{bench_results, run_sweep, SweepManifest};

/// The whole figure: one [`BenchResult`] per benchmark, paper order.
#[derive(Debug, Clone, Serialize)]
pub struct Figure1 {
    pub results: Vec<BenchResult>,
}

/// Compute Figure 1 through the flat sweep (all benchmarks, paper order).
pub fn figure1(cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> Figure1 {
    figure1_with_manifest(cfg, scale, with_tuning).0
}

/// Compute Figure 1 and keep the sweep manifest (per-task records, timing
/// report) alongside the figure.
pub fn figure1_with_manifest(cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> (Figure1, SweepManifest) {
    let benches = all_benchmarks();
    let refs: Vec<&dyn Benchmark> = benches.iter().map(|b| b.as_ref()).collect();
    let manifest = run_sweep(&refs, cfg, scale, with_tuning);
    (Figure1 { results: bench_results(&manifest) }, manifest)
}

/// Compute Figure 1 for a subset of benchmarks by (case-insensitive) name.
///
/// Unknown names are an error listing every unmatched name — they are never
/// silently dropped.
pub fn figure1_subset(names: &[&str], cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> Result<Figure1, String> {
    figure1_subset_with_manifest(names, cfg, scale, with_tuning).map(|(fig, _)| fig)
}

/// [`figure1_subset`], keeping the sweep manifest.
pub fn figure1_subset_with_manifest(
    names: &[&str],
    cfg: &MachineConfig,
    scale: Scale,
    with_tuning: bool,
) -> Result<(Figure1, SweepManifest), String> {
    let benches = all_benchmarks();
    let unknown: Vec<&str> =
        names.iter().copied().filter(|n| !benches.iter().any(|b| b.spec().name.eq_ignore_ascii_case(n))).collect();
    if !unknown.is_empty() {
        let known: Vec<&str> = benches.iter().map(|b| b.spec().name).collect();
        return Err(format!(
            "unknown benchmark name(s): {}; known benchmarks: {}",
            unknown.join(", "),
            known.join(", ")
        ));
    }
    let selected: Vec<&dyn Benchmark> = benches
        .iter()
        .filter(|b| names.iter().any(|n| n.eq_ignore_ascii_case(b.spec().name)))
        .map(|b| b.as_ref())
        .collect();
    let manifest = run_sweep(&selected, cfg, scale, with_tuning);
    Ok((Figure1 { results: bench_results(&manifest) }, manifest))
}

impl Figure1 {
    /// The (benchmark, model) speedup, if present and valid.
    pub fn speedup(&self, bench: &str, model: ModelKind) -> Option<f64> {
        self.results.iter().find(|r| r.name == bench)?.speedup_of(model)
    }
}
