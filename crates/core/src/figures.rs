//! Figure 1: speedups of GPU programs translated by the directive compilers,
//! over serial CPU, per benchmark — plus the tuning-variation band.

use acceval_benchmarks::{all_benchmarks, Scale};
use acceval_models::ModelKind;
use acceval_sim::MachineConfig;
use rayon::prelude::*;
use serde::Serialize;

use crate::eval::{evaluate_benchmark, BenchResult};

/// The whole figure: one [`BenchResult`] per benchmark, paper order.
#[derive(Debug, Clone, Serialize)]
pub struct Figure1 {
    pub results: Vec<BenchResult>,
}

/// Compute Figure 1. Benchmarks are evaluated in parallel (each evaluation
/// is an independent simulation).
pub fn figure1(cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> Figure1 {
    let benches = all_benchmarks();
    let results: Vec<BenchResult> = benches
        .par_iter()
        .map(|b| evaluate_benchmark(b.as_ref(), cfg, scale, with_tuning))
        .collect();
    Figure1 { results }
}

/// Compute Figure 1 for a subset of benchmarks by name.
pub fn figure1_subset(names: &[&str], cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> Figure1 {
    let benches = all_benchmarks();
    let results: Vec<BenchResult> = benches
        .par_iter()
        .filter(|b| names.iter().any(|n| n.eq_ignore_ascii_case(b.spec().name)))
        .map(|b| evaluate_benchmark(b.as_ref(), cfg, scale, with_tuning))
        .collect();
    Figure1 { results }
}

impl Figure1 {
    /// The (benchmark, model) speedup, if present and valid.
    pub fn speedup(&self, bench: &str, model: ModelKind) -> Option<f64> {
        self.results.iter().find(|r| r.name == bench)?.speedup_of(model)
    }
}
