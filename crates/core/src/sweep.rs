//! The flat work-stealing evaluation sweep behind Figure 1.
//!
//! Every (benchmark × model × tuning-point) combination is one independent
//! task. Tasks are enumerated up front and run through rayon; the CPU
//! oracle is computed once per (benchmark, scale) behind a memoizing cache,
//! and compilation is memoized on the tuning point's *lowering basis* (the
//! point with launch geometry normalized away — see
//! [`TuningPoint::lowering_basis`]), so points that only change launch
//! geometry re-point the cached kernels instead of re-lowering the IR.
//!
//! Results are deterministic and bit-identical regardless of scheduling:
//! records are collected keyed by task index, caches are keyed by value (not
//! arrival order), and the geometry retarget is a pure function of the
//! tuning point.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use acceval_benchmarks::{Benchmark, Scale};
use acceval_ir::interp::cpu::CpuRun;
use acceval_ir::interp::gpu::{launch_par, set_launch_par_hint, LaunchPar};
use acceval_ir::interp::launch_cache::{launch_cache_name, launch_cache_totals, thread_cache_counters};
use acceval_ir::interp::native::thread_native_counters;
use acceval_ir::interp::opt::{opt_name, thread_opt_counters};
use acceval_ir::interp::store::{self as launch_store, Dec, Enc};
use acceval_ir::program::DataSet;
use acceval_models::{model, ModelKind, TuningPoint};
use acceval_sim::{DeviceConfig, MachineConfig, RecordingSink, Summary, TraceEvent, TraceSink};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::Serialize;

use crate::compile::{compile_port, CompiledProgram};
use crate::eval::{run_compiled, run_compiled_traced, BenchResult, ModelRun};

// ---------------------------------------------------------------------------
// Memoizing caches (process-global, shared with tests and benches).
// ---------------------------------------------------------------------------

/// A once-per-key memo table: the map lock is only held to look up or insert
/// the per-key cell, so concurrent tasks computing *different* keys never
/// serialize, while concurrent requests for the *same* key compute it once.
struct Memo<K, V> {
    map: OnceLock<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
}

impl<K: Eq + Hash, V: Clone> Memo<K, V> {
    const fn new() -> Self {
        Memo { map: OnceLock::new() }
    }

    fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> V {
        self.get_or_compute_tracked(key, f).0
    }

    /// [`Memo::get_or_compute`], also reporting whether the value was already
    /// present (`true` = cache hit). A racing miss — the cell was empty when
    /// we looked but another task populates it first — still reports a miss,
    /// which matches the wall-clock reality: this task waited for the compute.
    fn get_or_compute_tracked(&self, key: K, f: impl FnOnce() -> V) -> (V, bool) {
        let cell = {
            let mut m = self.map.get_or_init(|| Mutex::new(HashMap::new())).lock();
            Arc::clone(m.entry(key).or_default())
        };
        let hit = cell.get().is_some();
        (cell.get_or_init(f).clone(), hit)
    }
}

/// A memoized CPU-oracle run, with the wall-clock cost of computing it.
pub struct OracleEntry {
    pub run: CpuRun,
    /// Wall seconds spent simulating the baseline (0-cost for cache hits).
    pub wall_secs: f64,
}

type DatasetKey = (String, Scale);
/// Oracle results depend on the host model, so the key carries its
/// fingerprint alongside benchmark and scale.
type OracleKey = (String, Scale, String);
/// Compiles depend on the dataset (profitability env), the model, and the
/// tuning point's lowering basis — *not* on its launch geometry.
type CompileKey = (String, ModelKind, Scale, TuningPoint);

static DATASETS: Memo<DatasetKey, Arc<DataSet>> = Memo::new();
static ORACLES: Memo<OracleKey, Arc<OracleEntry>> = Memo::new();
static COMPILES: Memo<CompileKey, Arc<CompiledProgram>> = Memo::new();

/// The memoized dataset for a benchmark at a scale.
pub fn cached_dataset(bench: &dyn Benchmark, scale: Scale) -> Arc<DataSet> {
    DATASETS.get_or_compute((bench.spec().name.to_string(), scale), || Arc::new(bench.dataset(scale)))
}

/// The memoized sequential CPU oracle for a benchmark at a scale. Computed
/// once per (benchmark, scale, host model) no matter how many sweep tasks,
/// tests, or benches request it.
pub fn cached_oracle(bench: &dyn Benchmark, scale: Scale, cfg: &MachineConfig) -> Arc<OracleEntry> {
    cached_oracle_tracked(bench, scale, cfg).0
}

/// [`cached_oracle`], also reporting whether the oracle was served from a
/// cache — the in-process memo or the persistent store — (`true`) or
/// simulated by this call (`false`).
///
/// A freshly simulated oracle is spilled to the persistent store under a
/// digest of (benchmark, scale, host config), so the next *process* loads
/// the baseline instead of re-simulating it — the sequential CPU runs are
/// the sweep's critical path, and they are bit-stable by construction.
pub fn cached_oracle_tracked(bench: &dyn Benchmark, scale: Scale, cfg: &MachineConfig) -> (Arc<OracleEntry>, bool) {
    let key = (bench.spec().name.to_string(), scale, format!("{:?}", cfg.host));
    let disk_key = format!("oracle/{}/{:?}/{}", key.0, key.1, key.2).into_bytes();
    let (entry, mut hit) = ORACLES.get_or_compute_tracked(key, || {
        if let Some(run) = launch_store::get_blob(launch_store::KIND_ORACLE, &disk_key).and_then(|p| decode_oracle(&p))
        {
            // Warm-started from disk: the simulation cost was paid by an
            // earlier process, so this one records none.
            return Arc::new(OracleEntry { run, wall_secs: 0.0 });
        }
        let ds = cached_dataset(bench, scale);
        let t0 = Instant::now();
        let run = crate::eval::run_baseline(bench, &ds, cfg);
        launch_store::put_blob(launch_store::KIND_ORACLE, disk_key.clone(), encode_oracle(&run));
        Arc::new(OracleEntry { run, wall_secs: t0.elapsed().as_secs_f64() })
    });
    // A disk warm-start is a cache hit from the caller's point of view.
    hit = hit || entry.wall_secs == 0.0;
    (entry, hit)
}

fn encode_oracle(run: &CpuRun) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(run.data.bufs.len() as u32);
    for b in &run.data.bufs {
        e.buffer(b);
    }
    e.u32(run.scalars.len() as u32);
    for v in &run.scalars {
        e.value(v);
    }
    e.f64(run.cycles);
    e.f64(run.secs);
    e.u64(run.ops);
    e.u64(run.accesses);
    e.buf
}

fn decode_oracle(bytes: &[u8]) -> Option<CpuRun> {
    let mut d = Dec::new(bytes);
    let nb = d.u32()? as usize;
    let mut bufs = Vec::with_capacity(nb.min(1024));
    for _ in 0..nb {
        bufs.push(d.buffer()?);
    }
    let ns = d.u32()? as usize;
    let mut scalars = Vec::with_capacity(ns.min(4096));
    for _ in 0..ns {
        scalars.push(d.value()?);
    }
    let run = CpuRun {
        data: acceval_ir::program::HostData { bufs },
        scalars,
        cycles: d.f64()?,
        secs: d.f64()?,
        ops: d.u64()?,
        accesses: d.u64()?,
    };
    d.done().then_some(run)
}

/// The memoized compile of a benchmark's port, re-pointed at `tuning`'s
/// launch geometry. Tuning points sharing a lowering basis share one
/// `compile_port` invocation; the cache is keyed by value, so the compiled
/// artifact is identical no matter which task populated it.
pub fn cached_compile(
    bench: &dyn Benchmark,
    kind: ModelKind,
    scale: Scale,
    tuning: Option<&TuningPoint>,
) -> CompiledProgram {
    cached_compile_tracked(bench, kind, scale, tuning).0
}

/// [`cached_compile`], also reporting whether the lowering-basis compile was
/// served from the cache (`true`) or performed by this call (`false`). The
/// geometry retarget is pure and always runs; only the lowering is memoized.
pub fn cached_compile_tracked(
    bench: &dyn Benchmark,
    kind: ModelKind,
    scale: Scale,
    tuning: Option<&TuningPoint>,
) -> (CompiledProgram, bool) {
    let pt = tuning.copied().unwrap_or_else(|| TuningPoint::best_for(kind));
    let basis = pt.lowering_basis();
    let (base, hit) = COMPILES.get_or_compute_tracked((bench.spec().name.to_string(), kind, scale, basis), || {
        let ds = cached_dataset(bench, scale);
        Arc::new(compile_port(&bench.port(kind), kind, &ds, Some(&basis)))
    });
    (base.with_geometry(&pt), hit)
}

// ---------------------------------------------------------------------------
// Task enumeration.
// ---------------------------------------------------------------------------

/// One unit of sweep work: a benchmark run under a model at one tuning
/// point (`None` = the model's default point, the Figure 1 bar), on one
/// device of the generation family (`None` = the sweep config's device).
#[derive(Debug, Clone, Serialize)]
pub struct SweepTask {
    pub benchmark: String,
    pub model: ModelKind,
    pub tuning: Option<TuningPoint>,
    /// Device preset slug ([`DeviceConfig::presets`]) this task runs on;
    /// `None` runs on the device of the `MachineConfig` handed to the sweep.
    pub device: Option<String>,
}

/// Enumerate the full (benchmark × model × tuning-point) task list.
///
/// The default point is always present (as `tuning: None`); with
/// `with_tuning`, every *distinct* point of the model's tuning space is
/// added. Points are deduplicated by value — no assumption is made about
/// where the default sits in the space or whether the space repeats itself.
pub fn enumerate_tasks(benches: &[&dyn Benchmark], with_tuning: bool) -> Vec<SweepTask> {
    let mut tasks = Vec::new();
    for b in benches {
        let name = b.spec().name;
        for kind in ModelKind::figure1_models() {
            tasks.push(SweepTask { benchmark: name.to_string(), model: kind, tuning: None, device: None });
            if with_tuning && kind != ModelKind::ManualCuda {
                let mut seen = vec![TuningPoint::best_for(kind)];
                for pt in model(kind).tuning_space() {
                    if !seen.contains(&pt) {
                        seen.push(pt);
                        tasks.push(SweepTask {
                            benchmark: name.to_string(),
                            model: kind,
                            tuning: Some(pt),
                            device: None,
                        });
                    }
                }
            }
        }
    }
    tasks
}

/// Enumerate the device-matrix task list: the full (benchmark × model ×
/// tuning-point) grid of [`enumerate_tasks`], once per named device preset
/// (device outermost, so records group by generation).
///
/// Preset names resolve through [`DeviceConfig::preset`] — slugs, constructor
/// names, and part-number aliases all work, and aliased duplicates collapse
/// to one device. An unknown name is an `Err` naming the known presets; it is
/// never silently dropped or defaulted.
pub fn enumerate_device_tasks(
    benches: &[&dyn Benchmark],
    with_tuning: bool,
    devices: &[&str],
) -> Result<Vec<SweepTask>, String> {
    let mut slugs: Vec<&'static str> = Vec::new();
    for name in devices {
        let d = DeviceConfig::preset(name).ok_or_else(|| {
            let known: Vec<&str> = DeviceConfig::presets().iter().map(|(s, _)| *s).collect();
            format!("unknown device preset `{name}`; known presets: {}", known.join(", "))
        })?;
        let slug = d.slug().expect("every preset has a slug");
        if !slugs.contains(&slug) {
            slugs.push(slug);
        }
    }
    let mut tasks = Vec::new();
    for slug in slugs {
        for t in enumerate_tasks(benches, with_tuning) {
            tasks.push(SweepTask { device: Some(slug.to_string()), ..t });
        }
    }
    Ok(tasks)
}

// ---------------------------------------------------------------------------
// Records and the sweep manifest.
// ---------------------------------------------------------------------------

/// The structured result of one sweep task.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Index into the enumerated task list (records stay in this order no
    /// matter how the scheduler interleaved them).
    pub task: usize,
    pub benchmark: String,
    pub model: ModelKind,
    /// The tuning point run (`None` = the model's default point).
    pub tuning: Option<TuningPoint>,
    pub default_point: bool,
    /// Generation slug of the device this task simulated (the preset name
    /// for matrix tasks, the sweep config's device otherwise).
    pub device: String,
    /// Simulated GPU-version seconds.
    pub secs: f64,
    /// Oracle seconds over simulated seconds (0 when invalid).
    pub speedup: f64,
    /// `Ok` if outputs matched the oracle within tolerance.
    pub valid: Result<(), String>,
    /// Device-stats summary of the simulated timeline.
    pub summary: Summary,
    pub unsupported_regions: usize,
    /// Whether this task's CPU oracle was served from the memo cache.
    pub oracle_cached: bool,
    /// Whether this task's lowering-basis compile was served from the cache.
    pub compile_cached: bool,
    /// The folded run profile (only when the sweep ran with profiling).
    pub profile: Option<crate::profile::RunProfile>,
    /// Whether the scheduler enabled intra-launch (block-chunk) parallelism
    /// for this task — true on the sweep tail, where finished workers would
    /// otherwise idle. Scheduling metadata only; never affects results.
    pub launch_parallel: bool,
    /// The costliest kernel of this task's simulated timeline.
    pub kernel_hotspot: Option<crate::eval::KernelHotspot>,
    /// Wall-clock seconds this task spent simulating (harness time, not
    /// simulated time; nondeterministic and excluded from figure output).
    pub wall_secs: f64,
    /// Launch-cache memory (LRU) hits scored by this task's kernel launches.
    pub launch_cache_hits: u64,
    /// Launch-cache hits served from the persistent store (disk) by this
    /// task's launches.
    pub launch_cache_disk_hits: u64,
    /// Launch-cache misses (captures) charged to this task's launches.
    pub launch_cache_misses: u64,
    /// Wall seconds this task spent hashing buffer contents for cache keys
    /// and captures (harness time; nondeterministic).
    pub launch_cache_digest_secs: f64,
    /// Kernels whose bytecode the optimizer rewrote during this task (0 for
    /// tasks served entirely by memoized plans — optimization runs once per
    /// plan, like compilation).
    pub opt_kernels: u64,
    /// Instruction count of those kernels before optimization.
    pub opt_ops_pre: u64,
    /// Instruction count after optimization (prelude excluded).
    pub opt_ops_post: u64,
    /// Redundant computations eliminated by CSE across those kernels.
    pub opt_cse_hits: u64,
    /// Launches this task executed through the native closure tier.
    pub native_launches: u64,
    /// Plans `ACCEVAL_ENGINE=auto` promoted to the native tier during this
    /// task (0 under fixed engines, and for tasks whose plans were already
    /// promoted).
    pub promotions: u64,
    /// Native-tier launches that fell back to bytecode (no typed lowering,
    /// optimizer off, or incompatible warp width).
    pub native_ineligible: u64,
}

/// The oracle cost entry of the manifest.
#[derive(Debug, Clone, Serialize)]
pub struct OracleRecord {
    pub benchmark: String,
    pub dataset: String,
    /// Simulated sequential CPU seconds (the Figure 1 denominator).
    pub cpu_secs: f64,
    /// Wall seconds spent computing it (0 when served from the cache).
    pub wall_secs: f64,
}

/// Wall-clock totals for a group of tasks (per benchmark or per model).
#[derive(Debug, Clone, Serialize)]
pub struct GroupTotals {
    pub name: String,
    pub tasks: usize,
    pub wall_secs: f64,
    /// Simulated GPU seconds summed over the group.
    pub sim_secs: f64,
    pub kernel_secs: f64,
    pub transfer_secs: f64,
    pub kernels_launched: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    /// Launch-cache memory hits scored by the group's tasks.
    pub launch_cache_hits: u64,
    /// Launch-cache disk (persistent-store) hits scored by the group's tasks.
    pub launch_cache_disk_hits: u64,
    /// Launch-cache misses charged to the group's tasks.
    pub launch_cache_misses: u64,
}

/// One entry of the slowest-task report.
#[derive(Debug, Clone, Serialize)]
pub struct SlowTask {
    pub task: usize,
    pub benchmark: String,
    pub model: ModelKind,
    pub wall_secs: f64,
}

/// Everything a sweep produced: per-task records plus a timing/accounting
/// report. Written next to `results/figure1.csv` as the sweep manifest.
#[derive(Debug, Clone, Serialize)]
pub struct SweepManifest {
    pub scale: String,
    pub with_tuning: bool,
    /// Distinct device slugs the records cover, in task order (one entry
    /// for a plain sweep, one per preset for a device-matrix sweep).
    pub devices: Vec<String>,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    pub tasks: usize,
    /// Wall seconds for the whole sweep.
    pub wall_secs: f64,
    /// Sum of per-task wall seconds (the serial-equivalent cost).
    pub task_wall_secs: f64,
    /// Wall seconds spent computing oracles (once per benchmark).
    pub oracle_wall_secs: f64,
    /// The longest oracle-then-slowest-task chain: no schedule can finish
    /// the sweep faster than this.
    pub critical_path_secs: f64,
    /// task_wall_secs / (wall_secs * workers); 1.0 = perfect scaling.
    pub parallel_efficiency: f64,
    pub oracles: Vec<OracleRecord>,
    pub records: Vec<RunRecord>,
    pub by_benchmark: Vec<GroupTotals>,
    pub by_model: Vec<GroupTotals>,
    /// The five slowest tasks by wall clock.
    pub slowest_tasks: Vec<SlowTask>,
    /// The launch-cache policy the sweep ran under (`auto`/`on`/`off`).
    pub launch_cache: String,
    /// Launch-cache memory hits summed over the sweep's tasks.
    pub launch_cache_hits: u64,
    /// Launch-cache disk (persistent-store) hits summed over the sweep's
    /// tasks.
    pub launch_cache_disk_hits: u64,
    /// Launch-cache misses summed over the sweep's tasks.
    pub launch_cache_misses: u64,
    /// Entries evicted from the process-global launch cache (process
    /// lifetime total, not per-sweep — the cache outlives sweeps).
    pub launch_cache_evictions: u64,
    /// Wall seconds spent hashing buffer contents, summed over tasks.
    pub launch_cache_digest_secs: f64,
    /// The persistent-store policy the sweep ran under
    /// (`auto`/`auto-off`/`on`/`off`/`path`).
    pub store: String,
    /// Entries spilled to the persistent store (process lifetime).
    pub store_spills: u64,
    /// Bytes spilled to the persistent store (process lifetime).
    pub store_spill_bytes: u64,
    /// Store entries quarantined after failing verification (process
    /// lifetime; nonzero means the store had corrupt or stale files).
    pub store_quarantined: u64,
    /// Store entries evicted under the disk byte cap (process lifetime).
    pub store_evicted: u64,
    /// The bytecode-optimizer policy the sweep ran under (`auto`/`on`/`off`).
    pub opt: String,
    /// Kernels whose bytecode the optimizer rewrote, summed over tasks.
    pub opt_kernels: u64,
    /// Pre-optimization instruction count over those kernels.
    pub opt_ops_pre: u64,
    /// Post-optimization instruction count (preludes excluded).
    pub opt_ops_post: u64,
    /// CSE eliminations summed over those kernels.
    pub opt_cse_hits: u64,
    /// The engine selection the sweep ran under
    /// (`tree`/`bytecode`/`native`/`auto`).
    pub engine: String,
    /// Native-tier launches summed over the sweep's tasks.
    pub native_launches: u64,
    /// `auto` promotions to the native tier summed over tasks.
    pub promotions: u64,
    /// Native-tier launches that fell back to bytecode, summed over tasks.
    pub native_ineligible: u64,
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// The slug a device is attributed under in records and the matrix CSV: the
/// preset slug when the config matches one, the marketing name otherwise.
fn device_label(d: &DeviceConfig) -> String {
    d.slug().map(str::to_string).unwrap_or_else(|| d.name.clone())
}

fn run_task(
    bench: &dyn Benchmark,
    task: &SweepTask,
    index: usize,
    cfg: &MachineConfig,
    scale: Scale,
    with_profile: bool,
    launch_parallel: bool,
) -> RunRecord {
    let t0 = Instant::now();
    // Two-level parallelism policy: hint the launch executor (thread-local,
    // so it only affects this task's launches) and reset on every exit path
    // — the worker thread is reused for later tasks.
    struct HintReset;
    impl Drop for HintReset {
        fn drop(&mut self) {
            set_launch_par_hint(None);
        }
    }
    set_launch_par_hint(Some(launch_parallel));
    let _reset = HintReset;
    // Launch-cache accounting: the counters are thread-local and tasks never
    // migrate threads mid-run, so the before/after delta is this task's.
    let (h0, dh0, m0, d0) = thread_cache_counters();
    let (ok0, op0, oq0, oc0) = thread_opt_counters();
    let (nl0, np0, ni0) = thread_native_counters();
    let ds = cached_dataset(bench, scale);
    let (oracle, oracle_cached) = cached_oracle_tracked(bench, scale, cfg);
    let (compiled, compile_cached) = cached_compile_tracked(bench, task.model, scale, task.tuning.as_ref());
    let (r, profile) = if with_profile {
        let mut sink = RecordingSink::new();
        // The task span leads its own trace, carrying cache provenance.
        sink.emit(TraceEvent::TaskSpan {
            task: index,
            benchmark: task.benchmark.clone(),
            model: task.model.display().to_string(),
            tuning: task.tuning.map(|pt| format!("{pt:?}")),
            oracle_cached,
            compile_cached,
        });
        let r = run_compiled_traced(bench, &compiled, &ds, cfg, &oracle.run, &mut sink);
        let profile = crate::profile::RunProfile::from_events(&task.benchmark, task.model, &sink.events);
        (r, Some(profile))
    } else {
        (run_compiled(bench, &compiled, &ds, cfg, &oracle.run), None)
    };
    let (h1, dh1, m1, d1) = thread_cache_counters();
    let (ok1, op1, oq1, oc1) = thread_opt_counters();
    let (nl1, np1, ni1) = thread_native_counters();
    RunRecord {
        task: index,
        benchmark: task.benchmark.clone(),
        model: task.model,
        tuning: task.tuning,
        default_point: task.tuning.is_none(),
        device: task.device.clone().unwrap_or_else(|| device_label(&cfg.device)),
        secs: r.secs,
        speedup: r.speedup,
        valid: r.valid,
        summary: r.summary,
        unsupported_regions: r.unsupported_regions,
        oracle_cached,
        compile_cached,
        profile,
        launch_parallel,
        kernel_hotspot: r.kernel_hotspot,
        wall_secs: t0.elapsed().as_secs_f64(),
        launch_cache_hits: h1 - h0,
        launch_cache_disk_hits: dh1 - dh0,
        launch_cache_misses: m1 - m0,
        launch_cache_digest_secs: (d1 - d0) as f64 * 1e-9,
        opt_kernels: ok1 - ok0,
        opt_ops_pre: op1 - op0,
        opt_ops_post: oq1 - oq0,
        opt_cse_hits: oc1 - oc0,
        native_launches: nl1 - nl0,
        promotions: np1 - np0,
        native_ineligible: ni1 - ni0,
    }
}

/// Run the flat sweep over `benches` and assemble the manifest.
///
/// Tasks execute in parallel via work stealing; the record list is ordered
/// by task index, so the figure-relevant output is bit-identical regardless
/// of scheduling.
pub fn run_sweep(benches: &[&dyn Benchmark], cfg: &MachineConfig, scale: Scale, with_tuning: bool) -> SweepManifest {
    run_sweep_profiled(benches, cfg, scale, with_tuning, false)
}

/// [`run_sweep`] with per-task profiling: each record carries its folded
/// [`crate::profile::RunProfile`] and the task span's cache provenance.
/// Figure-relevant fields are bit-identical to the unprofiled sweep — the
/// trace is recorded off to the side, not threaded into the cost model.
pub fn run_sweep_profiled(
    benches: &[&dyn Benchmark],
    cfg: &MachineConfig,
    scale: Scale,
    with_tuning: bool,
    with_profile: bool,
) -> SweepManifest {
    run_enumerated(benches, enumerate_tasks(benches, with_tuning), cfg, scale, with_tuning, with_profile)
}

/// Run the device-matrix sweep: every (benchmark × model × tuning-point)
/// task once per named device preset, through the same work-stealing
/// executor — the oracle (host-only key) and lowering-basis compiles
/// (device-independent) are shared across the whole matrix, so only the
/// simulated GPU runs multiply.
///
/// `cfg` supplies the host and link; each task's device comes from its
/// preset. Unknown preset names are an `Err` (see
/// [`enumerate_device_tasks`]), surfaced before any work starts.
pub fn run_device_matrix(
    benches: &[&dyn Benchmark],
    cfg: &MachineConfig,
    scale: Scale,
    with_tuning: bool,
    devices: &[&str],
) -> Result<SweepManifest, String> {
    let tasks = enumerate_device_tasks(benches, with_tuning, devices)?;
    Ok(run_enumerated(benches, tasks, cfg, scale, with_tuning, false))
}

/// The shared executor behind [`run_sweep_profiled`] and
/// [`run_device_matrix`]: run an enumerated task list and assemble the
/// manifest.
fn run_enumerated(
    benches: &[&dyn Benchmark],
    tasks: Vec<SweepTask>,
    cfg: &MachineConfig,
    scale: Scale,
    with_tuning: bool,
    with_profile: bool,
) -> SweepManifest {
    let t0 = Instant::now();
    let by_name: HashMap<&str, &dyn Benchmark> = benches.iter().map(|b| (b.spec().name, *b)).collect();
    // One MachineConfig per device slug the task list names: same host and
    // link as the base config (the Figure 1 denominator is shared), device
    // swapped per preset. Tasks without a device run on the base config.
    let device_cfgs: HashMap<&str, MachineConfig> = tasks
        .iter()
        .filter_map(|t| t.device.as_deref())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|s| {
            let device = DeviceConfig::preset(s).unwrap_or_else(|| {
                panic!("unknown device preset `{s}` in task list (not from enumerate_device_tasks?)")
            });
            (s, MachineConfig { device, host: cfg.host.clone(), link: cfg.link.clone() })
        })
        .collect();

    // The worker count the pool will actually use for this task list (the
    // shim caps its pool at the task count) — computed up front so the
    // manifest records what ran, not what a later env read would claim.
    let workers = rayon::current_num_threads().min(tasks.len().max(1)).max(1);
    // Two-level parallelism: while every worker has queued tasks, each task
    // runs its launches serially (task-level parallelism already saturates
    // the pool). Once the not-yet-started tail is at most one task per
    // worker, finishing workers start idling — from there each task may
    // also chunk its kernel launches across blocks. `launch_par()` On/Off
    // overrides the policy in both directions.
    let started = AtomicUsize::new(0);
    let tail_from = tasks.len().saturating_sub(workers);
    let indexed: Vec<(usize, &SweepTask)> = tasks.iter().enumerate().collect();
    let records: Vec<RunRecord> = indexed
        .par_iter()
        .map(|(i, t)| {
            let tail = started.fetch_add(1, Ordering::Relaxed) >= tail_from;
            let launch_parallel = match launch_par() {
                LaunchPar::On => true,
                LaunchPar::Off => false,
                LaunchPar::Auto => tail,
            };
            let task_cfg = t.device.as_deref().map_or(cfg, |s| &device_cfgs[s]);
            run_task(by_name[t.benchmark.as_str()], t, *i, task_cfg, scale, with_profile, launch_parallel)
        })
        .collect();
    let wall_secs = t0.elapsed().as_secs_f64();
    // Distinct device slugs in record (= task) order.
    let mut devices: Vec<String> = Vec::new();
    for r in &records {
        if !devices.contains(&r.device) {
            devices.push(r.device.clone());
        }
    }

    // Oracle accounting (all cache hits at this point).
    let oracles: Vec<OracleRecord> = benches
        .iter()
        .map(|b| {
            let e = cached_oracle(*b, scale, cfg);
            OracleRecord {
                benchmark: b.spec().name.to_string(),
                dataset: cached_dataset(*b, scale).label.clone(),
                cpu_secs: e.run.secs,
                wall_secs: e.wall_secs,
            }
        })
        .collect();

    let group = |sel: &dyn Fn(&RunRecord) -> bool, name: String| {
        let mut g = GroupTotals {
            name,
            tasks: 0,
            wall_secs: 0.0,
            sim_secs: 0.0,
            kernel_secs: 0.0,
            transfer_secs: 0.0,
            kernels_launched: 0,
            h2d_bytes: 0,
            d2h_bytes: 0,
            launch_cache_hits: 0,
            launch_cache_disk_hits: 0,
            launch_cache_misses: 0,
        };
        for r in records.iter().filter(|r| sel(r)) {
            g.tasks += 1;
            g.wall_secs += r.wall_secs;
            g.sim_secs += r.secs;
            g.kernel_secs += r.summary.kernel_secs;
            g.transfer_secs += r.summary.transfer_secs;
            g.kernels_launched += r.summary.kernels_launched;
            g.h2d_bytes += r.summary.h2d_bytes;
            g.d2h_bytes += r.summary.d2h_bytes;
            g.launch_cache_hits += r.launch_cache_hits;
            g.launch_cache_disk_hits += r.launch_cache_disk_hits;
            g.launch_cache_misses += r.launch_cache_misses;
        }
        g
    };
    let by_benchmark: Vec<GroupTotals> =
        benches.iter().map(|b| group(&|r| r.benchmark == b.spec().name, b.spec().name.to_string())).collect();
    let by_model: Vec<GroupTotals> =
        ModelKind::figure1_models().iter().map(|k| group(&|r| r.model == *k, k.display().to_string())).collect();

    let mut slowest: Vec<&RunRecord> = records.iter().collect();
    slowest.sort_by(|a, b| b.wall_secs.partial_cmp(&a.wall_secs).unwrap_or(std::cmp::Ordering::Equal));
    let slowest_tasks: Vec<SlowTask> = slowest
        .iter()
        .take(5)
        .map(|r| SlowTask { task: r.task, benchmark: r.benchmark.clone(), model: r.model, wall_secs: r.wall_secs })
        .collect();

    let task_wall_secs: f64 = records.iter().map(|r| r.wall_secs).sum();
    let oracle_wall_secs: f64 = oracles.iter().map(|o| o.wall_secs).sum();
    let critical_path_secs = oracles
        .iter()
        .map(|o| {
            let slowest_task =
                records.iter().filter(|r| r.benchmark == o.benchmark).map(|r| r.wall_secs).fold(0.0f64, f64::max);
            o.wall_secs + slowest_task
        })
        .fold(0.0f64, f64::max);
    let parallel_efficiency =
        if wall_secs > 0.0 { (task_wall_secs / (wall_secs * workers as f64)).min(1.0) } else { 1.0 };

    let launch_cache_hits: u64 = records.iter().map(|r| r.launch_cache_hits).sum();
    let launch_cache_disk_hits: u64 = records.iter().map(|r| r.launch_cache_disk_hits).sum();
    let launch_cache_misses: u64 = records.iter().map(|r| r.launch_cache_misses).sum();
    let launch_cache_digest_secs: f64 = records.iter().map(|r| r.launch_cache_digest_secs).sum();
    let store_totals = launch_store::store_totals();
    let opt_kernels: u64 = records.iter().map(|r| r.opt_kernels).sum();
    let opt_ops_pre: u64 = records.iter().map(|r| r.opt_ops_pre).sum();
    let opt_ops_post: u64 = records.iter().map(|r| r.opt_ops_post).sum();
    let opt_cse_hits: u64 = records.iter().map(|r| r.opt_cse_hits).sum();
    let native_launches: u64 = records.iter().map(|r| r.native_launches).sum();
    let promotions: u64 = records.iter().map(|r| r.promotions).sum();
    let native_ineligible: u64 = records.iter().map(|r| r.native_ineligible).sum();

    SweepManifest {
        scale: format!("{scale:?}"),
        with_tuning,
        devices,
        workers,
        tasks: tasks.len(),
        wall_secs,
        task_wall_secs,
        oracle_wall_secs,
        critical_path_secs,
        parallel_efficiency,
        oracles,
        records,
        by_benchmark,
        by_model,
        slowest_tasks,
        launch_cache: launch_cache_name().to_string(),
        launch_cache_hits,
        launch_cache_disk_hits,
        launch_cache_misses,
        launch_cache_evictions: launch_cache_totals().evictions,
        launch_cache_digest_secs,
        store: launch_store::store_policy_name().to_string(),
        store_spills: store_totals.spills,
        store_spill_bytes: store_totals.spill_bytes,
        store_quarantined: store_totals.quarantined,
        store_evicted: store_totals.evicted,
        opt: opt_name().to_string(),
        opt_kernels,
        opt_ops_pre,
        opt_ops_post,
        opt_cse_hits,
        engine: acceval_ir::interp::gpu::engine_name().to_string(),
        native_launches,
        promotions,
        native_ineligible,
    }
}

// ---------------------------------------------------------------------------
// Aggregation back into the Figure 1 shapes.
// ---------------------------------------------------------------------------

/// Fold a manifest's flat records into per-benchmark [`BenchResult`]s
/// (benchmarks in manifest/oracle order, models in Figure 1 order).
///
/// Tuning bands cover every *valid* run of a model — default point
/// included — and are omitted entirely when no run of the model validated,
/// so an invalid run can never seed (or silently widen) a band.
pub fn bench_results(manifest: &SweepManifest) -> Vec<BenchResult> {
    fold_results(&manifest.oracles, &manifest.records.iter().collect::<Vec<_>>())
}

/// [`bench_results`] restricted to one device of a matrix sweep: only
/// records attributed to `device` fold into the figure shapes, so each
/// generation gets its own Figure 1 over the shared CPU denominator.
pub fn bench_results_for_device(manifest: &SweepManifest, device: &str) -> Vec<BenchResult> {
    fold_results(&manifest.oracles, &manifest.records.iter().filter(|r| r.device == device).collect::<Vec<_>>())
}

fn fold_results(oracles: &[OracleRecord], records: &[&RunRecord]) -> Vec<BenchResult> {
    oracles
        .iter()
        .map(|o| {
            let recs: Vec<&RunRecord> = records.iter().filter(|r| r.benchmark == o.benchmark).copied().collect();
            let mut runs = Vec::new();
            let mut bands = Vec::new();
            for kind in ModelKind::figure1_models() {
                if let Some(d) = recs.iter().find(|r| r.model == kind && r.default_point) {
                    runs.push(ModelRun {
                        model: kind,
                        secs: d.secs,
                        speedup: d.speedup,
                        summary: d.summary,
                        valid: d.valid.clone(),
                        unsupported_regions: d.unsupported_regions,
                        kernel_hotspot: d.kernel_hotspot.clone(),
                    });
                }
                let of_kind: Vec<&&RunRecord> = recs.iter().filter(|r| r.model == kind).collect();
                if of_kind.iter().any(|r| !r.default_point) {
                    let valid: Vec<f64> = of_kind.iter().filter(|r| r.valid.is_ok()).map(|r| r.speedup).collect();
                    if !valid.is_empty() {
                        let lo = valid.iter().copied().fold(f64::INFINITY, f64::min);
                        let hi = valid.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        bands.push((kind, lo, hi));
                    }
                }
            }
            BenchResult {
                name: o.benchmark.clone(),
                dataset: o.dataset.clone(),
                cpu_secs: o.cpu_secs,
                runs,
                tuning_bands: bands,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_enumeration_dedupes_and_orders() {
        let b = acceval_benchmarks::jacobi::Jacobi;
        let benches: [&dyn Benchmark; 1] = [&b];
        let tasks = enumerate_tasks(&benches, true);
        // One default task per Figure-1 model, plus distinct tuning points
        // for every model but ManualCuda.
        let defaults = tasks.iter().filter(|t| t.tuning.is_none()).count();
        assert_eq!(defaults, ModelKind::figure1_models().len());
        assert!(!tasks.iter().any(|t| t.model == ModelKind::ManualCuda && t.tuning.is_some()));
        // No tuning task duplicates the default point or another task.
        for t in tasks.iter().filter(|t| t.tuning.is_some()) {
            assert_ne!(t.tuning.unwrap(), TuningPoint::best_for(t.model));
        }
        for (i, a) in tasks.iter().enumerate() {
            for b in &tasks[i + 1..] {
                assert!(
                    a.benchmark != b.benchmark || a.model != b.model || a.tuning != b.tuning,
                    "duplicate task {a:?}"
                );
            }
        }
    }

    #[test]
    fn oracle_cache_computes_once() {
        let cfg = MachineConfig::keeneland_node();
        let b = acceval_benchmarks::jacobi::Jacobi;
        let first = cached_oracle(&b, Scale::Test, &cfg);
        let second = cached_oracle(&b, Scale::Test, &cfg);
        assert!(Arc::ptr_eq(&first, &second), "repeated requests must share one CpuRun");
        assert_eq!(first.run.secs.to_bits(), second.run.secs.to_bits());
    }

    #[test]
    fn geometry_retarget_matches_direct_compile() {
        // The memoized compile (canonical basis + retarget) must reproduce
        // the direct compile of every tuning point bit-for-bit.
        let b = acceval_benchmarks::jacobi::Jacobi;
        let ds = cached_dataset(&b, Scale::Test);
        for kind in ModelKind::figure1_models() {
            let mut points = vec![None];
            if kind != ModelKind::ManualCuda {
                points.extend(model(kind).tuning_space().into_iter().map(Some));
            }
            for pt in points {
                let direct = compile_port(&b.port(kind), kind, &ds, pt.as_ref());
                let cached = cached_compile(&b, kind, Scale::Test, pt.as_ref());
                assert_eq!(direct.kernels.len(), cached.kernels.len());
                for (region, plans) in &direct.kernels {
                    assert_eq!(plans, &cached.kernels[region], "{kind:?} {pt:?} region {region}");
                }
            }
        }
    }
}
