//! Property-based tests for the simulator substrate.

use acceval_sim::{
    bank_conflict_slots, estimate_kernel, segments_touched, Cache, DeviceConfig, KernelFootprint, KernelTotals,
    SiteWarpTrace,
};
use proptest::prelude::*;

proptest! {
    /// Transactions per warp instruction are bounded by [1, lanes] for any
    /// non-empty address set.
    #[test]
    fn transactions_bounded(addrs in prop::collection::vec(0u64..1_000_000, 1..=32)) {
        let n = addrs.len() as u32;
        let mut a = addrs.clone();
        let tx = segments_touched(&mut a, 128);
        prop_assert!(tx >= 1);
        prop_assert!(tx <= n);
    }

    /// Transaction count is invariant under permutation and duplication of
    /// addresses.
    #[test]
    fn transactions_set_semantics(addrs in prop::collection::vec(0u64..100_000, 1..=32)) {
        let mut a = addrs.clone();
        let mut b: Vec<u64> = addrs.iter().rev().copied().collect();
        let mut c: Vec<u64> = addrs.iter().chain(addrs.iter()).copied().collect();
        let ta = segments_touched(&mut a, 128);
        let tb = segments_touched(&mut b, 128);
        let tc = segments_touched(&mut c, 128);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(ta, tc);
    }

    /// Coarser segments never need more transactions.
    #[test]
    fn coarser_segments_fewer_transactions(addrs in prop::collection::vec(0u64..1_000_000, 1..=32)) {
        let mut a = addrs.clone();
        let mut b = addrs.clone();
        let t64 = segments_touched(&mut a, 64);
        let t128 = segments_touched(&mut b, 128);
        prop_assert!(t128 <= t64);
    }

    /// Bank conflict slots are within [1, distinct words].
    #[test]
    fn bank_slots_bounded(addrs in prop::collection::vec(0u64..65_536, 1..=32)) {
        let slots = bank_conflict_slots(&addrs, 32, 4);
        let mut words: Vec<u64> = addrs.iter().map(|a| a / 4).collect();
        words.sort_unstable();
        words.dedup();
        prop_assert!(slots >= 1);
        prop_assert!(slots as usize <= words.len());
    }

    /// A unit-stride warp access of 4-byte words never bank-conflicts.
    #[test]
    fn unit_stride_never_conflicts(base in 0u64..4096) {
        let addrs: Vec<u64> = (0..32).map(|l| base * 4 + l * 4).collect();
        prop_assert_eq!(bank_conflict_slots(&addrs, 32, 4), 1);
    }

    /// Kernel time is monotone in transaction count (all else fixed).
    #[test]
    fn kernel_time_monotone_in_transactions(tx1 in 1u64..10_000_000, tx2 in 1u64..10_000_000) {
        let cfg = DeviceConfig::tesla_m2090();
        let fp = KernelFootprint::new(256, 512);
        let mk = |tx: u64| KernelTotals {
            warps: 4096,
            issue_cycles: 4096.0,
            global_requests: 100_000,
            global_transactions: tx,
            useful_bytes: 1_000_000,
            ..Default::default()
        };
        let c1 = estimate_kernel(&cfg, &fp, &mk(tx1));
        let c2 = estimate_kernel(&cfg, &fp, &mk(tx2));
        if tx1 <= tx2 {
            prop_assert!(c1.time_secs <= c2.time_secs + 1e-15);
        } else {
            prop_assert!(c2.time_secs <= c1.time_secs + 1e-15);
        }
    }

    /// Kernel cost terms are all non-negative and finite.
    #[test]
    fn kernel_cost_sane(
        warps in 1u64..100_000,
        issue in 0f64..1e9,
        reqs in 0u64..1_000_000,
        tx in 0u64..10_000_000,
        shared in 0u64..1_000_000,
        atomics in 0u64..100_000,
        tpb in prop::sample::select(vec![32u32, 64, 128, 192, 256, 512, 1024]),
    ) {
        let cfg = DeviceConfig::tesla_m2090();
        let fp = KernelFootprint::new(tpb, (warps * 32 / tpb as u64).max(1));
        let t = KernelTotals {
            warps,
            issue_cycles: issue,
            global_requests: reqs,
            global_transactions: tx,
            useful_bytes: reqs * 128,
            shared_slots: shared,
            atomic_slots: atomics,
            ..Default::default()
        };
        let c = estimate_kernel(&cfg, &fp, &t);
        prop_assert!(c.time_secs.is_finite());
        prop_assert!(c.time_secs >= cfg.launch_overhead_us * 1e-6);
        prop_assert!(c.cycles >= 0.0);
        prop_assert!(c.occupancy.resident_warps_per_sm >= 1);
    }

    /// Cache accesses always classify as exactly hit or miss, and a
    /// repeated access to the same address is a hit.
    #[test]
    fn cache_repeat_hits(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(32 * 1024, 8, 64);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "immediate re-access must hit");
        }
        prop_assert_eq!(c.hits + c.misses, addrs.len() as u64 * 2);
    }

    /// SiteWarpTrace totals: lane_accesses equals records made, and
    /// transactions <= lane_accesses.
    #[test]
    fn trace_accounting(rows in prop::collection::vec(prop::collection::vec(0u64..100_000, 1..=32), 1..10)) {
        let mut t = SiteWarpTrace::new(32);
        let mut n = 0u64;
        for row in &rows {
            for (lane, &a) in row.iter().enumerate() {
                t.record(lane as u32, a);
                n += 1;
            }
        }
        let s = t.reduce_global(128);
        prop_assert_eq!(s.lane_accesses, n);
        prop_assert!(s.transactions <= s.lane_accesses);
        prop_assert!(s.transactions >= s.requests);
    }
}
