//! Warp-level memory coalescing and shared-memory bank-conflict analysis.
//!
//! The functional executor records, for every static access site, the byte
//! address each lane of a warp touches at each dynamic occurrence of that
//! site. Lanes of a warp execute in lockstep, so the k-th occurrence in each
//! lane belongs to the same warp-wide memory instruction; the number of
//! global-memory transactions that instruction needs is the number of
//! distinct `segment_bytes`-sized segments its lane addresses fall in
//! (Fermi: 128-byte segments). A fully coalesced unit-stride access by 32
//! lanes of 4-byte words costs 1 transaction; a stride-N access costs up to
//! 32.

/// Count distinct segments touched by a set of byte addresses.
///
/// `addrs` need not be sorted; duplicates are free. This is the per-warp,
/// per-instruction transaction count.
pub fn segments_touched(addrs: &mut [u64], segment_bytes: u32) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    let seg = segment_bytes as u64;
    debug_assert!(seg.is_power_of_two());
    for a in addrs.iter_mut() {
        *a /= seg;
    }
    addrs.sort_unstable();
    let mut n = 1u32;
    for w in addrs.windows(2) {
        if w[0] != w[1] {
            n += 1;
        }
    }
    n
}

/// Shared-memory bank-conflict cost of one warp access: the number of
/// serialized shared-memory cycles ("slots").
///
/// Words are `word_bytes` wide and interleaved across `banks` banks. Lanes
/// reading the *same word* broadcast (cost shared); lanes hitting different
/// words in the same bank serialize. The returned slot count is the maximum
/// number of distinct words mapped to any one bank (minimum 1 for a
/// non-empty access).
pub fn bank_conflict_slots(addrs: &[u64], banks: u32, word_bytes: u32) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    // This runs once per warp shared-memory instruction — the hottest
    // shared-memory path in the simulator. Real warps are <= 32 lanes and
    // real devices have <= 32 banks, so a fixed stack scratch covers every
    // modeled configuration without heap traffic; wider inputs (tests,
    // hypothetical devices) fall back to the allocating path.
    if addrs.len() <= 32 && banks <= 32 {
        let mut words = [0u64; 32];
        let n = addrs.len();
        for (w, &a) in words.iter_mut().zip(addrs) {
            *w = a / word_bytes as u64;
        }
        let words = &mut words[..n];
        words.sort_unstable();
        let mut per_bank = [0u32; 32];
        let mut best = 0u32;
        let mut prev = u64::MAX; // sentinel: addresses never reach 2^64-1
        for &w in words.iter() {
            if w == prev {
                continue; // same word: broadcast, costs nothing extra
            }
            prev = w;
            let slot = &mut per_bank[(w % banks as u64) as usize];
            *slot += 1;
            best = best.max(*slot);
        }
        return best.max(1);
    }
    let mut words: Vec<u64> = addrs.iter().map(|a| a / word_bytes as u64).collect();
    words.sort_unstable();
    words.dedup();
    let mut per_bank = vec![0u32; banks as usize];
    for w in words {
        per_bank[(w % banks as u64) as usize] += 1;
    }
    per_bank.into_iter().max().unwrap_or(0).max(1)
}

/// Gather occurrence `k`'s participating-lane addresses into `stack` (warps
/// are <= 64 lanes on every modeled device) or `heap` when wider, returning
/// the filled row. Keeps the per-occurrence reductions below allocation-free.
fn fill_row<'a>(lane_addrs: &[Vec<u64>], k: usize, stack: &'a mut [u64; 64], heap: &'a mut Vec<u64>) -> &'a mut [u64] {
    if lane_addrs.len() <= 64 {
        let mut n = 0;
        for lane in lane_addrs {
            if let Some(&a) = lane.get(k) {
                stack[n] = a;
                n += 1;
            }
        }
        &mut stack[..n]
    } else {
        heap.clear();
        for lane in lane_addrs {
            if let Some(&a) = lane.get(k) {
                heap.push(a);
            }
        }
        &mut heap[..]
    }
}

/// Accumulates one warp's lane address streams for a single access site and
/// reduces them to transaction / request / slot counts.
///
/// Lane streams are aligned by occurrence index: `lane_addrs[l][k]` is the
/// address lane `l` produced at the k-th execution of the site. Lanes that
/// diverged and skipped an occurrence simply have shorter streams; this
/// "compacted" alignment slightly *under*-estimates divergence cost, which
/// the compute model compensates for separately.
#[derive(Debug)]
pub struct SiteWarpTrace {
    lane_addrs: Vec<Vec<u64>>,
}

/// Summary of one (site, warp) pair after reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSummary {
    /// Warp-wide memory instructions issued (max occurrence count).
    pub requests: u64,
    /// Global-memory transactions (segments) those requests needed.
    pub transactions: u64,
    /// Total lane-level accesses (for bytes-moved accounting).
    pub lane_accesses: u64,
}

impl AccessSummary {
    /// Fold another warp's summary for the same site into this one (used by
    /// the tracer to accumulate per-site evidence across all warps).
    pub fn merge(&mut self, o: &AccessSummary) {
        self.requests += o.requests;
        self.transactions += o.transactions;
        self.lane_accesses += o.lane_accesses;
    }
}

/// Summary of one (site, warp) pair treated as shared-memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedSummary {
    /// Serialized shared-memory slots consumed (>= requests when conflicted).
    pub slots: u64,
    /// Warp-wide shared accesses issued.
    pub requests: u64,
}

impl SharedSummary {
    /// Fold another warp's shared-memory summary into this one.
    pub fn merge(&mut self, o: &SharedSummary) {
        self.slots += o.slots;
        self.requests += o.requests;
    }
}

impl SiteWarpTrace {
    /// Empty trace for a warp of `warp_size` lanes.
    pub fn new(warp_size: u32) -> Self {
        SiteWarpTrace { lane_addrs: vec![Vec::new(); warp_size as usize] }
    }

    /// Record that `lane` touched byte address `addr` at its next occurrence.
    #[inline]
    pub fn record(&mut self, lane: u32, addr: u64) {
        self.lane_addrs[lane as usize].push(addr);
    }

    /// True if no lane recorded anything.
    pub fn is_empty(&self) -> bool {
        self.lane_addrs.iter().all(|v| v.is_empty())
    }

    /// Number of lanes this trace was sized for.
    pub fn lanes(&self) -> usize {
        self.lane_addrs.len()
    }

    /// Clear all lane streams in place, keeping their allocations. Lets an
    /// executor reuse one arena of traces across warps instead of
    /// reallocating per warp.
    pub fn clear(&mut self) {
        for v in &mut self.lane_addrs {
            v.clear();
        }
    }

    /// Reduce to global-memory transaction counts.
    pub fn reduce_global(&self, segment_bytes: u32) -> AccessSummary {
        let max_len = self.lane_addrs.iter().map(|v| v.len()).max().unwrap_or(0);
        let mut out = AccessSummary::default();
        let mut stack = [0u64; 64];
        let mut heap: Vec<u64> = Vec::new();
        for k in 0..max_len {
            let row = fill_row(&self.lane_addrs, k, &mut stack, &mut heap);
            out.requests += 1;
            out.lane_accesses += row.len() as u64;
            out.transactions += segments_touched(row, segment_bytes) as u64;
        }
        out
    }

    /// Invoke `f` once per occurrence row with the participating lanes'
    /// addresses (used for texture-cache simulation).
    pub fn for_each_row(&self, mut f: impl FnMut(&[u64])) {
        let max_len = self.lane_addrs.iter().map(|v| v.len()).max().unwrap_or(0);
        let mut stack = [0u64; 64];
        let mut heap: Vec<u64> = Vec::new();
        for k in 0..max_len {
            f(fill_row(&self.lane_addrs, k, &mut stack, &mut heap));
        }
    }

    /// Interpret recorded values as branch outcomes (0/1) and count the
    /// occurrence rows where lanes of the warp disagreed — i.e. divergent
    /// branch instances.
    pub fn reduce_divergent_rows(&self) -> u64 {
        let max_len = self.lane_addrs.iter().map(|v| v.len()).max().unwrap_or(0);
        let mut divergent = 0u64;
        for k in 0..max_len {
            let mut saw0 = false;
            let mut saw1 = false;
            for lane in &self.lane_addrs {
                match lane.get(k) {
                    Some(0) => saw0 = true,
                    Some(_) => saw1 = true,
                    None => {}
                }
            }
            if saw0 && saw1 {
                divergent += 1;
            }
        }
        divergent
    }

    /// Reduce to shared-memory slot counts.
    pub fn reduce_shared(&self, banks: u32, word_bytes: u32) -> SharedSummary {
        let max_len = self.lane_addrs.iter().map(|v| v.len()).max().unwrap_or(0);
        let mut out = SharedSummary::default();
        let mut stack = [0u64; 64];
        let mut heap: Vec<u64> = Vec::new();
        for k in 0..max_len {
            let row = fill_row(&self.lane_addrs, k, &mut stack, &mut heap);
            out.requests += 1;
            out.slots += bank_conflict_slots(row, banks, word_bytes) as u64;
        }
        out
    }
}

/// Multiply-xor hasher for the memo's small fixed-size keys. SipHash (the
/// std default) costs more than the lookups it protects here; the memo is
/// rebuilt per launch from trusted simulator state, so HashDoS resistance
/// buys nothing.
#[derive(Default)]
pub struct FoldHasher(u64);

impl std::hash::Hasher for FoldHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; hashbrown
        // picks buckets from the low bits, so fold them down.
        self.0 ^ (self.0 >> 32)
    }
}

type MemoMap = std::collections::HashMap<(u32, u64, i64, u64), u64, std::hash::BuildHasherDefault<FoldHasher>>;

/// Memoized reduction of *affine* per-warp address rows.
///
/// For an access site whose lane addresses form an arithmetic progression
/// `addr(lane) = A + B·(lane − lane₀)` over the active lanes, the number of
/// segments the row touches depends only on `A mod segment_bytes`, the
/// stride `B`, and the set of active lanes — not on `A` itself (the segment
/// partition is invariant under translation by whole segments). A launch
/// executes thousands of warps whose rows differ only by such a translation,
/// so one sort-and-dedup reduction per distinct signature serves all of
/// them.
///
/// Every row is *verified* exactly before the memo is consulted; rows that
/// are not an exact arithmetic progression fall back to
/// [`segments_touched`]. The result is therefore bit-identical to
/// [`SiteWarpTrace::reduce_global`] on the same row.
#[derive(Debug)]
pub struct AffineRowMemo {
    segment_bytes: u32,
    map: MemoMap,
    /// Bank-conflict slot counts for shared-memory rows. Keyed like `map`
    /// but with the base address taken modulo the bank-cycle width
    /// (`banks * word_bytes`): the bank of `addr` is `(addr / word) % banks`,
    /// so the conflict pattern of an affine row is invariant under
    /// translation by whole bank cycles.
    map_shared: MemoMap,
    scratch: Vec<u64>,
    /// Rows answered from the memo.
    pub hits: u64,
    /// Rows reduced the slow way (first sight of a signature, or non-affine).
    pub misses: u64,
}

impl AffineRowMemo {
    /// Empty memo for `segment_bytes`-sized transactions.
    pub fn new(segment_bytes: u32) -> Self {
        AffineRowMemo {
            segment_bytes,
            map: MemoMap::default(),
            map_shared: MemoMap::default(),
            scratch: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Drop all memoized signatures (site numbering is only meaningful
    /// within one launch) and set the segment size for the next launch.
    pub fn reset(&mut self, segment_bytes: u32) {
        self.segment_bytes = segment_bytes;
        self.map.clear();
        self.map_shared.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Reduce one occurrence row of `(lane, addr)` pairs (lane-ascending,
    /// one access per active lane) for `site`. Returns the same summary
    /// `reduce_global` would produce for a single-occurrence trace.
    pub fn reduce_row(&mut self, site: u32, row: &[(u32, u64)]) -> AccessSummary {
        let lanes = row.len() as u64;
        if row.len() >= 2 {
            let (l0, a0) = row[0];
            let (l1, a1) = row[1];
            let db = a1 as i128 - a0 as i128;
            let dl = (l1 - l0) as i128;
            if db % dl == 0 {
                let b = (db / dl) as i64;
                // Verify in wrapping u64 arithmetic: addresses are far below
                // 2^63, so wrapping equality can only hold when the exact
                // i128 equality does.
                let affine = row
                    .iter()
                    .all(|&(l, a)| a == a0.wrapping_add((b as u64).wrapping_mul((l as u64).wrapping_sub(l0 as u64))));
                if affine {
                    let mut mask = 0u64;
                    for &(l, _) in row {
                        mask |= 1u64 << l;
                    }
                    let key = (site, a0 % self.segment_bytes as u64, b, mask);
                    if let Some(&tx) = self.map.get(&key) {
                        self.hits += 1;
                        return AccessSummary { requests: 1, transactions: tx, lane_accesses: lanes };
                    }
                    let tx = self.reduce_slow(row);
                    self.map.insert(key, tx);
                    self.misses += 1;
                    return AccessSummary { requests: 1, transactions: tx, lane_accesses: lanes };
                }
            }
        }
        self.misses += 1;
        let tx = self.reduce_slow(row);
        AccessSummary { requests: 1, transactions: tx, lane_accesses: lanes }
    }

    fn reduce_slow(&mut self, row: &[(u32, u64)]) -> u64 {
        self.scratch.clear();
        self.scratch.extend(row.iter().map(|&(_, a)| a));
        segments_touched(&mut self.scratch, self.segment_bytes) as u64
    }

    /// Reduce one occurrence row as shared-memory traffic: the serialized
    /// slot count [`bank_conflict_slots`] would produce, memoized for affine
    /// rows. Bit-identical to `reduce_shared` on a single-occurrence trace.
    pub fn reduce_row_shared(&mut self, site: u32, row: &[(u32, u64)], banks: u32, word_bytes: u32) -> SharedSummary {
        let cycle = (banks * word_bytes) as u64;
        if row.len() >= 2 {
            let (l0, a0) = row[0];
            let (l1, a1) = row[1];
            let db = a1 as i128 - a0 as i128;
            let dl = (l1 - l0) as i128;
            if db % dl == 0 {
                let b = (db / dl) as i64;
                let affine = row
                    .iter()
                    .all(|&(l, a)| a == a0.wrapping_add((b as u64).wrapping_mul((l as u64).wrapping_sub(l0 as u64))));
                if affine {
                    let mut mask = 0u64;
                    for &(l, _) in row {
                        mask |= 1u64 << l;
                    }
                    let key = (site, a0 % cycle, b, mask);
                    if let Some(&slots) = self.map_shared.get(&key) {
                        self.hits += 1;
                        return SharedSummary { slots, requests: 1 };
                    }
                    let slots = self.shared_slow(row, banks, word_bytes);
                    self.map_shared.insert(key, slots);
                    self.misses += 1;
                    return SharedSummary { slots, requests: 1 };
                }
            }
        }
        self.misses += 1;
        let slots = self.shared_slow(row, banks, word_bytes);
        SharedSummary { slots, requests: 1 }
    }

    fn shared_slow(&mut self, row: &[(u32, u64)], banks: u32, word_bytes: u32) -> u64 {
        self.scratch.clear();
        self.scratch.extend(row.iter().map(|&(_, a)| a));
        bank_conflict_slots(&self.scratch, banks, word_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_from_rows(rows: &[Vec<u64>]) -> SiteWarpTrace {
        // rows[k][lane]
        let lanes = rows.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut t = SiteWarpTrace::new(lanes as u32);
        for row in rows {
            for (lane, &a) in row.iter().enumerate() {
                t.record(lane as u32, a);
            }
        }
        t
    }

    #[test]
    fn unit_stride_f32_is_one_transaction() {
        // 32 lanes, 4-byte elements, consecutive: all in one 128 B segment.
        let row: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
        let t = trace_from_rows(&[row]);
        let s = t.reduce_global(128);
        assert_eq!(s.requests, 1);
        assert_eq!(s.transactions, 1);
        assert_eq!(s.lane_accesses, 32);
    }

    #[test]
    fn unit_stride_f64_is_two_transactions() {
        let row: Vec<u64> = (0..32u64).map(|l| l * 8).collect();
        let s = trace_from_rows(&[row]).reduce_global(128);
        assert_eq!(s.transactions, 2);
    }

    #[test]
    fn large_stride_is_fully_uncoalesced() {
        // Stride of 1 KiB: every lane in its own segment.
        let row: Vec<u64> = (0..32u64).map(|l| l * 1024).collect();
        let s = trace_from_rows(&[row]).reduce_global(128);
        assert_eq!(s.transactions, 32);
    }

    #[test]
    fn broadcast_same_address_is_one_transaction() {
        let row: Vec<u64> = vec![4096; 32];
        let s = trace_from_rows(&[row]).reduce_global(128);
        assert_eq!(s.transactions, 1);
    }

    #[test]
    fn occurrences_accumulate() {
        let r0: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
        let r1: Vec<u64> = (0..32u64).map(|l| 4096 + l * 512).collect();
        let s = trace_from_rows(&[r0, r1]).reduce_global(128);
        assert_eq!(s.requests, 2);
        assert_eq!(s.transactions, 1 + 32);
    }

    #[test]
    fn divergent_lanes_compact() {
        // Only 8 lanes participate: addresses spread across 2 segments.
        let row: Vec<u64> = (0..8u64).map(|l| l * 32).collect();
        let s = trace_from_rows(&[row]).reduce_global(128);
        assert_eq!(s.requests, 1);
        assert_eq!(s.transactions, 2);
        assert_eq!(s.lane_accesses, 8);
    }

    #[test]
    fn bank_conflicts_unit_stride_free() {
        let row: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
        assert_eq!(bank_conflict_slots(&row, 32, 4), 1);
    }

    #[test]
    fn bank_conflicts_stride_two_doubles() {
        let row: Vec<u64> = (0..32u64).map(|l| l * 8).collect();
        // stride 2 words across 32 banks: 2-way conflict.
        assert_eq!(bank_conflict_slots(&row, 32, 4), 2);
    }

    #[test]
    fn bank_conflicts_same_word_broadcast() {
        let row: Vec<u64> = vec![64; 32];
        assert_eq!(bank_conflict_slots(&row, 32, 4), 1);
    }

    #[test]
    fn bank_conflicts_stride_32_serializes() {
        let row: Vec<u64> = (0..32u64).map(|l| l * 32 * 4).collect();
        assert_eq!(bank_conflict_slots(&row, 32, 4), 32);
    }

    #[test]
    fn segments_touched_handles_empty() {
        assert_eq!(segments_touched(&mut [], 128), 0);
    }

    /// The original allocating reduction, kept as the oracle for the
    /// stack-scratch fast path.
    fn bank_slots_reference(addrs: &[u64], banks: u32, word_bytes: u32) -> u32 {
        if addrs.is_empty() {
            return 0;
        }
        let mut words: Vec<u64> = addrs.iter().map(|a| a / word_bytes as u64).collect();
        words.sort_unstable();
        words.dedup();
        let mut per_bank = vec![0u32; banks as usize];
        for w in words {
            per_bank[(w % banks as u64) as usize] += 1;
        }
        per_bank.into_iter().max().unwrap_or(0).max(1)
    }

    #[test]
    fn bank_conflicts_stack_path_matches_reference() {
        for stride in [0u64, 1, 2, 3, 4, 7, 8, 16, 32, 33] {
            for n in [1usize, 5, 17, 32] {
                let row: Vec<u64> = (0..n as u64).map(|l| 12 + l * stride * 4).collect();
                assert_eq!(
                    bank_conflict_slots(&row, 32, 4),
                    bank_slots_reference(&row, 32, 4),
                    "stride {stride} n {n}"
                );
                assert_eq!(
                    bank_conflict_slots(&row, 16, 8),
                    bank_slots_reference(&row, 16, 8),
                    "stride {stride} n {n}"
                );
            }
        }
        // Wider than 32 lanes / banks exercises the heap fallback.
        let wide: Vec<u64> = (0..48u64).map(|l| (l % 11) * 36 + l * 4).collect();
        assert_eq!(bank_conflict_slots(&wide, 32, 4), bank_slots_reference(&wide, 32, 4));
        assert_eq!(bank_conflict_slots(&wide[..20], 64, 4), bank_slots_reference(&wide[..20], 64, 4));
    }

    #[test]
    fn affine_memo_matches_reduce_global() {
        let mut memo = AffineRowMemo::new(128);
        let cases: Vec<Vec<u64>> = vec![
            (0..32u64).map(|l| l * 4).collect(),        // unit stride f32
            (0..32u64).map(|l| 4096 + l * 4).collect(), // same, translated by whole segments
            (0..32u64).map(|l| 100 + l * 8).collect(),  // misaligned f64 stride
            (0..32u64).map(|l| l * 1024).collect(),     // fully uncoalesced
            vec![64; 32],                               // broadcast (stride 0)
            (0..32u64).map(|l| l * l).collect(),        // non-affine fallback
        ];
        for addrs in cases {
            let row: Vec<(u32, u64)> = addrs.iter().enumerate().map(|(l, &a)| (l as u32, a)).collect();
            let got = memo.reduce_row(7, &row);
            let want = trace_from_rows(&[addrs]).reduce_global(128);
            assert_eq!(got, want);
        }
        assert!(memo.hits >= 1, "translated row should hit the memo");
    }

    #[test]
    fn affine_memo_partial_warp() {
        let mut memo = AffineRowMemo::new(128);
        // Only odd lanes active, stride 4 between *consecutive lane numbers*.
        let row: Vec<(u32, u64)> = (0..16u32).map(|i| (2 * i + 1, 256 + (2 * i + 1) as u64 * 4)).collect();
        let got = memo.reduce_row(0, &row);
        let mut t = SiteWarpTrace::new(32);
        for &(l, a) in &row {
            t.record(l, a);
        }
        assert_eq!(got, t.reduce_global(128));
    }
}
