//! # acceval-sim
//!
//! Functional + timing model of a Fermi-class CUDA GPU (default: NVIDIA
//! Tesla M2090), its PCIe link, and a superscalar host CPU (default: Intel
//! Xeon X5660). This is the hardware substrate for the ACCEVAL reproduction
//! of Lee & Vetter, *"Early Evaluation of Directive-Based GPU Programming
//! Models for Productive Exascale Computing"* (SC'12).
//!
//! The crate deliberately knows nothing about programs: it prices *evidence*
//! (warp address traces, op counts, transfer sizes) that the IR executor in
//! `acceval-ir` collects. The performance phenomena the paper's evaluation
//! turns on are explicit mechanisms here:
//!
//! * global-memory **coalescing** ([`coalesce`]) — distinct 128-byte segments
//!   per warp memory instruction;
//! * **occupancy** and latency hiding ([`config::DeviceConfig::occupancy`],
//!   [`exec::estimate_kernel`]);
//! * **shared-memory** banking ([`coalesce::bank_conflict_slots`]);
//! * **PCIe transfer** cost ([`config::LinkConfig`]) — what data-region reuse
//!   and interprocedural transfer optimization save;
//! * **atomic serialization** ([`exec`]) — why critical sections don't map;
//! * a cache-simulated **host CPU** baseline ([`cache`], [`config::HostConfig`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod error;
pub mod exec;
pub mod stats;
pub mod trace;

pub use buffer::{zero_digest, BufGen, Buffer, Digest128, ElemType, Payload};
pub use cache::{Cache, Hierarchy};
pub use coalesce::{bank_conflict_slots, segments_touched, AccessSummary, AffineRowMemo, SharedSummary, SiteWarpTrace};
pub use config::{DeviceConfig, HostConfig, LinkConfig, MachineConfig, Occupancy};
pub use error::SimError;
pub use exec::{
    estimate_kernel, estimate_kernel_traced, warp_issue_cycles, Bound, KernelCost, KernelFootprint, KernelTotals,
};
pub use stats::{Dir, Event, Summary, Timeline};
pub use trace::{NullSink, RecordingSink, TraceEvent, TraceSink};
