//! Simulation errors surfaced to the runtime instead of panicking.
//!
//! The functional device model distinguishes *model bugs* (which still
//! assert/panic, e.g. out-of-bounds kernel accesses — those indicate a
//! broken lowering) from *runtime protocol errors* that a real driver would
//! report through a status code, such as downloading an array that was
//! never allocated on the device. The latter are represented here and
//! propagated through `acceval`'s GPU runtime into the model-run validation
//! result.

/// An error reported by the simulated device/runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device-to-host download was requested for an array that was never
    /// allocated on the device.
    DownloadUnallocated {
        /// Name (or index, when the caller has no symbol table) of the array.
        array: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DownloadUnallocated { array } => {
                write!(f, "download of unallocated device array `{array}`")
            }
        }
    }
}

impl std::error::Error for SimError {}
