//! Kernel cost estimation.
//!
//! The functional executor (in `acceval-ir`) runs every simulated thread and
//! aggregates per-warp evidence into [`KernelTotals`]; this module turns the
//! totals into time using a first-order roofline model:
//!
//! ```text
//! kernel cycles = max(compute, dram bandwidth, dram latency, shared memory)
//!               + atomic serialization
//! ```
//!
//! * **compute** — total warp-instruction issue cycles spread over the SMs
//!   actually covered by the grid, scaled by the device's double-precision
//!   issue factor ([`DeviceConfig::dp_issue_factor`]): the evaluated codes
//!   are double-precision dominated, so generations with a weaker FP64:FP32
//!   ratio than the Fermi calibration baseline pay proportionally more
//!   issue cycles.
//! * **dram bandwidth** — 128-byte segments moved at the device's
//!   bytes-per-cycle. This is what punishes uncoalesced access: a stride-N
//!   loop moves up to 32x the useful bytes.
//! * **dram latency** — requests per SM serialized at `global_latency`,
//!   overlapped across the resident warps given by the occupancy calculation.
//!   Low-occupancy kernels (huge blocks, big shared footprints) become
//!   latency-bound here, reproducing the paper's HOTSPOT observation that
//!   outer-loop-only parallelization "does not provide enough threads to hide
//!   the global memory latency".
//! * **shared memory** — one warp-wide conflict-free access per SM per cycle;
//!   bank conflicts inflate slots.
//! * **atomics** — serialized at the memory controller; models why critical
//!   sections cannot be mapped efficiently and reductions need tree codes.

use serde::{Deserialize, Serialize};

use crate::config::{DeviceConfig, Occupancy};

/// Per-kernel resource declaration, fixed at launch time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // standard CUDA launch-resource quantities
pub struct KernelFootprint {
    pub threads_per_block: u32,
    pub shared_bytes_per_block: u32,
    pub regs_per_thread: u32,
    /// Total thread blocks in the grid.
    pub grid_blocks: u64,
}

impl KernelFootprint {
    /// Footprint with default register/shared usage.
    pub fn new(threads_per_block: u32, grid_blocks: u64) -> Self {
        KernelFootprint { threads_per_block, shared_bytes_per_block: 0, regs_per_thread: 20, grid_blocks }
    }
}

/// Aggregated execution evidence for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelTotals {
    /// Warps that executed (with at least one active lane).
    pub warps: u64,
    /// Sum over warps of issue cycles (max-lane ops + divergence penalty).
    pub issue_cycles: f64,
    /// Warp-wide global-memory instructions.
    pub global_requests: u64,
    /// 128-byte-segment transactions those instructions required.
    pub global_transactions: u64,
    /// Useful bytes (lane accesses x element size), for reporting.
    pub useful_bytes: u64,
    /// Serialized shared-memory slots (conflict-adjusted).
    pub shared_slots: u64,
    /// Serialized atomic slots.
    pub atomic_slots: u64,
    /// Texture-cache miss transactions (priced like global segments of the
    /// texture line size).
    pub tex_miss_lines: u64,
    /// Texture requests (hits are near-free but still issue).
    pub tex_requests: u64,
}

impl KernelTotals {
    /// Merge another tally (e.g. from a different warp batch) into this one.
    pub fn merge(&mut self, o: &KernelTotals) {
        self.warps += o.warps;
        self.issue_cycles += o.issue_cycles;
        self.global_requests += o.global_requests;
        self.global_transactions += o.global_transactions;
        self.useful_bytes += o.useful_bytes;
        self.shared_slots += o.shared_slots;
        self.atomic_slots += o.atomic_slots;
        self.tex_miss_lines += o.tex_miss_lines;
        self.tex_requests += o.tex_requests;
    }

    /// DRAM traffic actually moved, in bytes.
    pub fn traffic_bytes(&self, cfg: &DeviceConfig) -> u64 {
        self.global_transactions * cfg.segment_bytes as u64 + self.tex_miss_lines * cfg.tex_line_bytes as u64
    }

    /// Ratio of moved bytes to useful bytes (1.0 = perfectly coalesced
    /// 128-byte-dense traffic; large values indicate scattered access).
    pub fn traffic_amplification(&self, cfg: &DeviceConfig) -> f64 {
        if self.useful_bytes == 0 {
            0.0
        } else {
            self.traffic_bytes(cfg) as f64 / self.useful_bytes as f64
        }
    }
}

/// Cost breakdown of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // per-term roofline cycles, named by their term
pub struct KernelCost {
    /// Total device cycles (excluding launch overhead).
    pub cycles: f64,
    /// Wall time in seconds including launch overhead.
    pub time_secs: f64,
    pub compute_cycles: f64,
    pub mem_bw_cycles: f64,
    pub mem_lat_cycles: f64,
    pub shared_cycles: f64,
    pub atomic_cycles: f64,
    pub occupancy: Occupancy,
    /// Which term of the roofline dominated.
    pub bound: Bound,
}

/// The dominating roofline term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Bound {
    Compute,
    MemBandwidth,
    MemLatency,
    Shared,
    Atomic,
    LaunchOverhead,
}

/// Estimate the cost of a kernel launch from its footprint and totals.
pub fn estimate_kernel(cfg: &DeviceConfig, fp: &KernelFootprint, t: &KernelTotals) -> KernelCost {
    let occ = cfg.occupancy(fp.threads_per_block, fp.shared_bytes_per_block, fp.regs_per_thread);
    // SMs that actually receive work.
    let parallel_sms = (fp.grid_blocks.min(cfg.num_sms as u64) as f64).max(1.0);

    let compute_cycles = t.issue_cycles * cfg.dp_issue_factor() / (parallel_sms * cfg.warp_insts_per_sm_cycle());

    let traffic = t.traffic_bytes(cfg) as f64;
    let mem_bw_cycles = traffic / cfg.dram_bytes_per_cycle();

    // Requests per SM, serialized at the global latency, overlapped across
    // resident warps. Texture hits avoid DRAM but still have ~100-cycle
    // latency; fold them in at a discount.
    let resident = occ.resident_warps_per_sm.max(1) as f64;
    let lat_requests = t.global_requests as f64 + 0.2 * t.tex_requests as f64;
    let mem_lat_cycles = (lat_requests / parallel_sms) * cfg.global_latency_cycles as f64 / resident;

    let shared_cycles = t.shared_slots as f64 / parallel_sms;

    let atomic_cycles = t.atomic_slots as f64 * cfg.atomic_base_cycles as f64 / parallel_sms.sqrt();

    let body = compute_cycles.max(mem_bw_cycles).max(mem_lat_cycles).max(shared_cycles);
    let cycles = body + atomic_cycles;
    let time_secs = cfg.cycles_to_secs(cycles) + cfg.launch_overhead_us * 1e-6;

    let bound = {
        let launch_cycles = cfg.launch_overhead_us * 1e-6 * cfg.clock_ghz * 1e9;
        let candidates = [
            (Bound::Compute, compute_cycles),
            (Bound::MemBandwidth, mem_bw_cycles),
            (Bound::MemLatency, mem_lat_cycles),
            (Bound::Shared, shared_cycles),
            (Bound::Atomic, atomic_cycles),
            (Bound::LaunchOverhead, launch_cycles),
        ];
        candidates.iter().max_by(|a, b| a.1.partial_cmp(&b.1).expect("cost is finite")).expect("non-empty").0
    };

    KernelCost {
        cycles,
        time_secs,
        compute_cycles,
        mem_bw_cycles,
        mem_lat_cycles,
        shared_cycles,
        atomic_cycles,
        occupancy: occ,
        bound,
    }
}

impl KernelCost {
    /// Describe this launch as a [`TraceEvent::KernelLaunch`] carrying the
    /// full cost attribution (executors call this after any post-estimate
    /// adjustments, e.g. a reduction's second-stage launch overhead, so the
    /// event time matches the timeline exactly).
    ///
    /// [`TraceEvent::KernelLaunch`]: crate::trace::TraceEvent::KernelLaunch
    pub fn trace_event(
        &self,
        name: &str,
        fp: &KernelFootprint,
        t: &KernelTotals,
        cfg: &DeviceConfig,
    ) -> crate::trace::TraceEvent {
        crate::trace::TraceEvent::KernelLaunch {
            name: name.to_string(),
            footprint: *fp,
            cost: self.clone(),
            totals: *t,
            traffic_bytes: t.traffic_bytes(cfg),
        }
    }
}

/// [`estimate_kernel`], plus a [`TraceEvent::KernelLaunch`] carrying the
/// full cost attribution when the sink is enabled. The returned cost is
/// bit-identical to the untraced estimate.
///
/// [`TraceEvent::KernelLaunch`]: crate::trace::TraceEvent::KernelLaunch
pub fn estimate_kernel_traced(
    cfg: &DeviceConfig,
    fp: &KernelFootprint,
    t: &KernelTotals,
    name: &str,
    sink: &mut dyn crate::trace::TraceSink,
) -> KernelCost {
    let cost = estimate_kernel(cfg, fp, t);
    if sink.enabled() {
        sink.emit(cost.trace_event(name, fp, t, cfg));
    }
    cost
}

/// Issue cycles for one warp: the longest lane's dynamic op count plus a
/// fixed penalty per divergent branch row (a row where lanes of the warp
/// disagreed on a branch direction, forcing both paths to be issued).
pub fn warp_issue_cycles(lane_ops: &[u64], divergent_rows: u64) -> f64 {
    let max = lane_ops.iter().copied().max().unwrap_or(0) as f64;
    max + divergent_rows as f64 * DIVERGENCE_PENALTY_CYCLES
}

/// Extra issue cycles charged per divergent branch instance; approximates
/// the cost of issuing the not-taken path's instructions for masked lanes.
pub const DIVERGENCE_PENALTY_CYCLES: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn m2090() -> DeviceConfig {
        DeviceConfig::tesla_m2090()
    }

    #[test]
    fn compute_bound_kernel() {
        let cfg = m2090();
        let fp = KernelFootprint::new(256, 1024);
        let t = KernelTotals { warps: 8192, issue_cycles: 8192.0 * 10_000.0, ..Default::default() };
        let c = estimate_kernel(&cfg, &fp, &t);
        assert_eq!(c.bound, Bound::Compute);
        // 81.92M issue cycles over 16 SMs at 1 warp-inst/cycle = 5.12M cycles
        assert!((c.compute_cycles - 8192.0 * 10_000.0 / 16.0).abs() < 1.0);
    }

    #[test]
    fn bandwidth_bound_kernel() {
        let cfg = m2090();
        let fp = KernelFootprint::new(256, 1024);
        let t = KernelTotals {
            warps: 8192,
            issue_cycles: 8192.0,
            global_requests: 1_000_000,
            global_transactions: 32_000_000, // heavily uncoalesced
            useful_bytes: 128_000_000,
            ..Default::default()
        };
        let c = estimate_kernel(&cfg, &fp, &t);
        assert_eq!(c.bound, Bound::MemBandwidth);
        assert!(c.mem_bw_cycles > c.mem_lat_cycles);
    }

    #[test]
    fn uncoalesced_is_slower_than_coalesced() {
        let cfg = m2090();
        let fp = KernelFootprint::new(256, 1024);
        let mk = |tx: u64| KernelTotals {
            warps: 8192,
            issue_cycles: 8192.0 * 100.0,
            global_requests: 1_000_000,
            global_transactions: tx,
            useful_bytes: 128_000_000,
            ..Default::default()
        };
        let fast = estimate_kernel(&cfg, &fp, &mk(1_000_000));
        let slow = estimate_kernel(&cfg, &fp, &mk(16_000_000));
        assert!(slow.time_secs > 8.0 * fast.time_secs, "16x transactions should be ~16x slower when BW-bound");
    }

    #[test]
    fn low_occupancy_becomes_latency_bound() {
        let cfg = m2090();
        // Huge shared footprint: one block per SM, few warps to hide latency.
        let fp = KernelFootprint {
            threads_per_block: 64,
            shared_bytes_per_block: 40 * 1024,
            regs_per_thread: 20,
            grid_blocks: 16,
        };
        let t = KernelTotals {
            warps: 32,
            issue_cycles: 3200.0,
            global_requests: 100_000,
            global_transactions: 100_000,
            useful_bytes: 12_800_000,
            ..Default::default()
        };
        let c = estimate_kernel(&cfg, &fp, &t);
        assert_eq!(c.occupancy.blocks_per_sm, 1);
        assert_eq!(c.bound, Bound::MemLatency);

        // Same work at full occupancy is faster.
        let fp2 = KernelFootprint::new(256, 1024);
        let c2 = estimate_kernel(&cfg, &fp2, &t);
        assert!(c2.time_secs < c.time_secs);
    }

    #[test]
    fn atomics_serialize() {
        let cfg = m2090();
        let fp = KernelFootprint::new(256, 64);
        let t = KernelTotals { warps: 512, issue_cycles: 512.0, atomic_slots: 100_000, ..Default::default() };
        let c = estimate_kernel(&cfg, &fp, &t);
        assert_eq!(c.bound, Bound::Atomic);
        assert!(c.atomic_cycles > 1e6);
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let cfg = m2090();
        let fp = KernelFootprint::new(32, 1);
        let t = KernelTotals {
            warps: 1,
            issue_cycles: 50.0,
            global_requests: 4,
            global_transactions: 4,
            useful_bytes: 512,
            ..Default::default()
        };
        let c = estimate_kernel(&cfg, &fp, &t);
        assert_eq!(c.bound, Bound::LaunchOverhead);
        assert!(c.time_secs >= cfg.launch_overhead_us * 1e-6);
    }

    #[test]
    fn warp_issue_includes_divergence() {
        assert_eq!(warp_issue_cycles(&[10, 10, 10], 0), 10.0);
        assert_eq!(warp_issue_cycles(&[10, 4, 2], 0), 10.0);
        assert_eq!(warp_issue_cycles(&[10, 4, 2], 3), 10.0 + 3.0 * DIVERGENCE_PENALTY_CYCLES);
        assert_eq!(warp_issue_cycles(&[], 0), 0.0);
    }

    #[test]
    fn dp_issue_factor_scales_compute_term() {
        // A compute-bound kernel on a half-rate-DP device (factor 1.0) is
        // priced as before; a 1:8 GT200 pays 4x the compute cycles for the
        // same issue evidence.
        let fp = KernelFootprint::new(256, 1024);
        let t = KernelTotals { warps: 8192, issue_cycles: 8192.0 * 10_000.0, ..Default::default() };
        let fermi = estimate_kernel(&DeviceConfig::tesla_m2090(), &fp, &t);
        assert!((DeviceConfig::tesla_m2090().dp_issue_factor() - 1.0).abs() < 1e-12);
        let mut slow_dp = DeviceConfig::tesla_m2090();
        slow_dp.fp64_fp32_ratio = 1.0 / 8.0;
        let gt200ish = estimate_kernel(&slow_dp, &fp, &t);
        assert!((gt200ish.compute_cycles - 4.0 * fermi.compute_cycles).abs() < 1e-6);
    }

    #[test]
    fn totals_merge_adds() {
        let mut a = KernelTotals { warps: 1, issue_cycles: 2.0, global_requests: 3, ..Default::default() };
        let b = KernelTotals { warps: 10, issue_cycles: 20.0, global_requests: 30, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.warps, 11);
        assert_eq!(a.issue_cycles, 22.0);
        assert_eq!(a.global_requests, 33);
    }

    #[test]
    fn traffic_amplification_reflects_coalescing() {
        let cfg = m2090();
        let t = KernelTotals { global_transactions: 1000, useful_bytes: 128_000, ..Default::default() };
        assert!((t.traffic_amplification(&cfg) - 1.0).abs() < 1e-12);
        let bad = KernelTotals { global_transactions: 32_000, useful_bytes: 128_000, ..Default::default() };
        assert!((bad.traffic_amplification(&cfg) - 32.0).abs() < 1e-12);
    }
}
