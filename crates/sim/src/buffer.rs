//! Typed linear buffers shared by the host and device models.
//!
//! Functional state is held as `f64` or `i64` vectors regardless of the
//! declared element type; the element type only affects the *traffic model*
//! (bytes moved per access/transfer). This keeps numerics simple and exact
//! while letting `float` benchmarks enjoy half the memory traffic of
//! `double` ones, as on real hardware.

use serde::{Deserialize, Serialize};

/// Element type of an array. Determines bytes-per-element for the traffic
/// model; values are computed in f64/i64 regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemType {
    /// 32-bit float (4-byte traffic).
    F32,
    /// 64-bit float (8-byte traffic).
    F64,
    /// 32-bit integer (4-byte traffic).
    I32,
    /// 64-bit integer (8-byte traffic).
    I64,
}

impl ElemType {
    /// Bytes occupied by one element in memory.
    #[inline]
    pub fn size_bytes(self) -> u32 {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F64 | ElemType::I64 => 8,
        }
    }

    /// Whether the element is a floating-point type.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, ElemType::F32 | ElemType::F64)
    }
}

/// Storage payload: floats or integers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Floating-point storage.
    F(Vec<f64>),
    /// Integer storage.
    I(Vec<i64>),
}

impl Payload {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Payload::F(v) => v.len(),
            Payload::I(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A linear buffer with a declared element type.
///
/// Multi-dimensional arrays are stored flattened row-major; the IR layer is
/// responsible for index linearisation (and for modelling layout changes such
/// as transposition, which alter the addresses the timing model sees).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Buffer {
    /// Declared element type (drives bytes-per-element in the traffic model).
    pub elem: ElemType,
    /// Functional contents.
    pub data: Payload,
}

impl Buffer {
    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(elem: ElemType, len: usize) -> Self {
        let data = if elem.is_float() { Payload::F(vec![0.0; len]) } else { Payload::I(vec![0; len]) };
        Buffer { elem, data }
    }

    /// Build from f64 values (elem must be a float type).
    pub fn from_f64(elem: ElemType, v: Vec<f64>) -> Self {
        assert!(elem.is_float(), "from_f64 requires a float element type");
        Buffer { elem, data: Payload::F(v) }
    }

    /// Build from i64 values (elem must be an integer type).
    pub fn from_i64(elem: ElemType, v: Vec<i64>) -> Self {
        assert!(!elem.is_float(), "from_i64 requires an integer element type");
        Buffer { elem, data: Payload::I(v) }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes (for the transfer model).
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.elem.size_bytes() as u64
    }

    /// Describe a PCIe transfer of this buffer as a
    /// [`TraceEvent::Transfer`] (the caller supplies the link time, which
    /// depends on the machine's link model).
    ///
    /// [`TraceEvent::Transfer`]: crate::trace::TraceEvent::Transfer
    pub fn transfer_event(&self, array: &str, dir: crate::stats::Dir, secs: f64) -> crate::trace::TraceEvent {
        crate::trace::TraceEvent::Transfer { array: array.to_string(), dir, bytes: self.size_bytes(), secs }
    }

    /// Read element `i` as f64 (integers are converted).
    #[inline]
    pub fn get_f(&self, i: usize) -> f64 {
        match &self.data {
            Payload::F(v) => v[i],
            Payload::I(v) => v[i] as f64,
        }
    }

    /// Read element `i` as i64 (floats are truncated).
    #[inline]
    pub fn get_i(&self, i: usize) -> i64 {
        match &self.data {
            Payload::F(v) => v[i] as i64,
            Payload::I(v) => v[i],
        }
    }

    /// Write element `i` from an f64 value.
    #[inline]
    pub fn set_f(&mut self, i: usize, x: f64) {
        match &mut self.data {
            Payload::F(v) => v[i] = x,
            Payload::I(v) => v[i] = x as i64,
        }
    }

    /// Write element `i` from an i64 value.
    #[inline]
    pub fn set_i(&mut self, i: usize, x: i64) {
        match &mut self.data {
            Payload::F(v) => v[i] = x as f64,
            Payload::I(v) => v[i] = x,
        }
    }

    /// Copy the contents of `src` into this buffer in place, reusing the
    /// existing allocation. Both buffers must have the same element type and
    /// length (use `clone()` when shapes may differ).
    pub fn copy_from(&mut self, src: &Buffer) {
        assert_eq!(self.elem, src.elem, "copy_from: element type mismatch");
        match (&mut self.data, &src.data) {
            (Payload::F(d), Payload::F(s)) => {
                assert_eq!(d.len(), s.len(), "copy_from: length mismatch");
                d.copy_from_slice(s);
            }
            (Payload::I(d), Payload::I(s)) => {
                assert_eq!(d.len(), s.len(), "copy_from: length mismatch");
                d.copy_from_slice(s);
            }
            _ => panic!("copy_from: payload kind mismatch"),
        }
    }

    /// Byte address of element `i` within this buffer (base 0).
    #[inline]
    pub fn elem_addr(&self, i: usize) -> u64 {
        i as u64 * self.elem.size_bytes() as u64
    }

    /// View as f64 slice (float buffers only).
    pub fn as_f64(&self) -> &[f64] {
        match &self.data {
            Payload::F(v) => v,
            Payload::I(_) => panic!("buffer holds integers"),
        }
    }

    /// View as i64 slice (integer buffers only).
    pub fn as_i64(&self) -> &[i64] {
        match &self.data {
            Payload::I(v) => v,
            Payload::F(_) => panic!("buffer holds floats"),
        }
    }

    /// 128-bit content digest of this buffer (element type, length, and
    /// every element's raw bit pattern). Used as the content-addressing key
    /// component for launch memoization; collisions would silently replay a
    /// wrong launch, hence two independent 64-bit fold lanes rather than one.
    pub fn content_digest(&self) -> u128 {
        let mut d = Digest128::new();
        d.push(elem_tag(self.elem));
        d.push(self.len() as u64);
        match &self.data {
            Payload::F(v) => {
                for x in v {
                    d.push(x.to_bits());
                }
            }
            Payload::I(v) => {
                for x in v {
                    d.push(*x as u64);
                }
            }
        }
        d.finish()
    }

    /// Seed a [`Digest128`] with this buffer's header (element-type tag and
    /// length) exactly as [`Buffer::content_digest`] does. Callers that
    /// already walk every element for another reason can fold the element
    /// bits into the returned digest themselves and obtain the same value as
    /// `content_digest` in a single pass.
    pub fn digest_header(&self) -> Digest128 {
        let mut d = Digest128::new();
        d.push(elem_tag(self.elem));
        d.push(self.len() as u64);
        d
    }

    /// Maximum absolute difference against another float buffer.
    pub fn max_abs_diff(&self, other: &Buffer) -> f64 {
        match (&self.data, &other.data) {
            (Payload::F(a), Payload::F(b)) => {
                assert_eq!(a.len(), b.len(), "length mismatch");
                a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
            }
            (Payload::I(a), Payload::I(b)) => {
                assert_eq!(a.len(), b.len(), "length mismatch");
                a.iter().zip(b).map(|(x, y)| (x - y).abs() as f64).fold(0.0, f64::max)
            }
            _ => panic!("payload kind mismatch"),
        }
    }
}

#[inline]
fn elem_tag(elem: ElemType) -> u64 {
    match elem {
        ElemType::F32 => 1,
        ElemType::F64 => 2,
        ElemType::I32 => 3,
        ElemType::I64 => 4,
    }
}

/// Digest of the all-zero buffer of a given shape, without materializing it.
/// Lets `DeviceState::alloc` recognize a device buffer that already holds
/// zeros and skip the clear.
pub fn zero_digest(elem: ElemType, len: usize) -> u128 {
    let mut d = Digest128::new();
    d.push(elem_tag(elem));
    d.push(len as u64);
    let word = if elem.is_float() { 0f64.to_bits() } else { 0u64 };
    for _ in 0..len {
        d.push(word);
    }
    d.finish()
}

/// Two-lane multiply-xor fold producing a 128-bit digest. Same per-lane
/// recurrence as the coalescing layer's `FoldHasher`, run twice with
/// distinct odd multipliers so the lanes decorrelate.
#[derive(Debug, Clone, Copy)]
pub struct Digest128 {
    lo: u64,
    hi: u64,
}

impl Digest128 {
    const MUL_LO: u64 = 0x9e37_79b9_7f4a_7c15;
    const MUL_HI: u64 = 0xc2b2_ae3d_27d4_eb4f;

    /// Fresh digest state.
    #[inline]
    pub fn new() -> Self {
        Digest128 { lo: 0x243f_6a88_85a3_08d3, hi: 0x1319_8a2e_0370_7344 }
    }

    /// Fold one 64-bit word into both lanes.
    #[inline]
    pub fn push(&mut self, w: u64) {
        self.lo = (self.lo ^ w).wrapping_mul(Self::MUL_LO).rotate_left(29);
        self.hi = (self.hi ^ w).wrapping_mul(Self::MUL_HI).rotate_left(31);
    }

    /// Final 128-bit value.
    #[inline]
    pub fn finish(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl Default for Digest128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Monotonic generation tag for one device buffer, with a lazily computed
/// content digest memoized per generation. Every mutation of the buffer
/// bumps the generation; a digest request re-hashes only when the memo is
/// stale, so steady-state cache probes over unchanged buffers hash nothing.
#[derive(Debug, Clone, Default)]
pub struct BufGen {
    gen: u64,
    memo: Option<(u64, u128)>,
}

impl BufGen {
    /// Fresh tag at generation 0 with no memoized digest.
    pub fn new() -> Self {
        BufGen::default()
    }

    /// Current generation.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Record a mutation: advance the generation, invalidating the memo.
    #[inline]
    pub fn bump(&mut self) {
        self.gen += 1;
        self.memo = None;
    }

    /// Content digest of `buf` at the current generation, re-hashing only
    /// when no digest is memoized for this generation. Returns the digest
    /// and whether a hash was actually computed (for cost accounting).
    pub fn digest(&mut self, buf: &Buffer) -> (u128, bool) {
        if let Some((g, d)) = self.memo {
            if g == self.gen {
                return (d, false);
            }
        }
        let d = buf.content_digest();
        self.memo = Some((self.gen, d));
        (d, true)
    }

    /// Install a known digest for the current generation (e.g. after a
    /// cache replay wrote contents whose digest was stored with the entry),
    /// so the next probe doesn't re-hash.
    #[inline]
    pub fn prime(&mut self, digest: u128) {
        self.memo = Some((self.gen, digest));
    }

    /// The memoized digest for the current generation, if any (no hashing).
    #[inline]
    pub fn memoized(&self) -> Option<u128> {
        match self.memo {
            Some((g, d)) if g == self.gen => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemType::F32.size_bytes(), 4);
        assert_eq!(ElemType::F64.size_bytes(), 8);
        assert_eq!(ElemType::I32.size_bytes(), 4);
        assert_eq!(ElemType::I64.size_bytes(), 8);
    }

    #[test]
    fn zeroed_and_roundtrip() {
        let mut b = Buffer::zeroed(ElemType::F32, 8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.size_bytes(), 32);
        b.set_f(3, 2.5);
        assert_eq!(b.get_f(3), 2.5);
        assert_eq!(b.get_i(3), 2);
    }

    #[test]
    fn integer_buffer_conversions() {
        let mut b = Buffer::zeroed(ElemType::I32, 4);
        b.set_f(0, 7.9);
        assert_eq!(b.get_i(0), 7);
        b.set_i(1, -3);
        assert_eq!(b.get_f(1), -3.0);
    }

    #[test]
    fn addresses_scale_with_elem_size() {
        let b4 = Buffer::zeroed(ElemType::F32, 4);
        let b8 = Buffer::zeroed(ElemType::F64, 4);
        assert_eq!(b4.elem_addr(3), 12);
        assert_eq!(b8.elem_addr(3), 24);
    }

    #[test]
    fn max_abs_diff_float() {
        let a = Buffer::from_f64(ElemType::F64, vec![1.0, 2.0, 3.0]);
        let b = Buffer::from_f64(ElemType::F64, vec![1.0, 2.5, 3.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_f64_rejects_int_type() {
        let _ = Buffer::from_f64(ElemType::I32, vec![1.0]);
    }

    #[test]
    fn content_digest_separates_type_len_and_values() {
        let a = Buffer::from_f64(ElemType::F64, vec![1.0, 2.0]);
        let b = Buffer::from_f64(ElemType::F64, vec![1.0, 2.0]);
        assert_eq!(a.content_digest(), b.content_digest());
        let c = Buffer::from_f64(ElemType::F64, vec![1.0, 2.5]);
        assert_ne!(a.content_digest(), c.content_digest());
        let d = Buffer::from_f64(ElemType::F32, vec![1.0, 2.0]);
        assert_ne!(a.content_digest(), d.content_digest());
        let e = Buffer::from_f64(ElemType::F64, vec![1.0, 2.0, 0.0]);
        assert_ne!(a.content_digest(), e.content_digest());
    }

    #[test]
    fn zero_digest_matches_zeroed_buffer() {
        for (elem, len) in [(ElemType::F64, 7), (ElemType::F32, 0), (ElemType::I32, 3), (ElemType::I64, 16)] {
            assert_eq!(zero_digest(elem, len), Buffer::zeroed(elem, len).content_digest());
        }
    }

    #[test]
    fn bufgen_memoizes_per_generation() {
        let mut b = Buffer::from_f64(ElemType::F64, vec![3.0, 4.0]);
        let mut g = BufGen::new();
        let (d0, hashed0) = g.digest(&b);
        assert!(hashed0, "first probe must hash");
        let (d1, hashed1) = g.digest(&b);
        assert!(!hashed1, "second probe at same generation must be memoized");
        assert_eq!(d0, d1);
        b.set_f(0, 9.0);
        g.bump();
        assert_eq!(g.memoized(), None);
        let (d2, hashed2) = g.digest(&b);
        assert!(hashed2, "post-bump probe must re-hash");
        assert_ne!(d0, d2);
        g.bump();
        g.prime(0xdead_beef);
        let (d3, hashed3) = g.digest(&b);
        assert!(!hashed3, "primed digest must be served without hashing");
        assert_eq!(d3, 0xdead_beef);
    }
}
