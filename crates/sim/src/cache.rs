//! A small set-associative LRU cache simulator.
//!
//! Used twice: (i) the host CPU's L1/L2 hierarchy that prices the sequential
//! baseline's memory accesses, and (ii) the device's texture cache when a
//! model places read-only irregular data in texture memory.

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // per-set tag list, most-recent first
    ways: usize,
    line_bytes: u64,
    set_mask: u64,
    set_shift: u32,
    /// Hits observed so far.
    pub hits: u64,
    /// Misses observed so far.
    pub misses: u64,
}

impl Cache {
    /// Build a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines. Capacity is rounded down to a power-of-two set
    /// count (minimum one set).
    pub fn new(capacity_bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1);
        let lines = (capacity_bytes / line_bytes).max(1);
        let mut num_sets = (lines / ways).max(1);
        // round down to power of two for cheap indexing
        num_sets = 1 << (63 - (num_sets as u64).leading_zeros());
        Cache {
            sets: vec![Vec::with_capacity(ways as usize); num_sets as usize],
            ways: ways as usize,
            line_bytes: line_bytes as u64,
            set_mask: (num_sets - 1) as u64,
            set_shift: line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Access byte address `addr`; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let tags = &mut self.sets[set];
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            // move to MRU position
            let t = tags.remove(pos);
            tags.insert(0, t);
            self.hits += 1;
            true
        } else {
            if tags.len() == self.ways {
                tags.pop();
            }
            tags.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Hit rate over all accesses so far (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all contents, keep statistics.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Snapshot the cumulative hit/miss counters as a
    /// [`TraceEvent::CacheCounters`] labelled `cache`.
    ///
    /// [`TraceEvent::CacheCounters`]: crate::trace::TraceEvent::CacheCounters
    pub fn trace_event(&self, cache: &str) -> crate::trace::TraceEvent {
        crate::trace::TraceEvent::CacheCounters { cache: cache.to_string(), hits: self.hits, misses: self.misses }
    }
}

/// Two-level hierarchy with per-level hit costs; returns cycles per access.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // levels + their per-hit costs
pub struct Hierarchy {
    pub l1: Cache,
    pub l2: Cache,
    pub l1_hit_cycles: f64,
    pub l2_hit_cycles: f64,
    pub mem_cycles: f64,
}

impl Hierarchy {
    /// Assemble a hierarchy from its levels and per-level hit costs.
    pub fn new(l1: Cache, l2: Cache, l1_hit_cycles: f64, l2_hit_cycles: f64, mem_cycles: f64) -> Self {
        Hierarchy { l1, l2, l1_hit_cycles, l2_hit_cycles, mem_cycles }
    }

    /// Price one access to byte address `addr`.
    #[inline]
    pub fn access_cycles(&mut self, addr: u64) -> f64 {
        if self.l1.access(addr) {
            self.l1_hit_cycles
        } else if self.l2.access(addr) {
            self.l2_hit_cycles
        } else {
            self.mem_cycles
        }
    }

    /// Empty both levels (e.g. between benchmark runs), keeping statistics.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reuse_hits() {
        let mut c = Cache::new(1024, 4, 64);
        assert!(!c.access(0));
        assert!(c.access(8)); // same line
        assert!(c.access(63));
        assert!(!c.access(64)); // next line
        assert_eq!(c.misses, 2);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set of 2 ways: lines A, B fill it; touching A then adding C evicts B.
        let mut c = Cache::new(128, 2, 64);
        assert_eq!(c.sets.len(), 1);
        assert!(!c.access(0)); // A
        assert!(!c.access(64)); // B
        assert!(c.access(0)); // A -> MRU
        assert!(!c.access(128)); // C evicts B
        assert!(c.access(0)); // A still present
        assert!(!c.access(64)); // B gone
    }

    #[test]
    fn capacity_miss_on_large_stream() {
        let mut c = Cache::new(4096, 8, 64);
        // stream 1 MiB twice: second pass still misses (capacity)
        for _ in 0..2 {
            for a in (0..1_048_576u64).step_by(64) {
                c.access(a);
            }
        }
        assert!(c.hit_rate() < 0.01);
    }

    #[test]
    fn small_working_set_hits_on_second_pass() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        for pass in 0..2 {
            let mut hits = 0;
            for a in (0..16_384u64).step_by(64) {
                if c.access(a) {
                    hits += 1;
                }
            }
            if pass == 1 {
                assert_eq!(hits, 256);
            }
        }
    }

    #[test]
    fn hierarchy_prices_levels() {
        let l1 = Cache::new(128, 2, 64);
        let l2 = Cache::new(4096, 8, 64);
        let mut h = Hierarchy::new(l1, l2, 1.0, 8.0, 45.0);
        assert_eq!(h.access_cycles(0), 45.0); // cold
        assert_eq!(h.access_cycles(0), 1.0); // L1 hit
                                             // evict line 0 from tiny L1 by touching two more lines in its set
        h.access_cycles(128);
        h.access_cycles(256);
        assert_eq!(h.access_cycles(0), 8.0); // L1 miss, L2 hit
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = Cache::new(1024, 4, 64);
        c.access(0);
        c.access(0);
        let hits = c.hits;
        c.flush();
        assert_eq!(c.hits, hits);
        assert!(!c.access(0));
    }
}
