//! Structured execution tracing: a zero-cost-when-disabled event stream
//! threaded through the simulator and the evaluation sweep.
//!
//! Every mechanism the cost model prices (kernel roofline terms, PCIe
//! transfers, per-site coalescing, cache behaviour) can emit a
//! [`TraceEvent`] into a [`TraceSink`]. The default sink is [`NullSink`]:
//! call sites guard event *construction* behind [`TraceSink::enabled`], so
//! a disabled trace never allocates, formats, or clones anything — the
//! simulated numbers are bit-identical with tracing on or off, and the
//! untraced path pays only one virtual `enabled()` call per event site.
//!
//! Events are emitted in deterministic simulation order (warp loops reduce
//! into per-site accumulators that are flushed in site order; the sweep
//! collects per-task streams by task index), so a recorded trace is
//! byte-stable across thread counts and runs.

use serde::Serialize;

use crate::exec::{KernelCost, KernelFootprint, KernelTotals};
use crate::stats::Dir;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// Sequential host execution between device operations.
    Host {
        /// Phase label (e.g. `"host"`, `"region-host"`).
        label: String,
        /// Simulated seconds.
        secs: f64,
    },
    /// A PCIe transfer.
    Transfer {
        /// Array being moved.
        array: String,
        /// Transfer direction.
        dir: Dir,
        /// Payload size in bytes.
        bytes: u64,
        /// Simulated seconds on the link.
        secs: f64,
    },
    /// A kernel launch with its full cost attribution.
    KernelLaunch {
        /// Kernel name.
        name: String,
        /// Launch-time resource declaration (grid, block, shared, regs).
        footprint: KernelFootprint,
        /// Roofline cost breakdown (per-term cycles, occupancy, bound).
        cost: KernelCost,
        /// Aggregated execution evidence (requests, transactions, bytes).
        totals: KernelTotals,
        /// DRAM bytes actually moved (`totals.traffic_bytes(cfg)`).
        traffic_bytes: u64,
    },
    /// Per-static-site coalescing evidence for one kernel launch, summed
    /// over all warps. Emitted in site order.
    CoalesceSite {
        /// Kernel the site belongs to.
        kernel: String,
        /// Static site index within the kernel body.
        site: u32,
        /// Array the site accesses.
        array: String,
        /// Memory space the access was served from.
        space: String,
        /// Warp-wide memory instructions issued.
        requests: u64,
        /// Transactions (global segments, or shared-fill segments).
        transactions: u64,
        /// Lane-level accesses (for useful-bytes accounting).
        lane_accesses: u64,
        /// Serialized shared-memory slots (0 for pure global sites).
        shared_slots: u64,
    },
    /// Cumulative hit/miss counters of a simulated cache at a point in the
    /// run (e.g. the texture cache after a kernel launch).
    CacheCounters {
        /// Which cache (e.g. `"kernelname/texture"`).
        cache: String,
        /// Hits observed so far.
        hits: u64,
        /// Misses observed so far.
        misses: u64,
    },
    /// One sweep task's span, with cache provenance: whether the CPU oracle
    /// and the compiled program were served from the memo tables.
    TaskSpan {
        /// Index into the sweep's enumerated task list.
        task: usize,
        /// Benchmark name.
        benchmark: String,
        /// Programming-model name.
        model: String,
        /// Tuning point (`None` = the model's default point).
        tuning: Option<String>,
        /// True if the CPU oracle was a memo hit.
        oracle_cached: bool,
        /// True if the compile was a memo hit (geometry retargets count).
        compile_cached: bool,
    },
}

impl TraceEvent {
    /// Simulated seconds this event contributes to the timeline (0 for
    /// instantaneous evidence events).
    pub fn secs(&self) -> f64 {
        match self {
            TraceEvent::Host { secs, .. } => *secs,
            TraceEvent::Transfer { secs, .. } => *secs,
            TraceEvent::KernelLaunch { cost, .. } => cost.time_secs,
            _ => 0.0,
        }
    }

    /// Approximate bytes this event occupies in memory: the enum footprint
    /// plus the heap behind its strings. Used by caches that hold captured
    /// event slices under a byte cap.
    pub fn resident_bytes(&self) -> u64 {
        let heap = match self {
            TraceEvent::Host { label, .. } => label.len(),
            TraceEvent::Transfer { array, .. } => array.len(),
            TraceEvent::KernelLaunch { name, .. } => name.len(),
            TraceEvent::CoalesceSite { kernel, array, space, .. } => kernel.len() + array.len() + space.len(),
            TraceEvent::CacheCounters { cache, .. } => cache.len(),
            TraceEvent::TaskSpan { benchmark, model, tuning, .. } => {
                benchmark.len() + model.len() + tuning.as_ref().map_or(0, String::len)
            }
        };
        (std::mem::size_of::<TraceEvent>() + heap) as u64
    }
}

/// A consumer of trace events.
///
/// Implementations advertise whether they want events via [`enabled`];
/// producers must check it *before* constructing an event, so disabled
/// tracing is free. `emit` takes `&mut self` so sinks can accumulate
/// without interior mutability.
///
/// [`enabled`]: TraceSink::enabled
pub trait TraceSink {
    /// Whether events should be constructed and emitted at all.
    fn enabled(&self) -> bool;
    /// Consume one event. Only called when [`TraceSink::enabled`] is true.
    fn emit(&mut self, e: TraceEvent);
}

/// The disabled sink: reports `enabled() == false` and drops anything
/// emitted anyway. All untraced entry points thread this through.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&mut self, _e: TraceEvent) {}
}

/// A sink that records every event in emission order.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Take the recorded events, leaving the sink empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }
    fn emit(&mut self, e: TraceEvent) {
        self.events.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_drops() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(TraceEvent::Host { label: "x".into(), secs: 1.0 });
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut s = RecordingSink::new();
        assert!(s.enabled());
        s.emit(TraceEvent::Host { label: "a".into(), secs: 1.0 });
        s.emit(TraceEvent::Host { label: "b".into(), secs: 2.0 });
        assert_eq!(s.events.len(), 2);
        let taken = s.take();
        assert!(s.events.is_empty());
        assert!(matches!(&taken[0], TraceEvent::Host { label, .. } if label == "a"));
    }

    #[test]
    fn event_secs_only_for_timed_events() {
        let e = TraceEvent::CacheCounters { cache: "tex".into(), hits: 1, misses: 2 };
        assert_eq!(e.secs(), 0.0);
        let t = TraceEvent::Transfer { array: "a".into(), dir: Dir::HostToDevice, bytes: 4, secs: 0.5 };
        assert_eq!(t.secs(), 0.5);
    }
}
