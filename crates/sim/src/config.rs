//! Machine descriptions for the simulated GPU device and host CPU.
//!
//! The default presets model the evaluation platform of Lee & Vetter (SC'12):
//! an NVIDIA Tesla M2090 (Fermi GF110: 16 SMs x 32 cores, 1.3 GHz, 6 GB GDDR5
//! at 177 GB/s) hosted by an Intel Xeon X5660-class CPU at 2.8 GHz, connected
//! by PCIe 2.0.
//!
//! [`DeviceConfig`] is a *device-generation family*, not one machine: the
//! [`DeviceConfig::presets`] table spans Tesla (GT200), Fermi, Kepler,
//! Pascal, and Volta-class parts, differing in SM counts and clocks, cache
//! hierarchy sizes, coalescing segment rules (128-byte Fermi segments vs
//! 32-byte post-Fermi sectors), double-precision throughput ratios, and
//! whether a dedicated texture path exists at all
//! ([`DeviceConfig::has_texture_path`]). `ACCEVAL_DEVICE` selects a preset
//! by name ([`DeviceConfig::from_env`]).

use serde::{Deserialize, Serialize};

/// Description of the simulated CUDA device.
///
/// All latencies and throughputs are expressed in device cycles or
/// bytes-per-cycle so the timing model is clock-independent; [`DeviceConfig::clock_ghz`]
/// converts cycles to seconds at the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Scalar cores per SM (Fermi: 32).
    pub cores_per_sm: u32,
    /// SIMT width; threads per warp.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// Global-memory load-to-use latency in cycles.
    pub global_latency_cycles: u64,
    /// Size of a global-memory transaction segment in bytes (Fermi: 128).
    pub segment_bytes: u32,
    /// Number of shared-memory banks per SM.
    pub shared_banks: u32,
    /// Shared memory per SM in bytes.
    pub shared_per_sm: u32,
    /// Register file entries (32-bit) per SM.
    pub regs_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block accepted by the launch validator.
    pub max_threads_per_block: u32,
    /// Fixed kernel-launch overhead in microseconds (driver + dispatch).
    pub launch_overhead_us: f64,
    /// Cost in cycles of one atomic RMW that hits no contention.
    pub atomic_base_cycles: u64,
    /// Constant-cache capacity per SM in bytes (broadcast reads are ~free on hit).
    pub const_cache_bytes: u32,
    /// Read-only data cache capacity per SM in bytes: the texture cache on
    /// generations with a dedicated texture path, the unified L1/texture
    /// cache otherwise.
    pub tex_cache_bytes: u32,
    /// Read-only cache line size in bytes (texture line, or the unified-L1
    /// sector on generations without a texture path).
    pub tex_line_bytes: u32,
    /// Device-wide L2 capacity in bytes. Post-Fermi global loads miss L1 and
    /// coalesce at L2 sector granularity, which is why those presets pair a
    /// large `l2_bytes` with a small [`DeviceConfig::segment_bytes`].
    pub l2_bytes: u32,
    /// Double-precision throughput as a fraction of single-precision
    /// (FP64:FP32); 0.5 on full-rate Tesla parts, 1/3 on Kepler GK110B,
    /// 1/8 on GT200. Feeds [`DeviceConfig::dp_issue_factor`].
    pub fp64_fp32_ratio: f64,
    /// Whether the device has a dedicated texture path. When `false`
    /// (Pascal/Volta: read-only data flows through the unified L1), kernels
    /// that place arrays in texture space are priced through the generic
    /// cached global path instead: hits stay on-chip, misses move ordinary
    /// global segments, and requests pay global (not texture) latency.
    pub has_texture_path: bool,
}

/// A named device preset: the canonical generation slug paired with its
/// constructor (see [`DeviceConfig::presets`]).
pub type DevicePreset = (&'static str, fn() -> DeviceConfig);

impl DeviceConfig {
    /// NVIDIA Tesla M2090 (the paper's platform).
    pub fn tesla_m2090() -> Self {
        DeviceConfig {
            name: "Tesla M2090".into(),
            num_sms: 16,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.3,
            dram_bw_gbs: 177.0,
            global_latency_cycles: 600,
            segment_bytes: 128,
            shared_banks: 32,
            shared_per_sm: 48 * 1024,
            regs_per_sm: 32768,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            launch_overhead_us: 5.0,
            atomic_base_cycles: 120,
            const_cache_bytes: 8 * 1024,
            tex_cache_bytes: 12 * 1024,
            tex_line_bytes: 32,
            l2_bytes: 768 * 1024,
            fp64_fp32_ratio: 0.5,
            has_texture_path: true,
        }
    }

    /// Older Tesla C1060-class device (GT200), useful for sensitivity studies:
    /// fewer resident warps and no L1-era coalescing relaxations are modelled
    /// beyond a smaller segment.
    pub fn tesla_c1060() -> Self {
        DeviceConfig {
            name: "Tesla C1060".into(),
            num_sms: 30,
            cores_per_sm: 8,
            warp_size: 32,
            clock_ghz: 1.296,
            dram_bw_gbs: 102.0,
            global_latency_cycles: 550,
            segment_bytes: 64,
            shared_banks: 16,
            shared_per_sm: 16 * 1024,
            regs_per_sm: 16384,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            launch_overhead_us: 7.0,
            atomic_base_cycles: 200,
            const_cache_bytes: 8 * 1024,
            tex_cache_bytes: 8 * 1024,
            tex_line_bytes: 32,
            l2_bytes: 0, // GT200 has no unified L2 for global loads
            fp64_fp32_ratio: 1.0 / 8.0,
            has_texture_path: true,
        }
    }

    /// NVIDIA Tesla K40 (Kepler GK110B). Post-Fermi coalescing: global loads
    /// bypass L1 and coalesce at 32-byte L2 sectors; the 48 KB read-only
    /// (texture) cache per SMX survives as a dedicated path. FP64 runs at
    /// one third of the FP32 rate.
    pub fn kepler_k40() -> Self {
        DeviceConfig {
            name: "Tesla K40".into(),
            num_sms: 15,
            cores_per_sm: 192,
            warp_size: 32,
            clock_ghz: 0.745,
            dram_bw_gbs: 288.0,
            global_latency_cycles: 500,
            segment_bytes: 32,
            shared_banks: 32,
            shared_per_sm: 48 * 1024,
            regs_per_sm: 65536,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            launch_overhead_us: 5.0,
            atomic_base_cycles: 100,
            const_cache_bytes: 8 * 1024,
            tex_cache_bytes: 48 * 1024,
            tex_line_bytes: 32,
            l2_bytes: 1536 * 1024,
            fp64_fp32_ratio: 1.0 / 3.0,
            has_texture_path: true,
        }
    }

    /// NVIDIA Tesla P100 (Pascal GP100). No dedicated texture path: read-only
    /// data flows through the 24 KB unified L1/texture cache per SM, so
    /// texture placements are priced through the generic cached path.
    /// Full-rate FP64 (1:2).
    pub fn pascal_p100() -> Self {
        DeviceConfig {
            name: "Tesla P100".into(),
            num_sms: 56,
            cores_per_sm: 64,
            warp_size: 32,
            clock_ghz: 1.328,
            dram_bw_gbs: 732.0,
            global_latency_cycles: 450,
            segment_bytes: 32,
            shared_banks: 32,
            shared_per_sm: 64 * 1024,
            regs_per_sm: 65536,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            launch_overhead_us: 4.0,
            atomic_base_cycles: 60,
            const_cache_bytes: 8 * 1024,
            tex_cache_bytes: 24 * 1024,
            tex_line_bytes: 32,
            l2_bytes: 4096 * 1024,
            fp64_fp32_ratio: 0.5,
            has_texture_path: false,
        }
    }

    /// NVIDIA Tesla V100 (Volta GV100). Unified L1/shared/texture storage
    /// (128 KB per SM, up to 96 KB usable as shared memory); like Pascal,
    /// read-only data goes through the generic cached path. Full-rate FP64.
    pub fn volta_v100() -> Self {
        DeviceConfig {
            name: "Tesla V100".into(),
            num_sms: 80,
            cores_per_sm: 64,
            warp_size: 32,
            clock_ghz: 1.38,
            dram_bw_gbs: 900.0,
            global_latency_cycles: 400,
            segment_bytes: 32,
            shared_banks: 32,
            shared_per_sm: 96 * 1024,
            regs_per_sm: 65536,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            launch_overhead_us: 3.5,
            atomic_base_cycles: 30,
            const_cache_bytes: 8 * 1024,
            tex_cache_bytes: 32 * 1024,
            tex_line_bytes: 32,
            l2_bytes: 6144 * 1024,
            fp64_fp32_ratio: 0.5,
            has_texture_path: false,
        }
    }

    /// DRAM bandwidth expressed in bytes per device cycle.
    #[inline]
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_gbs / self.clock_ghz
    }

    /// Total scalar cores on the device.
    #[inline]
    pub fn total_cores(&self) -> u32 {
        self.num_sms * self.cores_per_sm
    }

    /// Convert device cycles to seconds.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// Warp-instruction issue throughput per SM per cycle.
    ///
    /// A Fermi SM with 32 cores retires one full 32-lane warp instruction per
    /// cycle; a GT200 SM with 8 cores needs 4 cycles per warp instruction.
    #[inline]
    pub fn warp_insts_per_sm_cycle(&self) -> f64 {
        self.cores_per_sm as f64 / self.warp_size as f64
    }

    /// Number of warps a thread block of `threads` threads occupies.
    #[inline]
    pub fn warps_per_block(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }

    /// Issue-cycle multiplier for the double-precision-dominated codes this
    /// evaluation runs, relative to the Fermi-class calibration baseline.
    ///
    /// The cost model's per-op issue charges were calibrated on the paper's
    /// platform (M2090, half-rate FP64), so a device with ratio 1:2 issues at
    /// factor 1.0; a device with a weaker FP64:FP32 ratio pays
    /// proportionally more issue cycles per double-precision instruction
    /// (GT200 at 1:8 → 4.0, Kepler GK110B at 1:3 → 1.5).
    #[inline]
    pub fn dp_issue_factor(&self) -> f64 {
        0.5 / self.fp64_fp32_ratio
    }

    /// The named device presets of the generation family, oldest first.
    ///
    /// The slug is the canonical `ACCEVAL_DEVICE` value and the device
    /// column of `results/device_matrix.csv`; [`DeviceConfig::preset`] also
    /// accepts the part-number aliases (`m2090`, `k40`, ...).
    pub fn presets() -> [DevicePreset; 5] {
        [
            ("tesla", Self::tesla_c1060),
            ("fermi", Self::tesla_m2090),
            ("kepler", Self::kepler_k40),
            ("pascal", Self::pascal_p100),
            ("volta", Self::volta_v100),
        ]
    }

    /// Look up a device preset by name, case-insensitively. Accepts the
    /// generation slug (`fermi`, `kepler`, ...), the constructor name
    /// (`tesla_m2090`, `kepler_k40`, ...), or the bare part number
    /// (`m2090`, `k40`, ...). Returns `None` for unknown names — callers
    /// decide whether that is a hard usage error ([`crate`]-external
    /// validation) or a soft fall-back ([`DeviceConfig::from_env`]).
    pub fn preset(name: &str) -> Option<DeviceConfig> {
        let n = name.to_ascii_lowercase();
        let ctor: fn() -> DeviceConfig = match n.as_str() {
            "tesla" | "tesla_c1060" | "c1060" => Self::tesla_c1060,
            "fermi" | "tesla_m2090" | "m2090" => Self::tesla_m2090,
            "kepler" | "kepler_k40" | "k40" => Self::kepler_k40,
            "pascal" | "pascal_p100" | "p100" => Self::pascal_p100,
            "volta" | "volta_v100" | "v100" => Self::volta_v100,
            _ => return None,
        };
        Some(ctor())
    }

    /// The canonical generation slug of this configuration (`None` for a
    /// hand-built config that matches no preset field-for-field).
    pub fn slug(&self) -> Option<&'static str> {
        Self::presets().into_iter().find(|(_, ctor)| &ctor() == self).map(|(s, _)| s)
    }

    /// The device preset selected by `ACCEVAL_DEVICE`, or the paper's M2090
    /// when unset.
    ///
    /// Library getter semantics (matching the other `ACCEVAL_*` knobs): an
    /// unknown name falls back soft to the default here — front-end binaries
    /// validate strictly up front via `acceval_ir::env::validate_env` and
    /// exit 2, so a typo never silently reaches a sweep started through a
    /// binary.
    pub fn from_env() -> DeviceConfig {
        match std::env::var("ACCEVAL_DEVICE") {
            Ok(v) => Self::preset(&v).unwrap_or_else(Self::tesla_m2090),
            Err(_) => Self::tesla_m2090(),
        }
    }

    /// Order-independent digest of every field of this configuration.
    ///
    /// Two distinct presets must never digest equal: launch-cache and
    /// persistent-store keys fold this in so matrix sweeps over the device
    /// family cannot cross-contaminate. (FNV-1a over the `Debug` rendering,
    /// which prints every field.)
    pub fn config_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in format!("{self:?}").bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Resident warps per SM for a kernel with the given per-block resource
    /// footprint, i.e. the classic CUDA occupancy calculation.
    pub fn occupancy(&self, threads_per_block: u32, shared_per_block: u32, regs_per_thread: u32) -> Occupancy {
        let threads_per_block = threads_per_block.max(1);
        let warps_per_block = self.warps_per_block(threads_per_block);
        let by_warps = self.max_warps_per_sm / warps_per_block.max(1);
        let by_blocks = self.max_blocks_per_sm;
        let by_shared = self.shared_per_sm.checked_div(shared_per_block).unwrap_or(u32::MAX);
        let regs_per_block = regs_per_thread.max(1) * threads_per_block;
        let by_regs = self.regs_per_sm.checked_div(regs_per_block).unwrap_or(u32::MAX);
        let blocks = by_warps.min(by_blocks).min(by_shared).min(by_regs);
        let resident_warps = blocks * warps_per_block;
        Occupancy {
            blocks_per_sm: blocks,
            resident_warps_per_sm: resident_warps,
            fraction: resident_warps as f64 / self.max_warps_per_sm as f64,
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::tesla_m2090()
    }
}

/// Result of the occupancy calculation for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub resident_warps_per_sm: u32,
    /// `resident_warps / max_warps`.
    pub fraction: f64,
}

/// Description of the host CPU used for the sequential baseline and for the
/// host portions of the GPU versions.
///
/// The cost model is a 2-wide in-order approximation of an out-of-order
/// Westmere core: ALU ops retire at `ipc` per cycle and memory operations pay
/// *effective* (overlap-discounted) latencies determined by a two-level cache
/// simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained instructions per cycle for non-memory ops.
    pub ipc: f64,
    /// L1D capacity in bytes.
    pub l1_bytes: u32,
    /// L1D associativity.
    pub l1_ways: u32,
    /// Effective L1 hit cost in cycles.
    pub l1_hit_cycles: f64,
    /// L2 capacity in bytes (per-core slice; we model a unified L2+L3 stand-in).
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Effective L2 hit cost in cycles.
    pub l2_hit_cycles: f64,
    /// Effective DRAM cost in cycles (discounted for out-of-order overlap
    /// and hardware prefetch on sequential streams).
    pub mem_cycles: f64,
    /// Cache line size in bytes.
    pub line_bytes: u32,
}

impl HostConfig {
    /// Intel Xeon X5660-class host (Keeneland node), GCC -O3 single thread.
    pub fn xeon_x5660() -> Self {
        HostConfig {
            name: "Xeon X5660".into(),
            clock_ghz: 2.8,
            ipc: 2.0,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_hit_cycles: 1.0,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 16,
            l2_hit_cycles: 11.0,
            mem_cycles: 70.0,
            line_bytes: 64,
        }
    }

    /// Convert host cycles to seconds.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        Self::xeon_x5660()
    }
}

/// The PCIe link between host and device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Sustained bandwidth in GB/s (PCIe 2.0 x16 with pinned memory ~6 GB/s;
    /// pageable is lower — the paper's codes use ordinary allocations).
    pub bw_gbs: f64,
    /// Per-transfer fixed latency in microseconds (driver + DMA setup).
    pub latency_us: f64,
}

impl LinkConfig {
    /// PCIe 2.0 x16 with pageable host memory (the paper's era).
    pub fn pcie2_x16() -> Self {
        LinkConfig { bw_gbs: 4.0, latency_us: 10.0 }
    }

    /// Seconds to move `bytes` in one transfer.
    #[inline]
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bw_gbs * 1e9)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::pcie2_x16()
    }
}

/// Complete machine: host + device + link.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The CPU side.
    pub host: HostConfig,
    /// The GPU side.
    pub device: DeviceConfig,
    /// The PCIe link between them.
    pub link: LinkConfig,
}

impl MachineConfig {
    /// The paper's Keeneland node: X5660 host + M2090 device + PCIe 2.0.
    pub fn keeneland_node() -> Self {
        MachineConfig {
            host: HostConfig::xeon_x5660(),
            device: DeviceConfig::tesla_m2090(),
            link: LinkConfig::pcie2_x16(),
        }
    }

    /// The Keeneland node with its GPU swapped for the `ACCEVAL_DEVICE`
    /// preset (the M2090 when unset). Host and link stay fixed so the
    /// sequential baseline — Figure 1's denominator — is shared across the
    /// whole device family.
    pub fn from_env() -> Self {
        MachineConfig { device: DeviceConfig::from_env(), ..Self::keeneland_node() }
    }

    /// The Keeneland node with its GPU swapped for `device`.
    pub fn with_device(device: DeviceConfig) -> Self {
        MachineConfig { device, ..Self::keeneland_node() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2090_has_512_cores() {
        let d = DeviceConfig::tesla_m2090();
        assert_eq!(d.total_cores(), 512);
    }

    #[test]
    fn occupancy_limited_by_warps() {
        let d = DeviceConfig::tesla_m2090();
        // 256-thread blocks = 8 warps; 48/8 = 6 blocks but block limit is 8.
        let o = d.occupancy(256, 0, 16);
        assert_eq!(o.blocks_per_sm, 6);
        assert_eq!(o.resident_warps_per_sm, 48);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_shared() {
        let d = DeviceConfig::tesla_m2090();
        // 24 KB shared per block -> 2 blocks per SM.
        let o = d.occupancy(128, 24 * 1024, 16);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.resident_warps_per_sm, 8);
    }

    #[test]
    fn occupancy_limited_by_regs() {
        let d = DeviceConfig::tesla_m2090();
        // 63 regs/thread * 512 threads = 32256 regs -> 1 block.
        let o = d.occupancy(512, 0, 63);
        assert_eq!(o.blocks_per_sm, 1);
    }

    #[test]
    fn occupancy_small_blocks_hit_block_limit() {
        let d = DeviceConfig::tesla_m2090();
        // 32-thread blocks: warp limit allows 48 but block limit caps at 8.
        let o = d.occupancy(32, 0, 16);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.resident_warps_per_sm, 8);
    }

    #[test]
    fn cycle_time_roundtrip() {
        let d = DeviceConfig::tesla_m2090();
        let s = d.cycles_to_secs(1.3e9);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_cost_has_latency_floor() {
        let l = LinkConfig::pcie2_x16();
        let t0 = l.transfer_secs(0);
        assert!((t0 - 10e-6).abs() < 1e-12);
        let t1 = l.transfer_secs(4_000_000_000);
        assert!(t1 > 0.9 && t1 < 1.2);
    }

    #[test]
    fn warp_inst_throughput() {
        assert!((DeviceConfig::tesla_m2090().warp_insts_per_sm_cycle() - 1.0).abs() < 1e-12);
        assert!((DeviceConfig::tesla_c1060().warp_insts_per_sm_cycle() - 0.25).abs() < 1e-12);
    }

    /// Every preset must be internally consistent: positive resources, sane
    /// occupancy at common launch shapes, warp size 32 (the SIMT width the
    /// executors vectorize over).
    #[test]
    fn presets_are_self_consistent() {
        for (slug, ctor) in DeviceConfig::presets() {
            let d = ctor();
            assert_eq!(d.warp_size, 32, "{slug}");
            assert!(d.num_sms > 0 && d.cores_per_sm > 0 && d.clock_ghz > 0.0, "{slug}");
            assert!(d.segment_bytes.is_power_of_two() && d.tex_line_bytes.is_power_of_two(), "{slug}");
            assert!(d.max_warps_per_sm * d.warp_size <= 2048 + 1024, "{slug}: resident threads out of range");
            assert!(d.fp64_fp32_ratio > 0.0 && d.fp64_fp32_ratio <= 1.0, "{slug}");
            assert!(d.dp_issue_factor() >= 1.0, "{slug}: DP can never issue faster than the calibration baseline");
            for threads in [32u32, 128, 256, 512, 1024] {
                if threads > d.max_threads_per_block {
                    continue;
                }
                let o = d.occupancy(threads, 0, 20);
                assert!(o.blocks_per_sm >= 1, "{slug}: {threads}-thread blocks must be schedulable");
                assert!(o.resident_warps_per_sm <= d.max_warps_per_sm, "{slug}");
                assert!(o.fraction > 0.0 && o.fraction <= 1.0, "{slug}");
            }
            assert_eq!(d.slug(), Some(slug), "slug must round-trip through the preset table");
            assert_eq!(DeviceConfig::preset(slug).as_ref(), Some(&d), "preset lookup must return the table entry");
        }
        assert!(DeviceConfig::preset("FERMI").is_some(), "lookup is case-insensitive");
        assert!(DeviceConfig::preset("v100").is_some(), "part-number alias");
        assert!(DeviceConfig::preset("turing").is_none());
    }

    /// DRAM bytes-per-cycle must grow strictly across the generation family
    /// (oldest to newest) — the bandwidth trend the matrix report exists to
    /// expose. Compute throughput per SM-cycle times SM count grows too.
    #[test]
    fn preset_bandwidth_is_monotone_across_generations() {
        let family: Vec<DeviceConfig> = DeviceConfig::presets().iter().map(|(_, c)| c()).collect();
        for w in family.windows(2) {
            assert!(
                w[1].dram_bytes_per_cycle() > w[0].dram_bytes_per_cycle(),
                "{} must out-stream {}",
                w[1].name,
                w[0].name
            );
            let rate = |d: &DeviceConfig| d.total_cores() as f64 * d.clock_ghz;
            assert!(rate(&w[1]) > rate(&w[0]), "{} must out-issue {}", w[1].name, w[0].name);
        }
    }

    /// Distinct presets must digest distinct: launch-cache and store keys
    /// fold the config digest, so a collision would let one generation's
    /// cached launches replay under another.
    #[test]
    fn preset_digests_are_distinct() {
        let family: Vec<(&str, DeviceConfig)> = DeviceConfig::presets().iter().map(|(s, c)| (*s, c())).collect();
        for (i, (sa, a)) in family.iter().enumerate() {
            for (sb, b) in family.iter().skip(i + 1) {
                assert_ne!(a.config_digest(), b.config_digest(), "{sa} vs {sb}");
                assert_ne!(format!("{a:?}"), format!("{b:?}"), "{sa} vs {sb}");
            }
        }
        // The digest is sensitive to every modelled field, not just the name.
        let mut tweaked = DeviceConfig::volta_v100();
        tweaked.has_texture_path = true;
        assert_ne!(tweaked.config_digest(), DeviceConfig::volta_v100().config_digest());
    }
}
