//! Execution timelines: an ordered record of everything a simulated run did
//! (host compute, transfers, kernel launches) with costs attached.
//!
//! The evaluation layer sums a timeline into wall time, and the reports use
//! the event records to explain *why* a version is slow (e.g. "CG under HMPP
//! moved 212 MB over PCIe; under OpenMPC it moved 9 MB").

use serde::{Deserialize, Serialize};

use crate::exec::{KernelCost, KernelTotals};

/// Direction of a PCIe transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// Upload (CPU to GPU).
    HostToDevice,
    /// Download (GPU to CPU).
    DeviceToHost,
}

/// One event on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings are given by the variant docs
pub enum Event {
    /// Sequential host execution (CPU model), in seconds.
    Host { label: String, secs: f64 },
    /// A PCIe transfer.
    Transfer { array: String, dir: Dir, bytes: u64, secs: f64 },
    /// A kernel launch.
    Kernel { name: String, cost: KernelCost, totals: KernelTotals },
}

impl Event {
    /// Wall-clock contribution of the event in seconds.
    pub fn secs(&self) -> f64 {
        match self {
            Event::Host { secs, .. } => *secs,
            Event::Transfer { secs, .. } => *secs,
            Event::Kernel { cost, .. } => cost.time_secs,
        }
    }
}

/// Ordered record of one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Events in execution order.
    pub events: Vec<Event>,
}

/// Aggregate view of a timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // self-describing aggregate counters
pub struct Summary {
    pub total_secs: f64,
    pub host_secs: f64,
    pub transfer_secs: f64,
    pub kernel_secs: f64,
    pub kernels_launched: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub transfers: u64,
    pub global_transactions: u64,
    pub useful_bytes: u64,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Append a raw event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Record sequential host time.
    pub fn host(&mut self, label: impl Into<String>, secs: f64) {
        self.events.push(Event::Host { label: label.into(), secs });
    }

    /// Record a PCIe transfer.
    pub fn transfer(&mut self, array: impl Into<String>, dir: Dir, bytes: u64, secs: f64) {
        self.events.push(Event::Transfer { array: array.into(), dir, bytes, secs });
    }

    /// Record a kernel launch.
    pub fn kernel(&mut self, name: impl Into<String>, cost: KernelCost, totals: KernelTotals) {
        self.events.push(Event::Kernel { name: name.into(), cost, totals });
    }

    /// Append all events of another timeline.
    pub fn extend(&mut self, other: Timeline) {
        self.events.extend(other.events);
    }

    /// Aggregate into a [`Summary`].
    pub fn summary(&self) -> Summary {
        let mut s = Summary::default();
        for e in &self.events {
            s.total_secs += e.secs();
            match e {
                Event::Host { secs, .. } => s.host_secs += secs,
                Event::Transfer { dir, bytes, secs, .. } => {
                    s.transfer_secs += secs;
                    s.transfers += 1;
                    match dir {
                        Dir::HostToDevice => s.h2d_bytes += bytes,
                        Dir::DeviceToHost => s.d2h_bytes += bytes,
                    }
                }
                Event::Kernel { cost, totals, .. } => {
                    s.kernel_secs += cost.time_secs;
                    s.kernels_launched += 1;
                    s.global_transactions += totals.global_transactions;
                    s.useful_bytes += totals.useful_bytes;
                }
            }
        }
        s
    }

    /// Total wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.events.iter().map(Event::secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::exec::{estimate_kernel, KernelFootprint};

    fn some_kernel() -> (KernelCost, KernelTotals) {
        let cfg = DeviceConfig::tesla_m2090();
        let t = KernelTotals {
            warps: 128,
            issue_cycles: 12800.0,
            global_requests: 1000,
            global_transactions: 2000,
            useful_bytes: 128_000,
            ..Default::default()
        };
        (estimate_kernel(&cfg, &KernelFootprint::new(256, 16), &t), t)
    }

    #[test]
    fn summary_accumulates() {
        let mut tl = Timeline::new();
        tl.host("setup", 0.001);
        tl.transfer("a", Dir::HostToDevice, 1024, 0.0001);
        let (c, t) = some_kernel();
        tl.kernel("k", c.clone(), t);
        tl.transfer("a", Dir::DeviceToHost, 2048, 0.0002);

        let s = tl.summary();
        assert_eq!(s.kernels_launched, 1);
        assert_eq!(s.transfers, 2);
        assert_eq!(s.h2d_bytes, 1024);
        assert_eq!(s.d2h_bytes, 2048);
        assert!((s.total_secs - (0.001 + 0.0001 + 0.0002 + c.time_secs)).abs() < 1e-12);
        assert!((s.total_secs - tl.total_secs()).abs() < 1e-15);
        assert_eq!(s.global_transactions, 2000);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Timeline::new();
        a.host("x", 1.0);
        let mut b = Timeline::new();
        b.host("y", 2.0);
        a.extend(b);
        assert_eq!(a.events.len(), 2);
        assert!((a.total_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let tl = Timeline::new();
        assert_eq!(tl.total_secs(), 0.0);
        assert_eq!(tl.summary(), Summary::default());
    }
}
