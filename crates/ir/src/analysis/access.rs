//! Access-stride sampling: for a candidate parallel (thread) variable,
//! estimate each access site's flat-index stride per unit of that variable.
//!
//! Unit (or zero) strides coalesce on the GPU; large strides do not. The
//! OpenMPC compiler uses exactly this information to decide *parallel
//! loop-swap* (interchange so that the unit-stride loop becomes the thread
//! loop), and the evaluation harness uses it to sanity-check kernel plans.

use crate::expr::Expr;
use crate::interp::row_major_strides;
use crate::program::{eval_const, Program};
use crate::stmt::{visit_exprs, visit_stmts, Stmt};
use crate::types::{ArrayId, ScalarId, SiteId, Value};

/// Sampled stride of one access site with respect to a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessStride {
    pub site: SiteId,
    pub array: ArrayId,
    /// Flat element-index stride per unit of the variable, or `None` if the
    /// subscript is indirect (loads) or non-linear in the sampled range.
    pub stride: Option<i64>,
    /// Whether this is a store (writes matter more for coalescing).
    pub is_store: bool,
}

/// Evaluate a load-free expression; `None` if it contains loads.
fn try_eval(e: &Expr, scal: &[Value]) -> Option<i64> {
    if e.has_load() {
        return None;
    }
    Some(crate::interp::eval_pure(e, scal).as_i())
}

/// Flat index of an access at the given environment, or None.
fn flat_at(index: &[Expr], strides: &[usize], scal: &[Value]) -> Option<i64> {
    let mut flat = 0i64;
    for (d, e) in index.iter().enumerate() {
        flat += try_eval(e, scal)? * strides[d] as i64;
    }
    Some(flat)
}

/// Forward-substitute load-free scalar copies (`k = i*cols + j; ... a[k]`)
/// so stride sampling can see through index temporaries. Load-carrying
/// assignments are substituted as well, which marks dependent subscripts as
/// indirect. Loop/branch bodies invalidate everything they assign before
/// being entered.
pub fn propagate_copies(stmts: &[Stmt]) -> Vec<Stmt> {
    use std::collections::HashMap;
    fn assigned_in(stmts: &[Stmt], out: &mut Vec<ScalarId>) {
        crate::stmt::visit_stmts(stmts, &mut |s| match s {
            Stmt::Assign { var, .. } => out.push(*var),
            Stmt::For { var, .. } => out.push(*var),
            _ => {}
        });
    }
    fn subst(e: &mut Expr, map: &HashMap<ScalarId, Expr>) {
        e.visit_mut(&mut |n| {
            if let Expr::Var(v) = n {
                if let Some(rep) = map.get(v) {
                    *n = rep.clone();
                }
            }
        });
    }
    fn go(stmts: &[Stmt], map: &mut HashMap<ScalarId, Expr>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            let mut s = s.clone();
            for e in s.exprs_mut() {
                subst(e, map);
            }
            match &mut s {
                Stmt::Assign { var, value } => {
                    // Load-carrying values are substituted too: a subscript
                    // that ends up containing a load is (correctly) treated
                    // as indirect by the sampler.
                    map.insert(*var, value.clone());
                }
                Stmt::For { var, body, .. } => {
                    let mut killed = vec![*var];
                    assigned_in(body, &mut killed);
                    let mut inner = map.clone();
                    for k in &killed {
                        inner.remove(k);
                        map.remove(k);
                    }
                    *body = go(body, &mut inner);
                }
                Stmt::If { then_b, else_b, .. } => {
                    let mut killed = vec![];
                    assigned_in(then_b, &mut killed);
                    assigned_in(else_b, &mut killed);
                    let mut t = map.clone();
                    let mut f = map.clone();
                    *then_b = go(then_b, &mut t);
                    *else_b = go(else_b, &mut f);
                    for k in &killed {
                        map.remove(k);
                    }
                }
                other => {
                    let mut killed = vec![];
                    for b in other.bodies_mut() {
                        assigned_in(b, &mut killed);
                        let mut inner = map.clone();
                        let nb = go(b, &mut inner);
                        *b = nb;
                    }
                    for k in &killed {
                        map.remove(k);
                    }
                }
            }
            out.push(s);
        }
        out
    }
    go(stmts, &mut HashMap::new())
}

/// Sample every access site in `body` for its stride with respect to `var`.
///
/// `env` must assign plausible values to all free scalars (the harness uses
/// the dataset scalars and sets candidate loop variables to small positive
/// values). Linearity is verified on three sample points. Scalar index
/// temporaries are seen through via [`propagate_copies`].
pub fn access_strides(prog: &Program, body: &[Stmt], var: ScalarId, env: &[Value]) -> Vec<AccessStride> {
    let body = &propagate_copies(body);
    let extents: Vec<Vec<usize>> =
        prog.arrays.iter().map(|a| a.dims.iter().map(|d| eval_const(d, env)).collect()).collect();
    let strides: Vec<Vec<usize>> = extents.iter().map(|e| row_major_strides(e)).collect();

    let mut out = Vec::new();
    let mut probe = |array: ArrayId, index: &[Expr], site: SiteId, is_store: bool| {
        let arr_str = &strides[array.0 as usize];
        let mut envs = [env.to_vec(), env.to_vec(), env.to_vec()];
        for (k, e) in envs.iter_mut().enumerate() {
            e[var.0 as usize] = Value::I(2 + k as i64);
        }
        let f: Vec<Option<i64>> = envs.iter().map(|e| flat_at(index, arr_str, e)).collect();
        let stride = match (f[0], f[1], f[2]) {
            (Some(a), Some(b), Some(c)) if b - a == c - b => Some(b - a),
            _ => None,
        };
        out.push(AccessStride { site, array, stride, is_store });
    };

    visit_stmts(body, &mut |s| {
        if let Stmt::Store { array, index, site, .. } = s {
            probe(*array, index, *site, true);
        }
    });
    visit_exprs(body, &mut |e| {
        if let Expr::Load { array, index, site } = e {
            probe(*array, index, *site, false);
        }
    });
    out
}

/// Fraction of access sites whose byte-stride w.r.t. `var` is small enough
/// to coalesce (|stride| * elem <= 8 bytes, i.e. unit or broadcast).
/// Indirect sites count as uncoalesced.
pub fn coalesced_fraction(prog: &Program, body: &[Stmt], var: ScalarId, env: &[Value]) -> f64 {
    let sites = access_strides(prog, body, var, env);
    if sites.is_empty() {
        return 1.0;
    }
    let good = sites
        .iter()
        .filter(|a| {
            let eb = prog.array_elem(a.array).size_bytes() as i64;
            match a.stride {
                Some(s) => s.abs() * eb <= 8,
                None => false,
            }
        })
        .count();
    good as f64 / sites.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};

    fn prog2d() -> Program {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let a = pb.farray("a", vec![v(n), v(n)]);
        let idx = pb.iarray("idx", vec![v(n)]);
        let _ = (i, j, a, idx);
        pb.main(vec![]);
        pb.build()
    }

    fn env(prog: &Program, n: i64) -> Vec<Value> {
        let mut e: Vec<Value> =
            prog.scalars.iter().map(|d| if d.is_float { Value::F(1.0) } else { Value::I(1) }).collect();
        e[prog.scalar_named("n").0 as usize] = Value::I(n);
        e
    }

    #[test]
    fn row_access_strides() {
        let p = prog2d();
        let (n, i, j, a) = (p.scalar_named("n"), p.scalar_named("i"), p.scalar_named("j"), p.array_named("a"));
        let _ = n;
        let mut body = vec![store(a, vec![v(i), v(j)], ld(a, vec![v(i), v(j)]) + 1.0)];
        crate::program::renumber_sites(&mut body);
        let e = env(&p, 64);
        // w.r.t. j: unit stride
        let sj = access_strides(&p, &body, j, &e);
        assert!(sj.iter().all(|s| s.stride == Some(1)));
        // w.r.t. i: stride n (=64)
        let si = access_strides(&p, &body, i, &e);
        assert!(si.iter().all(|s| s.stride == Some(64)));
        assert!(coalesced_fraction(&p, &body, j, &e) > 0.99);
        assert!(coalesced_fraction(&p, &body, i, &e) < 0.01);
    }

    #[test]
    fn indirect_access_has_no_stride() {
        let p = prog2d();
        let (i, a, idx) = (p.scalar_named("i"), p.array_named("a"), p.array_named("idx"));
        let mut body = vec![store(a, vec![ld(idx, vec![v(i)]), Expr::I(0)], 1.0)];
        crate::program::renumber_sites(&mut body);
        let e = env(&p, 64);
        let s = access_strides(&p, &body, i, &e);
        // the store is indirect; the idx load itself is unit-stride
        let store_site = s.iter().find(|x| x.is_store).unwrap();
        assert_eq!(store_site.stride, None);
        let load_site = s.iter().find(|x| !x.is_store).unwrap();
        assert_eq!(load_site.stride, Some(1));
    }

    #[test]
    fn nonlinear_detected() {
        let p = prog2d();
        let (i, a) = (p.scalar_named("i"), p.array_named("a"));
        let mut body = vec![store(a, vec![v(i) * v(i) % 64i64, Expr::I(0)], 1.0)];
        crate::program::renumber_sites(&mut body);
        let e = env(&p, 64);
        let s = access_strides(&p, &body, i, &e);
        assert_eq!(s[0].stride, None);
    }

    #[test]
    fn broadcast_counts_as_coalesced() {
        let p = prog2d();
        let (i, a) = (p.scalar_named("i"), p.array_named("a"));
        let _ = i;
        let j = p.scalar_named("j");
        // load doesn't depend on j at all -> stride 0 (broadcast)
        let mut body = vec![store(a, vec![v(j), Expr::I(0)], ld(a, vec![Expr::I(0), Expr::I(0)]))];
        crate::program::renumber_sites(&mut body);
        let e = env(&p, 64);
        let s = access_strides(&p, &body, j, &e);
        let load = s.iter().find(|x| !x.is_store).unwrap();
        assert_eq!(load.stride, Some(0));
    }
}

#[cfg(test)]
mod copyprop_tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::types::{ArrayId, ScalarId, Value};

    #[test]
    fn sees_through_index_temporaries() {
        // k = i*cols + j; a[k] = a[k] + 1 — stride wrt j must be 1, wrt i = cols
        let mut pb = ProgramBuilder::new("p");
        let cols = pb.iscalar("cols");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let k = pb.iscalar("k");
        let n2 = pb.iscalar("n2");
        let a = pb.farray("a", vec![v(n2)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut body = vec![assign(k, v(i) * v(cols) + v(j)), store(a, vec![v(k)], ld(a, vec![v(k)]) + 1.0)];
        crate::program::renumber_sites(&mut body);
        let mut env: Vec<Value> = p.scalars.iter().map(|_| Value::I(1)).collect();
        env[cols.0 as usize] = Value::I(64);
        env[n2.0 as usize] = Value::I(64 * 64);
        let sj = access_strides(&p, &body, j, &env);
        assert!(sj.iter().all(|x| x.stride == Some(1)), "{sj:?}");
        let si = access_strides(&p, &body, i, &env);
        assert!(si.iter().all(|x| x.stride == Some(64)), "{si:?}");
        let _ = ScalarId(0);
        let _ = ArrayId(0);
    }

    #[test]
    fn reassignment_with_load_invalidates() {
        let mut pb = ProgramBuilder::new("p");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let k = pb.iscalar("k");
        let a = pb.farray("a", vec![v(n)]);
        let idx = pb.iarray("idx", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        // k = idx[i] (indirect): stride must be None
        let mut body = vec![assign(k, ld(idx, vec![v(i)])), store(a, vec![v(k)], 1.0)];
        crate::program::renumber_sites(&mut body);
        let env: Vec<Value> = p.scalars.iter().map(|_| Value::I(4)).collect();
        let s = access_strides(&p, &body, i, &env);
        let st = s.iter().find(|x| x.is_store).unwrap();
        assert_eq!(st.stride, None);
    }
}
