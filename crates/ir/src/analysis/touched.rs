//! Which arrays a statement subtree reads and writes.
//!
//! This drives the data-transfer planners: a region's read set must be
//! device-valid before launch, its write set invalidates host copies, and
//! host statements touching device-dirty arrays force synchronization.

use std::collections::BTreeSet;

use crate::expr::Expr;
use crate::program::Program;
use crate::stmt::{visit_exprs, visit_stmts, Stmt};
use crate::types::ArrayId;

/// Read/write sets of a statement subtree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Touched {
    pub reads: BTreeSet<ArrayId>,
    pub writes: BTreeSet<ArrayId>,
}

impl Touched {
    /// All arrays touched either way.
    pub fn all(&self) -> BTreeSet<ArrayId> {
        self.reads.union(&self.writes).copied().collect()
    }

    pub fn union(mut self, other: &Touched) -> Touched {
        self.reads.extend(other.reads.iter().copied());
        self.writes.extend(other.writes.iter().copied());
        self
    }
}

/// Compute read/write sets. Function calls are resolved through the program
/// (conservatively: formal array params map to the actual arguments; scalar
/// flow is ignored since scalars are always host-resident).
pub fn arrays_touched(prog: &Program, stmts: &[Stmt]) -> Touched {
    let mut t = Touched::default();
    collect(prog, stmts, &mut t, 0);
    t
}

fn collect(prog: &Program, stmts: &[Stmt], t: &mut Touched, depth: usize) {
    assert!(depth < 16, "call graph too deep (recursion?)");
    visit_stmts(stmts, &mut |s| {
        if let Stmt::Store { array, .. } = s {
            t.writes.insert(*array);
        }
        if let Stmt::Call { func, array_args, .. } = s {
            let f = &prog.funcs[func.0 as usize];
            let mut inner = Touched::default();
            collect(prog, &f.body, &mut inner, depth + 1);
            // remap formals to actuals
            for (formal, actual) in f.array_params.iter().zip(array_args) {
                if inner.reads.remove(formal) {
                    inner.reads.insert(*actual);
                }
                if inner.writes.remove(formal) {
                    inner.writes.insert(*actual);
                }
            }
            t.reads.extend(inner.reads);
            t.writes.extend(inner.writes);
        }
    });
    visit_exprs(stmts, &mut |e| {
        if let Expr::Load { array, .. } = e {
            t.reads.insert(*array);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};

    #[test]
    fn simple_read_write_sets() {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let a = pb.farray("a", vec![v(n)]);
        let b = pb.farray("b", vec![v(n)]);
        pb.main(vec![sfor(i, 0i64, v(n), vec![store(b, vec![v(i)], ld(a, vec![v(i)]))])]);
        let p = pb.build();
        let t = arrays_touched(&p, &p.main);
        assert!(t.reads.contains(&a));
        assert!(t.writes.contains(&b));
        assert!(!t.writes.contains(&a));
        assert_eq!(t.all().len(), 2);
    }

    #[test]
    fn call_remapping_resolves_formals() {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let src = pb.farray("src", vec![v(n)]);
        let dst = pb.farray("dst", vec![v(n)]);
        let fa = pb.farray("fa", vec![v(n)]);
        let fb = pb.farray("fb", vec![v(n)]);
        let f = pb.func(
            "copy",
            vec![],
            vec![fa, fb],
            vec![sfor(i, 0i64, v(n), vec![store(fb, vec![v(i)], ld(fa, vec![v(i)]))])],
        );
        pb.main(vec![call(f, vec![], vec![src, dst])]);
        let p = pb.build();
        let t = arrays_touched(&p, &p.main);
        assert!(t.reads.contains(&src));
        assert!(t.writes.contains(&dst));
        assert!(!t.reads.contains(&fa));
        assert!(!t.writes.contains(&fb));
    }

    #[test]
    fn read_modify_write_in_both_sets() {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let a = pb.farray("a", vec![v(n)]);
        pb.main(vec![sfor(i, 0i64, v(n), vec![store(a, vec![v(i)], ld(a, vec![v(i)]) * 2.0)])]);
        let p = pb.build();
        let t = arrays_touched(&p, &p.main);
        assert!(t.reads.contains(&a) && t.writes.contains(&a));
    }
}
