//! Per-region feature summaries — the structural facts each directive model
//! checks before agreeing to translate a region (the paper's Table II
//! coverage machinery).

use crate::analysis::affine::region_static_affine;
use crate::analysis::reduction::{detect_array_reductions, detect_scalar_reductions};
use crate::expr::Expr;
use crate::program::Program;
use crate::stmt::{visit_exprs, visit_stmts, ParallelRegion, Stmt};
use crate::types::{ArrayId, ReduceOp, ScalarId, VarRef};

/// Structural features of one parallel region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionFeatures {
    /// Region label (from the benchmark).
    pub label: String,
    /// Number of work-sharing loops (`omp for`) in the region.
    pub worksharing_loops: usize,
    /// Contains a `critical` section.
    pub has_critical: bool,
    /// Every critical section is a recognizable array-reduction pattern
    /// (OpenMPC's accepted shape). Meaningless when `has_critical` is false.
    pub critical_is_array_reduction: bool,
    /// Contains function calls.
    pub has_calls: bool,
    /// Contains explicit barriers.
    pub has_barrier: bool,
    /// Contains `while` loops (dynamic control).
    pub has_while: bool,
    /// Has statements outside any work-sharing loop (a "general structured
    /// block": redundantly executed per-thread code, which loop-only models
    /// cannot translate as-is).
    pub has_nonloop_statements: bool,
    /// Maximum loop nest depth.
    pub max_nest_depth: usize,
    /// Subscripts that read index arrays (irregular access).
    pub has_indirect_subscripts: bool,
    /// R-Stream mappability: static control, affine bounds and subscripts.
    pub static_affine: bool,
    /// Declared (clause) reductions on work-sharing loops.
    pub declared_scalar_reductions: Vec<(ScalarId, ReduceOp)>,
    /// Declared array reductions (the OpenMPC clause extension).
    pub declared_array_reductions: Vec<(ArrayId, ReduceOp)>,
    /// Detected (pattern) scalar reductions in loop bodies.
    pub detected_scalar_reductions: Vec<(ScalarId, ReduceOp)>,
    /// Detected array reductions inside critical sections.
    pub detected_array_reductions: Vec<(ArrayId, ReduceOp)>,
    /// Privatized arrays (clause level).
    pub private_arrays: Vec<ArrayId>,
}

/// Compute the features of a region.
pub fn region_features(_prog: &Program, r: &ParallelRegion) -> RegionFeatures {
    let mut worksharing = 0usize;
    let mut has_critical = false;
    let mut has_calls = false;
    let mut has_barrier = false;
    let mut has_while = false;
    let mut declared_scalar = Vec::new();
    let mut declared_array = Vec::new();
    let mut private_arrays: Vec<ArrayId> = r
        .private
        .iter()
        .filter_map(|v| match v {
            VarRef::Array(a) => Some(*a),
            _ => None,
        })
        .collect();

    visit_stmts(&r.body, &mut |s| match s {
        Stmt::For { par: Some(p), .. } => {
            worksharing += 1;
            for red in &p.reductions {
                match red.target {
                    VarRef::Scalar(sc) => declared_scalar.push((sc, red.op)),
                    VarRef::Array(a) => declared_array.push((a, red.op)),
                }
            }
            for pv in &p.private {
                if let VarRef::Array(a) = pv {
                    if !private_arrays.contains(a) {
                        private_arrays.push(*a);
                    }
                }
            }
        }
        Stmt::Critical { .. } => has_critical = true,
        Stmt::Call { .. } => has_calls = true,
        Stmt::Barrier => has_barrier = true,
        Stmt::While { .. } => has_while = true,
        _ => {}
    });

    // Non-loop statements at region top level (ignoring directives).
    let has_nonloop_statements = r.body.iter().any(|s| {
        !matches!(s, Stmt::For { par: Some(_), .. } | Stmt::DataRegion { .. } | Stmt::Update { .. } | Stmt::Barrier)
    });

    let mut has_indirect = false;
    visit_exprs(&r.body, &mut |e| {
        if let Expr::Load { index, .. } = e {
            if index.iter().any(|ie| ie.has_load()) {
                has_indirect = true;
            }
        }
    });
    visit_stmts(&r.body, &mut |s| {
        if let Stmt::Store { index, .. } = s {
            if index.iter().any(|ie| ie.has_load()) {
                has_indirect = true;
            }
        }
    });

    let detected_array = detect_array_reductions(&r.body, true);
    let critical_is_array_reduction = has_critical && {
        // every critical body must consist solely of array-reduction stores
        let mut all_ok = true;
        visit_stmts(&r.body, &mut |s| {
            if let Stmt::Critical { body } = s {
                let ok = body.iter().all(|cs| match cs {
                    Stmt::Store { array, .. } => detected_array.iter().any(|(a, _)| a == array),
                    Stmt::For { body: b2, .. } => b2.iter().all(|inner| match inner {
                        Stmt::Store { array, .. } => detected_array.iter().any(|(a, _)| a == array),
                        _ => false,
                    }),
                    _ => false,
                });
                if !ok {
                    all_ok = false;
                }
            }
        });
        all_ok
    };

    RegionFeatures {
        label: r.label.clone(),
        worksharing_loops: worksharing,
        has_critical,
        critical_is_array_reduction,
        has_calls,
        has_barrier,
        has_while,
        has_nonloop_statements,
        max_nest_depth: nest_depth(&r.body),
        has_indirect_subscripts: has_indirect,
        static_affine: region_static_affine(r),
        declared_scalar_reductions: declared_scalar,
        declared_array_reductions: declared_array,
        detected_scalar_reductions: detect_scalar_reductions(&r.body),
        detected_array_reductions: detected_array,
        private_arrays,
    }
}

fn nest_depth(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::For { body, .. } => 1 + nest_depth(body),
            _ => s.bodies().into_iter().map(|b| nest_depth(b)).max().unwrap_or(0),
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::types::RegionId;

    fn mk_region(body: Vec<Stmt>) -> ParallelRegion {
        ParallelRegion { id: RegionId(0), label: "t".into(), body, private: vec![] }
    }

    fn prog() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let _n = pb.iscalar("n");
        let _i = pb.iscalar("i");
        let _j = pb.iscalar("j");
        let _s = pb.fscalar("s");
        let _a = pb.farray("a", vec![v(ScalarId(0))]);
        let _idx = pb.iarray("idx", vec![v(ScalarId(0))]);
        pb.main(vec![]);
        pb.build()
    }

    #[test]
    fn counts_worksharing_and_depth() {
        let p = prog();
        let (n, i, j, a) = (ScalarId(0), ScalarId(1), ScalarId(2), ArrayId(0));
        let r = mk_region(vec![pfor(i, 0i64, v(n), vec![sfor(j, 0i64, v(n), vec![store(a, vec![v(i)], 0.0)])])]);
        let f = region_features(&p, &r);
        assert_eq!(f.worksharing_loops, 1);
        assert_eq!(f.max_nest_depth, 2);
        assert!(!f.has_nonloop_statements);
        assert!(f.static_affine);
    }

    #[test]
    fn critical_array_reduction_recognized() {
        let p = prog();
        let (n, i, a) = (ScalarId(0), ScalarId(1), ArrayId(0));
        let r = mk_region(vec![pfor(
            i,
            0i64,
            v(n),
            vec![critical(vec![store(a, vec![v(i) % 8i64], ld(a, vec![v(i) % 8i64]) + 1.0)])],
        )]);
        let f = region_features(&p, &r);
        assert!(f.has_critical);
        assert!(f.critical_is_array_reduction);
        assert_eq!(f.detected_array_reductions.len(), 1);
        assert!(!f.static_affine); // critical disqualifies
    }

    #[test]
    fn non_reduction_critical_flagged() {
        let p = prog();
        let (n, i, a) = (ScalarId(0), ScalarId(1), ArrayId(0));
        let r = mk_region(vec![pfor(i, 0i64, v(n), vec![critical(vec![store(a, vec![Expr::I(0)], v(i).to_f())])])]);
        let f = region_features(&p, &r);
        assert!(f.has_critical);
        assert!(!f.critical_is_array_reduction);
    }

    #[test]
    fn indirect_subscripts_flagged() {
        let p = prog();
        let (n, i, a, idx) = (ScalarId(0), ScalarId(1), ArrayId(0), ArrayId(1));
        let r = mk_region(vec![pfor(i, 0i64, v(n), vec![store(a, vec![ld(idx, vec![v(i)])], 1.0)])]);
        let f = region_features(&p, &r);
        assert!(f.has_indirect_subscripts);
        assert!(!f.static_affine);
    }

    #[test]
    fn nonloop_statements_detected() {
        let p = prog();
        let (n, i, s, a) = (ScalarId(0), ScalarId(1), ScalarId(3), ArrayId(0));
        let r = mk_region(vec![assign(s, 0.0), pfor(i, 0i64, v(n), vec![store(a, vec![v(i)], v(s))])]);
        let f = region_features(&p, &r);
        assert!(f.has_nonloop_statements);
    }

    #[test]
    fn declared_reductions_collected() {
        let p = prog();
        let (n, i, s, a) = (ScalarId(0), ScalarId(1), ScalarId(3), ArrayId(0));
        let r = mk_region(vec![pfor_with(
            i,
            0i64,
            v(n),
            vec![assign(s, v(s) + ld(a, vec![v(i)]))],
            crate::stmt::ParInfo { reductions: vec![red(ReduceOp::Add, s)], ..Default::default() },
        )]);
        let f = region_features(&p, &r);
        assert_eq!(f.declared_scalar_reductions, vec![(s, ReduceOp::Add)]);
        assert_eq!(f.detected_scalar_reductions, vec![(s, ReduceOp::Add)]);
    }
}
