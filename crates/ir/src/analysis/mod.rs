//! Program analyses used by the model compilers.
//!
//! * [`affine`] — static-control / affine classification (R-Stream's
//!   applicability test);
//! * [`access`] — per-site access-stride sampling (coalescing prognosis,
//!   drives OpenMPC's automatic *parallel loop-swap* decision);
//! * [`reduction`] — scalar and array (critical-section) reduction pattern
//!   recognition;
//! * [`features`] — per-region feature summaries, the basis of the paper's
//!   Table II coverage numbers;
//! * [`touched`] — which arrays a statement subtree reads/writes (drives
//!   the data-transfer planners).

pub mod access;
pub mod affine;
pub mod features;
pub mod reduction;
pub mod touched;

pub use access::{access_strides, coalesced_fraction, propagate_copies, AccessStride};
pub use affine::{expr_affine, region_static_affine};
pub use features::{region_features, RegionFeatures};
pub use reduction::{detect_array_reductions, detect_scalar_reductions};
pub use touched::{arrays_touched, Touched};
