//! Reduction pattern recognition.
//!
//! PGI Accelerator detects *scalar* reductions implicitly; OpenACC has an
//! explicit scalar reduction clause; OpenMPC additionally recognizes *array*
//! reductions written as OpenMP critical sections and turns them into GPU
//! reduction code. These detectors implement the recognizable shapes.

use crate::expr::{BinOp, Expr};
use crate::stmt::{visit_stmts, Stmt};
use crate::types::{ArrayId, ReduceOp, ScalarId};

fn bin_to_reduce(op: BinOp) -> Option<ReduceOp> {
    match op {
        BinOp::Add => Some(ReduceOp::Add),
        BinOp::Mul => Some(ReduceOp::Mul),
        BinOp::Max => Some(ReduceOp::Max),
        BinOp::Min => Some(ReduceOp::Min),
        BinOp::Or => Some(ReduceOp::Or),
        BinOp::And => Some(ReduceOp::And),
        _ => None,
    }
}

/// Detect scalar reductions in a loop body: assignments of the shape
/// `s = s op rhs` (or `s = rhs op s` for commutative ops) where `rhs` does
/// not read `s`. Returns each reduced scalar with its operator; scalars that
/// are also assigned non-reduction values are excluded.
pub fn detect_scalar_reductions(body: &[Stmt]) -> Vec<(ScalarId, ReduceOp)> {
    let mut candidates: Vec<(ScalarId, ReduceOp)> = Vec::new();
    let mut disqualified: Vec<ScalarId> = Vec::new();
    visit_stmts(body, &mut |s| {
        if let Stmt::Assign { var, value } = s {
            match reduction_shape(*var, value) {
                Some(op) => candidates.push((*var, op)),
                None => disqualified.push(*var),
            }
        }
    });
    candidates.retain(|(v, _)| !disqualified.contains(v));
    candidates.dedup();
    candidates
}

/// Is `value` of the shape `var op rhs` / `rhs op var` with `rhs` free of `var`?
fn reduction_shape(var: ScalarId, value: &Expr) -> Option<ReduceOp> {
    if let Expr::Bin(op, a, b) = value {
        let rop = bin_to_reduce(*op)?;
        let a_is_var = matches!(a.as_ref(), Expr::Var(v) if *v == var);
        let b_is_var = matches!(b.as_ref(), Expr::Var(v) if *v == var);
        if a_is_var && !b.uses_var(var) {
            return Some(rop);
        }
        if b_is_var && !a.uses_var(var) {
            return Some(rop);
        }
    }
    None
}

/// Detect array reductions: stores of the shape
/// `a[idx...] = a[idx...] op rhs` with structurally identical subscripts and
/// `rhs` free of loads from `a`. When `inside_critical_only` is set, only
/// stores lexically inside a `critical` section count (the OpenMPC rule:
/// "array reduction patterns in OpenMP critical sections").
pub fn detect_array_reductions(body: &[Stmt], inside_critical_only: bool) -> Vec<(ArrayId, ReduceOp)> {
    let mut out: Vec<(ArrayId, ReduceOp)> = Vec::new();
    fn scan(stmts: &[Stmt], in_crit: bool, need_crit: bool, out: &mut Vec<(ArrayId, ReduceOp)>) {
        for s in stmts {
            match s {
                Stmt::Critical { body } => scan(body, true, need_crit, out),
                Stmt::Store { array, index, value, .. } if (in_crit || !need_crit) => {
                    if let Some(op) = array_reduction_shape(*array, index, value) {
                        if !out.iter().any(|(a, _)| a == array) {
                            out.push((*array, op));
                        }
                    }
                }
                _ => {
                    for b in s.bodies() {
                        scan(b, in_crit, need_crit, out);
                    }
                }
            }
        }
    }
    scan(body, false, inside_critical_only, &mut out);
    out
}

/// Structural equality modulo trace-site ids (sites are assigned per
/// occurrence by `finalize`, so the "same subscript" in a load and a store
/// never shares them).
fn eq_mod_site(a: &Expr, b: &Expr) -> bool {
    fn norm(e: &Expr) -> Expr {
        let mut e = e.clone();
        e.visit_mut(&mut |n| {
            if let Expr::Load { site, .. } = n {
                *site = crate::types::SiteId(u32::MAX);
            }
        });
        e
    }
    norm(a) == norm(b)
}

fn array_reduction_shape(array: ArrayId, index: &[Expr], value: &Expr) -> Option<ReduceOp> {
    if let Expr::Bin(op, a, b) = value {
        let rop = bin_to_reduce(*op)?;
        let is_self = |e: &Expr| {
            matches!(e, Expr::Load { array: la, index: li, .. }
                if *la == array && li.len() == index.len()
                    && li.iter().zip(index).all(|(x, y)| eq_mod_site(x, y)))
        };
        if is_self(a) && !b.uses_array(array) {
            return Some(rop);
        }
        if is_self(b) && !a.uses_array(array) {
            return Some(rop);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};

    #[test]
    fn detects_sum_and_max() {
        let s = ScalarId(0);
        let m = ScalarId(1);
        let i = ScalarId(2);
        let x = ArrayId(0);
        let body = vec![sfor(
            i,
            0i64,
            10i64,
            vec![assign(s, v(s) + ld(x, vec![v(i)])), assign(m, ld(x, vec![v(i)]).max(v(m)))],
        )];
        let r = detect_scalar_reductions(&body);
        assert!(r.contains(&(s, ReduceOp::Add)));
        assert!(r.contains(&(m, ReduceOp::Max)));
    }

    #[test]
    fn non_reduction_assign_disqualifies() {
        let s = ScalarId(0);
        let i = ScalarId(1);
        let x = ArrayId(0);
        let body = vec![sfor(i, 0i64, 10i64, vec![assign(s, v(s) + ld(x, vec![v(i)])), assign(s, v(i).to_f())])];
        assert!(detect_scalar_reductions(&body).is_empty());
    }

    #[test]
    fn rhs_using_var_is_not_reduction() {
        let s = ScalarId(0);
        let body = vec![assign(s, v(s) + v(s))];
        assert!(detect_scalar_reductions(&body).is_empty());
    }

    #[test]
    fn detects_array_reduction_in_critical() {
        let i = ScalarId(0);
        let k = ScalarId(1);
        let hist = ArrayId(0);
        let body =
            vec![sfor(i, 0i64, 10i64, vec![critical(vec![store(hist, vec![v(k)], ld(hist, vec![v(k)]) + 1.0)])])];
        let r = detect_array_reductions(&body, true);
        assert_eq!(r, vec![(hist, ReduceOp::Add)]);
        // Without the critical requirement it is found too.
        assert_eq!(detect_array_reductions(&body, false), vec![(hist, ReduceOp::Add)]);
    }

    #[test]
    fn store_outside_critical_requires_flag() {
        let k = ScalarId(0);
        let hist = ArrayId(0);
        let body = vec![store(hist, vec![v(k)], ld(hist, vec![v(k)]) + 1.0)];
        assert!(detect_array_reductions(&body, true).is_empty());
        assert_eq!(detect_array_reductions(&body, false).len(), 1);
    }

    #[test]
    fn mismatched_subscripts_not_reduction() {
        let k = ScalarId(0);
        let hist = ArrayId(0);
        let body = vec![store(hist, vec![v(k)], ld(hist, vec![v(k) + 1i64]) + 1.0)];
        assert!(detect_array_reductions(&body, false).is_empty());
    }
}
