//! Affine / static-control classification.
//!
//! R-Stream's polyhedral mapper accepts a region only if it is an *extended
//! static control program*: `for` loops with affine bounds, subscripts that
//! are affine functions of loop variables and parameters, and control flow
//! that does not depend on data. This module implements that test
//! structurally.

use std::collections::HashSet;

use crate::expr::{BinOp, Expr};
use crate::stmt::{ParallelRegion, Stmt};
use crate::types::ScalarId;

/// True if `e` mentions any of `vars`.
fn mentions(e: &Expr, vars: &HashSet<ScalarId>) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if let Expr::Var(v) = n {
            if vars.contains(v) {
                found = true;
            }
        }
    });
    found
}

/// True if `e` contains an array load anywhere.
fn has_load(e: &Expr) -> bool {
    e.has_load()
}

/// Is `e` an affine function of `loop_vars`, treating every other scalar as
/// a symbolic parameter?
///
/// Rules: `+`/`-` of affine parts; `*` only when at most one factor mentions
/// a loop variable; division, modulo, shifts, intrinsics, selects, casts and
/// loads are allowed only in subtrees free of loop variables (they then act
/// as opaque parameters — except loads, which are never allowed because the
/// polyhedral model cannot summarize memory).
pub fn expr_affine(e: &Expr, loop_vars: &HashSet<ScalarId>) -> bool {
    if has_load(e) {
        return false;
    }
    fn go(e: &Expr, lv: &HashSet<ScalarId>) -> bool {
        match e {
            Expr::F(_) | Expr::I(_) | Expr::B(_) | Expr::Var(_) => true,
            Expr::Un(_, a) => go(a, lv),
            Expr::Bin(op, a, b) => match op {
                BinOp::Add | BinOp::Sub => go(a, lv) && go(b, lv),
                // Comparisons/logic of affine operands make affine *conditions*
                // (static control allows affine guards).
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => {
                    go(a, lv) && go(b, lv)
                }
                BinOp::Mul => (!mentions(a, lv) || !mentions(b, lv)) && go(a, lv) && go(b, lv),
                // Anything else must be loop-variable-free.
                _ => !mentions(a, lv) && !mentions(b, lv),
            },
            Expr::CastI(a) | Expr::CastF(a) => go(a, lv),
            // min/max-free Select / intrinsics: parameters only.
            Expr::Select { .. } | Expr::Intrin(..) => !mentions(e, lv),
            Expr::Load { .. } => false,
        }
    }
    go(e, loop_vars)
}

/// Closed affine form `c1 * iv + base` of an integer register value in one
/// loop's induction variable `iv`.
///
/// This is the value-level counterpart of [`expr_affine`]: where that test
/// classifies *expression trees* structurally, `Aff` carries the actual
/// coefficients so the bytecode optimizer (`crate::interp::opt`) can rewrite
/// a per-iteration recomputation into one incremental add. The composition
/// rules mirror `expr_affine` exactly — `+`/`-` of affine parts, `*` only
/// when one factor is a literal constant — and all arithmetic is wrapping
/// `i64`, matching the interpreter's integer semantics bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Aff {
    /// Coefficient of the induction variable.
    pub c1: i64,
    /// Loop-invariant remainder.
    pub base: AffBase,
}

/// The loop-invariant part of an [`Aff`]: at most one symbolic register plus
/// a literal offset (two symbolic terms fall out of the representable set,
/// exactly like a two-loop-variable product falls out of [`expr_affine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AffBase {
    /// Literal offset (0 for none).
    Const(i64),
    /// `reg + literal` where `reg` is a loop-invariant integer register.
    RegConst(u16, i64),
}

impl Aff {
    /// The induction variable itself.
    pub fn var() -> Aff {
        Aff { c1: 1, base: AffBase::Const(0) }
    }

    /// A literal integer constant.
    pub fn konst(k: i64) -> Aff {
        Aff { c1: 0, base: AffBase::Const(k) }
    }

    /// A loop-invariant register treated as a symbolic parameter.
    pub fn reg(r: u16) -> Aff {
        Aff { c1: 0, base: AffBase::RegConst(r, 0) }
    }

    /// My literal value, if I am a pure constant.
    fn as_const(&self) -> Option<i64> {
        match (self.c1, self.base) {
            (0, AffBase::Const(k)) => Some(k),
            _ => None,
        }
    }

    /// Affine addition (wrapping, like the interpreter's integer `+`).
    pub fn add(self, o: Aff) -> Option<Aff> {
        let base = match (self.base, o.base) {
            (AffBase::Const(a), AffBase::Const(b)) => AffBase::Const(a.wrapping_add(b)),
            (AffBase::RegConst(r, a), AffBase::Const(b)) | (AffBase::Const(b), AffBase::RegConst(r, a)) => {
                AffBase::RegConst(r, a.wrapping_add(b))
            }
            // Two symbolic registers: not representable.
            (AffBase::RegConst(..), AffBase::RegConst(..)) => return None,
        };
        Some(Aff { c1: self.c1.wrapping_add(o.c1), base })
    }

    /// Affine subtraction. The subtrahend's symbolic part cannot be negated
    /// (we hold no `-reg` form), so it must be constant-only.
    pub fn sub(self, o: Aff) -> Option<Aff> {
        let AffBase::Const(ob) = o.base else { return None };
        let base = match self.base {
            AffBase::Const(a) => AffBase::Const(a.wrapping_sub(ob)),
            AffBase::RegConst(r, a) => AffBase::RegConst(r, a.wrapping_sub(ob)),
        };
        Some(Aff { c1: self.c1.wrapping_sub(o.c1), base })
    }

    /// Affine multiplication: one factor must be a literal constant (the
    /// `expr_affine` one-factor rule), and a symbolic base scales only by 1.
    pub fn mul(self, o: Aff) -> Option<Aff> {
        let (a, k) = match (self.as_const(), o.as_const()) {
            (_, Some(k)) => (self, k),
            (Some(k), _) => (o, k),
            (None, None) => return None,
        };
        let base = match (a.base, k) {
            (AffBase::Const(c), _) => AffBase::Const(c.wrapping_mul(k)),
            (b @ AffBase::RegConst(..), 1) => b,
            (AffBase::RegConst(..), _) => return None,
        };
        Some(Aff { c1: a.c1.wrapping_mul(k), base })
    }
}

/// Scalars assigned anywhere within `stmts` (excluding loop headers).
fn assigned_scalars(stmts: &[Stmt], out: &mut HashSet<ScalarId>) {
    crate::stmt::visit_stmts(stmts, &mut |s| {
        if let Stmt::Assign { var, .. } = s {
            out.insert(*var);
        }
    });
}

/// Is a parallel region a static-control affine program (R-Stream mappable)?
pub fn region_static_affine(r: &ParallelRegion) -> bool {
    // Scalars assigned in the region body (other than loop variables) make
    // subscripts using them non-affine.
    let mut assigned = HashSet::new();
    assigned_scalars(&r.body, &mut assigned);
    stmts_static_affine(&r.body, &mut HashSet::new(), &assigned)
}

fn stmts_static_affine(stmts: &[Stmt], loop_vars: &mut HashSet<ScalarId>, assigned: &HashSet<ScalarId>) -> bool {
    // "Dirty" vars: loop vars plus region-assigned scalars; subscripts must
    // be affine in loop vars and must not use other assigned scalars at all
    // (their values are data-dependent).
    for s in stmts {
        let ok = match s {
            Stmt::Assign { value, .. } => !has_load_in_control(value),
            Stmt::Store { index, .. } => index.iter().all(|e| {
                let mut dirty = loop_vars.clone();
                dirty.extend(assigned.iter().copied());
                expr_affine(e, loop_vars) && !uses_any(e, &non_loop_assigned(assigned, loop_vars))
            }),
            Stmt::If { cond, then_b, else_b, .. } => {
                // Control must be data-independent and affine.
                expr_affine(cond, loop_vars)
                    && !cond.has_load()
                    && !uses_any(cond, &non_loop_assigned(assigned, loop_vars))
                    && stmts_static_affine(then_b, loop_vars, assigned)
                    && stmts_static_affine(else_b, loop_vars, assigned)
            }
            Stmt::For { var, lo, hi, step, body, .. } => {
                let bounds_ok = expr_affine(lo, loop_vars)
                    && expr_affine(hi, loop_vars)
                    && matches!(step, Expr::I(_))
                    && !lo.has_load()
                    && !hi.has_load()
                    && !uses_any(lo, &non_loop_assigned(assigned, loop_vars))
                    && !uses_any(hi, &non_loop_assigned(assigned, loop_vars));
                if !bounds_ok {
                    return false;
                }
                loop_vars.insert(*var);
                let body_ok = stmts_static_affine(body, loop_vars, assigned);
                loop_vars.remove(var);
                body_ok
            }
            // Dynamic control / synchronization / calls: not static control.
            Stmt::While { .. } | Stmt::Critical { .. } | Stmt::Call { .. } | Stmt::Barrier => false,
            Stmt::Parallel(r) => stmts_static_affine(&r.body, loop_vars, assigned),
            Stmt::DataRegion { body, .. } => stmts_static_affine(body, loop_vars, assigned),
            Stmt::Update { .. } => true,
        };
        if !ok {
            return false;
        }
        // Check loads inside RHS expressions: their subscripts must be affine.
        let mut loads_ok = true;
        for e in s.exprs() {
            e.visit(&mut |n| {
                if let Expr::Load { index, .. } = n {
                    for ie in index {
                        if !expr_affine(ie, loop_vars)
                            || ie.has_load()
                            || uses_any(ie, &non_loop_assigned(assigned, loop_vars))
                        {
                            loads_ok = false;
                        }
                    }
                }
            });
        }
        if !loads_ok {
            return false;
        }
    }
    true
}

fn non_loop_assigned(assigned: &HashSet<ScalarId>, loop_vars: &HashSet<ScalarId>) -> HashSet<ScalarId> {
    assigned.difference(loop_vars).copied().collect()
}

fn uses_any(e: &Expr, vars: &HashSet<ScalarId>) -> bool {
    mentions(e, vars)
}

fn has_load_in_control(_e: &Expr) -> bool {
    // Plain assignments may load (they become statements of the SCoP body);
    // only *control* and *subscripts* must be load-free.
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::types::{ArrayId, RegionId};

    fn region(body: Vec<Stmt>) -> ParallelRegion {
        ParallelRegion { id: RegionId(0), label: "r".into(), body, private: vec![] }
    }

    #[test]
    fn stencil_is_affine() {
        let i = ScalarId(0);
        let j = ScalarId(1);
        let n = ScalarId(2);
        let a = ArrayId(0);
        let b = ArrayId(1);
        let r = region(vec![pfor(
            i,
            1i64,
            v(n) - 1i64,
            vec![sfor(
                j,
                1i64,
                v(n) - 1i64,
                vec![store(b, vec![v(i), v(j)], ld(a, vec![v(i) - 1i64, v(j)]) + ld(a, vec![v(i) + 1i64, v(j)]))],
            )],
        )]);
        assert!(region_static_affine(&r));
    }

    #[test]
    fn indirect_subscript_is_not_affine() {
        let i = ScalarId(0);
        let n = ScalarId(1);
        let x = ArrayId(0);
        let idx = ArrayId(1);
        let r = region(vec![pfor(i, 0i64, v(n), vec![store(x, vec![ld(idx, vec![v(i)])], 1.0)])]);
        assert!(!region_static_affine(&r));
    }

    #[test]
    fn data_dependent_branch_is_not_affine() {
        let i = ScalarId(0);
        let n = ScalarId(1);
        let x = ArrayId(0);
        let r =
            region(vec![pfor(i, 0i64, v(n), vec![iff(ld(x, vec![v(i)]).gt(0.0), vec![store(x, vec![v(i)], 0.0)])])]);
        assert!(!region_static_affine(&r));
    }

    #[test]
    fn boundary_branch_is_affine() {
        let i = ScalarId(0);
        let n = ScalarId(1);
        let x = ArrayId(0);
        let r = region(vec![pfor(i, 0i64, v(n), vec![iff(v(i).gt(0i64), vec![store(x, vec![v(i)], 0.0)])])]);
        assert!(region_static_affine(&r));
    }

    #[test]
    fn triangular_bounds_are_affine() {
        let i = ScalarId(0);
        let j = ScalarId(1);
        let n = ScalarId(2);
        let x = ArrayId(0);
        let r =
            region(vec![pfor(i, 0i64, v(n), vec![sfor(j, v(i), v(n), vec![store(x, vec![v(i) * v(n) + v(j)], 0.0)])])]);
        // i*n + j is affine (n is a parameter).
        assert!(region_static_affine(&r));
    }

    #[test]
    fn modulo_subscript_is_not_affine() {
        let i = ScalarId(0);
        let n = ScalarId(1);
        let x = ArrayId(0);
        let r = region(vec![pfor(i, 0i64, v(n), vec![store(x, vec![v(i) % 8i64], 0.0)])]);
        assert!(!region_static_affine(&r));
    }

    #[test]
    fn while_and_critical_disqualify() {
        let i = ScalarId(0);
        let x = ArrayId(0);
        let r1 = region(vec![wloop(v(i).lt(3i64), vec![assign(i, v(i) + 1i64)])]);
        assert!(!region_static_affine(&r1));
        let r2 = region(vec![critical(vec![store(x, vec![ic_(0)], 1.0)])]);
        assert!(!region_static_affine(&r2));
    }

    fn ic_(x: i64) -> Expr {
        Expr::I(x)
    }

    #[test]
    fn expr_affine_rules() {
        let i = ScalarId(0);
        let n = ScalarId(9);
        let lv: HashSet<_> = [i].into_iter().collect();
        assert!(expr_affine(&(v(i) * v(n) + 3i64), &lv));
        assert!(!expr_affine(&(v(i) * v(i)), &lv));
        assert!(!expr_affine(&(v(i) / 2i64), &lv));
        assert!(expr_affine(&(v(n) / 2i64), &lv)); // params may divide
        assert!(!expr_affine(&v(i).shl(1i64), &lv));
    }
}
