//! Expressions of the directive IR.
//!
//! Expressions are plain trees. Array loads carry a [`SiteId`] (assigned by
//! [`crate::program::Program::finalize`]) so the GPU executor can aggregate
//! per-warp address traces by static site.

use serde::{Deserialize, Serialize};

use crate::types::{ArrayId, ScalarId, SiteId};

/// Binary operators. Comparison operators yield boolean values; arithmetic
/// follows C-like promotion (int op int = int, anything with a float = float).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
}

/// Math intrinsics. These cost more than one issue slot on both machines;
/// see the machines' intrinsic cost tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrin {
    Sqrt,
    Exp,
    Log,
    Pow,
    Sin,
    Cos,
    Floor,
    Abs,
}

/// An IR expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Float literal.
    F(f64),
    /// Integer literal.
    I(i64),
    /// Boolean literal.
    B(bool),
    /// Scalar variable read.
    Var(ScalarId),
    /// Array element read; `index` has one expression per declared dimension.
    Load {
        array: ArrayId,
        index: Vec<Expr>,
        site: SiteId,
    },
    Un(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? t : f` — both sides are evaluated on the GPU (predication),
    /// only the taken side on the CPU.
    Select {
        cond: Box<Expr>,
        t: Box<Expr>,
        f: Box<Expr>,
    },
    /// Math intrinsic call.
    Intrin(Intrin, Vec<Expr>),
    /// C-style cast to integer (truncation).
    CastI(Box<Expr>),
    /// C-style cast to double.
    CastF(Box<Expr>),
}

impl Expr {
    /// Visit every sub-expression (including self), depth-first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::F(_) | Expr::I(_) | Expr::B(_) | Expr::Var(_) => {}
            Expr::Load { index, .. } => {
                for e in index {
                    e.visit(f);
                }
            }
            Expr::Un(_, a) => a.visit(f),
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Select { cond, t, f: fe } => {
                cond.visit(f);
                t.visit(f);
                fe.visit(f);
            }
            Expr::Intrin(_, args) => {
                for e in args {
                    e.visit(f);
                }
            }
            Expr::CastI(a) | Expr::CastF(a) => a.visit(f),
        }
    }

    /// Visit every sub-expression mutably, depth-first (children first so a
    /// rewriter sees updated children).
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        match self {
            Expr::F(_) | Expr::I(_) | Expr::B(_) | Expr::Var(_) => {}
            Expr::Load { index, .. } => {
                for e in index {
                    e.visit_mut(f);
                }
            }
            Expr::Un(_, a) => a.visit_mut(f),
            Expr::Bin(_, a, b) => {
                a.visit_mut(f);
                b.visit_mut(f);
            }
            Expr::Select { cond, t, f: fe } => {
                cond.visit_mut(f);
                t.visit_mut(f);
                fe.visit_mut(f);
            }
            Expr::Intrin(_, args) => {
                for e in args {
                    e.visit_mut(f);
                }
            }
            Expr::CastI(a) | Expr::CastF(a) => a.visit_mut(f),
        }
        f(self);
    }

    /// True if the expression reads `var`.
    pub fn uses_var(&self, var: ScalarId) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Var(v) if *v == var) {
                found = true;
            }
        });
        found
    }

    /// True if the expression loads from `array`.
    pub fn uses_array(&self, array: ArrayId) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Load { array: a, .. } if *a == array) {
                found = true;
            }
        });
        found
    }

    /// True if the expression contains any array load.
    pub fn has_load(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Load { .. }) {
                found = true;
            }
        });
        found
    }

    /// Substitute every read of `var` with `with` (used by inlining and
    /// loop collapsing).
    pub fn subst_var(&mut self, var: ScalarId, with: &Expr) {
        self.visit_mut(&mut |e| {
            if matches!(e, Expr::Var(v) if *v == var) {
                *e = with.clone();
            }
        });
    }

    /// Number of expression nodes (a cheap size metric for reports).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

// ---- operator sugar ----------------------------------------------------

impl From<f64> for Expr {
    fn from(x: f64) -> Self {
        Expr::F(x)
    }
}

impl From<i64> for Expr {
    fn from(x: i64) -> Self {
        Expr::I(x)
    }
}

impl From<i32> for Expr {
    fn from(x: i32) -> Self {
        Expr::I(x as i64)
    }
}

impl From<usize> for Expr {
    fn from(x: usize) -> Self {
        Expr::I(x as i64)
    }
}

impl From<ScalarId> for Expr {
    fn from(v: ScalarId) -> Self {
        Expr::Var(v)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<Expr>> std::ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

impl Expr {
    pub fn lt(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs.into()))
    }
    pub fn le(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(rhs.into()))
    }
    pub fn gt(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(self), Box::new(rhs.into()))
    }
    pub fn ge(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Ge, Box::new(self), Box::new(rhs.into()))
    }
    pub fn eq_(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs.into()))
    }
    pub fn ne_(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(rhs.into()))
    }
    pub fn and(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs.into()))
    }
    pub fn or(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs.into()))
    }
    pub fn min(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(rhs.into()))
    }
    pub fn max(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(rhs.into()))
    }
    // Named like the std::ops traits on purpose: these are AST builders in
    // the same family as `min`/`max` above, and taking `impl Into<Expr>`
    // rules out implementing the operator traits themselves.
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Shl, Box::new(self), Box::new(rhs.into()))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Shr, Box::new(self), Box::new(rhs.into()))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn bitand(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::BitAnd, Box::new(self), Box::new(rhs.into()))
    }
    pub fn to_i(self) -> Expr {
        Expr::CastI(Box::new(self))
    }
    pub fn to_f(self) -> Expr {
        Expr::CastF(Box::new(self))
    }
    pub fn sqrt(self) -> Expr {
        Expr::Intrin(Intrin::Sqrt, vec![self])
    }
    pub fn exp(self) -> Expr {
        Expr::Intrin(Intrin::Exp, vec![self])
    }
    pub fn log(self) -> Expr {
        Expr::Intrin(Intrin::Log, vec![self])
    }
    pub fn abs(self) -> Expr {
        Expr::Intrin(Intrin::Abs, vec![self])
    }
    pub fn floor(self) -> Expr {
        Expr::Intrin(Intrin::Floor, vec![self])
    }
    pub fn pow(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Intrin(Intrin::Pow, vec![self, rhs.into()])
    }
    pub fn select(self, t: impl Into<Expr>, f: impl Into<Expr>) -> Expr {
        Expr::Select { cond: Box::new(self), t: Box::new(t.into()), f: Box::new(f.into()) }
    }
}

/// Shorthand for a variable read.
pub fn v(id: ScalarId) -> Expr {
    Expr::Var(id)
}

/// Shorthand for a float literal.
pub fn fc(x: f64) -> Expr {
    Expr::F(x)
}

/// Shorthand for an integer literal.
pub fn ic(x: i64) -> Expr {
    Expr::I(x)
}

/// Shorthand for an array load; the site is assigned at finalize time.
pub fn ld(array: ArrayId, index: Vec<Expr>) -> Expr {
    Expr::Load { array, index, site: SiteId(u32::MAX) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_sugar_builds_trees() {
        let x = ScalarId(0);
        let e = (v(x) + 1i64) * 2i64;
        assert_eq!(e.node_count(), 5);
        assert!(e.uses_var(x));
        assert!(!e.uses_var(ScalarId(1)));
    }

    #[test]
    fn subst_replaces_all_uses() {
        let x = ScalarId(0);
        let y = ScalarId(1);
        let mut e = v(x) + v(x) * v(y);
        e.subst_var(x, &ic(7));
        assert!(!e.uses_var(x));
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn load_detection() {
        let a = ArrayId(0);
        let e = ld(a, vec![ic(0)]) + 1i64;
        assert!(e.has_load());
        assert!(e.uses_array(a));
        assert!(!e.uses_array(ArrayId(1)));
    }

    #[test]
    fn visit_mut_rewrites_children_first() {
        // fold constants: children first means (1+2)+3 can fold to 6 in one pass
        let mut e = (ic(1) + ic(2)) + ic(3);
        e.visit_mut(&mut |n| {
            if let Expr::Bin(BinOp::Add, a, b) = n {
                if let (Expr::I(x), Expr::I(y)) = (a.as_ref(), b.as_ref()) {
                    *n = Expr::I(x + y);
                }
            }
        });
        assert_eq!(e, Expr::I(6));
    }

    #[test]
    fn comparison_and_intrinsic_builders() {
        let x = ScalarId(0);
        let e = v(x).lt(10i64).select(v(x).sqrt(), fc(0.0));
        assert!(matches!(e, Expr::Select { .. }));
    }
}
