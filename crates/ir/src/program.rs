//! Whole programs: symbol tables, functions, datasets, and finalization.

use serde::{Deserialize, Serialize};

use acceval_sim::{Buffer, ElemType};

use crate::expr::Expr;
use crate::stmt::{visit_stmts_mut, ParallelRegion, Stmt};
use crate::types::{ArrayId, RegionId, ScalarId, SiteId, Value};

/// Scalar variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarDecl {
    pub name: String,
    /// Float or integer (B-values live in either).
    pub is_float: bool,
}

/// Array declaration. Dimensions are expressions over scalar parameters,
/// evaluated once at program start; storage is flattened row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    pub name: String,
    pub elem: ElemType,
    pub dims: Vec<Expr>,
}

/// A function. Scalar parameters are passed by value into their global
/// slots; array parameters are remapped (no recursion permitted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub scalar_params: Vec<ScalarId>,
    pub array_params: Vec<ArrayId>,
    pub body: Vec<Stmt>,
}

/// A whole directive-annotated program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    pub name: String,
    pub scalars: Vec<ScalarDecl>,
    pub arrays: Vec<ArrayDecl>,
    pub funcs: Vec<Function>,
    pub main: Vec<Stmt>,
    /// Arrays whose final contents define program output (for validation).
    pub outputs: Vec<ArrayId>,
    /// Scalars whose final values define program output.
    pub output_scalars: Vec<ScalarId>,
    /// Number of memory/branch sites after [`Program::finalize`].
    pub site_count: u32,
    /// Number of parallel regions after [`Program::finalize`].
    pub region_count: u32,
}

impl Program {
    /// Assign dense [`SiteId`]s to every load/store/branch and dense
    /// [`RegionId`]s to every parallel region, then validate array arities.
    ///
    /// Must be called (by the builder) before execution; transforms that
    /// synthesize new accesses re-run it.
    pub fn finalize(&mut self) {
        let mut site = 0u32;
        let mut region = 0u32;
        let mut renumber = |stmts: &mut Vec<Stmt>| {
            renumber_sites_from(stmts, &mut site);
            visit_stmts_mut(stmts, &mut |s| {
                if let Stmt::Parallel(r) = s {
                    r.id = RegionId(region);
                    region += 1;
                }
            });
        };
        let mut funcs = std::mem::take(&mut self.funcs);
        for f in &mut funcs {
            renumber(&mut f.body);
        }
        self.funcs = funcs;
        let mut main = std::mem::take(&mut self.main);
        renumber(&mut main);
        self.main = main;
        self.site_count = site;
        self.region_count = region;
        self.validate();
    }

    fn validate(&self) {
        let arrays = &self.arrays;
        let check = |stmts: &[Stmt]| {
            crate::stmt::visit_stmts(stmts, &mut |s| {
                if let Stmt::Store { array, index, .. } = s {
                    assert_eq!(
                        arrays[array.0 as usize].dims.len(),
                        index.len(),
                        "store arity mismatch on array {}",
                        arrays[array.0 as usize].name
                    );
                }
            });
            crate::stmt::visit_exprs(stmts, &mut |e| {
                if let Expr::Load { array, index, .. } = e {
                    assert_eq!(
                        arrays[array.0 as usize].dims.len(),
                        index.len(),
                        "load arity mismatch on array {}",
                        arrays[array.0 as usize].name
                    );
                }
            });
        };
        for f in &self.funcs {
            check(&f.body);
        }
        check(&self.main);
    }

    /// All parallel regions of the program in id order (searches functions
    /// and main).
    pub fn regions(&self) -> Vec<&ParallelRegion> {
        fn collect<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a ParallelRegion>) {
            crate::stmt::visit_stmts(stmts, &mut |s| {
                if let Stmt::Parallel(r) = s {
                    out.push(r);
                }
            });
        }
        let mut out: Vec<&ParallelRegion> = Vec::new();
        for f in &self.funcs {
            collect(&f.body, &mut out);
        }
        collect(&self.main, &mut out);
        out.sort_by_key(|r| r.id);
        out
    }

    /// Add a fresh scalar slot (used by transforms) and return its id.
    pub fn fresh_scalar(&mut self, name: &str, is_float: bool) -> ScalarId {
        let id = ScalarId(self.scalars.len() as u32);
        self.scalars.push(ScalarDecl { name: name.to_string(), is_float });
        id
    }

    /// Look up a scalar by name (panics if absent; for tests/examples).
    pub fn scalar_named(&self, name: &str) -> ScalarId {
        ScalarId(
            self.scalars.iter().position(|s| s.name == name).unwrap_or_else(|| panic!("no scalar named {name}")) as u32
        )
    }

    /// Look up an array by name (panics if absent; for tests/examples).
    pub fn array_named(&self, name: &str) -> ArrayId {
        ArrayId(
            self.arrays.iter().position(|a| a.name == name).unwrap_or_else(|| panic!("no array named {name}")) as u32
        )
    }

    /// Name of an array (reporting).
    pub fn array_name(&self, id: ArrayId) -> &str {
        &self.arrays[id.0 as usize].name
    }

    /// Element type of an array.
    pub fn array_elem(&self, id: ArrayId) -> ElemType {
        self.arrays[id.0 as usize].elem
    }
}

/// Renumber all load/store/branch sites in `stmts` starting from `*next`,
/// updating `*next` past the last id used.
pub fn renumber_sites_from(stmts: &mut [Stmt], next: &mut u32) {
    visit_stmts_mut(stmts, &mut |s| {
        match s {
            Stmt::Store { site, .. } | Stmt::If { site, .. } => {
                *site = SiteId(*next);
                *next += 1;
            }
            _ => {}
        }
        for e in s.exprs_mut() {
            e.visit_mut(&mut |e| {
                if let Expr::Load { site, .. } = e {
                    *site = SiteId(*next);
                    *next += 1;
                }
            });
        }
    });
}

/// Renumber sites densely from zero; returns the site count. Used for
/// stand-alone kernel bodies.
pub fn renumber_sites(stmts: &mut [Stmt]) -> u32 {
    let mut n = 0;
    renumber_sites_from(stmts, &mut n);
    n
}

/// Initial machine state for one run: scalar values and array contents.
#[derive(Debug, Clone, Default)]
pub struct DataSet {
    pub scalars: Vec<(ScalarId, Value)>,
    pub arrays: Vec<(ArrayId, Buffer)>,
    /// Human-readable description of the problem size (for reports).
    pub label: String,
}

/// Host memory image: one buffer per program array.
#[derive(Debug, Clone)]
pub struct HostData {
    pub bufs: Vec<Buffer>,
}

impl HostData {
    /// Materialize host memory for `prog` from `ds`: arrays present in the
    /// dataset are copied in, the rest are zero-filled at their declared
    /// sizes (dims evaluated against the dataset scalars).
    pub fn materialize(prog: &Program, ds: &DataSet) -> HostData {
        let mut scal: Vec<Value> =
            prog.scalars.iter().map(|d| if d.is_float { Value::F(0.0) } else { Value::I(0) }).collect();
        for (id, v) in &ds.scalars {
            scal[id.0 as usize] = *v;
        }
        let mut bufs = Vec::with_capacity(prog.arrays.len());
        for (i, a) in prog.arrays.iter().enumerate() {
            let provided = ds.arrays.iter().find(|(id, _)| id.0 as usize == i);
            if let Some((_, b)) = provided {
                assert_eq!(b.elem, a.elem, "dataset element type mismatch for {}", a.name);
                bufs.push(b.clone());
            } else {
                let len: usize = a.dims.iter().map(|d| eval_const(d, &scal)).product();
                bufs.push(Buffer::zeroed(a.elem, len));
            }
        }
        HostData { bufs }
    }
}

/// Evaluate a dimension expression against initial scalar values. Supports
/// the constant/linear forms dims actually use.
pub fn eval_const(e: &Expr, scalars: &[Value]) -> usize {
    use crate::expr::BinOp;
    let v = match e {
        Expr::I(x) => *x,
        Expr::F(x) => *x as i64,
        Expr::Var(s) => scalars[s.0 as usize].as_i(),
        Expr::Bin(op, a, b) => {
            let x = eval_const(a, scalars) as i64;
            let y = eval_const(b, scalars) as i64;
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                _ => panic!("unsupported dim operator"),
            }
        }
        _ => panic!("unsupported dim expression"),
    };
    assert!(v >= 0, "negative array dimension");
    v as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ic, ld, v};

    fn tiny_program() -> Program {
        let mut p = Program {
            name: "tiny".into(),
            scalars: vec![
                ScalarDecl { name: "n".into(), is_float: false },
                ScalarDecl { name: "i".into(), is_float: false },
            ],
            arrays: vec![ArrayDecl { name: "a".into(), elem: ElemType::F64, dims: vec![v(ScalarId(0))] }],
            funcs: vec![],
            main: vec![Stmt::For {
                var: ScalarId(1),
                lo: ic(0),
                hi: v(ScalarId(0)),
                step: ic(1),
                body: vec![Stmt::Store {
                    array: ArrayId(0),
                    index: vec![v(ScalarId(1))],
                    value: ld(ArrayId(0), vec![v(ScalarId(1))]) + 1.0,
                    site: SiteId(u32::MAX),
                }],
                par: None,
            }],
            outputs: vec![ArrayId(0)],
            output_scalars: vec![],
            site_count: 0,
            region_count: 0,
        };
        p.finalize();
        p
    }

    #[test]
    fn finalize_assigns_dense_sites() {
        let p = tiny_program();
        assert_eq!(p.site_count, 2); // one store + one load
        let mut seen = vec![];
        crate::stmt::visit_stmts(&p.main, &mut |s| {
            if let Stmt::Store { site, .. } = s {
                seen.push(site.0);
            }
        });
        crate::stmt::visit_exprs(&p.main, &mut |e| {
            if let Expr::Load { site, .. } = e {
                seen.push(site.0);
            }
        });
        seen.sort();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn materialize_sizes_arrays_from_scalars() {
        let p = tiny_program();
        let ds = DataSet { scalars: vec![(ScalarId(0), Value::I(16))], arrays: vec![], label: "t".into() };
        let h = HostData::materialize(&p, &ds);
        assert_eq!(h.bufs[0].len(), 16);
    }

    #[test]
    fn materialize_uses_provided_buffers() {
        let p = tiny_program();
        let b = Buffer::from_f64(ElemType::F64, vec![5.0; 8]);
        let ds =
            DataSet { scalars: vec![(ScalarId(0), Value::I(8))], arrays: vec![(ArrayId(0), b)], label: "t".into() };
        let h = HostData::materialize(&p, &ds);
        assert_eq!(h.bufs[0].get_f(3), 5.0);
    }

    #[test]
    fn eval_const_linear_forms() {
        let scal = vec![Value::I(10)];
        assert_eq!(eval_const(&(v(ScalarId(0)) + 2i64), &scal), 12);
        assert_eq!(eval_const(&(v(ScalarId(0)) * v(ScalarId(0))), &scal), 100);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn validate_catches_bad_arity() {
        let mut p = tiny_program();
        p.main.push(Stmt::Store {
            array: ArrayId(0),
            index: vec![ic(0), ic(0)],
            value: ic(0).to_f(),
            site: SiteId(u32::MAX),
        });
        p.finalize();
    }

    #[test]
    fn fresh_scalar_extends_table() {
        let mut p = tiny_program();
        let id = p.fresh_scalar("tmp", true);
        assert_eq!(id.0 as usize, p.scalars.len() - 1);
        assert_eq!(p.scalar_named("tmp"), id);
    }
}
