//! Typed parsing and up-front validation of the `ACCEVAL_*` environment
//! knobs.
//!
//! Every runtime knob (`ACCEVAL_DEVICE`, `ACCEVAL_ENGINE`, `ACCEVAL_OPT`,
//! `ACCEVAL_LAUNCH_PAR`, `ACCEVAL_LAUNCH_CACHE`,
//! `ACCEVAL_LAUNCH_CACHE_CAP_MB`, `ACCEVAL_STORE`, `ACCEVAL_STORE_CAP_MB`)
//! parses through this module. Parses are *typed*:
//! a malformed value is an [`EnvError`], never a panic. The lazy getters in
//! [`crate::interp::gpu`], [`crate::interp::launch_cache`], and
//! [`crate::interp::store`] fall back to their documented defaults on a
//! malformed value — a launch deep inside a parallel sweep must not abort
//! the process over a typo — while front-end binaries call [`validate_env`]
//! once at startup and turn any error into a usage message and exit code 2,
//! so the typo is caught before any work is done.

use std::fmt;

/// A malformed or unrecognized `ACCEVAL_*` environment setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The variable at fault (e.g. `"ACCEVAL_ENGINE"`).
    pub var: String,
    /// The value found in the environment.
    pub value: String,
    /// Human-readable description of what the variable accepts.
    pub expected: String,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: invalid value `{}` (expected {})", self.var, self.value, self.expected)
    }
}

impl std::error::Error for EnvError {}

impl EnvError {
    fn new(var: &str, value: &str, expected: &str) -> Self {
        EnvError { var: var.to_string(), value: value.to_string(), expected: expected.to_string() }
    }
}

/// `auto` / `on` / `off` knob value, shared by the launch cache and the
/// launch-parallelism policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Toggle {
    /// Enabled by default (the knob was not asked for explicitly).
    Auto,
    /// Explicitly enabled.
    On,
    /// Disabled.
    Off,
}

/// Parse an `auto`/`on`/`off` toggle value.
pub fn parse_toggle(var: &str, s: &str) -> Result<Toggle, EnvError> {
    match s {
        "auto" => Ok(Toggle::Auto),
        "on" => Ok(Toggle::On),
        "off" => Ok(Toggle::Off),
        _ => Err(EnvError::new(var, s, "`auto`, `on` or `off`")),
    }
}

/// Parse an engine name (`tree` | `bytecode` | `native` | `auto`). Returns
/// the raw name; the executor maps it onto its `Engine` enum (`auto` is
/// bytecode with hotness-driven promotion to the native tier).
pub fn parse_engine_name(s: &str) -> Result<&'static str, EnvError> {
    match s {
        "tree" => Ok("tree"),
        "bytecode" => Ok("bytecode"),
        "native" => Ok("native"),
        "auto" => Ok("auto"),
        _ => Err(EnvError::new("ACCEVAL_ENGINE", s, "`tree`, `bytecode`, `native` or `auto`")),
    }
}

/// Parse an `ACCEVAL_NATIVE_THRESHOLD` value: the launch count past which
/// `ACCEVAL_ENGINE=auto` promotes a plan to the native tier.
pub fn parse_native_threshold(s: &str) -> Result<u64, EnvError> {
    s.trim().parse::<u64>().map_err(|_| EnvError::new("ACCEVAL_NATIVE_THRESHOLD", s, "an integer launch count"))
}

/// Parse a mebibyte count into bytes.
pub fn parse_cap_mb(var: &str, s: &str) -> Result<u64, EnvError> {
    s.trim()
        .parse::<u64>()
        .map(|mb| mb.saturating_mul(1 << 20))
        .map_err(|_| EnvError::new(var, s, "an integer MiB count"))
}

/// The persistent-store mode parsed from `ACCEVAL_STORE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreMode {
    /// Enabled at the default root (`results/.acceval-store`); enablement
    /// was defaulted, not asked for.
    Auto,
    /// Enabled at the default root, explicitly.
    On,
    /// Disabled: no disk probes, no spills.
    Off,
    /// Enabled at an explicit root directory.
    Path(std::path::PathBuf),
}

/// Parse an `ACCEVAL_STORE` value: `auto` | `on` | `off` | a directory path
/// (anything containing a path separator, or `.`/`..`, is a path).
pub fn parse_store_mode(s: &str) -> Result<StoreMode, EnvError> {
    match s {
        "auto" => Ok(StoreMode::Auto),
        "on" => Ok(StoreMode::On),
        "off" => Ok(StoreMode::Off),
        "" => Err(EnvError::new("ACCEVAL_STORE", s, "`auto`, `on`, `off`, or a directory path")),
        p if p.contains('/') || p.contains(std::path::MAIN_SEPARATOR) || p == "." || p == ".." => {
            Ok(StoreMode::Path(std::path::PathBuf::from(p)))
        }
        _ => Err(EnvError::new(
            "ACCEVAL_STORE",
            s,
            "`auto`, `on`, `off`, or a directory path (use `./name` for a relative directory)",
        )),
    }
}

/// Parse a device-generation preset name through the
/// [`acceval_sim::DeviceConfig::preset`] table. Returns the resolved config;
/// an unknown name is an [`EnvError`] naming the known presets.
pub fn parse_device_name(s: &str) -> Result<acceval_sim::DeviceConfig, EnvError> {
    acceval_sim::DeviceConfig::preset(s).ok_or_else(|| {
        let known: Vec<&str> = acceval_sim::DeviceConfig::presets().iter().map(|(n, _)| *n).collect();
        EnvError::new("ACCEVAL_DEVICE", s, &format!("a device preset: {}", known.join(", ")))
    })
}

/// The `ACCEVAL_*` variables this build understands.
pub const KNOWN_VARS: &[&str] = &[
    "ACCEVAL_DEVICE",
    "ACCEVAL_ENGINE",
    "ACCEVAL_NATIVE_THRESHOLD",
    "ACCEVAL_LAUNCH_PAR",
    "ACCEVAL_LAUNCH_CACHE",
    "ACCEVAL_OPT",
    "ACCEVAL_LAUNCH_CACHE_CAP_MB",
    "ACCEVAL_STORE",
    "ACCEVAL_STORE_CAP_MB",
    "ACCEVAL_STORE_EPOCH",
];

/// Validate every `ACCEVAL_*` variable present in the environment: known
/// names must parse, and unknown `ACCEVAL_`-prefixed names are rejected (a
/// misspelled knob silently doing nothing is the bug this guards against).
///
/// Front-end binaries call this once at startup and exit 2 with a usage
/// message on `Err`; library code never calls it, so tests and embedders can
/// still set their own variables through the process environment — as long
/// as they don't squat the `ACCEVAL_` prefix.
pub fn validate_env() -> Result<(), EnvError> {
    for (k, v) in std::env::vars() {
        if !k.starts_with("ACCEVAL_") {
            continue;
        }
        match k.as_str() {
            "ACCEVAL_DEVICE" => {
                parse_device_name(&v)?;
            }
            "ACCEVAL_ENGINE" => {
                parse_engine_name(&v)?;
            }
            "ACCEVAL_NATIVE_THRESHOLD" => {
                parse_native_threshold(&v)?;
            }
            "ACCEVAL_LAUNCH_PAR" | "ACCEVAL_LAUNCH_CACHE" | "ACCEVAL_OPT" => {
                parse_toggle(&k, &v)?;
            }
            "ACCEVAL_LAUNCH_CACHE_CAP_MB" | "ACCEVAL_STORE_CAP_MB" => {
                parse_cap_mb(&k, &v)?;
            }
            "ACCEVAL_STORE" => {
                parse_store_mode(&v)?;
            }
            // Free-form: any string is a valid epoch label.
            "ACCEVAL_STORE_EPOCH" => {}
            _ => return Err(EnvError::new(&k, &v, &format!("no such ACCEVAL knob; known: {}", KNOWN_VARS.join(", ")))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_parses() {
        assert_eq!(parse_toggle("X", "auto"), Ok(Toggle::Auto));
        assert_eq!(parse_toggle("X", "on"), Ok(Toggle::On));
        assert_eq!(parse_toggle("X", "off"), Ok(Toggle::Off));
        let e = parse_toggle("ACCEVAL_LAUNCH_CACHE", "maybe").unwrap_err();
        assert_eq!(e.var, "ACCEVAL_LAUNCH_CACHE");
        assert!(e.to_string().contains("maybe"));
    }

    #[test]
    fn opt_knob_is_known_and_toggle_valued() {
        assert!(KNOWN_VARS.contains(&"ACCEVAL_OPT"));
        assert_eq!(parse_toggle("ACCEVAL_OPT", "auto"), Ok(Toggle::Auto));
        let e = parse_toggle("ACCEVAL_OPT", "fast").unwrap_err();
        assert_eq!(e.var, "ACCEVAL_OPT");
    }

    #[test]
    fn engine_name_parses() {
        assert_eq!(parse_engine_name("tree"), Ok("tree"));
        assert_eq!(parse_engine_name("bytecode"), Ok("bytecode"));
        assert_eq!(parse_engine_name("native"), Ok("native"));
        assert_eq!(parse_engine_name("auto"), Ok("auto"));
        let e = parse_engine_name("jit").unwrap_err();
        assert_eq!(e.var, "ACCEVAL_ENGINE");
        assert!(e.to_string().contains("native"), "error must name the accepted engines: {e}");
    }

    #[test]
    fn native_threshold_parses() {
        assert!(KNOWN_VARS.contains(&"ACCEVAL_NATIVE_THRESHOLD"));
        assert_eq!(parse_native_threshold("8"), Ok(8));
        assert_eq!(parse_native_threshold(" 0 "), Ok(0));
        assert!(parse_native_threshold("soon").is_err());
        assert!(parse_native_threshold("-1").is_err());
        assert_eq!(parse_native_threshold("nope").unwrap_err().var, "ACCEVAL_NATIVE_THRESHOLD");
    }

    #[test]
    fn cap_parses_and_saturates() {
        assert_eq!(parse_cap_mb("X", "512"), Ok(512 << 20));
        assert_eq!(parse_cap_mb("X", " 1 "), Ok(1 << 20));
        assert!(parse_cap_mb("X", "12MB").is_err());
        assert!(parse_cap_mb("X", "-3").is_err());
        // A huge-but-parseable cap saturates instead of overflowing.
        assert_eq!(parse_cap_mb("X", &u64::MAX.to_string()), Ok(u64::MAX));
    }

    #[test]
    fn device_name_parses() {
        assert!(parse_device_name("fermi").is_ok());
        assert!(parse_device_name("volta_v100").is_ok());
        let e = parse_device_name("turing").unwrap_err();
        assert_eq!(e.var, "ACCEVAL_DEVICE");
        assert!(e.to_string().contains("fermi"), "error must name the known presets: {e}");
    }

    #[test]
    fn store_mode_parses() {
        assert_eq!(parse_store_mode("auto"), Ok(StoreMode::Auto));
        assert_eq!(parse_store_mode("off"), Ok(StoreMode::Off));
        assert_eq!(parse_store_mode("/tmp/s"), Ok(StoreMode::Path("/tmp/s".into())));
        assert_eq!(parse_store_mode("./store"), Ok(StoreMode::Path("./store".into())));
        // A bare word that is neither a mode nor visibly a path is an error,
        // not a surprise relative directory.
        assert!(parse_store_mode("fast").is_err());
        assert!(parse_store_mode("").is_err());
    }
}
