//! Compiled GPU kernel plans.
//!
//! A [`KernelPlan`] is what a directive-model compiler (or a hand-written
//! CUDA port) produces for one offloaded loop nest: the per-thread body, how
//! loop indices map to the thread grid, reduction handling, private-array
//! expansion layout, and memory-space placements. The GPU executor
//! ([`crate::interp::gpu`]) runs plans functionally and prices them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::expr::Expr;
use crate::interp::bytecode::{compile, KernelBytecode};
use crate::interp::native::{compile_native, NativeKernel};
use crate::interp::opt::{note_opt, optimize, OptKernel, OptStats};
use crate::program::Program;
use crate::stmt::Stmt;
use crate::types::{ArrayId, ReduceOp, ScalarId, VarRef};

/// One parallel axis: a loop variable bound to a thread-grid dimension.
/// Thread with coordinate `g` along this axis executes with
/// `var = lo + g * step`, guarded by `g < count`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParAxis {
    pub var: ScalarId,
    pub lo: Expr,
    /// Number of iterations along this axis (evaluated at launch).
    pub count: Expr,
    pub step: Expr,
}

/// Memory space a (device-resident) array is accessed through.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemSpace {
    /// Ordinary global memory.
    Global,
    /// Constant memory: broadcast reads are near-free, divergent reads
    /// serialize; no DRAM traffic (assumed cache-resident).
    Constant,
    /// Texture memory: read-only, cached (simulated texture cache).
    Texture,
    /// Staged through shared-memory tiles with the given average reuse
    /// factor: global traffic is divided by `reuse`, accesses are priced as
    /// shared-memory (bank-conflict-aware) traffic instead.
    SharedTiled { reuse: f64 },
}

/// How a private array is expanded into device memory.
///
/// This is the paper's EP story: the PGI compiler expands thread-private
/// arrays **row-wise** (`tid * len + i` — good for CPU locality, uncoalesced
/// on the GPU) while OpenMPC's *Matrix Transpose* technique expands
/// **column-wise** (`i * nthreads + tid` — coalesced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expansion {
    RowWise,
    ColumnWise,
    /// Kept in registers/local storage; no global traffic (only valid for
    /// tiny arrays — the hand-written versions use this when they eliminate
    /// redundant private arrays).
    Register,
}

/// A privatized array within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivateArray {
    pub array: ArrayId,
    pub expansion: Expansion,
}

/// One reduction target of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReduceTarget {
    pub op: ReduceOp,
    pub target: VarRef,
}

/// How reductions are realized on the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReduceStrategy {
    /// Classic two-level tree: per-block partials (optionally staged in
    /// shared memory) + a small second-stage combine. This is what every
    /// model that *supports* the pattern generates.
    TwoLevelTree {
        /// Whether partials live in shared memory (the manual KMEANS
        /// optimization) rather than global scratch.
        partials_in_shared: bool,
    },
    /// Serialize through atomics (what a naive critical-section mapping
    /// would cost; none of the evaluated models actually emit this — it
    /// exists for ablations).
    AtomicSerial,
}

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPlan {
    pub name: String,
    /// 1 or 2 parallel axes (axis 0 -> x, axis 1 -> y).
    pub axes: Vec<ParAxis>,
    /// Thread-block shape (x, y). `block.0 * block.1 <= max_threads_per_block`.
    pub block: (u32, u32),
    /// Per-thread body (the loop nest minus the parallelized loops).
    pub body: Vec<Stmt>,
    /// Reduction targets (empty for ordinary kernels).
    pub reductions: Vec<ReduceTarget>,
    pub reduce_strategy: ReduceStrategy,
    /// Private arrays and their expansion layout.
    pub private_arrays: Vec<PrivateArray>,
    /// Memory-space placement overrides (default: Global).
    pub placement: Vec<(ArrayId, MemSpace)>,
    /// Estimated registers per thread (occupancy input).
    pub regs_per_thread: u32,
    /// Extra static shared memory per block (tiles, reduction scratch).
    pub shared_bytes_per_block: u32,
    /// Dense site count of `body` after [`KernelPlan::finalize`].
    pub site_count: u32,
    /// Whether `block` was derived from the tuning point's launch geometry
    /// (1-D mapping with no explicit block hint). Such plans can be
    /// re-pointed at a different geometry without re-lowering.
    pub block_from_tuning: bool,
    /// Element size (bytes) of a hint-placed shared tile whose per-block
    /// footprint was derived from the tuning block geometry; `None` when
    /// `shared_bytes_per_block` is geometry-independent.
    pub tuned_shared_elem: Option<u32>,
    /// Lazily compiled bytecode for the execution engine. Not part of the
    /// plan's identity: compares equal, serializes as null, and is shared
    /// (not recompiled) across clones — geometry retargeting keeps it valid
    /// because the bytecode is block-shape-independent.
    pub engine_cache: EngineCache,
}

/// Outcome of the once-per-plan bytecode compilation attempt.
///
/// The negative result is a first-class, explicitly memoized value — a body
/// out of the bytecode engine's scope (e.g. one with calls) records
/// `Ineligible` on the first launch, and every later launch reads that
/// verdict instead of re-walking the body to rediscover the bail.
#[derive(Clone)]
pub enum CompileOutcome {
    /// The body compiled; launches run the bytecode engine.
    Compiled(Arc<KernelBytecode>),
    /// The body is outside the bytecode engine's scope; launches fall back
    /// to the tree engine. Memoized so the scope walk happens once.
    Ineligible,
}

/// Shared once-per-plan bytecode cache (see [`KernelPlan::engine_cache`]).
///
/// Holds the memoized [`CompileOutcome`] (positive *and* negative), the
/// memoized optimized stream layered on a successful compile, and the plan
/// fingerprint.
#[derive(Clone, Default)]
pub struct EngineCache {
    slot: Arc<OnceLock<CompileOutcome>>,
    /// Optimized stream for a `Compiled` outcome (`None` after a compile
    /// that bailed). Lazily built by [`EngineCache::get_or_optimize`], so
    /// runs with the optimizer disabled never pay for it.
    opt: Arc<OnceLock<Option<Arc<OptKernel>>>>,
    /// Memoized geometry-invariant plan fingerprint (see
    /// [`EngineCache::fingerprint`]). Shares the engine cache's lifetime
    /// contract: valid across clones because geometry retargeting never
    /// touches the fingerprinted fields.
    fp: Arc<OnceLock<u128>>,
    /// Native-tier compilation, layered on the optimized stream. `None`
    /// inside the lock when the plan is ineligible (no typed lowering, or
    /// the first native launch used an unsupported warp width).
    native: Arc<OnceLock<Option<Arc<NativeKernel>>>>,
    /// Launches of this plan (all tiers) — the `auto` hotness launch count.
    launches: Arc<AtomicU64>,
    /// Accumulated trace-attributed simulated cost, in microseconds — the
    /// `auto` hotness cost signal.
    sim_us: Arc<AtomicU64>,
    /// Launches of this plan that executed through the native tier.
    native_launches: Arc<AtomicU64>,
    /// The launch ordinal at which `auto` first promoted this plan.
    promoted_at: Arc<OnceLock<u64>>,
}

impl EngineCache {
    /// The compiled bytecode for `plan`, compiling on first use. Returns
    /// `None` when the body is out of the bytecode engine's scope.
    pub fn get_or_compile(&self, prog: &Program, plan: &KernelPlan) -> Option<Arc<KernelBytecode>> {
        match self.slot.get_or_init(|| match compile(prog, plan) {
            Some(bc) => CompileOutcome::Compiled(Arc::new(bc)),
            None => CompileOutcome::Ineligible,
        }) {
            CompileOutcome::Compiled(bc) => Some(bc.clone()),
            CompileOutcome::Ineligible => None,
        }
    }

    /// The memoized compile verdict, without forcing a compilation.
    pub fn outcome(&self) -> Option<&CompileOutcome> {
        self.slot.get()
    }

    /// The optimized kernel for `plan`, compiling and optimizing on first
    /// use. `None` when the body is out of the bytecode engine's scope.
    pub fn get_or_optimize(&self, prog: &Program, plan: &KernelPlan) -> Option<Arc<OptKernel>> {
        let bc = self.get_or_compile(prog, plan);
        self.opt
            .get_or_init(|| {
                let ok = optimize(prog, &*bc?);
                note_opt(&ok.stats);
                Some(Arc::new(ok))
            })
            .clone()
    }

    /// Optimizer statistics, if the optimized stream has been built.
    pub fn opt_stats(&self) -> Option<OptStats> {
        self.opt.get().and_then(|o| o.as_ref().map(|ok| ok.stats.clone()))
    }

    /// The native-tier kernel for `plan` at warp width `warp`, compiling on
    /// first use. `None` when the plan has no typed lowering (optimizer
    /// bailed or body ineligible) or `warp` doesn't match the width the
    /// first native launch compiled for — callers fall back to bytecode.
    pub fn get_or_native(&self, prog: &Program, plan: &KernelPlan, warp: usize) -> Option<Arc<NativeKernel>> {
        let ok = self.get_or_optimize(prog, plan);
        let nk = self.native.get_or_init(|| compile_native(ok.as_ref()?, warp).map(Arc::new)).clone()?;
        (nk.warp == warp).then_some(nk)
    }

    /// The compiled native kernel, if the native tier has been entered.
    pub fn native_kernel(&self) -> Option<Arc<NativeKernel>> {
        self.native.get().and_then(Clone::clone)
    }

    /// Count a launch of this plan; returns the 1-based launch ordinal.
    pub fn note_launch(&self) -> u64 {
        self.launches.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Launches of this plan so far (all tiers).
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Fold a launch's trace-attributed simulated cost into the hotness
    /// accumulator.
    pub fn note_sim_cost(&self, time_secs: f64) {
        let us = (time_secs * 1e6) as u64;
        self.sim_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Accumulated simulated cost of this plan's launches, in microseconds.
    pub fn sim_us(&self) -> u64 {
        self.sim_us.load(Ordering::Relaxed)
    }

    /// Count a launch that executed through the native tier.
    pub fn note_native_launch(&self) {
        self.native_launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Launches of this plan that executed natively.
    pub fn native_launches(&self) -> u64 {
        self.native_launches.load(Ordering::Relaxed)
    }

    /// Record the launch ordinal of the first `auto` promotion. Returns
    /// `true` exactly once — the caller counts that as the promotion event.
    pub fn mark_promoted(&self, at_launch: u64) -> bool {
        let mut first = false;
        self.promoted_at.get_or_init(|| {
            first = true;
            at_launch
        });
        first
    }

    /// The launch ordinal at which `auto` promoted this plan, if it has.
    pub fn promoted_at(&self) -> Option<u64> {
        self.promoted_at.get().copied()
    }

    /// 128-bit fingerprint of `plan`'s geometry-*invariant* identity: name,
    /// axes, body, reductions, strategy, private arrays, placements, and
    /// site numbering. Computed once per plan and shared across clones —
    /// sound because `retarget_block_geometry` mutates only `block` and
    /// `shared_bytes_per_block`, which the launch cache keys live instead.
    pub fn fingerprint(&self, plan: &KernelPlan) -> u128 {
        *self.fp.get_or_init(|| {
            let repr = format!(
                "{:?}",
                (
                    &plan.name,
                    &plan.axes,
                    &plan.body,
                    &plan.reductions,
                    &plan.reduce_strategy,
                    &plan.private_arrays,
                    &plan.placement,
                    plan.site_count,
                )
            );
            let mut d = acceval_sim::Digest128::new();
            let bytes = repr.as_bytes();
            d.push(bytes.len() as u64);
            for chunk in bytes.chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                d.push(u64::from_le_bytes(w));
            }
            d.finish()
        })
    }
}

impl std::fmt::Debug for EngineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slot.get() {
            None => write!(f, "EngineCache(empty)"),
            Some(CompileOutcome::Ineligible) => write!(f, "EngineCache(tree-fallback)"),
            Some(CompileOutcome::Compiled(bc)) => match self.opt.get() {
                Some(Some(ok)) => {
                    write!(f, "EngineCache({} ops, opt {} ops)", bc.op_count(), ok.stats.ops_post)
                }
                _ => write!(f, "EngineCache({} ops)", bc.op_count()),
            },
        }
    }
}

impl PartialEq for EngineCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Serialize for EngineCache {
    fn to_json(&self) -> serde::Json {
        serde::Json::Null
    }
}

impl Deserialize for EngineCache {}

impl KernelPlan {
    /// A plan with defaults: 1-D 256-thread blocks, no reductions, global
    /// placement, 20 registers/thread.
    pub fn new(name: impl Into<String>, axes: Vec<ParAxis>, body: Vec<Stmt>) -> Self {
        KernelPlan {
            name: name.into(),
            axes,
            block: (256, 1),
            body,
            reductions: vec![],
            reduce_strategy: ReduceStrategy::TwoLevelTree { partials_in_shared: false },
            private_arrays: vec![],
            placement: vec![],
            regs_per_thread: 20,
            shared_bytes_per_block: 0,
            site_count: 0,
            block_from_tuning: false,
            tuned_shared_elem: None,
            engine_cache: EngineCache::default(),
        }
    }

    /// Renumber sites densely within the kernel body. Must be called before
    /// execution; compilers call it as their last step.
    pub fn finalize(&mut self) -> &mut Self {
        self.site_count = crate::program::renumber_sites(&mut self.body);
        assert!(!self.axes.is_empty() && self.axes.len() <= 2, "kernels have 1 or 2 parallel axes");
        assert!(self.block.0 >= 1 && self.block.1 >= 1);
        self
    }

    /// The memory space of an array in this kernel.
    pub fn space_of(&self, a: ArrayId) -> MemSpace {
        self.placement.iter().find(|(id, _)| *id == a).map(|(_, s)| *s).unwrap_or(MemSpace::Global)
    }

    /// The expansion of a private array, if `a` is private in this kernel.
    pub fn expansion_of(&self, a: ArrayId) -> Option<Expansion> {
        self.private_arrays.iter().find(|p| p.array == a).map(|p| p.expansion)
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }

    // -- builder-style setters used by the model compilers --------------

    pub fn with_block(mut self, x: u32, y: u32) -> Self {
        self.block = (x, y);
        self
    }

    pub fn with_reduction(mut self, op: ReduceOp, target: VarRef) -> Self {
        self.reductions.push(ReduceTarget { op, target });
        self
    }

    pub fn with_reduce_strategy(mut self, s: ReduceStrategy) -> Self {
        self.reduce_strategy = s;
        self
    }

    pub fn with_private(mut self, array: ArrayId, expansion: Expansion) -> Self {
        self.private_arrays.push(PrivateArray { array, expansion });
        self
    }

    pub fn with_placement(mut self, array: ArrayId, space: MemSpace) -> Self {
        self.placement.retain(|(id, _)| *id != array);
        self.placement.push((array, space));
        if let MemSpace::SharedTiled { .. } = space {
            // Reserve a nominal tile footprint if the caller didn't.
            if self.shared_bytes_per_block == 0 {
                self.shared_bytes_per_block = 4 * 1024;
            }
        }
        self
    }

    pub fn with_shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes_per_block = bytes;
        self
    }

    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }
}

/// Convenience: a 1-D axis over `0..count` with unit step.
pub fn axis(var: ScalarId, count: Expr) -> ParAxis {
    ParAxis { var, lo: Expr::I(0), count, step: Expr::I(1) }
}

/// Convenience: an axis over `lo..lo+count*step`.
pub fn axis_from(var: ScalarId, lo: Expr, count: Expr, step: Expr) -> ParAxis {
    ParAxis { var, lo, count, step }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::store;
    use crate::expr::{ld, v};
    use crate::types::ScalarId;

    #[test]
    fn finalize_numbers_sites() {
        let i = ScalarId(0);
        let a = ArrayId(0);
        let body = vec![store(a, vec![v(i)], ld(a, vec![v(i)]) + 1.0)];
        let mut k = KernelPlan::new("k", vec![axis(i, Expr::I(16))], body);
        k.finalize();
        assert_eq!(k.site_count, 2);
        assert_eq!(k.threads_per_block(), 256);
    }

    #[test]
    fn placement_override_and_default() {
        let i = ScalarId(0);
        let a = ArrayId(0);
        let b = ArrayId(1);
        let k = KernelPlan::new("k", vec![axis(i, Expr::I(4))], vec![store(a, vec![v(i)], 0.0)])
            .with_placement(b, MemSpace::Texture);
        assert_eq!(k.space_of(a), MemSpace::Global);
        assert_eq!(k.space_of(b), MemSpace::Texture);
    }

    #[test]
    fn placement_override_replaces() {
        let i = ScalarId(0);
        let a = ArrayId(0);
        let k = KernelPlan::new("k", vec![axis(i, Expr::I(4))], vec![store(a, vec![v(i)], 0.0)])
            .with_placement(a, MemSpace::Texture)
            .with_placement(a, MemSpace::Constant);
        assert_eq!(k.space_of(a), MemSpace::Constant);
        assert_eq!(k.placement.len(), 1);
    }

    #[test]
    #[should_panic(expected = "1 or 2 parallel axes")]
    fn finalize_rejects_axisless() {
        let a = ArrayId(0);
        let mut k = KernelPlan::new("k", vec![], vec![store(a, vec![Expr::I(0)], 0.0)]);
        k.finalize();
    }

    #[test]
    fn engine_cache_memoizes_both_verdicts() {
        use crate::builder::{call, ProgramBuilder};

        // A body with a call is outside the bytecode engine's scope: the
        // negative verdict must be recorded, not rediscovered per launch.
        let mut pb = ProgramBuilder::new("neg");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let pa = pb.farray("pa", vec![v(n)]);
        let f = pb.func("f", vec![], vec![pa], vec![store(pa, vec![Expr::I(0)], 1.0)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], vec![call(f, vec![], vec![x])]);
        k.finalize();
        assert!(k.engine_cache.outcome().is_none());
        assert!(k.engine_cache.get_or_compile(&p, &k).is_none());
        assert!(matches!(k.engine_cache.outcome(), Some(CompileOutcome::Ineligible)));
        // The memoized verdict answers later probes (and is shared across
        // plan clones, so a sweep's repeated launches never re-walk the
        // body).
        assert!(k.engine_cache.get_or_compile(&p, &k).is_none());
        assert!(k.clone().engine_cache.get_or_compile(&p, &k).is_none());
        // Optimizing an ineligible plan is also a memoized no-op.
        assert!(k.engine_cache.get_or_optimize(&p, &k).is_none());
        assert!(k.engine_cache.opt_stats().is_none());

        // Positive verdict: compiled once, optimizer layered on top.
        let mut pb = ProgramBuilder::new("pos");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], vec![store(y, vec![v(i)], 1.0)]);
        k.finalize();
        assert!(k.engine_cache.get_or_compile(&p, &k).is_some());
        assert!(matches!(k.engine_cache.outcome(), Some(CompileOutcome::Compiled(_))));
        assert!(k.engine_cache.opt_stats().is_none(), "optimizer must be lazy");
        assert!(k.engine_cache.get_or_optimize(&p, &k).is_some());
        assert!(k.engine_cache.opt_stats().is_some());
    }
}
