//! Source-level transformations: the optimization repertoire the paper's
//! compilers (and porters) apply.
//!
//! * [`inline_all`] — procedure inlining (what PGI/HMPP demand manually and
//!   OpenMPC approximates with automatic procedure cloning);
//! * [`interchange`] — *parallel loop-swap* (OpenMPC's coalescing fix);
//! * [`collapse2`] — loop collapsing (OpenMPC's fix for CG; OpenMP
//!   `collapse(2)` for HOTSPOT);
//! * [`coarsen`] — thread coarsening / strip-mining (EP's fix for the
//!   private-array memory overflow);
//! * [`subst_arrays`] — array substitution used by inlining.

use std::collections::HashMap;

use crate::expr::Expr;
use crate::program::Program;
use crate::stmt::{visit_exprs_mut, visit_stmts_mut, ParInfo, Stmt};
use crate::types::ArrayId;

/// Replace array ids per `map` in a statement tree (loads, stores, clauses).
pub fn subst_arrays(stmts: &mut [Stmt], map: &HashMap<ArrayId, ArrayId>) {
    let res = |a: ArrayId| *map.get(&a).unwrap_or(&a);
    visit_stmts_mut(stmts, &mut |s| match s {
        Stmt::Store { array, .. } => *array = res(*array),
        Stmt::Update { arrays, .. } => {
            for a in arrays {
                *a = res(*a);
            }
        }
        Stmt::DataRegion { clauses, .. } => {
            for list in [&mut clauses.copyin, &mut clauses.copyout, &mut clauses.copy, &mut clauses.create] {
                for a in list {
                    *a = res(*a);
                }
            }
        }
        Stmt::Call { array_args, .. } => {
            for a in array_args {
                *a = res(*a);
            }
        }
        Stmt::Parallel(r) => {
            for p in &mut r.private {
                if let crate::types::VarRef::Array(a) = p {
                    *a = res(*a);
                }
            }
        }
        Stmt::For { par: Some(pi), .. } => {
            for p in &mut pi.private {
                if let crate::types::VarRef::Array(a) = p {
                    *a = res(*a);
                }
            }
            for r in &mut pi.reductions {
                if let crate::types::VarRef::Array(a) = &mut r.target {
                    *a = res(*a);
                }
            }
        }
        _ => {}
    });
    visit_exprs_mut(stmts, &mut |e| {
        if let Expr::Load { array, .. } = e {
            *array = res(*array);
        }
    });
}

/// Inline every call in `main` (and transitively), producing a flat program.
/// Scalar parameters become assignments; array parameters are substituted.
/// Panics on recursion (depth > 16).
pub fn inline_all(prog: &Program) -> Program {
    let mut out = prog.clone();
    let mut main = std::mem::take(&mut out.main);
    inline_stmts(&mut main, prog, 0);
    out.main = main;
    // The program is flat now; drop function bodies so regions (and sites)
    // are counted once.
    out.funcs.clear();
    out.finalize();
    out
}

fn inline_stmts(stmts: &mut Vec<Stmt>, prog: &Program, depth: usize) {
    assert!(depth < 16, "inline depth exceeded (recursive call?)");
    let mut i = 0;
    while i < stmts.len() {
        // Recurse into nested bodies first.
        for b in stmts[i].bodies_mut() {
            inline_stmts(b, prog, depth);
        }
        if let Stmt::Call { func, scalar_args, array_args } = &stmts[i] {
            let f = &prog.funcs[func.0 as usize];
            let mut replacement: Vec<Stmt> = Vec::with_capacity(f.scalar_params.len() + f.body.len());
            for (p, a) in f.scalar_params.iter().zip(scalar_args) {
                replacement.push(Stmt::Assign { var: *p, value: a.clone() });
            }
            let mut body = f.body.clone();
            let map: HashMap<ArrayId, ArrayId> =
                f.array_params.iter().copied().zip(array_args.iter().copied()).collect();
            subst_arrays(&mut body, &map);
            inline_stmts(&mut body, prog, depth + 1);
            replacement.extend(body);
            stmts.splice(i..=i, replacement.clone());
            i += replacement.len();
        } else {
            i += 1;
        }
    }
}

/// Interchange a 2-deep perfect nest: `for v1 { for v2 { body } }` becomes
/// `for v2 { for v1 { body } }`, moving the work-sharing annotation to the
/// new outer loop. Returns `false` (leaving the nest untouched) if the shape
/// doesn't match or the inner bounds depend on the outer variable.
pub fn interchange(nest: &mut Stmt) -> bool {
    let Stmt::For { var: v1, lo: lo1, hi: hi1, step: s1, body, par } = nest else {
        return false;
    };
    if body.len() != 1 {
        return false;
    }
    let Stmt::For { var: v2, lo: lo2, hi: hi2, step: s2, body: inner, par: par2 } = &mut body[0] else {
        return false;
    };
    if lo2.uses_var(*v1) || hi2.uses_var(*v1) || s2.uses_var(*v1) {
        return false;
    }
    let new_inner = Stmt::For {
        var: *v1,
        lo: lo1.clone(),
        hi: hi1.clone(),
        step: s1.clone(),
        body: std::mem::take(inner),
        par: par2.take(),
    };
    let swapped = Stmt::For {
        var: *v2,
        lo: lo2.clone(),
        hi: hi2.clone(),
        step: s2.clone(),
        body: vec![new_inner],
        par: par.take(),
    };
    *nest = swapped;
    true
}

/// Collapse a 2-deep perfect nest `for v1 in l1..h1 { for v2 in l2..h2 {..} }`
/// into a single loop over `k in 0..(n1*n2)` with
/// `v1 = l1 + k / n2; v2 = l2 + k % n2`. Inner bounds must not depend on the
/// outer variable. `k` is a fresh scalar allocated in `prog`. Returns whether
/// the transform applied.
pub fn collapse2(prog: &mut Program, nest: &mut Stmt) -> bool {
    let Stmt::For { var: v1, lo: lo1, hi: hi1, step, body, par } = nest else {
        return false;
    };
    if !matches!(step, Expr::I(1)) || body.len() != 1 {
        return false;
    }
    let Stmt::For { var: v2, lo: lo2, hi: hi2, step: s2, body: inner, par: _ } = &mut body[0] else {
        return false;
    };
    if !matches!(s2, Expr::I(1)) || lo2.uses_var(*v1) || hi2.uses_var(*v1) {
        return false;
    }
    let k = prog.fresh_scalar("_collapse_k", false);
    let n2 = hi2.clone() - lo2.clone();
    let mut new_body = vec![
        Stmt::Assign { var: *v1, value: lo1.clone() + Expr::Var(k) / n2.clone() },
        Stmt::Assign { var: *v2, value: lo2.clone() + Expr::Var(k) % n2.clone() },
    ];
    new_body.append(inner);
    let total = (hi1.clone() - lo1.clone()) * n2;
    let par_info = par.take().or(Some(ParInfo::default()));
    *nest = Stmt::For { var: k, lo: Expr::I(0), hi: total, step: Expr::I(1), body: new_body, par: par_info };
    true
}

/// Thread-coarsen a work-sharing loop: `pfor v in 0..n` becomes
/// `pfor t in 0..T { for v in t..n step T { body } }` (cyclic distribution,
/// which preserves coalescing). Used by the EP ports to cap the number of
/// threads so expanded private arrays fit in memory.
pub fn coarsen(prog: &mut Program, nest: &mut Stmt, threads: Expr) -> bool {
    let Stmt::For { var, lo, hi, step, body, par } = nest else {
        return false;
    };
    if !matches!(step, Expr::I(1)) || !matches!(lo, Expr::I(0)) {
        return false;
    }
    let t = prog.fresh_scalar("_coarse_t", false);
    let inner = Stmt::For {
        var: *var,
        lo: Expr::Var(t),
        hi: hi.clone(),
        step: threads.clone(),
        body: std::mem::take(body),
        par: None,
    };
    let par_info = par.take().or(Some(ParInfo::default()));
    *nest = Stmt::For { var: t, lo: Expr::I(0), hi: threads, step: Expr::I(1), body: vec![inner], par: par_info };
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::interp::cpu::run_cpu;
    use crate::program::DataSet;
    use crate::types::ScalarId;
    use crate::types::Value;
    use acceval_sim::HostConfig;

    /// Build a 2-D program, apply `f` to the nest inside the region, run on
    /// CPU and return the output buffer.
    fn run_variant(f: impl FnOnce(&mut Program)) -> Vec<f64> {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let a = pb.farray("a", vec![v(n), v(n)]);
        pb.main(vec![parallel(
            "r",
            vec![pfor(
                i,
                0i64,
                v(n),
                vec![sfor(j, 0i64, v(n), vec![store(a, vec![v(i), v(j)], (v(i) * 100i64 + v(j)).to_f())])],
            )],
        )]);
        let mut p = pb.build();
        f(&mut p);
        p.finalize();
        let ds = DataSet { scalars: vec![(n, Value::I(8))], arrays: vec![], label: "t".into() };
        let r = run_cpu(&p, &ds, &HostConfig::xeon_x5660());
        r.data.bufs[a.0 as usize].as_f64().to_vec()
    }

    fn nest_of(p: &mut Program) -> &mut Stmt {
        let Stmt::Parallel(r) = &mut p.main[0] else { panic!() };
        &mut r.body[0]
    }

    #[test]
    fn interchange_preserves_semantics() {
        let base = run_variant(|_| {});
        let swapped = run_variant(|p| {
            assert!(interchange(nest_of(p)));
        });
        assert_eq!(base, swapped);
    }

    #[test]
    fn interchange_moves_par_annotation() {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let a = pb.farray("a", vec![v(n), v(n)]);
        let mut nest = pfor(i, 0i64, v(n), vec![sfor(j, 0i64, v(n), vec![store(a, vec![v(i), v(j)], 0.0)])]);
        assert!(interchange(&mut nest));
        let Stmt::For { var, par, body, .. } = &nest else { panic!() };
        assert_eq!(*var, j);
        assert!(par.is_some());
        let Stmt::For { var: iv, par: ip, .. } = &body[0] else { panic!() };
        assert_eq!(*iv, i);
        assert!(ip.is_none());
    }

    #[test]
    fn interchange_rejects_triangular() {
        let i = ScalarId(0);
        let j = ScalarId(1);
        let a = ArrayId(0);
        let mut nest = pfor(i, 0i64, 8i64, vec![sfor(j, v(i), 8i64, vec![store(a, vec![v(j)], 0.0)])]);
        assert!(!interchange(&mut nest));
    }

    #[test]
    fn collapse_preserves_semantics() {
        let base = run_variant(|_| {});
        let collapsed = run_variant(|p| {
            // take nest out to appease the borrow checker
            let mut nest = {
                let Stmt::Parallel(r) = &mut p.main[0] else { panic!() };
                r.body.remove(0)
            };
            assert!(collapse2(p, &mut nest));
            let Stmt::Parallel(r) = &mut p.main[0] else { panic!() };
            r.body.push(nest);
        });
        assert_eq!(base, collapsed);
    }

    #[test]
    fn coarsen_preserves_semantics() {
        let base = run_variant(|_| {});
        let coarse = run_variant(|p| {
            let mut nest = {
                let Stmt::Parallel(r) = &mut p.main[0] else { panic!() };
                r.body.remove(0)
            };
            assert!(coarsen(p, &mut nest, Expr::I(3)));
            let Stmt::Parallel(r) = &mut p.main[0] else { panic!() };
            r.body.push(nest);
        });
        assert_eq!(base, coarse);
    }

    #[test]
    fn inline_all_flattens_calls() {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let c = pb.fscalar("c");
        let x = pb.farray("x", vec![v(n)]);
        let fa = pb.farray("fa", vec![v(n)]);
        let f = pb.func(
            "scale",
            vec![c],
            vec![fa],
            vec![parallel("scale", vec![pfor(i, 0i64, v(n), vec![store(fa, vec![v(i)], ld(fa, vec![v(i)]) * v(c))])])],
        );
        pb.main(vec![sfor(i, 0i64, v(n), vec![store(x, vec![v(i)], 1.0)]), call(f, vec![Expr::F(3.0)], vec![x])]);
        let p = pb.build();
        let flat = inline_all(&p);
        assert!(flat.main.iter().all(|s| !s.contains_call()));
        assert_eq!(flat.region_count, 1);
        // Region in the flat program references `x`, not the formal.
        let regions = flat.regions();
        let t = crate::analysis::arrays_touched(&flat, &regions[0].body);
        assert!(t.writes.contains(&x));
        assert!(!t.writes.contains(&fa));
        // Semantics preserved.
        let ds = DataSet { scalars: vec![(n, Value::I(5))], arrays: vec![], label: "t".into() };
        let r1 = run_cpu(&p, &ds, &HostConfig::xeon_x5660());
        let r2 = run_cpu(&flat, &ds, &HostConfig::xeon_x5660());
        assert_eq!(r1.data.bufs[x.0 as usize].as_f64(), r2.data.bufs[x.0 as usize].as_f64());
    }
}
