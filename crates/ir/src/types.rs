//! Identifiers and runtime values for the directive IR.

use serde::{Deserialize, Serialize};

/// Index of a scalar variable slot in a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScalarId(pub u32);

/// Index of an array declaration in a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

/// Index of a function in a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifier of an OpenMP parallel region, stable across porting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// Identifier of a static memory-access or branch site, assigned densely by
/// [`crate::program::Program::finalize`]. The GPU executor keys its per-warp
/// address traces by site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// A scalar or array variable reference (for clauses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarRef {
    Scalar(ScalarId),
    Array(ArrayId),
}

/// Runtime scalar value. All float arithmetic is f64; integer arithmetic is
/// i64; comparisons yield `B`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    F(f64),
    I(i64),
    B(bool),
}

impl Value {
    /// Numeric value as f64 (`B` maps to 0/1).
    #[inline]
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(x) => x,
            Value::I(x) => x as f64,
            Value::B(b) => b as i64 as f64,
        }
    }

    /// Numeric value as i64 (floats truncate toward zero, as in C casts).
    #[inline]
    pub fn as_i(self) -> i64 {
        match self {
            Value::F(x) => x as i64,
            Value::I(x) => x,
            Value::B(b) => b as i64,
        }
    }

    /// Truthiness (C semantics: nonzero is true).
    #[inline]
    pub fn as_b(self) -> bool {
        match self {
            Value::F(x) => x != 0.0,
            Value::I(x) => x != 0,
            Value::B(b) => b,
        }
    }

    /// Whether the value is floating point.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Value::F(_))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::I(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::B(x)
    }
}

/// Reduction operators supported by the directive dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    Add,
    Mul,
    Max,
    Min,
    /// Logical OR (used e.g. for BFS's "frontier not empty" flag).
    Or,
    And,
}

impl ReduceOp {
    /// The identity element, as a float (integer targets convert).
    pub fn identity_f(self) -> f64 {
        match self {
            ReduceOp::Add | ReduceOp::Or => 0.0,
            ReduceOp::Mul | ReduceOp::And => 1.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// The identity element for an integer target.
    pub fn identity_i(self) -> i64 {
        match self {
            ReduceOp::Add | ReduceOp::Or => 0,
            ReduceOp::Mul | ReduceOp::And => 1,
            ReduceOp::Max => i64::MIN,
            ReduceOp::Min => i64::MAX,
        }
    }

    /// Combine two values under this operator.
    pub fn combine(self, a: Value, b: Value) -> Value {
        match (self, a, b) {
            (ReduceOp::Add, Value::I(x), Value::I(y)) => Value::I(x + y),
            (ReduceOp::Mul, Value::I(x), Value::I(y)) => Value::I(x * y),
            (ReduceOp::Max, Value::I(x), Value::I(y)) => Value::I(x.max(y)),
            (ReduceOp::Min, Value::I(x), Value::I(y)) => Value::I(x.min(y)),
            (ReduceOp::Add, a, b) => Value::F(a.as_f() + b.as_f()),
            (ReduceOp::Mul, a, b) => Value::F(a.as_f() * b.as_f()),
            (ReduceOp::Max, a, b) => Value::F(a.as_f().max(b.as_f())),
            (ReduceOp::Min, a, b) => Value::F(a.as_f().min(b.as_f())),
            (ReduceOp::Or, a, b) => Value::B(a.as_b() || b.as_b()),
            (ReduceOp::And, a, b) => Value::B(a.as_b() && b.as_b()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::F(2.9).as_i(), 2);
        assert_eq!(Value::F(-2.9).as_i(), -2);
        assert_eq!(Value::I(3).as_f(), 3.0);
        assert!(Value::I(1).as_b());
        assert!(!Value::F(0.0).as_b());
        assert_eq!(Value::B(true).as_f(), 1.0);
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(ReduceOp::Add.identity_f(), 0.0);
        assert_eq!(ReduceOp::Mul.identity_i(), 1);
        assert_eq!(ReduceOp::Max.identity_i(), i64::MIN);
        assert!(ReduceOp::Min.identity_f().is_infinite());
    }

    #[test]
    fn reduce_combines() {
        assert_eq!(ReduceOp::Add.combine(Value::I(2), Value::I(3)), Value::I(5));
        assert_eq!(ReduceOp::Max.combine(Value::F(2.0), Value::F(3.0)), Value::F(3.0));
        assert_eq!(ReduceOp::Or.combine(Value::B(false), Value::I(7)), Value::B(true));
        assert_eq!(ReduceOp::Min.combine(Value::I(-1), Value::I(4)), Value::I(-1));
    }

    #[test]
    fn identity_is_neutral() {
        for op in [ReduceOp::Add, ReduceOp::Mul, ReduceOp::Max, ReduceOp::Min] {
            let x = Value::F(4.25);
            let id = Value::F(op.identity_f());
            assert_eq!(op.combine(id, x), x);
        }
    }
}
