//! Ergonomic construction of programs and statements.
//!
//! The benchmark crate builds all thirteen applications through this DSL;
//! see `acceval-benchmarks/src/jacobi.rs` for a representative example.

use acceval_sim::ElemType;

use crate::expr::Expr;
use crate::program::{ArrayDecl, Function, Program};
use crate::stmt::{DataClauses, ParInfo, ParallelRegion, Reduction, Stmt, UpdateDir};
use crate::types::{ArrayId, FuncId, ReduceOp, RegionId, ScalarId, SiteId, VarRef};

/// Incremental program builder. Call [`ProgramBuilder::build`] last; it
/// finalizes (site/region numbering + validation).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    pub fn new(name: &str) -> Self {
        ProgramBuilder { prog: Program { name: name.to_string(), ..Default::default() } }
    }

    /// Declare an integer scalar.
    pub fn iscalar(&mut self, name: &str) -> ScalarId {
        self.prog.fresh_scalar(name, false)
    }

    /// Declare a float scalar.
    pub fn fscalar(&mut self, name: &str) -> ScalarId {
        self.prog.fresh_scalar(name, true)
    }

    /// Declare an array with the given element type and dimension exprs.
    pub fn array(&mut self, name: &str, elem: ElemType, dims: Vec<Expr>) -> ArrayId {
        let id = ArrayId(self.prog.arrays.len() as u32);
        self.prog.arrays.push(ArrayDecl { name: name.to_string(), elem, dims });
        id
    }

    /// Declare an f64 array (the common case).
    pub fn farray(&mut self, name: &str, dims: Vec<Expr>) -> ArrayId {
        self.array(name, ElemType::F64, dims)
    }

    /// Declare an f32 array.
    pub fn f32array(&mut self, name: &str, dims: Vec<Expr>) -> ArrayId {
        self.array(name, ElemType::F32, dims)
    }

    /// Declare an i32 array (index/connectivity data).
    pub fn iarray(&mut self, name: &str, dims: Vec<Expr>) -> ArrayId {
        self.array(name, ElemType::I32, dims)
    }

    /// Define a function.
    pub fn func(
        &mut self,
        name: &str,
        scalar_params: Vec<ScalarId>,
        array_params: Vec<ArrayId>,
        body: Vec<Stmt>,
    ) -> FuncId {
        let id = FuncId(self.prog.funcs.len() as u32);
        self.prog.funcs.push(Function { name: name.to_string(), scalar_params, array_params, body });
        id
    }

    /// Set the main body.
    pub fn main(&mut self, body: Vec<Stmt>) -> &mut Self {
        self.prog.main = body;
        self
    }

    /// Declare which arrays constitute program output.
    pub fn outputs(&mut self, arrays: Vec<ArrayId>) -> &mut Self {
        self.prog.outputs = arrays;
        self
    }

    /// Declare which scalars constitute program output.
    pub fn output_scalars(&mut self, scalars: Vec<ScalarId>) -> &mut Self {
        self.prog.output_scalars = scalars;
        self
    }

    /// Finalize and return the program.
    pub fn build(mut self) -> Program {
        self.prog.finalize();
        self.prog
    }
}

// ---- statement constructors ---------------------------------------------

/// `var = value`.
pub fn assign(var: ScalarId, value: impl Into<Expr>) -> Stmt {
    Stmt::Assign { var, value: value.into() }
}

/// `array[index...] = value`.
pub fn store(array: ArrayId, index: Vec<Expr>, value: impl Into<Expr>) -> Stmt {
    Stmt::Store { array, index, value: value.into(), site: SiteId(u32::MAX) }
}

/// Sequential `for (var = lo; var < hi; var++)`.
pub fn sfor(var: ScalarId, lo: impl Into<Expr>, hi: impl Into<Expr>, body: Vec<Stmt>) -> Stmt {
    Stmt::For { var, lo: lo.into(), hi: hi.into(), step: Expr::I(1), body, par: None }
}

/// Sequential `for` with explicit step.
pub fn sfor_step(
    var: ScalarId,
    lo: impl Into<Expr>,
    hi: impl Into<Expr>,
    step: impl Into<Expr>,
    body: Vec<Stmt>,
) -> Stmt {
    Stmt::For { var, lo: lo.into(), hi: hi.into(), step: step.into(), body, par: None }
}

/// Work-sharing `#pragma omp for` loop.
pub fn pfor(var: ScalarId, lo: impl Into<Expr>, hi: impl Into<Expr>, body: Vec<Stmt>) -> Stmt {
    Stmt::For { var, lo: lo.into(), hi: hi.into(), step: Expr::I(1), body, par: Some(ParInfo::default()) }
}

/// Work-sharing loop with explicit clauses.
pub fn pfor_with(var: ScalarId, lo: impl Into<Expr>, hi: impl Into<Expr>, body: Vec<Stmt>, par: ParInfo) -> Stmt {
    Stmt::For { var, lo: lo.into(), hi: hi.into(), step: Expr::I(1), body, par: Some(par) }
}

/// A `reduction(op: scalar)` clause entry.
pub fn red(op: ReduceOp, s: ScalarId) -> Reduction {
    Reduction { op, target: VarRef::Scalar(s) }
}

/// A `reduction(op: array)` clause entry (OpenMPC extension).
pub fn red_array(op: ReduceOp, a: ArrayId) -> Reduction {
    Reduction { op, target: VarRef::Array(a) }
}

/// `if (cond) { then_b }`.
pub fn iff(cond: impl Into<Expr>, then_b: Vec<Stmt>) -> Stmt {
    Stmt::If { cond: cond.into(), then_b, else_b: vec![], site: SiteId(u32::MAX) }
}

/// `if (cond) { then_b } else { else_b }`.
pub fn if_else(cond: impl Into<Expr>, then_b: Vec<Stmt>, else_b: Vec<Stmt>) -> Stmt {
    Stmt::If { cond: cond.into(), then_b, else_b, site: SiteId(u32::MAX) }
}

/// `while (cond) body`.
pub fn wloop(cond: impl Into<Expr>, body: Vec<Stmt>) -> Stmt {
    Stmt::While { cond: cond.into(), body }
}

/// Call `func(scalar_args...; array_args...)`.
pub fn call(func: FuncId, scalar_args: Vec<Expr>, array_args: Vec<ArrayId>) -> Stmt {
    Stmt::Call { func, scalar_args, array_args }
}

/// `#pragma omp critical { body }`.
pub fn critical(body: Vec<Stmt>) -> Stmt {
    Stmt::Critical { body }
}

/// `#pragma omp parallel { body }`.
pub fn parallel(label: &str, body: Vec<Stmt>) -> Stmt {
    Stmt::Parallel(ParallelRegion { id: RegionId(u32::MAX), label: label.to_string(), body, private: vec![] })
}

/// Parallel region with explicit privates.
pub fn parallel_with(label: &str, body: Vec<Stmt>, private: Vec<VarRef>) -> Stmt {
    Stmt::Parallel(ParallelRegion { id: RegionId(u32::MAX), label: label.to_string(), body, private })
}

/// Directive-model data region.
pub fn data_region(clauses: DataClauses, body: Vec<Stmt>) -> Stmt {
    Stmt::DataRegion { clauses, body }
}

/// `update host(...)` / `update device(...)`.
pub fn update(arrays: Vec<ArrayId>, dir: UpdateDir) -> Stmt {
    Stmt::Update { arrays, dir }
}

/// `#pragma omp barrier`.
pub fn barrier() -> Stmt {
    Stmt::Barrier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ld, v};

    #[test]
    fn build_saxpy_like_program() {
        let mut pb = ProgramBuilder::new("saxpy");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let alpha = pb.fscalar("alpha");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![parallel(
            "saxpy",
            vec![pfor(i, 0i64, v(n), vec![store(y, vec![v(i)], v(alpha) * ld(x, vec![v(i)]) + ld(y, vec![v(i)]))])],
        )])
        .outputs(vec![y]);
        let p = pb.build();
        assert_eq!(p.region_count, 1);
        assert_eq!(p.site_count, 3); // 2 loads + 1 store
        assert_eq!(p.regions()[0].label, "saxpy");
    }

    #[test]
    fn functions_get_ids_in_order() {
        let mut pb = ProgramBuilder::new("f");
        let a = pb.iscalar("a");
        let f0 = pb.func("f0", vec![a], vec![], vec![assign(a, v(a) + 1i64)]);
        let f1 = pb.func("f1", vec![], vec![], vec![call(f0, vec![Expr::I(3)], vec![])]);
        pb.main(vec![call(f1, vec![], vec![])]);
        let p = pb.build();
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(f1, FuncId(1));
    }
}
