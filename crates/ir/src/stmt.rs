//! Statements and directive annotations of the IR.
//!
//! The statement set mirrors what the paper's benchmarks need: sequential
//! and work-shared loops, conditionals, `while` (convergence loops), calls,
//! OpenMP `parallel` regions and `critical` sections, plus the data-movement
//! directives that the PGI Accelerator / OpenACC / HMPP dialects add during
//! porting (`DataRegion`, `Update`).

use serde::{Deserialize, Serialize};

use crate::expr::Expr;
use crate::types::{ArrayId, FuncId, ReduceOp, RegionId, ScalarId, SiteId, VarRef};

/// A reduction clause entry: `reduction(op: target)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reduction {
    pub op: ReduceOp,
    pub target: VarRef,
}

/// Annotation on a `For` marking it as an OpenMP work-sharing loop
/// (`#pragma omp for`), the unit every directive model maps to the GPU.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParInfo {
    /// OpenMP `collapse(n)`: this loop and `n-1` perfectly nested inner
    /// loops form the parallel iteration space. 0/1 both mean "just this loop".
    pub collapse: u8,
    /// Reduction clauses on the loop.
    pub reductions: Vec<Reduction>,
    /// Privatized variables (scalars or arrays).
    pub private: Vec<VarRef>,
    /// `nowait` — no barrier at loop end (affects region splitting).
    pub nowait: bool,
}

/// Data-movement clauses for `DataRegion` (PGI/OpenACC `data`,
/// HMPP `allocate`+`advancedload`/`delegatedstore` groups).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataClauses {
    /// Host-to-device at region entry.
    pub copyin: Vec<ArrayId>,
    /// Device-to-host at region exit.
    pub copyout: Vec<ArrayId>,
    /// Both directions.
    pub copy: Vec<ArrayId>,
    /// Device allocation only, no transfer.
    pub create: Vec<ArrayId>,
}

/// Direction of an `update` directive inside a data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateDir {
    /// Refresh the host copy from the device (`update host(...)`).
    Host,
    /// Refresh the device copy from the host (`update device(...)`).
    Device,
}

/// An OpenMP `parallel` region: the unit of the paper's coverage metric
/// (58 of them across the thirteen benchmarks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelRegion {
    /// Stable id, assigned by `Program::finalize`.
    pub id: RegionId,
    /// Human-readable label, e.g. `"cg.spmv"`.
    pub label: String,
    /// Region body; work-sharing happens at `For` statements with `par`.
    pub body: Vec<Stmt>,
    /// Region-level private variables (includes private arrays, as in EP).
    pub private: Vec<VarRef>,
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var = value`.
    Assign { var: ScalarId, value: Expr },
    /// `array[index...] = value`.
    Store { array: ArrayId, index: Vec<Expr>, value: Expr, site: SiteId },
    /// `if (cond) { then_b } else { else_b }`. Carries a site for warp
    /// divergence accounting.
    If { cond: Expr, then_b: Vec<Stmt>, else_b: Vec<Stmt>, site: SiteId },
    /// `for (var = lo; var < hi; var += step) body`. `par` marks an OpenMP
    /// work-sharing loop.
    For { var: ScalarId, lo: Expr, hi: Expr, step: Expr, body: Vec<Stmt>, par: Option<ParInfo> },
    /// `while (cond) body` — host-side convergence loops (never offloaded).
    While { cond: Expr, body: Vec<Stmt> },
    /// Call a program function with scalar and array arguments.
    Call { func: FuncId, scalar_args: Vec<Expr>, array_args: Vec<ArrayId> },
    /// OpenMP `critical` section.
    Critical { body: Vec<Stmt> },
    /// OpenMP `parallel` region.
    Parallel(ParallelRegion),
    /// Directive-model data region (added by porting, not present in the
    /// original OpenMP input).
    DataRegion { clauses: DataClauses, body: Vec<Stmt> },
    /// Directive-model `update` inside a data region.
    Update { arrays: Vec<ArrayId>, dir: UpdateDir },
    /// OpenMP `barrier` (inside a parallel region).
    Barrier,
}

impl Stmt {
    /// Visit this statement and all nested statements, depth-first, parents
    /// before children.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        for b in self.bodies() {
            for s in b {
                s.visit(f);
            }
        }
    }

    /// The nested statement lists of this statement.
    pub fn bodies(&self) -> Vec<&Vec<Stmt>> {
        match self {
            Stmt::If { then_b, else_b, .. } => vec![then_b, else_b],
            Stmt::For { body, .. }
            | Stmt::While { body, .. }
            | Stmt::Critical { body }
            | Stmt::DataRegion { body, .. } => vec![body],
            Stmt::Parallel(r) => vec![&r.body],
            _ => vec![],
        }
    }

    /// The nested statement lists, mutably.
    pub fn bodies_mut(&mut self) -> Vec<&mut Vec<Stmt>> {
        match self {
            Stmt::If { then_b, else_b, .. } => vec![then_b, else_b],
            Stmt::For { body, .. }
            | Stmt::While { body, .. }
            | Stmt::Critical { body }
            | Stmt::DataRegion { body, .. } => vec![body],
            Stmt::Parallel(r) => vec![&mut r.body],
            _ => vec![],
        }
    }

    /// Expressions directly owned by this statement (not nested statements).
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Stmt::Assign { value, .. } => vec![value],
            Stmt::Store { index, value, .. } => {
                let mut v: Vec<&Expr> = index.iter().collect();
                v.push(value);
                v
            }
            Stmt::If { cond, .. } => vec![cond],
            Stmt::For { lo, hi, step, .. } => vec![lo, hi, step],
            Stmt::While { cond, .. } => vec![cond],
            Stmt::Call { scalar_args, .. } => scalar_args.iter().collect(),
            _ => vec![],
        }
    }

    /// Expressions directly owned by this statement, mutably.
    pub fn exprs_mut(&mut self) -> Vec<&mut Expr> {
        match self {
            Stmt::Assign { value, .. } => vec![value],
            Stmt::Store { index, value, .. } => {
                let mut v: Vec<&mut Expr> = index.iter_mut().collect();
                v.push(value);
                v
            }
            Stmt::If { cond, .. } => vec![cond],
            Stmt::For { lo, hi, step, .. } => vec![lo, hi, step],
            Stmt::While { cond, .. } => vec![cond],
            Stmt::Call { scalar_args, .. } => scalar_args.iter_mut().collect(),
            _ => vec![],
        }
    }

    /// True if this statement or any descendant is/contains a parallel
    /// region, data region, or update directive (i.e. the GPU runtime must
    /// walk into it rather than treating it as a host leaf).
    pub fn contains_offload(&self) -> bool {
        let mut found = false;
        self.visit(&mut |s| {
            if matches!(s, Stmt::Parallel(_) | Stmt::DataRegion { .. } | Stmt::Update { .. }) {
                found = true;
            }
        });
        found
    }

    /// True if this statement or any descendant is a `Call`.
    pub fn contains_call(&self) -> bool {
        let mut found = false;
        self.visit(&mut |s| {
            if matches!(s, Stmt::Call { .. }) {
                found = true;
            }
        });
        found
    }
}

/// Visit each statement in a list and all descendants.
pub fn visit_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        s.visit(f);
    }
}

/// Visit each statement mutably (parents before children), including all
/// owned expressions via `g`.
pub fn visit_stmts_mut(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in stmts {
        f(s);
        for b in s.bodies_mut() {
            visit_stmts_mut(b, f);
        }
    }
}

/// Visit every expression in a statement list (including nested statements).
pub fn visit_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    for s in stmts {
        s.visit(&mut |st| {
            for e in st.exprs() {
                e.visit(f);
            }
        });
    }
}

/// Visit every expression mutably in a statement list.
pub fn visit_exprs_mut(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
    visit_stmts_mut(stmts, &mut |st| {
        for e in st.exprs_mut() {
            e.visit_mut(f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ic, ld, v};
    use crate::types::ArrayId;

    fn sid() -> SiteId {
        SiteId(u32::MAX)
    }

    fn sample() -> Vec<Stmt> {
        let i = ScalarId(0);
        let a = ArrayId(0);
        vec![Stmt::For {
            var: i,
            lo: ic(0),
            hi: ic(10),
            step: ic(1),
            body: vec![
                Stmt::Store { array: a, index: vec![v(i)], value: ld(a, vec![v(i)]) + 1i64, site: sid() },
                Stmt::If {
                    cond: v(i).lt(5i64),
                    then_b: vec![Stmt::Assign { var: i, value: v(i) + 1i64 }],
                    else_b: vec![],
                    site: sid(),
                },
            ],
            par: None,
        }]
    }

    #[test]
    fn visit_counts_statements() {
        let s = sample();
        let mut n = 0;
        visit_stmts(&s, &mut |_| n += 1);
        assert_eq!(n, 4); // For, Store, If, Assign
    }

    #[test]
    fn visit_exprs_reaches_nested() {
        let s = sample();
        let mut loads = 0;
        visit_exprs(&s, &mut |e| {
            if matches!(e, Expr::Load { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1);
    }

    #[test]
    fn contains_offload_detects_parallel() {
        let mut s = sample();
        assert!(!s[0].contains_offload());
        if let Stmt::For { body, .. } = &mut s[0] {
            body.push(Stmt::Parallel(ParallelRegion {
                id: RegionId(0),
                label: "r".into(),
                body: vec![],
                private: vec![],
            }));
        }
        assert!(s[0].contains_offload());
    }

    #[test]
    fn visit_exprs_mut_rewrites() {
        let mut s = sample();
        visit_exprs_mut(&mut s, &mut |e| {
            if let Expr::I(x) = e {
                *x += 100;
            }
        });
        let mut consts = vec![];
        visit_exprs(&s, &mut |e| {
            if let Expr::I(x) = e {
                consts.push(*x);
            }
        });
        assert!(consts.iter().all(|&x| x >= 100));
    }
}
