//! # acceval-ir
//!
//! The directive-annotated program IR for ACCEVAL: expressions, statements,
//! OpenMP-style parallel regions and clauses, the directive-dialect
//! annotations the GPU models add while porting, plus:
//!
//! * a tree-walking **interpreter** ([`interp`]) that runs programs on the
//!   simulated host CPU (the paper's sequential baseline and correctness
//!   oracle) and kernel bodies on the simulated GPU;
//! * **analyses** ([`analysis`]) — affine classification, access strides,
//!   reduction recognition, region feature summaries — the information the
//!   model compilers use to accept, reject, and optimize regions;
//! * **transformations** ([`transform`]) — inlining, parallel loop-swap,
//!   loop collapsing, strip-mining — the paper's optimization repertoire;
//! * the compiled **kernel plan** representation ([`kernel`]) and the GPU
//!   executor ([`interp::gpu`]).

// `deny`, not `forbid`: the one sanctioned exception is the `RawBuf`
// shared-buffer view in `interp::bytecode` that block-parallel kernel
// launches need (see its safety comment); everything else stays safe.
#![deny(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod env;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod transform;
pub mod types;

pub use expr::{fc, ic, ld, v, BinOp, Expr, Intrin, UnOp};
pub use kernel::{axis, axis_from, Expansion, KernelPlan, MemSpace, ParAxis, ReduceStrategy, ReduceTarget};
pub use program::{ArrayDecl, DataSet, Function, HostData, Program, ScalarDecl};
pub use stmt::{DataClauses, ParInfo, ParallelRegion, Reduction, Stmt, UpdateDir};
pub use types::{ArrayId, FuncId, ReduceOp, RegionId, ScalarId, SiteId, Value, VarRef};
