//! Bytecode kernel engine: compile a [`KernelPlan`] body once into a flat
//! register-based instruction stream, then execute whole warps in lockstep
//! over a 32-lane structure-of-arrays register file.
//!
//! The tree-walking interpreter in [`super`] re-walks boxed `Expr`/`Stmt`
//! nodes for every simulated thread and clones a scalar environment per
//! warp. This module removes both costs without changing any observable
//! number:
//!
//! * **Compile once.** [`compile`] lowers the body to a `Vec<Op>` with
//!   scalar slots resolved to dense registers, literals pooled into
//!   launch-time constant registers, and loop bounds that are plain
//!   variables or constants hoisted out of the per-iteration stream. The
//!   result is cached on the plan (see `KernelPlan::engine_cache`), so the
//!   sweep's compile memoization amortizes it across tuning points and
//!   geometry retargeting keeps it valid (nothing here depends on block
//!   shape).
//! * **Execute warps, not threads.** [`exec_warp`] advances all active
//!   lanes of a warp through each instruction under an active-lane mask.
//!   Divergence (If/Select/For/While) splits the mask exactly as the
//!   per-lane tree walk would: each lane observes the same sequence of
//!   evaluations, op charges, and trace records as under the reference
//!   engine, so coalescing/divergence pricing is bit-identical.
//! * **No per-warp allocation.** All mutable state (register file, per-lane
//!   op counters, site traces, private-array scratch) lives in a
//!   thread-local [`WarpScratch`] arena reset between warps.
//!
//! Accounting contract (must mirror `Interp::exec_plain`/`eval` exactly):
//! every `Bin`/`Un`/`CastI`/`CastF`/`Select` charges 1 op, `Assign` charges
//! 1, a `For` iteration check charges 1 and the increment charges 1, a
//! `While` iteration charges 1 only when the condition held, multi-dim
//! index flattening charges `dims-1`, intrinsics charge the SFU cost table,
//! barriers charge 4. Loads/stores record per-lane byte addresses into the
//! same [`SiteWarpTrace`] streams the tree engine fills. Sites whose
//! addresses are affine in the axis variables additionally support an
//! analytic fast path: their single per-warp address row is captured
//! directly and summarised through [`acceval_sim::AffineRowMemo`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Mutex;

use acceval_sim::{AffineRowMemo, Buffer, ElemType, Payload, SiteWarpTrace};

use crate::analysis::affine::expr_affine;
use crate::expr::{BinOp, Expr, Intrin, UnOp};
use crate::interp::{eval_bin, eval_intrin};
use crate::kernel::{Expansion, KernelPlan, MemSpace};
use crate::program::Program;
use crate::stmt::{visit_exprs, visit_stmts, Stmt};
use crate::types::{ArrayId, ScalarId, Value, VarRef};

/// SFU cost table shared with the tree engine's `WarpMachine`.
#[inline]
pub(crate) fn intrin_cost(f: Intrin) -> u64 {
    match f {
        Intrin::Sqrt => 4,
        Intrin::Exp | Intrin::Log | Intrin::Sin | Intrin::Cos => 8,
        Intrin::Pow => 16,
        Intrin::Floor | Intrin::Abs => 1,
    }
}

/// One bytecode instruction. Registers are indices into a lane-major SoA
/// register file (`regs[r * warp + lane]`). Structured ops (`If`, `Select`,
/// `For`, `While`) are headers followed by length-delimited sub-blocks laid
/// out inline; the executor derives block offsets from the recorded lengths.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// `dst = const` (no op charge — constants are free in the tree walk).
    ConstF {
        /// Destination register.
        dst: u16,
        /// Literal value.
        v: f64,
    },
    /// Integer constant.
    ConstI {
        /// Destination register.
        dst: u16,
        /// Literal value.
        v: i64,
    },
    /// Boolean constant.
    ConstB {
        /// Destination register.
        dst: u16,
        /// Literal value.
        v: bool,
    },
    /// `dst = src` (no op charge — a bare `Var` read is free).
    Copy {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `dst = Value::I(a.as_i())` (no op charge — used for loop-var init).
    AsInt {
        /// Destination register.
        dst: u16,
        /// Source register.
        a: u16,
    },
    /// Unary op (charge folded into a static `Ops`).
    Un {
        /// Destination register.
        dst: u16,
        /// Operator.
        op: UnOp,
        /// Operand register.
        a: u16,
    },
    /// Binary op (charge folded into a static `Ops`).
    Bin {
        /// Destination register.
        dst: u16,
        /// Operator.
        op: BinOp,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `dst = Value::I(a.as_i())` (charge folded into a static `Ops`).
    CastI {
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
    },
    /// `dst = Value::F(a.as_f())` (charge folded into a static `Ops`).
    CastF {
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
    },
    /// Charge `n` plain ALU ops to every active lane: all statically-known
    /// charges of a straight-line stretch (binary/unary/cast ops, assigns,
    /// intrinsic costs, index flattening, barriers) folded into one
    /// instruction at compile time.
    Ops {
        /// Op count.
        n: u64,
    },
    /// Intrinsic call; argument registers live in the shared pool.
    Intrin {
        /// Destination register.
        dst: u16,
        /// Intrinsic function.
        f: Intrin,
        /// Offset of the argument registers in the pool.
        args_off: u32,
        /// Argument count.
        args_len: u8,
    },
    /// Array load. Index registers live in the pool; `fast >= 0` routes the
    /// byte address to the affine fast-path row instead of the site trace.
    Load {
        /// Destination register.
        dst: u16,
        /// Array index (`ArrayId.0`).
        arr: u16,
        /// Access site.
        site: u32,
        /// Offset of the index registers in the pool.
        idx_off: u32,
        /// Number of index dimensions.
        idx_len: u8,
        /// Fast-path slot, or -1 for normal tracing.
        fast: i32,
    },
    /// Array store (value register evaluated before the index registers).
    Store {
        /// Source (value) register.
        src: u16,
        /// Array index (`ArrayId.0`).
        arr: u16,
        /// Access site.
        site: u32,
        /// Offset of the index registers in the pool.
        idx_off: u32,
        /// Number of index dimensions.
        idx_len: u8,
        /// Fast-path slot, or -1 for normal tracing.
        fast: i32,
    },
    /// Branch: records per-lane outcomes, then splits the mask over the
    /// then/else sub-blocks.
    If {
        /// Condition register (evaluated by preceding instructions).
        cond: u16,
        /// Branch site (divergence accounting).
        site: u32,
        /// Length of the then-block.
        then_len: u32,
        /// Length of the else-block.
        else_len: u32,
    },
    /// Ternary select; evaluates only the taken side per lane (its 1-op
    /// charge is folded into the preceding static `Ops`).
    Select {
        /// Condition register.
        cond: u16,
        /// Destination register.
        dst: u16,
        /// Register the true-arm block writes.
        t_reg: u16,
        /// Register the false-arm block writes.
        f_reg: u16,
        /// Length of the true-arm block.
        t_len: u32,
        /// Length of the false-arm block.
        f_len: u32,
    },
    /// Counted loop. The loop variable was initialised by preceding
    /// instructions; `hi`/`step` are either hoisted registers (`*_len == 0`)
    /// or re-evaluated per iteration from their sub-blocks.
    For {
        /// Loop-variable register.
        var: u16,
        /// Register holding the upper bound.
        hi_reg: u16,
        /// Register holding the step.
        step_reg: u16,
        /// Length of the per-iteration upper-bound block (0 when hoisted).
        hi_len: u32,
        /// Length of the per-iteration step block (0 when hoisted).
        step_len: u32,
        /// Length of the body block.
        body_len: u32,
    },
    /// Condition-controlled loop.
    While {
        /// Condition register.
        cond: u16,
        /// Length of the per-iteration condition block (0 when hoisted).
        cond_len: u32,
        /// Length of the body block.
        body_len: u32,
    },
    /// Enter a critical section (subsequent global accesses count atomics).
    CritEnter,
    /// Leave a critical section.
    CritExit,
}

/// A kernel body compiled to bytecode. Geometry-independent: the same
/// object serves every block shape a tuning sweep tries.
#[derive(Debug)]
pub struct KernelBytecode {
    pub(crate) code: Vec<Op>,
    /// Shared register pool for Load/Store indices and Intrin arguments.
    pub(crate) pool: Vec<u16>,
    /// Total registers (scalar slots + constants + temporaries).
    pub(crate) nregs: u16,
    /// First temporary register: scalar slots and pooled constants live
    /// below, expression temporaries at and above. The optimizer uses the
    /// boundary to tell rewritable temporaries from named state.
    pub(crate) temp_base: u16,
    /// `(scalar slot, register)` for scalars the body never writes:
    /// broadcast once per launch.
    pub(crate) scal_init_launch: Vec<(u32, u16)>,
    /// `(scalar slot, register)` for scalars the body (or launch prologue)
    /// writes: re-broadcast from the base environment every warp.
    pub(crate) scal_init_warp: Vec<(u32, u16)>,
    /// `(register, value)` constants, loaded once per launch.
    pub(crate) const_init: Vec<(u16, Value)>,
    /// Registers of the axis variables (`axis_regs[1]` unused when 1-D).
    pub(crate) axis_regs: [u16; 2],
    /// Registers of scalar-reduction accumulators, in reduction order.
    pub(crate) red_scalar_regs: Vec<u16>,
    /// Site ids on the analytic fast path, indexed by fast slot.
    pub(crate) fast_sites: Vec<u32>,
    /// Execute lanes one at a time instead of in lockstep. Set when the
    /// body may carry cross-lane dependencies through device memory (an
    /// array both loaded and stored, or stored from several sites): the
    /// reference tree engine runs each lane to completion before the next,
    /// so such bodies observe earlier lanes' writes — lane-serial execution
    /// reproduces that ordering exactly while keeping the compiled
    /// dispatch and the allocation-free register file.
    pub(crate) serial_lanes: bool,
    /// Blocks of this kernel may execute concurrently: every store to a
    /// shared (non-private) array is lane-disjoint, and so is every load of
    /// a stored array, so no simulated thread can observe another thread's
    /// writes through device memory. Any block partition then produces the
    /// functional outcome of the serial block walk. One tangled access to a
    /// stored array (even when lane-serial execution would still be sound
    /// within a warp) makes the outcome depend on block execution order and
    /// disqualifies the launch.
    pub(crate) par_blocks_ok: bool,
    /// Every block with the same active-lane shape prices identically up to
    /// address translation: all memory accesses ride the affine fast path,
    /// there is no data-dependent control flow (`If`/`While`/`Select`) or
    /// critical section, and every `For` bound (including the loop-variable
    /// init) is launch-uniform. Under this flag the per-block pricing is a
    /// pure function of (active width, per-site base address mod its
    /// translation modulus), which enables representative-block dedup.
    pub(crate) uniform_pricing: bool,
}

impl KernelBytecode {
    /// Number of instructions in the flat stream (diagnostics/tests).
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Number of memory sites on the analytic affine fast path.
    pub fn fast_site_count(&self) -> usize {
        self.fast_sites.len()
    }
}

/// Compile a finalized kernel plan's body to bytecode.
///
/// Returns `None` when the body uses a construct the bytecode engine does
/// not model (function calls, or a second axis whose bounds depend on the
/// first axis variable); such kernels fall back to the tree engine.
pub fn compile(prog: &Program, plan: &KernelPlan) -> Option<KernelBytecode> {
    if plan.body.iter().any(|s| s.contains_call()) {
        return None;
    }
    if plan.axes.len() > 1 {
        let v0 = plan.axes[0].var;
        if plan.axes[1].lo.uses_var(v0) || plan.axes[1].step.uses_var(v0) {
            return None;
        }
    }

    // Pre-scan: every scalar the body mentions, every literal, and the set
    // of scalars the body writes (drives per-warp re-broadcast and the
    // fast-path eligibility test).
    let mut scal_ids: BTreeSet<u32> = BTreeSet::new();
    let mut assigned: HashSet<u32> = HashSet::new();
    let mut const_count = 0usize;
    let mut const_seen: HashSet<ConstKey> = HashSet::new();
    visit_exprs(&plan.body, &mut |e| match e {
        Expr::Var(s) => {
            scal_ids.insert(s.0);
        }
        Expr::F(x) if const_seen.insert(ConstKey::F(x.to_bits())) => {
            const_count += 1;
        }
        Expr::I(x) if const_seen.insert(ConstKey::I(*x)) => {
            const_count += 1;
        }
        Expr::B(x) if const_seen.insert(ConstKey::B(*x)) => {
            const_count += 1;
        }
        _ => {}
    });
    visit_stmts(&plan.body, &mut |s| match s {
        Stmt::Assign { var, .. } | Stmt::For { var, .. } => {
            scal_ids.insert(var.0);
            assigned.insert(var.0);
        }
        _ => {}
    });
    let mut axis_set: HashSet<ScalarId> = HashSet::new();
    for ax in &plan.axes {
        scal_ids.insert(ax.var.0);
        axis_set.insert(ax.var);
    }
    let mut red_set: HashSet<u32> = HashSet::new();
    for r in &plan.reductions {
        if let VarRef::Scalar(s) = r.target {
            scal_ids.insert(s.0);
            red_set.insert(s.0);
        }
    }

    // Cross-lane hazard scan. Lockstep execution reorders work across
    // lanes; that is only sound when lanes cannot communicate through
    // device memory. A non-private array that is both read and written
    // (or written from more than one store site) may carry such a
    // dependence — e.g. a collapsed loop nest where lane k consumes what
    // lane k-1 produced, which the lane-serial tree engine satisfies.
    // Those bodies run lane-serial (still compiled, still arena-backed).
    //
    // Exemption: an array is provably lane-disjoint — every lane only ever
    // touches its own elements — when every access indexes it with each
    // launch axis variable standing alone in some dimension and every other
    // dimension being warp-uniform (no axis variables, no body-assigned
    // scalars, no loads). Distinct lanes then address distinct elements at
    // every access, so no cross-lane dependence can exist (e.g. the KMEANS
    // delta kernel's `member[pt]` read-modify-write).
    let uniform = |e: &Expr| {
        let mut ok = true;
        e.visit(&mut |x| match x {
            Expr::Load { .. } => ok = false,
            Expr::Var(s) if assigned.contains(&s.0) || axis_set.contains(s) => ok = false,
            _ => {}
        });
        ok
    };
    let lane_disjoint = |index: &[Expr]| {
        plan.axes.iter().all(|ax| index.iter().any(|e| matches!(e, Expr::Var(s) if *s == ax.var)))
            && index.iter().all(|e| matches!(e, Expr::Var(s) if axis_set.contains(s)) || uniform(e))
    };
    let mut loaded: HashSet<u32> = HashSet::new();
    let mut store_sites: HashMap<u32, u32> = HashMap::new();
    let mut tangled: HashSet<u32> = HashSet::new();
    visit_exprs(&plan.body, &mut |e| {
        if let Expr::Load { array, index, .. } = e {
            if plan.expansion_of(*array).is_none() {
                loaded.insert(array.0);
                if !lane_disjoint(index) {
                    tangled.insert(array.0);
                }
            }
        }
    });
    visit_stmts(&plan.body, &mut |s| {
        if let Stmt::Store { array, index, .. } = s {
            if plan.expansion_of(*array).is_none() {
                *store_sites.entry(array.0).or_insert(0) += 1;
                if !lane_disjoint(index) {
                    tangled.insert(array.0);
                }
            }
        }
    });
    let serial_lanes = store_sites.iter().any(|(a, &n)| (n > 1 || loaded.contains(a)) && tangled.contains(a));
    // Block-level parallelism needs the stronger form of the same analysis:
    // every stored array must be untangled outright (`tangled` already folds
    // in the load indexings), so each thread touches only elements owned by
    // its unique global id and block order cannot matter.
    let par_blocks_ok = store_sites.keys().all(|a| !tangled.contains(a));

    let scal_reg: BTreeMap<u32, u16> = scal_ids.iter().enumerate().map(|(k, &s)| (s, k as u16)).collect();
    let temp_base = (scal_reg.len() + const_count) as u16;

    let _ = prog;
    let mut c = Compiler {
        plan,
        code: Vec::new(),
        pool: Vec::new(),
        scal_reg,
        const_reg: HashMap::new(),
        const_init: Vec::new(),
        next_const: 0,
        temp_base,
        nregs: temp_base,
        assigned,
        axis_vars: axis_set,
        fast_sites: Vec::new(),
        depth: 0,
        pending: 0,
        price_uniform: true,
    };
    c.next_const = c.scal_reg.len() as u16;
    for s in &plan.body {
        c.stmt(s);
    }
    c.flush();
    debug_assert_eq!(c.depth, 0);

    let mut scal_init_launch = Vec::new();
    let mut scal_init_warp = Vec::new();
    for (&slot, &r) in &c.scal_reg {
        if c.axis_vars.contains(&ScalarId(slot)) {
            // Axis registers are written for every active lane by the launch
            // prologue before each warp executes; no broadcast needed.
            continue;
        }
        let mutable = c.assigned.contains(&slot)
            || c.plan.reductions.iter().any(|rd| matches!(rd.target, VarRef::Scalar(s) if s.0 == slot));
        if mutable {
            scal_init_warp.push((slot, r));
        } else {
            scal_init_launch.push((slot, r));
        }
    }
    let axis_regs =
        [c.scal_reg[&plan.axes[0].var.0], if plan.axes.len() > 1 { c.scal_reg[&plan.axes[1].var.0] } else { 0 }];
    let red_scalar_regs: Vec<u16> = plan
        .reductions
        .iter()
        .filter_map(|r| match r.target {
            VarRef::Scalar(s) => Some(c.scal_reg[&s.0]),
            VarRef::Array(_) => None,
        })
        .collect();

    // Uniform pricing: every access on the fast path, no mask-splitting or
    // data-dependent ops in the stream. `For` bounds were vetted at emission
    // (`price_uniform`): launch-uniform init/hi/step make every lane of
    // every block run the same trip counts, so per-block op charges depend
    // only on the block's active-lane shape.
    let uniform_pricing = c.price_uniform
        && c.code.iter().all(|op| match *op {
            Op::Load { fast, .. } | Op::Store { fast, .. } => fast >= 0,
            Op::If { .. } | Op::While { .. } | Op::Select { .. } | Op::CritEnter | Op::CritExit => false,
            _ => true,
        });

    Some(KernelBytecode {
        code: c.code,
        pool: c.pool,
        nregs: c.nregs,
        temp_base,
        scal_init_launch,
        scal_init_warp,
        const_init: c.const_init,
        axis_regs,
        red_scalar_regs,
        fast_sites: c.fast_sites,
        serial_lanes,
        par_blocks_ok,
        uniform_pricing,
    })
}

/// Hashable identity of a literal (floats keyed by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    F(u64),
    I(i64),
    B(bool),
}

struct Compiler<'a> {
    plan: &'a KernelPlan,
    code: Vec<Op>,
    /// Statically-known per-lane op charges accumulated since the last
    /// flush; folded into one `Op::Ops` at every sub-block boundary so the
    /// executor never pays per-instruction counter updates for them.
    pending: u64,
    pool: Vec<u16>,
    scal_reg: BTreeMap<u32, u16>,
    const_reg: HashMap<ConstKey, u16>,
    const_init: Vec<(u16, Value)>,
    next_const: u16,
    temp_base: u16,
    nregs: u16,
    assigned: HashSet<u32>,
    axis_vars: HashSet<ScalarId>,
    fast_sites: Vec<u32>,
    /// Structural nesting depth; only depth-0 accesses execute exactly once
    /// per lane and qualify for the affine fast path.
    depth: u32,
    /// Cleared when a `For` bound (init/hi/step) is not launch-uniform;
    /// feeds `KernelBytecode::uniform_pricing`.
    price_uniform: bool,
}

impl Compiler<'_> {
    /// Accumulate a statically-known per-lane op charge.
    #[inline]
    fn charge(&mut self, n: u64) {
        self.pending += n;
    }

    /// Emit accumulated static charges. Must run before any instruction
    /// that splits or re-runs the lane mask (If/Select/For/While headers
    /// and at every sub-block end) so each charge lands in the region whose
    /// lanes actually execute it; within a region, charge order is
    /// irrelevant — only the per-lane totals feed `warp_issue_cycles`.
    fn flush(&mut self) {
        if self.pending > 0 {
            self.code.push(Op::Ops { n: self.pending });
            self.pending = 0;
        }
    }

    #[inline]
    fn note(&mut self, r: u16) {
        if r >= self.nregs {
            self.nregs = r + 1;
        }
    }

    #[inline]
    fn reg(&self, s: ScalarId) -> u16 {
        self.scal_reg[&s.0]
    }

    fn creg(&mut self, key: ConstKey, v: Value) -> u16 {
        if let Some(&r) = self.const_reg.get(&key) {
            return r;
        }
        let r = self.next_const;
        self.next_const += 1;
        debug_assert!(r < self.temp_base);
        self.const_reg.insert(key, r);
        self.const_init.push((r, v));
        r
    }

    /// Compile `e` so its value lands in some register: a bare variable or
    /// literal is forwarded without emitting code, anything else compiles
    /// into `slot` (with temporaries from `sp` upward).
    fn operand(&mut self, e: &Expr, slot: u16, sp: u16) -> u16 {
        match e {
            Expr::Var(s) => self.reg(*s),
            Expr::F(x) => self.creg(ConstKey::F(x.to_bits()), Value::F(*x)),
            Expr::I(x) => self.creg(ConstKey::I(*x), Value::I(*x)),
            Expr::B(x) => self.creg(ConstKey::B(*x), Value::B(*x)),
            _ => {
                self.expr(e, slot, sp);
                slot
            }
        }
    }

    /// Compile `e` into `dst`, using temporaries from `sp` upward.
    /// Invariant: `sp > dst` unless `dst` is a scalar register, and
    /// expression code never writes scalar registers, so operands compiled
    /// into `dst` survive until the combining instruction.
    fn expr(&mut self, e: &Expr, dst: u16, sp: u16) {
        self.note(dst);
        match e {
            Expr::F(x) => self.code.push(Op::ConstF { dst, v: *x }),
            Expr::I(x) => self.code.push(Op::ConstI { dst, v: *x }),
            Expr::B(x) => self.code.push(Op::ConstB { dst, v: *x }),
            Expr::Var(s) => {
                let src = self.reg(*s);
                if src != dst {
                    self.code.push(Op::Copy { dst, src });
                }
            }
            Expr::Un(op, a) => {
                let ra = self.operand(a, dst, sp);
                self.charge(1);
                self.code.push(Op::Un { dst, op: *op, a: ra });
            }
            Expr::Bin(op, a, b) => {
                let ra = self.operand(a, dst, sp);
                let (bslot, nsp) = if ra == dst { (sp, sp + 1) } else { (dst, sp) };
                let rb = self.operand(b, bslot, nsp);
                self.charge(1);
                self.code.push(Op::Bin { dst, op: *op, a: ra, b: rb });
            }
            Expr::Select { cond, t, f } => {
                let rc = self.operand(cond, dst, sp);
                let (t_reg, f_reg) = (sp, sp + 1);
                self.note(t_reg);
                self.note(f_reg);
                self.charge(1);
                self.flush();
                let at = self.code.len();
                self.code.push(Op::Select { cond: rc, dst, t_reg, f_reg, t_len: 0, f_len: 0 });
                self.depth += 1;
                let t0 = self.code.len();
                self.expr(t, t_reg, sp + 2);
                self.flush();
                let tl = (self.code.len() - t0) as u32;
                let f0 = self.code.len();
                self.expr(f, f_reg, sp + 2);
                self.flush();
                let fl = (self.code.len() - f0) as u32;
                self.depth -= 1;
                if let Op::Select { t_len, f_len, .. } = &mut self.code[at] {
                    *t_len = tl;
                    *f_len = fl;
                }
            }
            Expr::Intrin(f, args) => {
                let mut slot = sp;
                let mut iregs = Vec::with_capacity(args.len());
                for a in args {
                    let r = self.operand(a, slot, slot + 1);
                    if r == slot {
                        slot += 1;
                    }
                    iregs.push(r);
                }
                let args_off = self.pool.len() as u32;
                self.pool.extend(iregs);
                self.charge(intrin_cost(*f));
                self.code.push(Op::Intrin { dst, f: *f, args_off, args_len: args.len() as u8 });
            }
            Expr::CastI(a) => {
                let ra = self.operand(a, dst, sp);
                self.charge(1);
                self.code.push(Op::CastI { dst, a: ra });
            }
            Expr::CastF(a) => {
                let ra = self.operand(a, dst, sp);
                self.charge(1);
                self.code.push(Op::CastF { dst, a: ra });
            }
            Expr::Load { array, index, site } => {
                let (idx_off, idx_len) = self.index_regs(index, sp);
                if index.len() > 1 {
                    self.charge(index.len() as u64 - 1);
                }
                let fast = self.fast_slot(*array, index, site.0);
                self.code.push(Op::Load { dst, arr: array.0 as u16, site: site.0, idx_off, idx_len, fast });
            }
        }
    }

    /// Compile index expressions into sequential registers and park their
    /// register numbers in the shared pool.
    fn index_regs(&mut self, index: &[Expr], sp: u16) -> (u32, u8) {
        let mut slot = sp;
        let mut iregs = Vec::with_capacity(index.len());
        for ie in index {
            let r = self.operand(ie, slot, slot + 1);
            if r == slot {
                slot += 1;
            }
            iregs.push(r);
        }
        let off = self.pool.len() as u32;
        self.pool.extend(iregs);
        (off, index.len() as u8)
    }

    /// Decide whether a memory site takes the analytic fast path: executed
    /// exactly once per lane (depth 0), non-private global or shared-tiled
    /// space (the two spaces whose warp pricing is translation-invariant and
    /// therefore memoizable), and every index dimension affine in the axis
    /// variables with no dependence on body-written scalars. The runtime
    /// re-verifies the arithmetic progression per row, so this is purely a
    /// profitability filter.
    fn fast_slot(&mut self, array: ArrayId, index: &[Expr], site: u32) -> i32 {
        if self.depth != 0
            || self.plan.expansion_of(array).is_some()
            || !matches!(self.plan.space_of(array), MemSpace::Global | MemSpace::SharedTiled { .. })
        {
            return -1;
        }
        let ok = index.iter().all(|e| {
            expr_affine(e, &self.axis_vars) && {
                let mut clean = true;
                e.visit(&mut |x| {
                    if let Expr::Var(s) = x {
                        if self.assigned.contains(&s.0) {
                            clean = false;
                        }
                    }
                });
                clean
            }
        });
        if !ok {
            return -1;
        }
        let f = self.fast_sites.len() as i32;
        self.fast_sites.push(site);
        f
    }

    /// Launch-uniform: no loads, no axis variables, no body-assigned
    /// scalars — the value is identical for every lane of every block.
    fn launch_uniform(&self, e: &Expr) -> bool {
        let mut ok = true;
        e.visit(&mut |x| match x {
            Expr::Load { .. } => ok = false,
            Expr::Var(s) if self.assigned.contains(&s.0) || self.axis_vars.contains(s) => ok = false,
            _ => {}
        });
        ok
    }

    fn stmt(&mut self, s: &Stmt) {
        let tb = self.temp_base;
        match s {
            Stmt::Assign { var, value } => {
                let vr = self.reg(*var);
                if value.uses_var(*var) {
                    self.expr(value, tb, tb + 1);
                    self.code.push(Op::Copy { dst: vr, src: tb });
                } else {
                    self.expr(value, vr, tb);
                }
                self.charge(1);
            }
            Stmt::Store { array, index, value, site } => {
                // Value first, then indices — the order the tree walk
                // evaluates (and charges) them.
                let rv = self.operand(value, tb, tb + 1);
                let isp = if rv == tb { tb + 1 } else { tb };
                let (idx_off, idx_len) = self.index_regs(index, isp);
                if index.len() > 1 {
                    self.charge(index.len() as u64 - 1);
                }
                let fast = self.fast_slot(*array, index, site.0);
                self.code.push(Op::Store { src: rv, arr: array.0 as u16, site: site.0, idx_off, idx_len, fast });
            }
            Stmt::If { cond, then_b, else_b, site } => {
                let rc = self.operand(cond, tb, tb + 1);
                self.flush();
                let at = self.code.len();
                self.code.push(Op::If { cond: rc, site: site.0, then_len: 0, else_len: 0 });
                self.depth += 1;
                let t0 = self.code.len();
                for st in then_b {
                    self.stmt(st);
                }
                self.flush();
                let tl = (self.code.len() - t0) as u32;
                let e0 = self.code.len();
                for st in else_b {
                    self.stmt(st);
                }
                self.flush();
                let el = (self.code.len() - e0) as u32;
                self.depth -= 1;
                if let Op::If { then_len, else_len, .. } = &mut self.code[at] {
                    *then_len = tl;
                    *else_len = el;
                }
            }
            Stmt::For { var, lo, hi, step, body, .. } => {
                if !(self.launch_uniform(lo) && self.launch_uniform(hi) && self.launch_uniform(step)) {
                    // Trip counts vary per lane or block: per-block op
                    // charges are no longer a pure function of lane shape.
                    self.price_uniform = false;
                }
                let vr = self.reg(*var);
                // `lo` may mention the loop variable; expressions never
                // write scalar registers, so route through a temp.
                let rlo = self.operand(lo, tb, tb + 1);
                self.code.push(Op::AsInt { dst: vr, a: rlo });
                self.flush();
                let at = self.code.len();
                self.code.push(Op::For { var: vr, hi_reg: 0, step_reg: 0, hi_len: 0, step_len: 0, body_len: 0 });
                self.depth += 1;
                let (hi_reg, hi_len) = self.bound(hi, tb);
                let (step_reg, step_len) = self.bound(step, tb + 1);
                let b0 = self.code.len();
                for st in body {
                    self.stmt(st);
                }
                self.flush();
                let bl = (self.code.len() - b0) as u32;
                self.depth -= 1;
                if let Op::For { hi_reg: hr, step_reg: sr, hi_len: hl, step_len: sl, body_len, .. } = &mut self.code[at]
                {
                    *hr = hi_reg;
                    *sr = step_reg;
                    *hl = hi_len;
                    *sl = step_len;
                    *body_len = bl;
                }
            }
            Stmt::While { cond, body } => {
                self.flush();
                let at = self.code.len();
                self.code.push(Op::While { cond: 0, cond_len: 0, body_len: 0 });
                self.depth += 1;
                let (cond_reg, cond_len) = self.bound(cond, tb);
                let b0 = self.code.len();
                for st in body {
                    self.stmt(st);
                }
                self.flush();
                let bl = (self.code.len() - b0) as u32;
                self.depth -= 1;
                if let Op::While { cond, cond_len: cl, body_len } = &mut self.code[at] {
                    *cond = cond_reg;
                    *cl = cond_len;
                    *body_len = bl;
                }
            }
            Stmt::Critical { body } => {
                self.code.push(Op::CritEnter);
                self.depth += 1;
                for st in body {
                    self.stmt(st);
                }
                self.depth -= 1;
                self.code.push(Op::CritExit);
            }
            Stmt::Barrier => self.charge(4),
            Stmt::Parallel(r) => {
                for st in &r.body {
                    self.stmt(st);
                }
            }
            Stmt::DataRegion { body, .. } => {
                for st in body {
                    self.stmt(st);
                }
            }
            Stmt::Update { .. } => {}
            Stmt::Call { .. } => unreachable!("compile() bails on calls"),
        }
    }

    /// A loop bound: a bare variable or literal reads its register with no
    /// per-iteration code (the tree walk charges nothing for those either);
    /// anything else becomes a per-iteration block so its op charges repeat
    /// exactly as under the tree engine.
    fn bound(&mut self, e: &Expr, slot: u16) -> (u16, u32) {
        match e {
            Expr::Var(s) => (self.reg(*s), 0),
            Expr::F(x) => (self.creg(ConstKey::F(x.to_bits()), Value::F(*x)), 0),
            Expr::I(x) => (self.creg(ConstKey::I(*x), Value::I(*x)), 0),
            Expr::B(x) => (self.creg(ConstKey::B(*x), Value::B(*x)), 0),
            _ => {
                let c0 = self.code.len();
                self.expr(e, slot, self.temp_base + 2);
                self.flush();
                (slot, (self.code.len() - c0) as u32)
            }
        }
    }
}

/// Reusable per-worker-thread execution arena. One lives in a thread-local
/// and is reshaped (cheaply) at each launch, then reset between warps — no
/// per-warp allocation survives in steady state.
pub struct WarpScratch {
    pub(crate) regs: Vec<Value>,
    pub(crate) lane_ops: Vec<u64>,
    pub(crate) traces: Vec<SiteWarpTrace>,
    /// Per-site "this warp recorded into `traces[i]`" flags, so pricing can
    /// skip the (mostly fast-path) sites whose traces stayed empty.
    pub(crate) site_touched: Vec<bool>,
    pub(crate) fast_rows: Vec<u64>,
    pub(crate) priv_bufs: Vec<Buffer>,
    pub(crate) memo: AffineRowMemo,
    pub(crate) warp: usize,
    priv_sig: Vec<(ElemType, usize)>,
    /// Split typed register banks for the optimizer's specialized stream
    /// (`interp::opt`); empty unless a typed kernel is active this launch.
    pub(crate) fregs: Vec<f64>,
    pub(crate) iregs: Vec<i64>,
    pub(crate) bregs: Vec<bool>,
}

impl WarpScratch {
    fn new() -> Self {
        WarpScratch {
            regs: Vec::new(),
            lane_ops: Vec::new(),
            traces: Vec::new(),
            site_touched: Vec::new(),
            fast_rows: Vec::new(),
            priv_bufs: Vec::new(),
            memo: AffineRowMemo::new(128),
            warp: 0,
            priv_sig: Vec::new(),
            fregs: Vec::new(),
            iregs: Vec::new(),
            bregs: Vec::new(),
        }
    }

    /// Reshape for a new launch: size the register file, per-site traces and
    /// private scratch, load constant registers, broadcast launch-invariant
    /// scalars, and reset the affine-row memo (site numbering is
    /// launch-local).
    pub(crate) fn begin_launch(
        &mut self,
        bc: &KernelBytecode,
        warp: usize,
        site_count: usize,
        priv_shapes: &[(ElemType, usize)],
        base_env: &[Value],
        segment_bytes: u32,
    ) {
        self.warp = warp;
        self.regs.clear();
        self.regs.resize(bc.nregs as usize * warp, Value::I(0));
        self.lane_ops.clear();
        self.lane_ops.resize(warp, 0);
        if self.traces.len() != site_count || self.traces.iter().any(|t| t.lanes() != warp) {
            self.traces = (0..site_count).map(|_| SiteWarpTrace::new(warp as u32)).collect();
        } else {
            for t in &mut self.traces {
                t.clear();
            }
        }
        self.site_touched.clear();
        self.site_touched.resize(site_count, false);
        self.fast_rows.clear();
        self.fast_rows.resize(bc.fast_sites.len() * warp, 0);
        if self.priv_sig != priv_shapes {
            self.priv_bufs.clear();
            for &(elem, len) in priv_shapes {
                for _ in 0..warp {
                    self.priv_bufs.push(Buffer::zeroed(elem, len));
                }
            }
            self.priv_sig = priv_shapes.to_vec();
        }
        self.memo.reset(segment_bytes);
        for &(r, v) in &bc.const_init {
            for lane in 0..warp {
                self.regs[r as usize * warp + lane] = v;
            }
        }
        for &(slot, r) in &bc.scal_init_launch {
            let v = base_env[slot as usize];
            for lane in 0..warp {
                self.regs[r as usize * warp + lane] = v;
            }
        }
    }

    /// Per-warp reset for a warp whose pricing evidence will be discarded
    /// (its block's pricing replays from the representative-block cache):
    /// only the mutable scalar registers are re-broadcast. Legal only ahead
    /// of the native tier's functional-only variant, which neither reads
    /// nor writes the evidence arrays this skips resetting.
    pub(crate) fn begin_warp_functional(&mut self, bc: &KernelBytecode, base_env: &[Value]) {
        for &(slot, r) in &bc.scal_init_warp {
            let v = base_env[slot as usize];
            for lane in 0..self.warp {
                self.regs[r as usize * self.warp + lane] = v;
            }
        }
    }

    /// Reset per-warp state: op counters, traces, and mutable scalar
    /// registers re-broadcast from the base environment.
    pub(crate) fn begin_warp(&mut self, bc: &KernelBytecode, base_env: &[Value]) {
        self.lane_ops.iter_mut().for_each(|x| *x = 0);
        for t in &mut self.traces {
            t.clear();
        }
        self.site_touched.iter_mut().for_each(|x| *x = false);
        for &(slot, r) in &bc.scal_init_warp {
            let v = base_env[slot as usize];
            for lane in 0..self.warp {
                self.regs[r as usize * self.warp + lane] = v;
            }
        }
    }
}

/// Pool of warp-scratch arenas. A checkout pops an arena (or builds a fresh
/// one) and returns it when done, which — unlike the previous single
/// thread-local slot — is re-entrant: a nested launch on the same thread
/// simply checks out a second arena instead of aliasing the first, and the
/// short-lived block-chunk workers of a parallel launch share warmed arenas
/// instead of rebuilding one behind each new thread's thread-local.
static SCRATCH_POOL: Mutex<Vec<WarpScratch>> = Mutex::new(Vec::new());

/// Arenas kept warm across launches; enough for a large worker pool plus
/// nesting, while bounding steady-state memory.
const SCRATCH_POOL_CAP: usize = 64;

/// Run `f` against a warp scratch arena checked out of the process pool.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut WarpScratch) -> R) -> R {
    let mut s = {
        let mut pool = SCRATCH_POOL.lock().unwrap();
        pool.pop().unwrap_or_else(WarpScratch::new)
    };
    let r = f(&mut s);
    // Unwinds (a kernel panic inside `f`) simply drop the arena; the pool
    // lock is never held across user code, so it cannot be poisoned.
    let mut pool = SCRATCH_POOL.lock().unwrap();
    if pool.len() < SCRATCH_POOL_CAP {
        pool.push(s);
    }
    r
}

/// Raw view of one device buffer, shared by every warp executor of a
/// launch. Exactly one of `f`/`i` is non-null for an allocated buffer;
/// accessors bounds-check against `len` so out-of-range indices still panic
/// (never UB), matching the `Vec`-indexing discipline of [`Buffer`].
///
/// # Safety
/// `RawBuf` is `Send + Sync` so block chunks can execute on scoped worker
/// threads while all viewing the same buffers. That is sound only under the
/// launch eligibility rule enforced in `gpu.rs`: a launch runs
/// block-parallel only when [`KernelBytecode::par_blocks_ok`] proved every
/// access to every stored array lane-disjoint, so no element is ever
/// touched by two threads with at least one writing it. The serial path
/// uses the same views with a single executor, where aliasing is moot.
#[derive(Clone, Copy)]
pub(crate) struct RawBuf {
    f: *mut f64,
    i: *mut i64,
    len: usize,
    is_f: bool,
    alloc: bool,
}

#[allow(unsafe_code)]
unsafe impl Send for RawBuf {}
#[allow(unsafe_code)]
unsafe impl Sync for RawBuf {}

#[allow(unsafe_code)]
impl RawBuf {
    /// View an optional device buffer slot.
    pub(crate) fn of(slot: &mut Option<Buffer>) -> RawBuf {
        match slot {
            None => RawBuf { f: std::ptr::null_mut(), i: std::ptr::null_mut(), len: 0, is_f: false, alloc: false },
            Some(b) => {
                let is_f = b.elem.is_float();
                match &mut b.data {
                    Payload::F(v) => {
                        RawBuf { f: v.as_mut_ptr(), i: std::ptr::null_mut(), len: v.len(), is_f, alloc: true }
                    }
                    Payload::I(v) => {
                        RawBuf { f: std::ptr::null_mut(), i: v.as_mut_ptr(), len: v.len(), is_f, alloc: true }
                    }
                }
            }
        }
    }

    #[inline]
    pub(crate) fn is_alloc(&self) -> bool {
        self.alloc
    }

    /// Element type is float (drives `Value` wrapping, like `Buffer::elem`).
    #[inline]
    pub(crate) fn elem_is_float(&self) -> bool {
        self.is_f
    }

    #[inline]
    fn check(&self, idx: usize) {
        assert!(idx < self.len, "buffer index {idx} out of range (len {})", self.len);
    }

    /// Read as f64 (integer payloads cast, mirroring [`Buffer::get_f`]).
    #[inline]
    pub(crate) fn get_f(&self, idx: usize) -> f64 {
        self.check(idx);
        unsafe {
            if self.f.is_null() {
                *self.i.add(idx) as f64
            } else {
                *self.f.add(idx)
            }
        }
    }

    /// Read as i64 (float payloads cast, mirroring [`Buffer::get_i`]).
    #[inline]
    pub(crate) fn get_i(&self, idx: usize) -> i64 {
        self.check(idx);
        unsafe {
            if self.f.is_null() {
                *self.i.add(idx)
            } else {
                *self.f.add(idx) as i64
            }
        }
    }

    /// Write an f64 (integer payloads cast, mirroring [`Buffer::set_f`]).
    #[inline]
    pub(crate) fn set_f(&self, idx: usize, x: f64) {
        self.check(idx);
        unsafe {
            if self.f.is_null() {
                *self.i.add(idx) = x as i64;
            } else {
                *self.f.add(idx) = x;
            }
        }
    }

    /// Write an i64 (float payloads cast, mirroring [`Buffer::set_i`]).
    #[inline]
    pub(crate) fn set_i(&self, idx: usize, x: i64) {
        self.check(idx);
        unsafe {
            if self.f.is_null() {
                *self.i.add(idx) = x;
            } else {
                *self.f.add(idx) = x as f64;
            }
        }
    }

    /// Whole-row gather `row[k] = self[flats[k]]` with the range check and
    /// the payload-kind branch hoisted out of the element loop. Returns
    /// `false` (writing nothing) unless the payload is f64-backed and every
    /// index is in range — the caller then takes its per-element path.
    #[inline]
    pub(crate) fn gather_f(&self, flats: &[usize], row: &mut [f64]) -> bool {
        if self.f.is_null() {
            return false;
        }
        let mut ok = true;
        for &fl in flats {
            ok &= fl < self.len;
        }
        if !ok {
            return false;
        }
        // SAFETY: `f` points at `len` elements and every index was just
        // range-checked above.
        unsafe {
            for (d, &fl) in row.iter_mut().zip(flats) {
                *d = *self.f.add(fl);
            }
        }
        true
    }

    /// Whole-row i64 gather; see [`Self::gather_f`].
    #[inline]
    pub(crate) fn gather_i(&self, flats: &[usize], row: &mut [i64]) -> bool {
        if self.i.is_null() {
            return false;
        }
        let mut ok = true;
        for &fl in flats {
            ok &= fl < self.len;
        }
        if !ok {
            return false;
        }
        // SAFETY: `i` points at `len` elements and every index was just
        // range-checked above.
        unsafe {
            for (d, &fl) in row.iter_mut().zip(flats) {
                *d = *self.i.add(fl);
            }
        }
        true
    }

    /// Whole-row scatter `self[flats[k]] = row[k]`, ascending lane order
    /// (intra-row index collisions resolve to the last writer, like the
    /// per-element path). Returns `false` (writing nothing) unless the
    /// payload is f64-backed and every index is in range.
    #[inline]
    pub(crate) fn scatter_f(&self, flats: &[usize], row: &[f64]) -> bool {
        if self.f.is_null() {
            return false;
        }
        let mut ok = true;
        for &fl in flats {
            ok &= fl < self.len;
        }
        if !ok {
            return false;
        }
        // SAFETY: `f` points at `len` elements and every index was just
        // range-checked above; concurrent use is covered by the
        // lane-disjointness rule documented on [`RawBuf`].
        unsafe {
            for (&v, &fl) in row.iter().zip(flats) {
                *self.f.add(fl) = v;
            }
        }
        true
    }

    /// Whole-row i64 scatter; see [`Self::scatter_f`].
    #[inline]
    pub(crate) fn scatter_i(&self, flats: &[usize], row: &[i64]) -> bool {
        if self.i.is_null() {
            return false;
        }
        let mut ok = true;
        for &fl in flats {
            ok &= fl < self.len;
        }
        if !ok {
            return false;
        }
        // SAFETY: `i` points at `len` elements and every index was just
        // range-checked above; concurrent use is covered by the
        // lane-disjointness rule documented on [`RawBuf`].
        unsafe {
            for (&v, &fl) in row.iter().zip(flats) {
                *self.i.add(fl) = v;
            }
        }
        true
    }
}

/// Launch-wide immutable context the executor needs besides the scratch.
pub(crate) struct ExecCtx<'a> {
    pub prog: &'a Program,
    pub bufs: &'a [RawBuf],
    pub base: &'a [u64],
    pub elem_bytes: &'a [u32],
    pub extents: &'a [Vec<usize>],
    pub strides: &'a [Vec<usize>],
    /// Per-array private expansion (None for device arrays).
    pub expansion: &'a [Option<Expansion>],
    /// Per-array index into the private scratch rows, or -1.
    pub priv_slot: &'a [i32],
    pub total_threads: u64,
}

use super::gpu::PRIV_BASE;

/// Execute the compiled body for one warp. `mask` holds the active lanes,
/// `tid_base` is the linear thread id of lane 0. Returns the number of
/// atomic accesses performed inside critical sections.
pub(crate) fn exec_warp(bc: &KernelBytecode, s: &mut WarpScratch, ctx: &ExecCtx<'_>, mask: u64, tid_base: u64) -> u64 {
    let warp = s.warp;
    let mut vm = Vm {
        code: &bc.code,
        pool: &bc.pool,
        w: warp,
        regs: &mut s.regs,
        lane_ops: &mut s.lane_ops,
        traces: &mut s.traces,
        touched: &mut s.site_touched,
        fast_rows: &mut s.fast_rows,
        ctx,
        tid_base,
        in_critical: false,
        atomic: 0,
        priv_bufs: &mut s.priv_bufs,
    };
    if bc.serial_lanes {
        // Hazardous bodies: run each lane to completion in ascending lane
        // order — the exact schedule the tree engine produces, so writes
        // from earlier lanes are visible to later ones.
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros();
            m &= m - 1;
            vm.run(0, bc.code.len(), 1u64 << l);
        }
    } else {
        vm.run(0, bc.code.len(), mask);
    }
    vm.atomic
}

struct Vm<'a, 'b> {
    code: &'a [Op],
    pool: &'a [u16],
    w: usize,
    regs: &'a mut [Value],
    lane_ops: &'a mut [u64],
    traces: &'a mut [SiteWarpTrace],
    touched: &'a mut [bool],
    fast_rows: &'a mut [u64],
    priv_bufs: &'a mut [Buffer],
    ctx: &'a ExecCtx<'b>,
    tid_base: u64,
    in_critical: bool,
    atomic: u64,
}

/// All-lanes-active mask for a `w`-lane warp.
#[inline]
pub(crate) fn full_mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Iterate the active lanes of `mask`. The all-active case (the common one
/// on interior warps) runs as a plain `0..w` loop — no per-lane bit
/// scanning, and the compiler can hoist the register-file bounds checks.
macro_rules! lanes {
    ($w:expr, $mask:expr, $l:ident, $body:block) => {
        let w_ = $w;
        let m_: u64 = $mask;
        if m_ == full_mask(w_) {
            for $l in 0..w_ {
                $body
            }
        } else {
            let mut m = m_;
            while m != 0 {
                let $l = m.trailing_zeros() as usize;
                m &= m - 1;
                $body
            }
        }
    };
}
pub(crate) use lanes;

impl Vm<'_, '_> {
    #[inline]
    fn get(&self, r: u16, l: usize) -> Value {
        self.regs[r as usize * self.w + l]
    }

    #[inline]
    fn set(&mut self, r: u16, l: usize, v: Value) {
        self.regs[r as usize * self.w + l] = v;
    }

    fn run(&mut self, start: usize, end: usize, mask: u64) {
        let mut pc = start;
        while pc < end {
            match self.code[pc] {
                Op::ConstF { dst, v } => {
                    let dof = dst as usize * self.w;
                    lanes!(self.w, mask, l, {
                        self.regs[dof + l] = Value::F(v);
                    });
                    pc += 1;
                }
                Op::ConstI { dst, v } => {
                    let dof = dst as usize * self.w;
                    lanes!(self.w, mask, l, {
                        self.regs[dof + l] = Value::I(v);
                    });
                    pc += 1;
                }
                Op::ConstB { dst, v } => {
                    let dof = dst as usize * self.w;
                    lanes!(self.w, mask, l, {
                        self.regs[dof + l] = Value::B(v);
                    });
                    pc += 1;
                }
                Op::Copy { dst, src } => {
                    let so = src as usize * self.w;
                    let dof = dst as usize * self.w;
                    lanes!(self.w, mask, l, {
                        self.regs[dof + l] = self.regs[so + l];
                    });
                    pc += 1;
                }
                Op::AsInt { dst, a } => {
                    lanes!(self.w, mask, l, {
                        let v = Value::I(self.get(a, l).as_i());
                        self.set(dst, l, v);
                    });
                    pc += 1;
                }
                Op::Un { dst, op, a } => {
                    lanes!(self.w, mask, l, {
                        let x = self.get(a, l);
                        let v = match op {
                            UnOp::Neg => match x {
                                Value::I(i) => Value::I(-i),
                                v => Value::F(-v.as_f()),
                            },
                            UnOp::Not => Value::B(!x.as_b()),
                        };
                        self.set(dst, l, v);
                    });
                    pc += 1;
                }
                Op::Bin { dst, op, a, b } => {
                    let ao = a as usize * self.w;
                    let bo = b as usize * self.w;
                    let dof = dst as usize * self.w;
                    lanes!(self.w, mask, l, {
                        let x = self.regs[ao + l];
                        let y = self.regs[bo + l];
                        self.regs[dof + l] = eval_bin(op, x, y);
                    });
                    pc += 1;
                }
                Op::CastI { dst, a } => {
                    lanes!(self.w, mask, l, {
                        let x = self.get(a, l);
                        self.set(dst, l, Value::I(x.as_i()));
                    });
                    pc += 1;
                }
                Op::CastF { dst, a } => {
                    lanes!(self.w, mask, l, {
                        let x = self.get(a, l);
                        self.set(dst, l, Value::F(x.as_f()));
                    });
                    pc += 1;
                }
                Op::Ops { n } => {
                    if mask == full_mask(self.w) {
                        for x in self.lane_ops.iter_mut() {
                            *x += n;
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            self.lane_ops[l] += n;
                        }
                    }
                    pc += 1;
                }
                Op::Intrin { dst, f, args_off, args_len } => {
                    lanes!(self.w, mask, l, {
                        let mut vals = [Value::I(0); 4];
                        for (k, v) in vals.iter_mut().enumerate().take(args_len as usize) {
                            *v = self.get(self.pool[args_off as usize + k], l);
                        }
                        self.set(dst, l, eval_intrin(f, &vals[..args_len as usize]));
                    });
                    pc += 1;
                }
                Op::Load { dst, arr, site, idx_off, idx_len, fast } => {
                    let a = arr as usize;
                    if fast >= 0 {
                        // Hot path — fast sites are depth-0, non-private,
                        // global/shared-tiled: hoist every per-array lookup
                        // out of the lane loop and write the address row
                        // straight into the memo's staging buffer.
                        let eb = self.ctx.elem_bytes[a] as u64;
                        let base = self.ctx.base[a];
                        let strides = &self.ctx.strides[a];
                        let extents = &self.ctx.extents[a];
                        let buf = self.ctx.bufs[a];
                        if !buf.is_alloc() {
                            panic!("kernel read of unallocated device array {a}");
                        }
                        let isf = buf.elem_is_float();
                        let wu = self.w;
                        let fo = fast as usize * wu;
                        let dof = dst as usize * wu;
                        let po = idx_off as usize;
                        macro_rules! load_body {
                            ($flat_of:expr) => {
                                lanes!(wu, mask, l, {
                                    let flat = $flat_of(l);
                                    self.fast_rows[fo + l] = base + flat as u64 * eb;
                                    self.regs[dof + l] =
                                        if isf { Value::F(buf.get_f(flat)) } else { Value::I(buf.get_i(flat)) };
                                });
                            };
                        }
                        let oob = |i: i64, d: usize| -> usize {
                            panic!(
                                "index {} out of bounds (dim {} extent {}) on array {}",
                                i,
                                d,
                                extents[d],
                                self.ctx.prog.array_name(ArrayId(a as u32))
                            )
                        };
                        if idx_len == 1 {
                            let ro0 = self.pool[po] as usize * wu;
                            let (e0, s0) = (extents[0], strides[0]);
                            load_body!(|l: usize| {
                                let i = self.regs[ro0 + l].as_i();
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else {
                                    i as usize * s0
                                }
                            });
                        } else if idx_len == 2 {
                            let ro0 = self.pool[po] as usize * wu;
                            let ro1 = self.pool[po + 1] as usize * wu;
                            let (e0, s0) = (extents[0], strides[0]);
                            let (e1, s1) = (extents[1], strides[1]);
                            load_body!(|l: usize| {
                                let i = self.regs[ro0 + l].as_i();
                                let j = self.regs[ro1 + l].as_i();
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else if j < 0 || j as usize >= e1 {
                                    oob(j, 1)
                                } else {
                                    i as usize * s0 + j as usize * s1
                                }
                            });
                        } else {
                            load_body!(|l: usize| {
                                let mut flat = 0usize;
                                for d in 0..idx_len as usize {
                                    let i = self.regs[self.pool[po + d] as usize * wu + l].as_i();
                                    if i < 0 || i as usize >= extents[d] {
                                        oob(i, d);
                                    }
                                    flat += i as usize * strides[d];
                                }
                                flat
                            });
                        }
                        if self.in_critical {
                            self.atomic += mask.count_ones() as u64;
                        }
                    } else {
                        lanes!(self.w, mask, l, {
                            let flat = self.flat_index(a, idx_off, idx_len, l);
                            self.account(a, flat, site, fast, l);
                            let v = self.read(a, flat, l);
                            self.set(dst, l, v);
                        });
                    }
                    pc += 1;
                }
                Op::Store { src, arr, site, idx_off, idx_len, fast } => {
                    let a = arr as usize;
                    if fast >= 0 {
                        let eb = self.ctx.elem_bytes[a] as u64;
                        let base = self.ctx.base[a];
                        let strides = &self.ctx.strides[a];
                        let extents = &self.ctx.extents[a];
                        let name = self.ctx.prog.array_name(ArrayId(a as u32));
                        let buf = self.ctx.bufs[a];
                        if !buf.is_alloc() {
                            panic!("kernel write of unallocated device array {a}");
                        }
                        let isf = buf.elem_is_float();
                        let wu = self.w;
                        let fo = fast as usize * wu;
                        let so = src as usize * wu;
                        let po = idx_off as usize;
                        macro_rules! store_body {
                            ($flat_of:expr) => {
                                lanes!(wu, mask, l, {
                                    let flat = $flat_of(l);
                                    self.fast_rows[fo + l] = base + flat as u64 * eb;
                                    let v = self.regs[so + l];
                                    if isf {
                                        buf.set_f(flat, v.as_f());
                                    } else {
                                        buf.set_i(flat, v.as_i());
                                    }
                                });
                            };
                        }
                        let oob = |i: i64, d: usize| -> usize {
                            panic!("index {} out of bounds (dim {} extent {}) on array {}", i, d, extents[d], name)
                        };
                        if idx_len == 1 {
                            let ro0 = self.pool[po] as usize * wu;
                            let (e0, s0) = (extents[0], strides[0]);
                            store_body!(|l: usize| {
                                let i = self.regs[ro0 + l].as_i();
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else {
                                    i as usize * s0
                                }
                            });
                        } else if idx_len == 2 {
                            let ro0 = self.pool[po] as usize * wu;
                            let ro1 = self.pool[po + 1] as usize * wu;
                            let (e0, s0) = (extents[0], strides[0]);
                            let (e1, s1) = (extents[1], strides[1]);
                            store_body!(|l: usize| {
                                let i = self.regs[ro0 + l].as_i();
                                let j = self.regs[ro1 + l].as_i();
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else if j < 0 || j as usize >= e1 {
                                    oob(j, 1)
                                } else {
                                    i as usize * s0 + j as usize * s1
                                }
                            });
                        } else {
                            store_body!(|l: usize| {
                                let mut flat = 0usize;
                                for d in 0..idx_len as usize {
                                    let i = self.regs[self.pool[po + d] as usize * wu + l].as_i();
                                    if i < 0 || i as usize >= extents[d] {
                                        oob(i, d);
                                    }
                                    flat += i as usize * strides[d];
                                }
                                flat
                            });
                        }
                        if self.in_critical {
                            self.atomic += mask.count_ones() as u64;
                        }
                    } else {
                        lanes!(self.w, mask, l, {
                            let flat = self.flat_index(a, idx_off, idx_len, l);
                            self.account(a, flat, site, fast, l);
                            let v = self.get(src, l);
                            self.write(a, flat, v, l);
                        });
                    }
                    pc += 1;
                }
                Op::If { cond, site, then_len, else_len } => {
                    let t_start = pc + 1;
                    let e_start = t_start + then_len as usize;
                    let end_if = e_start + else_len as usize;
                    let mut m_t = 0u64;
                    self.touched[site as usize] = true;
                    lanes!(self.w, mask, l, {
                        let c = self.get(cond, l).as_b();
                        self.traces[site as usize].record(l as u32, c as u64);
                        if c {
                            m_t |= 1 << l;
                        }
                    });
                    let m_f = mask & !m_t;
                    if m_t != 0 {
                        self.run(t_start, e_start, m_t);
                    }
                    if m_f != 0 {
                        self.run(e_start, end_if, m_f);
                    }
                    pc = end_if;
                }
                Op::Select { cond, dst, t_reg, f_reg, t_len, f_len } => {
                    let t_start = pc + 1;
                    let f_start = t_start + t_len as usize;
                    let end_sel = f_start + f_len as usize;
                    let mut m_t = 0u64;
                    lanes!(self.w, mask, l, {
                        if self.get(cond, l).as_b() {
                            m_t |= 1 << l;
                        }
                    });
                    let m_f = mask & !m_t;
                    if m_t != 0 {
                        self.run(t_start, f_start, m_t);
                    }
                    if m_f != 0 {
                        self.run(f_start, end_sel, m_f);
                    }
                    lanes!(self.w, mask, l, {
                        let v = if m_t >> l & 1 == 1 { self.get(t_reg, l) } else { self.get(f_reg, l) };
                        self.set(dst, l, v);
                    });
                    pc = end_sel;
                }
                Op::For { var, hi_reg, step_reg, hi_len, step_len, body_len } => {
                    let hi_start = pc + 1;
                    let step_start = hi_start + hi_len as usize;
                    let body_start = step_start + step_len as usize;
                    let end_for = body_start + body_len as usize;
                    let mut lm = mask;
                    loop {
                        if hi_len > 0 {
                            self.run(hi_start, step_start, lm);
                        }
                        let mut next = 0u64;
                        lanes!(self.w, lm, l, {
                            self.lane_ops[l] += 1;
                            if self.get(var, l).as_i() < self.get(hi_reg, l).as_i() {
                                next |= 1 << l;
                            }
                        });
                        lm = next;
                        if lm == 0 {
                            break;
                        }
                        self.run(body_start, end_for, lm);
                        if step_len > 0 {
                            self.run(step_start, body_start, lm);
                        }
                        lanes!(self.w, lm, l, {
                            let cur = self.get(var, l).as_i();
                            let st = self.get(step_reg, l).as_i();
                            self.set(var, l, Value::I(cur + st));
                            self.lane_ops[l] += 1;
                        });
                    }
                    pc = end_for;
                }
                Op::While { cond, cond_len, body_len } => {
                    let c_start = pc + 1;
                    let b_start = c_start + cond_len as usize;
                    let end_wh = b_start + body_len as usize;
                    let mut lm = mask;
                    loop {
                        if cond_len > 0 {
                            self.run(c_start, b_start, lm);
                        }
                        let mut take = 0u64;
                        lanes!(self.w, lm, l, {
                            if self.get(cond, l).as_b() {
                                take |= 1 << l;
                            }
                        });
                        if take == 0 {
                            break;
                        }
                        lanes!(self.w, take, l, {
                            self.lane_ops[l] += 1;
                        });
                        self.run(b_start, end_wh, take);
                        lm = take;
                    }
                    pc = end_wh;
                }
                Op::CritEnter => {
                    self.in_critical = true;
                    pc += 1;
                }
                Op::CritExit => {
                    self.in_critical = false;
                    pc += 1;
                }
            }
        }
    }

    fn flat_index(&self, a: usize, off: u32, len: u8, l: usize) -> usize {
        let mut flat = 0usize;
        for d in 0..len as usize {
            let i = self.get(self.pool[off as usize + d], l).as_i();
            let ext = self.ctx.extents[a][d];
            assert!(
                i >= 0 && (i as usize) < ext,
                "index {} out of bounds (dim {} extent {}) on array {}",
                i,
                d,
                ext,
                self.ctx.prog.array_name(ArrayId(a as u32))
            );
            flat += i as usize * self.ctx.strides[a][d];
        }
        flat
    }

    fn account(&mut self, a: usize, flat: usize, site: u32, fast: i32, l: usize) {
        let eb = self.ctx.elem_bytes[a] as u64;
        if let Some(exp) = self.ctx.expansion[a] {
            match exp {
                Expansion::Register => {}
                Expansion::RowWise => {
                    let slot = self.ctx.priv_slot[a] as usize;
                    let len = self.priv_bufs[slot * self.w + l].len() as u64;
                    let tid = self.tid_base + l as u64;
                    self.touched[site as usize] = true;
                    self.traces[site as usize].record(l as u32, PRIV_BASE + (tid * len + flat as u64) * eb);
                }
                Expansion::ColumnWise => {
                    let tid = self.tid_base + l as u64;
                    self.touched[site as usize] = true;
                    self.traces[site as usize]
                        .record(l as u32, PRIV_BASE + (flat as u64 * self.ctx.total_threads + tid) * eb);
                }
            }
            return;
        }
        let addr = self.ctx.base[a] + flat as u64 * eb;
        if fast >= 0 {
            self.fast_rows[fast as usize * self.w + l] = addr;
        } else {
            self.touched[site as usize] = true;
            self.traces[site as usize].record(l as u32, addr);
        }
        if self.in_critical {
            self.atomic += 1;
        }
    }

    fn read(&self, a: usize, flat: usize, l: usize) -> Value {
        if self.ctx.priv_slot[a] >= 0 {
            let b = &self.priv_bufs[self.ctx.priv_slot[a] as usize * self.w + l];
            if b.elem.is_float() {
                Value::F(b.get_f(flat))
            } else {
                Value::I(b.get_i(flat))
            }
        } else {
            let b = self.ctx.bufs[a];
            if !b.is_alloc() {
                panic!("kernel read of unallocated device array {a}");
            }
            if b.elem_is_float() {
                Value::F(b.get_f(flat))
            } else {
                Value::I(b.get_i(flat))
            }
        }
    }

    fn write(&mut self, a: usize, flat: usize, v: Value, l: usize) {
        if self.ctx.priv_slot[a] >= 0 {
            let b = &mut self.priv_bufs[self.ctx.priv_slot[a] as usize * self.w + l];
            if b.elem.is_float() {
                b.set_f(flat, v.as_f());
            } else {
                b.set_i(flat, v.as_i());
            }
        } else {
            let b = self.ctx.bufs[a];
            if !b.is_alloc() {
                panic!("kernel write of unallocated device array {a}");
            }
            if b.elem_is_float() {
                b.set_f(flat, v.as_f());
            } else {
                b.set_i(flat, v.as_i());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::kernel::axis;

    #[test]
    fn compile_bails_on_calls() {
        let mut pb = ProgramBuilder::new("c");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let pa = pb.farray("pa", vec![v(n)]);
        let f = pb.func("f", vec![], vec![pa], vec![store(pa, vec![crate::expr::ic(0)], 1.0)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], vec![call(f, vec![], vec![x])]);
        k.finalize();
        assert!(compile(&p, &k).is_none());
    }

    #[test]
    fn compile_detects_affine_fast_sites() {
        let mut pb = ProgramBuilder::new("a");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        // y[i] = x[i]*2 — both sites affine, depth 0.
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], vec![store(y, vec![v(i)], ld(x, vec![v(i)]) * 2.0)]);
        k.finalize();
        let bc = compile(&p, &k).expect("compiles");
        assert_eq!(bc.fast_site_count(), 2);
        assert!(bc.op_count() > 0);
    }

    #[test]
    fn non_affine_or_nested_sites_stay_slow() {
        let mut pb = ProgramBuilder::new("a");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        // x[(i*i) % n] is not affine; the load inside the loop is nested.
        let body = vec![
            store(y, vec![v(i)], ld(x, vec![(v(i) * v(i)) % v(n)])),
            sfor(j, 0i64, 4i64, vec![store(y, vec![v(i)], ld(x, vec![v(j)]))]),
        ];
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], body);
        k.finalize();
        let bc = compile(&p, &k).expect("compiles");
        // Only the depth-0 store to y[i] qualifies.
        assert_eq!(bc.fast_site_count(), 1);
    }
}
