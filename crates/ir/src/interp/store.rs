//! Disk-persisted, content-addressed backing tier for the launch-result LRU.
//!
//! The in-memory cache in [`super::launch_cache`] dies with the process, so
//! every fresh `report` invocation pays cold caches again. This module gives
//! the same content-addressed keys a durable home: on an in-memory miss the
//! executor probes the store before executing, and captured effects are
//! spilled write-behind so a later process warm-starts from disk. The CPU
//! oracle memos in `acceval-core` spill through the same blob API.
//!
//! **On-disk layout** (under the store root, default
//! `results/.acceval-store/`):
//!
//! ```text
//! v1/<2-hex-shard>/<32-hex-address>.bin   one entry per file
//! v1/tmp/                                 staging for atomic renames
//! v1/quarantine/                          entries that failed verification
//! v1/index.log                            append-only insert/delete journal
//! v1/evict.lock                           advisory lock for eviction/clear
//! ```
//!
//! The address is a [`Digest128`] of (entry kind, build epoch, full key
//! bytes). The digest is weak, so every entry *stores* its key and a probe
//! compares key bytes after the checksum passes — correctness never rests on
//! hash strength, a collision is just a miss. The build epoch (executable
//! length + mtime, overridable via `ACCEVAL_STORE_EPOCH`) is folded into the
//! address so entries captured under a different cost model can never match.
//!
//! **Fail-soft**: the store is a speed tier, never a correctness tier. Any
//! I/O error is a miss (probe) or a dropped spill (insert). A truncated,
//! corrupt, or version-mismatched entry is moved to `quarantine/` and
//! reported as a miss; nothing in this module panics on bad disk state.
//!
//! **Concurrency**: writers stage entries in `tmp/` and publish with an
//! atomic same-directory rename, so readers only ever see complete files.
//! Entry files are immutable after publish (hits re-touch only the mtime,
//! which drives LRU eviction). Eviction and `clear` serialize on an
//! advisory `evict.lock` created with `create_new`, with stale-lock
//! stealing, so parallel sweeps can share one store.

use std::collections::VecDeque;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

use acceval_sim::{Buffer, Digest128, ElemType, Payload, TraceEvent};

use super::gpu::LaunchResult;
use super::launch_cache::{ArrayOut, LaunchEffect, LaunchKey};
use crate::env::{self, StoreMode};
use crate::types::Value;

/// On-disk entry kind for launch effects.
pub const KIND_LAUNCH: u8 = 1;
/// On-disk entry kind for CPU-oracle runs (spilled by `acceval-core`).
pub const KIND_ORACLE: u8 = 2;

const MAGIC: &[u8; 8] = b"ACEVSTR1";
const VERSION: u32 = 1;

/// Subdirectory versioning the layout; bump with the entry format.
const LAYOUT: &str = "v1";

/// Default store root when `ACCEVAL_STORE` is `on` or auto-enabled.
const DEFAULT_ROOT: &str = "results/.acceval-store";

/// Default byte cap when `ACCEVAL_STORE_CAP_MB` is unset: 2 GiB.
const DEFAULT_CAP: u64 = 2048 << 20;

/// Bytes the write-behind queue may hold before further spills are dropped
/// (the store is best-effort; a stalled disk must not balloon memory).
const QUEUE_CAP: u64 = 256 << 20;

/// Advisory locks older than this are presumed abandoned and stolen.
const LOCK_STALE: Duration = Duration::from_secs(300);

// ---- mode and capacity -----------------------------------------------------

static MODE_OVERRIDE: Mutex<Option<StoreMode>> = Mutex::new(None);
static MODE_FROM_ENV: OnceLock<StoreMode> = OnceLock::new();

/// Byte-cap override installed by tests; `u64::MAX` means unset.
static CAP_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);
static CAP_FROM_ENV: OnceLock<u64> = OnceLock::new();

/// The persistent-store mode: an override installed by
/// [`set_store_override`] wins, else `ACCEVAL_STORE`
/// (`auto` | `on` | `off` | a directory path), else [`StoreMode::Auto`].
/// A malformed value falls back to `Auto` (front-end binaries catch it up
/// front via [`crate::env::validate_env`]).
pub fn store_mode() -> StoreMode {
    if let Ok(o) = MODE_OVERRIDE.lock() {
        if let Some(m) = o.as_ref() {
            return m.clone();
        }
    }
    MODE_FROM_ENV
        .get_or_init(|| match std::env::var("ACCEVAL_STORE") {
            Ok(s) => env::parse_store_mode(&s).unwrap_or(StoreMode::Auto),
            Err(_) => StoreMode::Auto,
        })
        .clone()
}

/// Force a store mode for this process (tests/benches), overriding the
/// environment. `None` returns control to `ACCEVAL_STORE`.
pub fn set_store_override(m: Option<StoreMode>) {
    if let Ok(mut o) = MODE_OVERRIDE.lock() {
        *o = m;
    }
}

/// Short name of the active store policy, for manifests.
pub fn store_policy_name() -> &'static str {
    match store_mode() {
        StoreMode::Auto => {
            if store_root().is_some() {
                "auto"
            } else {
                "auto-off"
            }
        }
        StoreMode::On => "on",
        StoreMode::Off => "off",
        StoreMode::Path(_) => "path",
    }
}

/// The active store root, or `None` when the store is disabled.
///
/// `Auto` enables the store only where the evaluation harness actually runs:
/// when a `results/` directory already exists in the working directory. That
/// keeps plain `cargo test` invocations (whose working directory is a crate
/// root) from sprouting store directories all over the tree, while `report`
/// — which creates `results/` for its artifacts — warm-starts from the
/// second invocation on.
pub fn store_root() -> Option<PathBuf> {
    match store_mode() {
        StoreMode::Off => None,
        StoreMode::On => Some(PathBuf::from(DEFAULT_ROOT)),
        StoreMode::Path(p) => Some(p),
        StoreMode::Auto => {
            if Path::new("results").is_dir() {
                Some(PathBuf::from(DEFAULT_ROOT))
            } else {
                None
            }
        }
    }
}

/// Whether the store is enabled (probes and spills happen).
pub fn store_enabled() -> bool {
    store_root().is_some()
}

/// Byte cap on the on-disk store: the override installed by
/// [`set_store_cap_override`] wins, else `ACCEVAL_STORE_CAP_MB` (mebibytes),
/// else 2 GiB. A malformed value falls back to the default.
pub fn store_cap_bytes() -> u64 {
    let o = CAP_OVERRIDE.load(Ordering::Relaxed);
    if o != u64::MAX {
        return o;
    }
    *CAP_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_STORE_CAP_MB") {
        Ok(s) => env::parse_cap_mb("ACCEVAL_STORE_CAP_MB", &s).unwrap_or(DEFAULT_CAP),
        Err(_) => DEFAULT_CAP,
    })
}

/// Force a store byte cap for this process (tests exercise eviction under a
/// tiny cap). `None` returns control to the environment/default.
pub fn set_store_cap_override(bytes: Option<u64>) {
    CAP_OVERRIDE.store(bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
}

// ---- build epoch -----------------------------------------------------------

/// Epoch folded into every on-disk address. Entries record the simulator's
/// *outputs*, so an entry captured by a different build (different cost
/// model, different capture format) must be unreachable: by default the
/// epoch digests the current executable's length and mtime. Deliberate
/// sharing across builds (e.g. a CI cache keyed on the source revision) can
/// pin it with `ACCEVAL_STORE_EPOCH=<label>`.
fn store_epoch() -> u64 {
    static EPOCH: OnceLock<u64> = OnceLock::new();
    *EPOCH.get_or_init(|| {
        let mut d = Digest128::new();
        if let Ok(label) = std::env::var("ACCEVAL_STORE_EPOCH") {
            d.push(0xe70c);
            for chunk in label.as_bytes().chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                d.push(u64::from_le_bytes(w));
            }
        } else {
            d.push(0xb11d);
            if let Ok(meta) = std::env::current_exe().and_then(fs::metadata) {
                d.push(meta.len());
                if let Ok(mtime) = meta.modified() {
                    if let Ok(age) = mtime.duration_since(SystemTime::UNIX_EPOCH) {
                        d.push(age.as_secs());
                        d.push(age.subsec_nanos() as u64);
                    }
                }
            }
        }
        let f = d.finish();
        (f >> 64) as u64 ^ f as u64
    })
}

// ---- statistics ------------------------------------------------------------

static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_MISSES: AtomicU64 = AtomicU64::new(0);
static SPILLS: AtomicU64 = AtomicU64::new(0);
static SPILL_BYTES: AtomicU64 = AtomicU64::new(0);
static SPILL_DROPS: AtomicU64 = AtomicU64::new(0);
static QUARANTINED: AtomicU64 = AtomicU64::new(0);
static EVICTED: AtomicU64 = AtomicU64::new(0);
static PROBE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Approximate resident bytes across the store, maintained by this process's
/// writes and trued up by eviction scans. `u64::MAX` = not yet seeded.
static APPROX_BYTES: AtomicU64 = AtomicU64::new(u64::MAX);

/// Process-lifetime store counters, for manifests and `report -- store`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreTotals {
    /// Probes answered from disk.
    pub disk_hits: u64,
    /// Probes that went to disk and found nothing usable.
    pub disk_misses: u64,
    /// Entries written by the spiller.
    pub spills: u64,
    /// Bytes written by the spiller.
    pub spill_bytes: u64,
    /// Spills dropped (queue full, store disabled mid-flight, I/O error).
    pub spill_drops: u64,
    /// Entries moved to quarantine after failing verification.
    pub quarantined: u64,
    /// Entries evicted under the byte cap.
    pub evicted: u64,
    /// Wall time spent in disk probes.
    pub probe_secs: f64,
}

/// Snapshot of the process-lifetime store counters.
pub fn store_totals() -> StoreTotals {
    StoreTotals {
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        disk_misses: DISK_MISSES.load(Ordering::Relaxed),
        spills: SPILLS.load(Ordering::Relaxed),
        spill_bytes: SPILL_BYTES.load(Ordering::Relaxed),
        spill_drops: SPILL_DROPS.load(Ordering::Relaxed),
        quarantined: QUARANTINED.load(Ordering::Relaxed),
        evicted: EVICTED.load(Ordering::Relaxed),
        probe_secs: PROBE_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
    }
}

// ---- binary codec ----------------------------------------------------------

/// Append-only little-endian encoder for store payloads. Public so
/// `acceval-core` can serialize oracle runs through the same framing.
#[derive(Debug, Default)]
pub struct Enc {
    /// The encoded bytes.
    pub buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }
    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u128.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Append an f64 as raw bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Append a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Append a tagged [`Value`] (bit-exact round trip).
    pub fn value(&mut self, v: &Value) {
        enc_value(self, v);
    }
    /// Append a [`Buffer`]: element type, storage kind, and raw element bits.
    pub fn buffer(&mut self, b: &Buffer) {
        enc_buffer(self, b);
    }
}

/// Cursor-based decoder over a store payload. Every read is checked: a
/// truncated payload yields `None`, never a panic.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, at: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }
    /// Read a byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    /// Read a little-endian u128.
    pub fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }
    /// Read an f64 from raw bits.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    /// Read a tagged [`Value`].
    pub fn value(&mut self) -> Option<Value> {
        dec_value(self)
    }
    /// Read a [`Buffer`].
    pub fn buffer(&mut self) -> Option<Buffer> {
        dec_buffer(self)
    }
    /// True when the whole payload has been consumed.
    pub fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

// ---- entry framing ---------------------------------------------------------

fn address(kind: u8, key: &[u8]) -> u128 {
    let mut d = Digest128::new();
    d.push(kind as u64);
    d.push(store_epoch());
    d.push(key.len() as u64);
    for chunk in key.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        d.push(u64::from_le_bytes(w));
    }
    d.finish()
}

fn entry_path(root: &Path, addr: u128) -> PathBuf {
    let hex = format!("{addr:032x}");
    root.join(LAYOUT).join(&hex[..2]).join(format!("{hex}.bin"))
}

fn checksum(version: u32, kind: u8, epoch: u64, key: &[u8], payload: &[u8]) -> u128 {
    let mut d = Digest128::new();
    d.push(version as u64);
    d.push(kind as u64);
    d.push(epoch);
    d.push(key.len() as u64);
    for chunk in key.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        d.push(u64::from_le_bytes(w));
    }
    d.push(payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        d.push(u64::from_le_bytes(w));
    }
    d.finish()
}

/// Serialize a complete entry file: magic, version, kind, epoch,
/// length-prefixed key and payload, trailing checksum.
fn frame(kind: u8, key: &[u8], payload: &[u8]) -> Vec<u8> {
    let epoch = store_epoch();
    let mut e = Enc::new();
    e.buf.extend_from_slice(MAGIC);
    e.u32(VERSION);
    e.u8(kind);
    e.u64(epoch);
    e.u32(key.len() as u32);
    e.buf.extend_from_slice(key);
    e.u64(payload.len() as u64);
    e.buf.extend_from_slice(payload);
    e.u128(checksum(VERSION, kind, epoch, key, payload));
    e.buf
}

/// Why a read entry could not be used.
enum Unusable {
    /// Structurally bad: truncated, wrong magic/version/checksum. Quarantine.
    Corrupt,
    /// Well-formed entry for a different key or epoch (weak-hash collision or
    /// shared store across builds). Just a miss; the entry stays.
    Mismatch,
}

/// Verify a raw entry file against the expected (kind, key); on success
/// return the payload slice.
fn verify<'a>(data: &'a [u8], kind: u8, key: &[u8]) -> Result<&'a [u8], Unusable> {
    let mut d = Dec::new(data);
    if d.take(MAGIC.len()) != Some(&MAGIC[..]) {
        return Err(Unusable::Corrupt);
    }
    let version = d.u32().ok_or(Unusable::Corrupt)?;
    if version != VERSION {
        return Err(Unusable::Corrupt);
    }
    let ekind = d.u8().ok_or(Unusable::Corrupt)?;
    let epoch = d.u64().ok_or(Unusable::Corrupt)?;
    let klen = d.u32().ok_or(Unusable::Corrupt)? as usize;
    let ekey = d.take(klen).ok_or(Unusable::Corrupt)?;
    let plen = d.u64().ok_or(Unusable::Corrupt)? as usize;
    let payload = d.take(plen).ok_or(Unusable::Corrupt)?;
    let sum = d.u128().ok_or(Unusable::Corrupt)?;
    if !d.done() || sum != checksum(version, ekind, epoch, ekey, payload) {
        return Err(Unusable::Corrupt);
    }
    if ekind != kind || epoch != store_epoch() || ekey != key {
        return Err(Unusable::Mismatch);
    }
    Ok(payload)
}

fn quarantine(root: &Path, path: &Path) {
    let qdir = root.join(LAYOUT).join("quarantine");
    if fs::create_dir_all(&qdir).is_err() {
        let _ = fs::remove_file(path);
        QUARANTINED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_else(|| "entry".into());
    let dst = qdir.join(format!("{}-{name}", std::process::id()));
    if fs::rename(path, &dst).is_err() {
        // Cross-process race or odd filesystem: removing is as good as
        // quarantining for fail-soft purposes.
        let _ = fs::remove_file(path);
    }
    QUARANTINED.fetch_add(1, Ordering::Relaxed);
}

fn append_index(root: &Path, op: char, addr: u128, bytes: u64) {
    let path = root.join(LAYOUT).join("index.log");
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{op} {addr:032x} {bytes}");
    }
}

// ---- probe (synchronous) ---------------------------------------------------

/// Look up a blob by (kind, key). Any failure — absent entry, I/O error,
/// corrupt file (quarantined), key/epoch mismatch — is a miss.
pub fn get_blob(kind: u8, key: &[u8]) -> Option<Vec<u8>> {
    let root = store_root()?;
    let t0 = Instant::now();
    let r = get_blob_at(&root, kind, key);
    PROBE_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    match r {
        Some(p) => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            Some(p)
        }
        None => {
            DISK_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

fn get_blob_at(root: &Path, kind: u8, key: &[u8]) -> Option<Vec<u8>> {
    let path = entry_path(root, address(kind, key));
    let data = fs::read(&path).ok()?;
    match verify(&data, kind, key) {
        Ok(payload) => {
            let payload = payload.to_vec();
            // Touch the mtime so LRU eviction sees the hit. Best-effort:
            // the entry may have been evicted by another process between
            // the read and the touch.
            if let Ok(f) = fs::OpenOptions::new().append(true).open(&path) {
                let _ = f.set_modified(SystemTime::now());
            }
            Some(payload)
        }
        Err(Unusable::Corrupt) => {
            quarantine(root, &path);
            None
        }
        Err(Unusable::Mismatch) => None,
    }
}

// ---- write-behind spiller --------------------------------------------------

struct Job {
    root: PathBuf,
    cap: u64,
    kind: u8,
    key: Vec<u8>,
    payload: Payload2,
}

/// Deferred payload: launch effects serialize on the spiller thread so the
/// executor's critical path pays only an enqueue.
enum Payload2 {
    Bytes(Vec<u8>),
    Effect { key: LaunchKey, effect: std::sync::Arc<LaunchEffect> },
}

struct Spool {
    jobs: VecDeque<Job>,
    queued_bytes: u64,
    busy: bool,
    started: bool,
}

fn spool() -> &'static (Mutex<Spool>, Condvar) {
    static SPOOL: OnceLock<(Mutex<Spool>, Condvar)> = OnceLock::new();
    SPOOL.get_or_init(|| {
        (Mutex::new(Spool { jobs: VecDeque::new(), queued_bytes: 0, busy: false, started: false }), Condvar::new())
    })
}

fn enqueue(job: Job, est_bytes: u64) {
    let (lock, cv) = spool();
    let Ok(mut s) = lock.lock() else {
        SPILL_DROPS.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if s.queued_bytes.saturating_add(est_bytes) > QUEUE_CAP {
        SPILL_DROPS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if !s.started {
        s.started = true;
        std::thread::Builder::new()
            .name("acceval-store-spiller".into())
            .spawn(spiller_loop)
            .map(|_| ())
            .unwrap_or_else(|_| s.started = false);
        if !s.started {
            SPILL_DROPS.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    s.queued_bytes += est_bytes;
    s.jobs.push_back(job);
    cv.notify_all();
}

fn spiller_loop() {
    let (lock, cv) = spool();
    loop {
        let job = {
            let Ok(mut s) = lock.lock() else { return };
            loop {
                if let Some(j) = s.jobs.pop_front() {
                    s.busy = true;
                    break j;
                }
                s.busy = false;
                cv.notify_all();
                s = match cv.wait(s) {
                    Ok(g) => g,
                    Err(_) => return,
                };
            }
        };
        let est = match &job.payload {
            Payload2::Bytes(b) => b.len() as u64,
            Payload2::Effect { effect, .. } => effect.resident_bytes(),
        };
        write_job(job);
        let Ok(mut s) = lock.lock() else { return };
        s.queued_bytes = s.queued_bytes.saturating_sub(est);
        s.busy = false;
        cv.notify_all();
    }
}

fn write_job(job: Job) {
    let payload = match job.payload {
        Payload2::Bytes(b) => b,
        Payload2::Effect { key, effect } => {
            debug_assert_eq!(job.key, encode_launch_key(&key));
            encode_effect(&effect)
        }
    };
    let addr = address(job.kind, &job.key);
    let path = entry_path(&job.root, addr);
    if path.exists() {
        // Another process (or an earlier spill) already published this
        // entry; entries are immutable, so there is nothing to add.
        return;
    }
    let data = frame(job.kind, &job.key, &payload);
    let len = data.len() as u64;
    if write_atomic(&job.root, &path, &data).is_none() {
        SPILL_DROPS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    SPILLS.fetch_add(1, Ordering::Relaxed);
    SPILL_BYTES.fetch_add(len, Ordering::Relaxed);
    append_index(&job.root, 'I', addr, len);
    approx_add(&job.root, len);
    maybe_evict(&job.root, job.cap);
}

fn write_atomic(root: &Path, path: &Path, data: &[u8]) -> Option<()> {
    let tmp_dir = root.join(LAYOUT).join("tmp");
    fs::create_dir_all(&tmp_dir).ok()?;
    fs::create_dir_all(path.parent()?).ok()?;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = tmp_dir.join(format!("{}-{}.tmp", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed)));
    fs::write(&tmp, data).ok()?;
    // Same-filesystem rename: readers see the old state or the complete new
    // file, never a partial write.
    match fs::rename(&tmp, path) {
        Ok(()) => Some(()),
        Err(_) => {
            let _ = fs::remove_file(&tmp);
            None
        }
    }
}

/// Insert a blob write-behind. Returns immediately; the entry becomes
/// visible once the spiller publishes it (see [`flush_store`]).
pub fn put_blob(kind: u8, key: Vec<u8>, payload: Vec<u8>) {
    let Some(root) = store_root() else { return };
    let est = payload.len() as u64;
    enqueue(Job { root, cap: store_cap_bytes(), kind, key, payload: Payload2::Bytes(payload) }, est);
}

/// Block until every queued spill has been published (tests, and the report
/// binary before exit, so a following process sees a complete store).
pub fn flush_store() {
    let (lock, cv) = spool();
    let Ok(mut s) = lock.lock() else { return };
    if !s.started {
        return;
    }
    while s.busy || !s.jobs.is_empty() {
        s = match cv.wait_timeout(s, Duration::from_secs(30)) {
            Ok((g, t)) => {
                if t.timed_out() {
                    return;
                }
                g
            }
            Err(_) => return,
        };
    }
}

// ---- eviction --------------------------------------------------------------

fn approx_add(root: &Path, bytes: u64) {
    let cur = APPROX_BYTES.load(Ordering::Relaxed);
    if cur == u64::MAX {
        let scanned = scan_entries(root).iter().map(|(_, len, _)| len).sum::<u64>();
        APPROX_BYTES.store(scanned, Ordering::Relaxed);
    } else {
        APPROX_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Every entry file under the shard directories: (path, length, mtime).
fn scan_entries(root: &Path) -> Vec<(PathBuf, u64, SystemTime)> {
    let mut out = Vec::new();
    let Ok(shards) = fs::read_dir(root.join(LAYOUT)) else { return out };
    for shard in shards.flatten() {
        let name = shard.file_name();
        let name = name.to_string_lossy();
        // Shard dirs are exactly two hex digits; skips tmp/, quarantine/,
        // index.log, and lock files.
        if name.len() != 2 || !name.chars().all(|c| c.is_ascii_hexdigit()) {
            continue;
        }
        let Ok(entries) = fs::read_dir(shard.path()) else { continue };
        for e in entries.flatten() {
            let Ok(meta) = e.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            out.push((e.path(), meta.len(), mtime));
        }
    }
    out
}

/// Advisory lock via `create_new`, with stale-lock stealing. Returns a guard
/// that removes the lock file on drop, or `None` if another live process
/// holds it (the caller then skips the operation — eviction is cooperative).
struct LockGuard(PathBuf);

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn try_lock(root: &Path) -> Option<LockGuard> {
    let path = root.join(LAYOUT).join("evict.lock");
    let _ = fs::create_dir_all(root.join(LAYOUT));
    for _ in 0..2 {
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                return Some(LockGuard(path));
            }
            Err(_) => {
                // Steal locks abandoned by a crashed process.
                let stale = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| SystemTime::now().duration_since(t).ok())
                    .is_some_and(|age| age > LOCK_STALE);
                if stale {
                    let _ = fs::remove_file(&path);
                } else {
                    return None;
                }
            }
        }
    }
    None
}

fn maybe_evict(root: &Path, cap: u64) {
    if APPROX_BYTES.load(Ordering::Relaxed) <= cap {
        return;
    }
    let Some(_lock) = try_lock(root) else { return };
    let mut entries = scan_entries(root);
    let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
    // Oldest-mtime first; hits re-touch mtimes, so this is LRU.
    entries.sort_by_key(|(_, _, mtime)| *mtime);
    // Evict down to 90% of the cap so each overflow triggers one scan, not
    // one per subsequent write.
    let target = cap - cap / 10;
    for (path, len, _) in entries {
        if total <= target {
            break;
        }
        if fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
            EVICTED.fetch_add(1, Ordering::Relaxed);
            if let Some(hex) = path.file_stem().and_then(|s| s.to_str()) {
                if let Ok(addr) = u128::from_str_radix(hex, 16) {
                    append_index(root, 'D', addr, len);
                }
            }
        }
    }
    APPROX_BYTES.store(total, Ordering::Relaxed);
}

// ---- maintenance -----------------------------------------------------------

/// On-disk shape of the store, for `report -- store`.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// The active root, or `None` when disabled.
    pub root: Option<PathBuf>,
    /// Live entries under the shard directories.
    pub entries: u64,
    /// Bytes those entries occupy.
    pub bytes: u64,
    /// Files parked in `quarantine/`.
    pub quarantined: u64,
    /// The active byte cap.
    pub cap_bytes: u64,
}

/// Scan the store's on-disk shape (entry count, bytes, quarantine size).
pub fn store_stats() -> StoreStats {
    let root = store_root();
    let mut stats =
        StoreStats { root: root.clone(), entries: 0, bytes: 0, quarantined: 0, cap_bytes: store_cap_bytes() };
    let Some(root) = root else { return stats };
    for (_, len, _) in scan_entries(&root) {
        stats.entries += 1;
        stats.bytes += len;
    }
    if let Ok(q) = fs::read_dir(root.join(LAYOUT).join("quarantine")) {
        stats.quarantined = q.flatten().count() as u64;
    }
    stats
}

/// Remove every entry, the index, the quarantine, and staged temp files.
/// Returns the number of entries removed. Concurrent writers may repopulate
/// immediately; that is fine, the store is only ever a cache.
pub fn clear_store() -> u64 {
    flush_store();
    let Some(root) = store_root() else { return 0 };
    let _lock = try_lock(&root);
    let mut removed = 0u64;
    for (path, _, _) in scan_entries(&root) {
        if fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    for aux in ["quarantine", "tmp"] {
        let _ = fs::remove_dir_all(root.join(LAYOUT).join(aux));
    }
    let _ = fs::remove_file(root.join(LAYOUT).join("index.log"));
    APPROX_BYTES.store(0, Ordering::Relaxed);
    removed
}

// ---- launch-effect codec ---------------------------------------------------

fn elem_tag(e: ElemType) -> u8 {
    match e {
        ElemType::F32 => 1,
        ElemType::F64 => 2,
        ElemType::I32 => 3,
        ElemType::I64 => 4,
    }
}

fn elem_from_tag(t: u8) -> Option<ElemType> {
    Some(match t {
        1 => ElemType::F32,
        2 => ElemType::F64,
        3 => ElemType::I32,
        4 => ElemType::I64,
        _ => return None,
    })
}

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::F(x) => {
            e.u8(1);
            e.u64(x.to_bits());
        }
        Value::I(x) => {
            e.u8(2);
            e.u64(*x as u64);
        }
        Value::B(x) => {
            e.u8(3);
            e.u64(*x as u64);
        }
    }
}

fn dec_value(d: &mut Dec) -> Option<Value> {
    let tag = d.u8()?;
    let bits = d.u64()?;
    Some(match tag {
        1 => Value::F(f64::from_bits(bits)),
        2 => Value::I(bits as i64),
        3 => Value::B(bits != 0),
        _ => return None,
    })
}

fn enc_buffer(e: &mut Enc, b: &Buffer) {
    e.u8(elem_tag(b.elem));
    match &b.data {
        Payload::F(v) => {
            e.u8(0);
            e.u64(v.len() as u64);
            for x in v {
                e.u64(x.to_bits());
            }
        }
        Payload::I(v) => {
            e.u8(1);
            e.u64(v.len() as u64);
            for x in v {
                e.u64(*x as u64);
            }
        }
    }
}

fn dec_buffer(d: &mut Dec) -> Option<Buffer> {
    let elem = elem_from_tag(d.u8()?)?;
    let kind = d.u8()?;
    let n = d.u64()? as usize;
    // Cap at what the payload can actually hold, so a corrupt length can't
    // trigger a huge allocation before the reads start failing.
    if n.checked_mul(8)? > d.bytes.len() {
        return None;
    }
    match (kind, elem.is_float()) {
        (0, true) => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(d.u64()?));
            }
            Some(Buffer::from_f64(elem, v))
        }
        (1, false) => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.u64()? as i64);
            }
            Some(Buffer::from_i64(elem, v))
        }
        _ => None,
    }
}

fn enc_event(e: &mut Enc, ev: &TraceEvent) {
    match ev {
        TraceEvent::Host { label, secs } => {
            e.u8(0);
            e.str(label);
            e.f64(*secs);
        }
        TraceEvent::Transfer { array, dir, bytes, secs } => {
            e.u8(1);
            e.str(array);
            e.u8(matches!(dir, acceval_sim::Dir::DeviceToHost) as u8);
            e.u64(*bytes);
            e.f64(*secs);
        }
        TraceEvent::KernelLaunch { name, footprint, cost, totals, traffic_bytes } => {
            e.u8(2);
            e.str(name);
            enc_footprint(e, footprint);
            enc_cost(e, cost);
            enc_totals(e, totals);
            e.u64(*traffic_bytes);
        }
        TraceEvent::CoalesceSite {
            kernel,
            site,
            array,
            space,
            requests,
            transactions,
            lane_accesses,
            shared_slots,
        } => {
            e.u8(3);
            e.str(kernel);
            e.u32(*site);
            e.str(array);
            e.str(space);
            e.u64(*requests);
            e.u64(*transactions);
            e.u64(*lane_accesses);
            e.u64(*shared_slots);
        }
        TraceEvent::CacheCounters { cache, hits, misses } => {
            e.u8(4);
            e.str(cache);
            e.u64(*hits);
            e.u64(*misses);
        }
        TraceEvent::TaskSpan { task, benchmark, model, tuning, oracle_cached, compile_cached } => {
            e.u8(5);
            e.u64(*task as u64);
            e.str(benchmark);
            e.str(model);
            match tuning {
                Some(t) => {
                    e.u8(1);
                    e.str(t);
                }
                None => e.u8(0),
            }
            e.u8(*oracle_cached as u8);
            e.u8(*compile_cached as u8);
        }
    }
}

fn dec_event(d: &mut Dec) -> Option<TraceEvent> {
    Some(match d.u8()? {
        0 => TraceEvent::Host { label: d.str()?, secs: d.f64()? },
        1 => TraceEvent::Transfer {
            array: d.str()?,
            dir: if d.u8()? == 1 { acceval_sim::Dir::DeviceToHost } else { acceval_sim::Dir::HostToDevice },
            bytes: d.u64()?,
            secs: d.f64()?,
        },
        2 => TraceEvent::KernelLaunch {
            name: d.str()?,
            footprint: dec_footprint(d)?,
            cost: dec_cost(d)?,
            totals: dec_totals(d)?,
            traffic_bytes: d.u64()?,
        },
        3 => TraceEvent::CoalesceSite {
            kernel: d.str()?,
            site: d.u32()?,
            array: d.str()?,
            space: d.str()?,
            requests: d.u64()?,
            transactions: d.u64()?,
            lane_accesses: d.u64()?,
            shared_slots: d.u64()?,
        },
        4 => TraceEvent::CacheCounters { cache: d.str()?, hits: d.u64()?, misses: d.u64()? },
        5 => TraceEvent::TaskSpan {
            task: d.u64()? as usize,
            benchmark: d.str()?,
            model: d.str()?,
            tuning: if d.u8()? == 1 { Some(d.str()?) } else { None },
            oracle_cached: d.u8()? != 0,
            compile_cached: d.u8()? != 0,
        },
        _ => return None,
    })
}

fn enc_footprint(e: &mut Enc, f: &acceval_sim::KernelFootprint) {
    e.u32(f.threads_per_block);
    e.u32(f.shared_bytes_per_block);
    e.u32(f.regs_per_thread);
    e.u64(f.grid_blocks);
}

fn dec_footprint(d: &mut Dec) -> Option<acceval_sim::KernelFootprint> {
    Some(acceval_sim::KernelFootprint {
        threads_per_block: d.u32()?,
        shared_bytes_per_block: d.u32()?,
        regs_per_thread: d.u32()?,
        grid_blocks: d.u64()?,
    })
}

fn enc_cost(e: &mut Enc, c: &acceval_sim::KernelCost) {
    e.f64(c.cycles);
    e.f64(c.time_secs);
    e.f64(c.compute_cycles);
    e.f64(c.mem_bw_cycles);
    e.f64(c.mem_lat_cycles);
    e.f64(c.shared_cycles);
    e.f64(c.atomic_cycles);
    e.u32(c.occupancy.blocks_per_sm);
    e.u32(c.occupancy.resident_warps_per_sm);
    e.f64(c.occupancy.fraction);
    e.u8(match c.bound {
        acceval_sim::Bound::Compute => 0,
        acceval_sim::Bound::MemBandwidth => 1,
        acceval_sim::Bound::MemLatency => 2,
        acceval_sim::Bound::Shared => 3,
        acceval_sim::Bound::Atomic => 4,
        acceval_sim::Bound::LaunchOverhead => 5,
    });
}

fn dec_cost(d: &mut Dec) -> Option<acceval_sim::KernelCost> {
    Some(acceval_sim::KernelCost {
        cycles: d.f64()?,
        time_secs: d.f64()?,
        compute_cycles: d.f64()?,
        mem_bw_cycles: d.f64()?,
        mem_lat_cycles: d.f64()?,
        shared_cycles: d.f64()?,
        atomic_cycles: d.f64()?,
        occupancy: acceval_sim::Occupancy {
            blocks_per_sm: d.u32()?,
            resident_warps_per_sm: d.u32()?,
            fraction: d.f64()?,
        },
        bound: match d.u8()? {
            0 => acceval_sim::Bound::Compute,
            1 => acceval_sim::Bound::MemBandwidth,
            2 => acceval_sim::Bound::MemLatency,
            3 => acceval_sim::Bound::Shared,
            4 => acceval_sim::Bound::Atomic,
            5 => acceval_sim::Bound::LaunchOverhead,
            _ => return None,
        },
    })
}

fn enc_totals(e: &mut Enc, t: &acceval_sim::KernelTotals) {
    e.u64(t.warps);
    e.f64(t.issue_cycles);
    e.u64(t.global_requests);
    e.u64(t.global_transactions);
    e.u64(t.useful_bytes);
    e.u64(t.shared_slots);
    e.u64(t.atomic_slots);
    e.u64(t.tex_miss_lines);
    e.u64(t.tex_requests);
}

fn dec_totals(d: &mut Dec) -> Option<acceval_sim::KernelTotals> {
    Some(acceval_sim::KernelTotals {
        warps: d.u64()?,
        issue_cycles: d.f64()?,
        global_requests: d.u64()?,
        global_transactions: d.u64()?,
        useful_bytes: d.u64()?,
        shared_slots: d.u64()?,
        atomic_slots: d.u64()?,
        tex_miss_lines: d.u64()?,
        tex_requests: d.u64()?,
    })
}

/// Canonical byte form of a [`LaunchKey`] — the store address input, and
/// what each entry stores for post-checksum equality comparison.
pub fn encode_launch_key(k: &LaunchKey) -> Vec<u8> {
    let mut e = Enc::new();
    e.u128(k.plan_fp);
    e.u32(k.block.0);
    e.u32(k.block.1);
    e.u32(k.shared_bytes);
    e.u32(k.regs);
    e.u8(k.engine);
    e.u8(k.opt as u8);
    e.u8(k.traced as u8);
    e.u64(k.cfg_digest);
    e.u64(k.layout_digest);
    e.u32(k.scalars.len() as u32);
    for (tag, bits) in &k.scalars {
        e.u8(*tag);
        e.u64(*bits);
    }
    e.u32(k.inputs.len() as u32);
    for (id, digest) in &k.inputs {
        e.u32(*id);
        match digest {
            Some(x) => {
                e.u8(1);
                e.u128(*x);
            }
            None => e.u8(0),
        }
    }
    e.buf
}

fn encode_effect(eff: &LaunchEffect) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(eff.outputs.len() as u32);
    for (idx, out, digest) in &eff.outputs {
        e.u32(*idx);
        e.u128(*digest);
        match out {
            ArrayOut::Sparse(w) => {
                e.u8(0);
                e.u32(w.len() as u32);
                for (i, bits) in w {
                    e.u32(*i);
                    e.u64(*bits);
                }
            }
            ArrayOut::Full(buf) => {
                e.u8(1);
                enc_buffer(&mut e, buf);
            }
        }
    }
    e.u32(eff.scalar_writes.len() as u32);
    for (slot, v) in &eff.scalar_writes {
        e.u64(*slot as u64);
        enc_value(&mut e, v);
    }
    enc_cost(&mut e, &eff.result.cost);
    enc_totals(&mut e, &eff.result.totals);
    enc_footprint(&mut e, &eff.result.footprint);
    e.u64(eff.result.active_threads);
    e.u32(eff.events.len() as u32);
    for ev in &eff.events {
        enc_event(&mut e, ev);
    }
    e.buf
}

fn decode_effect(bytes: &[u8]) -> Option<LaunchEffect> {
    let mut d = Dec::new(bytes);
    let n_out = d.u32()? as usize;
    let mut outputs = Vec::with_capacity(n_out.min(1024));
    for _ in 0..n_out {
        let idx = d.u32()?;
        let digest = d.u128()?;
        let out = match d.u8()? {
            0 => {
                let n = d.u32()? as usize;
                if n.checked_mul(12)? > d.bytes.len() {
                    return None;
                }
                let mut w = Vec::with_capacity(n);
                for _ in 0..n {
                    w.push((d.u32()?, d.u64()?));
                }
                ArrayOut::Sparse(w)
            }
            1 => ArrayOut::Full(std::sync::Arc::new(dec_buffer(&mut d)?)),
            _ => return None,
        };
        outputs.push((idx, out, digest));
    }
    let n_sw = d.u32()? as usize;
    let mut scalar_writes = Vec::with_capacity(n_sw.min(1024));
    for _ in 0..n_sw {
        let slot = d.u64()? as usize;
        scalar_writes.push((slot, dec_value(&mut d)?));
    }
    let result = LaunchResult {
        cost: dec_cost(&mut d)?,
        totals: dec_totals(&mut d)?,
        footprint: dec_footprint(&mut d)?,
        active_threads: d.u64()?,
    };
    let n_ev = d.u32()? as usize;
    let mut events = Vec::with_capacity(n_ev.min(4096));
    for _ in 0..n_ev {
        events.push(dec_event(&mut d)?);
    }
    if !d.done() {
        return None;
    }
    Some(LaunchEffect { outputs, scalar_writes, result, events })
}

/// Probe the disk tier for a launch effect. Counts a disk hit/miss; any
/// verification or decode failure is a quarantine + miss.
pub fn probe_effect(key: &LaunchKey) -> Option<LaunchEffect> {
    let root = store_root()?;
    let key_bytes = encode_launch_key(key);
    let t0 = Instant::now();
    let r = (|| {
        let payload = get_blob_at(&root, KIND_LAUNCH, &key_bytes)?;
        match decode_effect(&payload) {
            Some(eff) => Some(eff),
            None => {
                // Checksum passed but the payload does not decode: a codec
                // drift the version/epoch guards missed. Quarantine it like
                // any other unusable entry.
                quarantine(&root, &entry_path(&root, address(KIND_LAUNCH, &key_bytes)));
                None
            }
        }
    })();
    PROBE_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    match r {
        Some(eff) => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            Some(eff)
        }
        None => {
            DISK_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Spill a captured launch effect write-behind. The effect serializes on the
/// spiller thread; the caller pays one clone of the `Arc` and a key encode.
pub fn spill_effect(key: &LaunchKey, effect: &std::sync::Arc<LaunchEffect>) {
    let Some(root) = store_root() else { return };
    let est = effect.resident_bytes();
    enqueue(
        Job {
            root,
            cap: store_cap_bytes(),
            kind: KIND_LAUNCH,
            key: encode_launch_key(key),
            payload: Payload2::Effect { key: key.clone(), effect: effect.clone() },
        },
        est,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use acceval_sim::{Bound, KernelCost, KernelFootprint, KernelTotals, Occupancy};

    fn sample_effect() -> LaunchEffect {
        LaunchEffect {
            outputs: vec![
                (0, ArrayOut::Sparse(vec![(3, 7u64), (9, f64::to_bits(2.5))]), 0xabcdu128),
                (2, ArrayOut::Full(std::sync::Arc::new(Buffer::from_f64(ElemType::F64, vec![1.0, -2.5, 3.25]))), 7),
            ],
            scalar_writes: vec![(4, Value::F(6.5)), (1, Value::I(-3))],
            result: LaunchResult {
                cost: KernelCost {
                    cycles: 100.0,
                    time_secs: 1e-4,
                    compute_cycles: 40.0,
                    mem_bw_cycles: 60.0,
                    mem_lat_cycles: 10.0,
                    shared_cycles: 0.0,
                    atomic_cycles: 0.0,
                    occupancy: Occupancy { blocks_per_sm: 4, resident_warps_per_sm: 32, fraction: 0.667 },
                    bound: Bound::MemBandwidth,
                },
                totals: KernelTotals {
                    warps: 12,
                    issue_cycles: 34.5,
                    global_requests: 6,
                    global_transactions: 9,
                    useful_bytes: 768,
                    shared_slots: 0,
                    atomic_slots: 0,
                    tex_miss_lines: 0,
                    tex_requests: 0,
                },
                footprint: KernelFootprint {
                    threads_per_block: 128,
                    shared_bytes_per_block: 0,
                    regs_per_thread: 20,
                    grid_blocks: 3,
                },
                active_threads: 384,
            },
            events: vec![
                TraceEvent::Host { label: "host".into(), secs: 0.5 },
                TraceEvent::KernelLaunch {
                    name: "k".into(),
                    footprint: KernelFootprint::new(128, 3),
                    cost: KernelCost {
                        cycles: 1.0,
                        time_secs: 2.0,
                        compute_cycles: 3.0,
                        mem_bw_cycles: 4.0,
                        mem_lat_cycles: 5.0,
                        shared_cycles: 6.0,
                        atomic_cycles: 7.0,
                        occupancy: Occupancy { blocks_per_sm: 1, resident_warps_per_sm: 2, fraction: 0.1 },
                        bound: Bound::LaunchOverhead,
                    },
                    totals: KernelTotals::default(),
                    traffic_bytes: 4096,
                },
                TraceEvent::TaskSpan {
                    task: 7,
                    benchmark: "jacobi".into(),
                    model: "cuda".into(),
                    tuning: Some("bx=64".into()),
                    oracle_cached: true,
                    compile_cached: false,
                },
            ],
        }
    }

    fn sample_key() -> LaunchKey {
        LaunchKey {
            plan_fp: 0xdead_beef_cafe,
            block: (128, 1),
            shared_bytes: 0,
            regs: 20,
            engine: 1,
            opt: false,
            traced: true,
            cfg_digest: 11,
            layout_digest: 22,
            scalars: vec![(1, f64::to_bits(3.5)), (2, 42)],
            inputs: vec![(0, Some(0x1234)), (1, None)],
        }
    }

    #[test]
    fn effect_codec_round_trips() {
        let eff = sample_effect();
        let bytes = encode_effect(&eff);
        let back = decode_effect(&bytes).expect("decodes");
        assert_eq!(format!("{eff:?}"), format!("{back:?}"));
        // Every truncation fails cleanly instead of panicking.
        for cut in 0..bytes.len() {
            assert!(decode_effect(&bytes[..cut]).is_none(), "truncation at {cut} must not decode");
        }
    }

    #[test]
    fn key_encoding_is_injective_on_fields() {
        let a = encode_launch_key(&sample_key());
        let mut k = sample_key();
        k.inputs[1].1 = Some(0);
        assert_ne!(a, encode_launch_key(&k));
        let mut k = sample_key();
        k.traced = false;
        assert_ne!(a, encode_launch_key(&k));
        let mut k = sample_key();
        k.opt = true;
        assert_ne!(a, encode_launch_key(&k));
        assert_eq!(a, encode_launch_key(&sample_key()));
    }

    #[test]
    fn frame_verifies_and_rejects_tampering() {
        let key = b"some-key".to_vec();
        let payload = b"payload-bytes".to_vec();
        let data = frame(KIND_ORACLE, &key, &payload);
        assert_eq!(verify(&data, KIND_ORACLE, &key).ok(), Some(&payload[..]));
        // Wrong kind or key: well-formed mismatch, not corruption.
        assert!(matches!(verify(&data, KIND_LAUNCH, &key), Err(Unusable::Mismatch)));
        assert!(matches!(verify(&data, KIND_ORACLE, b"other-key"), Err(Unusable::Mismatch)));
        // Any single-byte flip is caught by the checksum (or the framing).
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x40;
            assert!(verify(&bad, KIND_ORACLE, &key).is_err(), "flip at {i} must not verify");
        }
        // Truncations are corrupt.
        for cut in 0..data.len() {
            assert!(matches!(verify(&data[..cut], KIND_ORACLE, &key), Err(Unusable::Corrupt)));
        }
    }

    #[test]
    fn addresses_separate_kinds_and_keys() {
        assert_ne!(address(KIND_LAUNCH, b"k"), address(KIND_ORACLE, b"k"));
        assert_ne!(address(KIND_LAUNCH, b"k1"), address(KIND_LAUNCH, b"k2"));
        let p = entry_path(Path::new("/tmp/s"), 0xff00u128);
        assert!(p.starts_with("/tmp/s/v1/00"), "sharded by leading hex: {p:?}");
    }

    #[test]
    fn dec_is_total_on_garbage() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert_eq!(d.u8(), Some(1));
        assert_eq!(d.u32(), None);
        assert!(!d.done());
        assert!(Dec::new(&[0xff; 4]).str().is_none());
    }
}
