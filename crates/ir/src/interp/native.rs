//! Native engine tier: the typed/optimized stream of [`super::opt`]
//! translated into composed, monomorphized Rust closures.
//!
//! Where the typed VM ([`super::opt`]'s `TVm`) still walks a `TOp` slice and
//! dispatches on the instruction tag at every step, this tier resolves that
//! dispatch — and every register-file offset, pool lookup, and operator
//! selection — once at compile time, producing a tree of boxed closures that
//! execute the warp directly:
//!
//! * every SoA register row is addressed through a **fixed offset** captured
//!   in the closure (`reg * warp`), so the hot loop performs no multiplies
//!   and no pool indirections;
//! * element ops on a **fully active warp** copy their operand rows into
//!   stack buffers and run tight ascending-lane loops the compiler can
//!   unroll and vectorize; partially masked warps fall back to the exact
//!   bit-scan schedule of the VM;
//! * **fast-path loads/stores** (the sites the affine-row analysis already
//!   proved uniformly priced) specialize on index arity, hoist the extent
//!   checks to a whole-row test, and only drop to the per-lane path when a
//!   lane would trap — preserving partial-write state and the exact panic;
//! * **inner `For` loops** whose bounds are warp-uniform, unwritten by the
//!   body, and overflow-safe run as a counted loop with the trip count
//!   computed once and the per-iteration check/increment charges bulk-added
//!   (the charge total per lane is identical to the VM's);
//! * the **uniform scalar prelude** is unchanged — it already runs once per
//!   launch via [`super::opt::begin_launch_opt`].
//!
//! **Cost transparency.** Like the optimizer, this tier changes no
//! observable number: op charges land on the same lanes in the same totals,
//! site traces record the same addresses in the same order, divergence
//! records and panic messages are identical. The `native_equiv` suites
//! assert figure/trace byte-identity against both lower tiers.
//!
//! **Promotion.** Plans reach this tier when `ACCEVAL_ENGINE=native` forces
//! it, or under `ACCEVAL_ENGINE=auto` by hotness: once a plan's launch count
//! crosses [`native_threshold`] (`ACCEVAL_NATIVE_THRESHOLD`, default 8) or
//! its trace-attributed simulated cost crosses [`HOT_SIM_US`], subsequent
//! launches compile (once, cached in `EngineCache`) and run natively.
//! Bodies without a typed lowering fall back to the bytecode tier cleanly.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::expr::{BinOp, Intrin};
use crate::kernel::Expansion;
use crate::types::{ArrayId, Value};

use super::bytecode::{full_mask, lanes, ExecCtx, WarpScratch};
use super::gpu::PRIV_BASE;
use super::opt::{Bank, OptKernel, TOp};

// ---------------------------------------------------------------------------
// Knobs
// ---------------------------------------------------------------------------

/// Accumulated trace-attributed launch cost (simulated microseconds) past
/// which `ACCEVAL_ENGINE=auto` promotes a plan even before the launch-count
/// threshold: a handful of expensive launches is as hot as many cheap ones.
pub(crate) const HOT_SIM_US: u64 = 200_000;

/// Process-wide threshold override: 0 = unset, else threshold + 1.
static THRESH_OVERRIDE: AtomicU64 = AtomicU64::new(0);
static THRESH_FROM_ENV: OnceLock<u64> = OnceLock::new();

/// The launch count past which `auto` promotes a plan to the native tier.
/// An override installed by [`set_native_threshold_override`] wins, else
/// `ACCEVAL_NATIVE_THRESHOLD`, else 8. Malformed values fail soft to the
/// default — results are bit-identical across tiers by contract, so the
/// worst outcome of a typo is a performance profile; front-end binaries
/// catch it up front via [`crate::env::validate_env`].
pub fn native_threshold() -> u64 {
    let o = THRESH_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o - 1;
    }
    *THRESH_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_NATIVE_THRESHOLD") {
        Ok(s) => crate::env::parse_native_threshold(&s).map(|t| t.min(u64::MAX - 1)).unwrap_or(8),
        Err(_) => 8,
    })
}

/// Force a promotion threshold for this process (tests/benches), overriding
/// the environment. `None` returns control to `ACCEVAL_NATIVE_THRESHOLD`.
pub fn set_native_threshold_override(t: Option<u64>) {
    let v = match t {
        None => 0,
        Some(v) => v.min(u64::MAX - 1) + 1,
    };
    THRESH_OVERRIDE.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

static NATIVE_KERNELS: AtomicU64 = AtomicU64::new(0);
static NATIVE_COMPILE_NANOS: AtomicU64 = AtomicU64::new(0);
static NATIVE_LAUNCHES: AtomicU64 = AtomicU64::new(0);
static NATIVE_PROMOTIONS: AtomicU64 = AtomicU64::new(0);
static NATIVE_INELIGIBLE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_LAUNCHES: Cell<u64> = const { Cell::new(0) };
    static TL_PROMOTIONS: Cell<u64> = const { Cell::new(0) };
    static TL_INELIGIBLE: Cell<u64> = const { Cell::new(0) };
}

/// A launch executed through the native tier (counted on the launching
/// thread, before any chunk workers fan out, so sweeps can attribute it).
pub(crate) fn note_native_launch() {
    NATIVE_LAUNCHES.fetch_add(1, Ordering::Relaxed);
    TL_LAUNCHES.with(|c| c.set(c.get() + 1));
}

/// A plan crossed the hotness threshold under `auto` and was promoted.
pub(crate) fn note_promotion() {
    NATIVE_PROMOTIONS.fetch_add(1, Ordering::Relaxed);
    TL_PROMOTIONS.with(|c| c.set(c.get() + 1));
}

/// A native-tier launch fell back to bytecode (no typed lowering, optimizer
/// off, or an incompatible warp width).
pub(crate) fn note_ineligible() {
    NATIVE_INELIGIBLE.fetch_add(1, Ordering::Relaxed);
    TL_INELIGIBLE.with(|c| c.set(c.get() + 1));
}

fn note_compile(nanos: u64) {
    NATIVE_KERNELS.fetch_add(1, Ordering::Relaxed);
    NATIVE_COMPILE_NANOS.fetch_add(nanos, Ordering::Relaxed);
}

/// This thread's `(native launches, promotions, ineligible fallbacks)`.
pub fn thread_native_counters() -> (u64, u64, u64) {
    (TL_LAUNCHES.with(Cell::get), TL_PROMOTIONS.with(Cell::get), TL_INELIGIBLE.with(Cell::get))
}

/// Process-wide `(kernels compiled, compile nanos, native launches,
/// promotions, ineligible fallbacks)`.
pub fn native_totals() -> (u64, u64, u64, u64, u64) {
    (
        NATIVE_KERNELS.load(Ordering::Relaxed),
        NATIVE_COMPILE_NANOS.load(Ordering::Relaxed),
        NATIVE_LAUNCHES.load(Ordering::Relaxed),
        NATIVE_PROMOTIONS.load(Ordering::Relaxed),
        NATIVE_INELIGIBLE.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// Widest warp the stack operand buffers cover (masks are `u64`, so this is
/// also the executor-wide ceiling).
const MAX_W: usize = 64;

/// Mutable warp state the compiled closures execute against: the same
/// scratch views as the typed VM, minus the instruction stream (which now
/// lives inside the closures).
pub(crate) struct NState<'a, 'b> {
    w: usize,
    f: &'a mut [f64],
    i: &'a mut [i64],
    b: &'a mut [bool],
    lane_ops: &'a mut [u64],
    traces: &'a mut [acceval_sim::SiteWarpTrace],
    touched: &'a mut [bool],
    fast_rows: &'a mut [u64],
    priv_bufs: &'a mut [acceval_sim::Buffer],
    ctx: &'a ExecCtx<'b>,
    tid_base: u64,
    in_critical: bool,
    atomic: u64,
}

impl NState<'_, '_> {
    /// Slow-path flat index: identical checks and panic message to the VMs.
    /// `offs` holds the pre-resolved register-row offsets of the index
    /// registers (pool lookups were done at compile time).
    fn flat_index(&self, a: usize, offs: &[usize], l: usize) -> usize {
        let mut flat = 0usize;
        for (d, &ro) in offs.iter().enumerate() {
            let i = self.i[ro + l];
            let ext = self.ctx.extents[a][d];
            assert!(
                i >= 0 && (i as usize) < ext,
                "index {} out of bounds (dim {} extent {}) on array {}",
                i,
                d,
                ext,
                self.ctx.prog.array_name(ArrayId(a as u32))
            );
            flat += i as usize * self.ctx.strides[a][d];
        }
        flat
    }

    /// Slow-path accounting: verbatim the typed VM's `account`.
    fn account(&mut self, a: usize, flat: usize, site: u32, fast: i32, l: usize) {
        let eb = self.ctx.elem_bytes[a] as u64;
        if let Some(exp) = self.ctx.expansion[a] {
            match exp {
                Expansion::Register => {}
                Expansion::RowWise => {
                    let slot = self.ctx.priv_slot[a] as usize;
                    let len = self.priv_bufs[slot * self.w + l].len() as u64;
                    let tid = self.tid_base + l as u64;
                    self.touched[site as usize] = true;
                    self.traces[site as usize].record(l as u32, PRIV_BASE + (tid * len + flat as u64) * eb);
                }
                Expansion::ColumnWise => {
                    let tid = self.tid_base + l as u64;
                    self.touched[site as usize] = true;
                    self.traces[site as usize]
                        .record(l as u32, PRIV_BASE + (flat as u64 * self.ctx.total_threads + tid) * eb);
                }
            }
            return;
        }
        let addr = self.ctx.base[a] + flat as u64 * eb;
        if fast >= 0 {
            self.fast_rows[fast as usize * self.w + l] = addr;
        } else {
            self.touched[site as usize] = true;
            self.traces[site as usize].record(l as u32, addr);
        }
        if self.in_critical {
            self.atomic += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled kernel
// ---------------------------------------------------------------------------

/// One compiled step of the warp body. Sub-blocks (branch arms, loop bodies)
/// are owned by the closure of their header step.
type Thunk = Box<dyn Fn(&mut NState<'_, '_>, u64) + Send + Sync>;

#[inline]
fn run_seq(seq: &[Thunk], st: &mut NState<'_, '_>, mask: u64) {
    for t in seq {
        t(st, mask);
    }
}

/// A kernel body compiled to composed closures, specialized for one warp
/// width (the register-file offsets are baked in). Cached per plan in
/// `EngineCache`; a launch with a different warp width falls back to
/// bytecode.
///
/// Two sequences are compiled from the same stream:
///
/// * `thunks` — the exact executor: functional effects *plus* all pricing
///   evidence (op charges, site traces, fast-site address rows, atomic
///   counts);
/// * `fast_thunks` — the functional-only variant for warps whose block
///   pricing replays from the representative-block cache. Those warps'
///   evidence is provably never read (the pricing pass is skipped
///   wholesale), so this variant elides producing it: op-charge thunks
///   vanish, loads/stores keep their bounds checks, panics, and data
///   movement but skip address-row and trace writes. Every observable
///   number still comes out bit-identical — the evidence it skips was
///   already priced by the cached block's representative.
pub struct NativeKernel {
    thunks: Vec<Thunk>,
    fast_thunks: Vec<Thunk>,
    /// Per-warp imports that are axis registers: the launch loop's prologue
    /// writes these straight into the typed I bank for functional
    /// (pricing-cached) warps, so only evidence warps convert them from the
    /// `Value` file.
    imp_axis: Vec<(u16, Bank)>,
    /// Per-warp imports re-broadcast by `begin_warp` (mutable warp
    /// scalars): converted on every warp, both variants.
    imp_warp: Vec<(u16, Bank)>,
    /// The warp width the closure offsets were specialized for.
    pub(crate) warp: usize,
    /// Host nanoseconds spent composing the closures.
    pub compile_nanos: u64,
}

impl std::fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeKernel")
            .field("thunks", &self.thunks.len())
            .field("fast_thunks", &self.fast_thunks.len())
            .field("warp", &self.warp)
            .field("compile_nanos", &self.compile_nanos)
            .finish()
    }
}

/// Compile the typed stream of an optimized kernel into a [`NativeKernel`]
/// specialized for `warp` lanes. `None` when the plan has no typed lowering
/// (the caller falls back to bytecode and counts the launch ineligible).
pub(crate) fn compile_native(ok: &OptKernel, warp: usize) -> Option<NativeKernel> {
    let t = ok.typed.as_ref()?;
    if warp == 0 || warp > MAX_W {
        return None;
    }
    let t0 = std::time::Instant::now();
    let thunks = NCompiler { pool: &t.pool, w: warp, ev: true }.seq(&t.code);
    let fast_thunks = NCompiler { pool: &t.pool, w: warp, ev: false }.seq(&t.code);
    // `warp_imports` is exactly the warp-scalar re-broadcasts plus the axis
    // registers (launch-uniform registers already import once per launch).
    // Axis values reach functional warps through the typed bank directly,
    // so their import runs only for evidence warps.
    let warp_scal: Vec<u16> = ok.bc.scal_init_warp.iter().map(|&(_, r)| r).collect();
    let (imp_warp, imp_axis): (Vec<_>, Vec<_>) =
        t.warp_imports.iter().copied().partition(|(r, _)| warp_scal.contains(r));
    let nanos = t0.elapsed().as_nanos() as u64;
    note_compile(nanos);
    Some(NativeKernel { thunks, fast_thunks, imp_axis, imp_warp, warp, compile_nanos: nanos })
}

/// Execute one warp through the compiled closures. The counterpart of
/// `exec_warp_opt`: same bank imports/exports, same hazardous-body
/// serial-lane schedule, same return (the critical-section atomic count).
///
/// `evidence: false` selects the functional-only sequence — legal exactly
/// when the caller will discard this warp's pricing evidence (its block's
/// pricing replays from the representative-block cache).
pub(crate) fn exec_warp_native(
    nk: &NativeKernel,
    ok: &OptKernel,
    s: &mut WarpScratch,
    ctx: &ExecCtx<'_>,
    mask: u64,
    tid_base: u64,
    evidence: bool,
) -> u64 {
    let t = ok.typed.as_ref().expect("native kernels compile from the typed lowering");
    let warp = s.warp;
    debug_assert_eq!(nk.warp, warp, "native kernel compiled for a different warp width");
    let mut import = |list: &[(u16, Bank)]| {
        for &(r, b) in list {
            let ro = r as usize * warp;
            for l in 0..warp {
                let v = s.regs[ro + l];
                match b {
                    Bank::F => s.fregs[ro + l] = v.as_f(),
                    Bank::I => s.iregs[ro + l] = v.as_i(),
                    Bank::B => s.bregs[ro + l] = v.as_b(),
                }
            }
        }
    };
    import(&nk.imp_warp);
    if evidence {
        // Functional warps got their axis rows written into the typed bank
        // by the launch-loop prologue; evidence warps convert them from the
        // `Value` file like the typed VM does.
        import(&nk.imp_axis);
    }
    let mut st = NState {
        w: warp,
        f: &mut s.fregs,
        i: &mut s.iregs,
        b: &mut s.bregs,
        lane_ops: &mut s.lane_ops,
        traces: &mut s.traces,
        touched: &mut s.site_touched,
        fast_rows: &mut s.fast_rows,
        priv_bufs: &mut s.priv_bufs,
        ctx,
        tid_base,
        in_critical: false,
        atomic: 0,
    };
    let seq = if evidence { &nk.thunks } else { &nk.fast_thunks };
    if ok.bc.serial_lanes {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros();
            m &= m - 1;
            run_seq(seq, &mut st, 1u64 << l);
        }
    } else {
        run_seq(seq, &mut st, mask);
    }
    let atomic = st.atomic;
    for &(r, b) in &t.red_exports {
        let ro = r as usize * warp;
        for l in 0..warp {
            s.regs[ro + l] = match b {
                Bank::F => Value::F(s.fregs[ro + l]),
                Bank::I => Value::I(s.iregs[ro + l]),
                Bank::B => Value::B(s.bregs[ro + l]),
            };
        }
    }
    atomic
}

// ---------------------------------------------------------------------------
// Closure compiler
// ---------------------------------------------------------------------------

/// Splat a constant into a register row.
macro_rules! const_op {
    ($w:expr, $dst:expr, $db:ident, $v:expr) => {{
        let w = $w;
        let dof = $dst as usize * w;
        let v = $v;
        Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
            if mask == full_mask(w) {
                st.$db[dof..dof + w].fill(v);
            } else {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    st.$db[dof + l] = v;
                }
            }
        }) as Thunk
    }};
}

/// Same-bank register-row copy.
macro_rules! copy_op {
    ($w:expr, $dst:expr, $src:expr, $db:ident) => {{
        let w = $w;
        let dof = $dst as usize * w;
        let so = $src as usize * w;
        Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
            if mask == full_mask(w) {
                st.$db.copy_within(so..so + w, dof);
            } else {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    st.$db[dof + l] = st.$db[so + l];
                }
            }
        }) as Thunk
    }};
}

/// One mutable row and one shared row of the same bank. Register rows are
/// `w` elements at `w`-aligned offsets, so distinct offsets never overlap
/// and `split_at_mut` can hand both out at once.
#[inline]
fn row2<T>(bank: &mut [T], d: usize, s: usize, w: usize) -> (&mut [T], &[T]) {
    if d < s {
        let (lo, hi) = bank.split_at_mut(s);
        (&mut lo[d..d + w], &hi[..w])
    } else {
        let (lo, hi) = bank.split_at_mut(d);
        (&mut hi[..w], &lo[s..s + w])
    }
}

/// The destination row mutably plus both source rows shared, out of one
/// bank. Register rows are `w` elements at `w`-aligned offsets, so `d != a`
/// and `d != b` make the mutable row disjoint from both shared ones
/// (`a == b` is fine — those two borrows are both shared).
#[allow(unsafe_code)]
#[inline]
fn row3<T>(bank: &mut [T], d: usize, a: usize, b: usize, w: usize) -> (&mut [T], &[T], &[T]) {
    assert!(d != a && d != b && d + w <= bank.len() && a + w <= bank.len() && b + w <= bank.len());
    let p = bank.as_mut_ptr();
    // SAFETY: all three ranges are in bounds (asserted above); the mutable
    // one starts at a different w-aligned row offset than either shared
    // one, so it overlaps neither.
    unsafe {
        (
            std::slice::from_raw_parts_mut(p.add(d), w),
            std::slice::from_raw_parts(p.add(a), w),
            std::slice::from_raw_parts(p.add(b), w),
        )
    }
}

/// Unary element op across banks (`$db != $ab`), monomorphized on `$f`.
/// The banks are disjoint struct fields, so both rows borrow directly — no
/// staging copies. Masked warps use the exact bit-scan schedule.
macro_rules! un_x {
    ($w:expr, $dst:expr, $a:expr, $db:ident, $ab:ident, $f:expr) => {{
        let w = $w;
        let dof = $dst as usize * w;
        let ao = $a as usize * w;
        let f = $f;
        Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
            if mask == full_mask(w) {
                for (d, &a) in st.$db[dof..dof + w].iter_mut().zip(&st.$ab[ao..ao + w]) {
                    *d = f(a);
                }
            } else {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    st.$db[dof + l] = f(st.$ab[ao + l]);
                }
            }
        }) as Thunk
    }};
}

/// Unary element op within one bank: in-place when the destination is the
/// operand, otherwise two disjoint rows via [`row2`] — the row offsets are
/// known at closure-build time, so the alias case is picked once, not per
/// warp.
macro_rules! un_same {
    ($w:expr, $dst:expr, $a:expr, $db:ident, $f:expr) => {{
        let w = $w;
        let dof = $dst as usize * w;
        let ao = $a as usize * w;
        let f = $f;
        if dof == ao {
            Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                if mask == full_mask(w) {
                    for x in st.$db[dof..dof + w].iter_mut() {
                        *x = f(*x);
                    }
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.$db[dof + l] = f(st.$db[dof + l]);
                    }
                }
            }) as Thunk
        } else {
            Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                if mask == full_mask(w) {
                    let (d, s) = row2(st.$db, dof, ao, w);
                    for (x, &a) in d.iter_mut().zip(s) {
                        *x = f(a);
                    }
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.$db[dof + l] = f(st.$db[ao + l]);
                    }
                }
            }) as Thunk
        }
    }};
}

/// Binary element op across banks (`$db != $sb`): disjoint struct fields,
/// direct borrows, no staging. Lane order is ascending in both paths, so a
/// trapping lane (e.g. integer division by zero) panics after exactly the
/// same partial writes as the VM.
macro_rules! bin_x {
    ($w:expr, $dst:expr, $a:expr, $b:expr, $db:ident, $sb:ident, $f:expr) => {{
        let w = $w;
        let dof = $dst as usize * w;
        let ao = $a as usize * w;
        let bo = $b as usize * w;
        let f = $f;
        Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
            if mask == full_mask(w) {
                let sa = &st.$sb[ao..ao + w];
                let sb = &st.$sb[bo..bo + w];
                for ((d, &a), &b) in st.$db[dof..dof + w].iter_mut().zip(sa).zip(sb) {
                    *d = f(a, b);
                }
            } else {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    st.$db[dof + l] = f(st.$sb[ao + l], st.$sb[bo + l]);
                }
            }
        }) as Thunk
    }};
}

/// Binary element op within one bank, dispatched once at closure-build time
/// on how the destination row aliases the operand rows: in-place
/// accumulation forms borrow the destination row once, the disjoint form
/// borrows all three rows via [`row3`]. Every form runs a tight
/// ascending-lane loop over directly borrowed rows — no staging copies.
macro_rules! bin_same {
    ($w:expr, $dst:expr, $a:expr, $b:expr, $db:ident, $f:expr) => {{
        let w = $w;
        let dof = $dst as usize * w;
        let ao = $a as usize * w;
        let bo = $b as usize * w;
        let f = $f;
        let full: Thunk = if dof == ao && dof == bo {
            Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                if mask == full_mask(w) {
                    for x in st.$db[dof..dof + w].iter_mut() {
                        *x = f(*x, *x);
                    }
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.$db[dof + l] = f(st.$db[dof + l], st.$db[dof + l]);
                    }
                }
            })
        } else if dof == ao {
            Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                if mask == full_mask(w) {
                    let (d, s) = row2(st.$db, dof, bo, w);
                    for (x, &b) in d.iter_mut().zip(s) {
                        *x = f(*x, b);
                    }
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.$db[dof + l] = f(st.$db[dof + l], st.$db[bo + l]);
                    }
                }
            })
        } else if dof == bo {
            Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                if mask == full_mask(w) {
                    let (d, s) = row2(st.$db, dof, ao, w);
                    for (x, &a) in d.iter_mut().zip(s) {
                        *x = f(a, *x);
                    }
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.$db[dof + l] = f(st.$db[ao + l], st.$db[dof + l]);
                    }
                }
            })
        } else {
            Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                if mask == full_mask(w) {
                    let (d, sa, sb) = row3(st.$db, dof, ao, bo, w);
                    for ((x, &a), &b) in d.iter_mut().zip(sa).zip(sb) {
                        *x = f(a, b);
                    }
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.$db[dof + l] = f(st.$db[ao + l], st.$db[bo + l]);
                    }
                }
            })
        };
        full
    }};
}

/// Does any instruction of the (flat, sub-blocks inline) slice write one of
/// `regs`? Bank-qualified register numbers are unique, so a plain number
/// comparison is exact.
fn writes_any(code: &[TOp], regs: [u16; 3]) -> bool {
    code.iter().any(|op| {
        let d = match *op {
            TOp::ConstF { dst, .. }
            | TOp::ConstI { dst, .. }
            | TOp::ConstB { dst, .. }
            | TOp::CopyF { dst, .. }
            | TOp::CopyI { dst, .. }
            | TOp::CopyB { dst, .. }
            | TOp::FtoI { dst, .. }
            | TOp::ItoF { dst, .. }
            | TOp::BtoI { dst, .. }
            | TOp::BtoF { dst, .. }
            | TOp::FtoB { dst, .. }
            | TOp::ItoB { dst, .. }
            | TOp::NegF { dst, .. }
            | TOp::NegI { dst, .. }
            | TOp::NotB { dst, .. }
            | TOp::AbsI { dst, .. }
            | TOp::ArithF { dst, .. }
            | TOp::ArithI { dst, .. }
            | TOp::CmpF { dst, .. }
            | TOp::CmpI { dst, .. }
            | TOp::AndB { dst, .. }
            | TOp::OrB { dst, .. }
            | TOp::IntrinF { dst, .. }
            | TOp::Load { dst, .. }
            | TOp::Select { dst, .. } => Some(dst),
            TOp::For { var, .. } => Some(var),
            TOp::Store { .. }
            | TOp::Ops { .. }
            | TOp::If { .. }
            | TOp::While { .. }
            | TOp::CritEnter
            | TOp::CritExit => None,
        };
        d.is_some_and(|d| regs.contains(&d))
    })
}

/// Does any instruction of the slice read register `r`?
fn reads_reg(code: &[TOp], pool: &[u16], r: u16) -> bool {
    let pool_has = |off: u32, len: usize| pool[off as usize..off as usize + len].contains(&r);
    code.iter().any(|op| match *op {
        TOp::ConstF { .. }
        | TOp::ConstI { .. }
        | TOp::ConstB { .. }
        | TOp::Ops { .. }
        | TOp::CritEnter
        | TOp::CritExit => false,
        TOp::CopyF { src, .. } | TOp::CopyI { src, .. } | TOp::CopyB { src, .. } => src == r,
        TOp::FtoI { a, .. }
        | TOp::ItoF { a, .. }
        | TOp::BtoI { a, .. }
        | TOp::BtoF { a, .. }
        | TOp::FtoB { a, .. }
        | TOp::ItoB { a, .. }
        | TOp::NegF { a, .. }
        | TOp::NegI { a, .. }
        | TOp::NotB { a, .. }
        | TOp::AbsI { a, .. } => a == r,
        TOp::ArithF { a, b, .. }
        | TOp::ArithI { a, b, .. }
        | TOp::CmpF { a, b, .. }
        | TOp::CmpI { a, b, .. }
        | TOp::AndB { a, b, .. }
        | TOp::OrB { a, b, .. } => a == r || b == r,
        TOp::IntrinF { args_off, args_len, .. } => pool_has(args_off, args_len as usize),
        TOp::Load { idx_off, idx_len, .. } => pool_has(idx_off, idx_len as usize),
        TOp::Store { src, idx_off, idx_len, .. } => src == r || pool_has(idx_off, idx_len as usize),
        TOp::If { cond, .. } => cond == r,
        TOp::Select { cond, t_reg, f_reg, .. } => cond == r || t_reg == r || f_reg == r,
        TOp::For { var, hi_reg, step_reg, .. } => var == r || hi_reg == r || step_reg == r,
        TOp::While { cond, .. } => cond == r,
    })
}

struct NCompiler<'a> {
    pool: &'a [u16],
    w: usize,
    /// Compile evidence production (op charges, traces, address rows,
    /// atomic counts). `false` builds the functional-only sequence.
    ev: bool,
}

impl NCompiler<'_> {
    fn seq(&self, code: &[TOp]) -> Vec<Thunk> {
        let mut out = Vec::new();
        let mut pc = 0;
        while pc < code.len() {
            let (t, next) = self.emit(code, pc);
            out.extend(t);
            pc = next;
        }
        out
    }

    /// One step: `None` when the op exists only to produce evidence the
    /// functional-only variant elides (op charges, critical-section
    /// bracketing around the atomic counter).
    fn emit(&self, code: &[TOp], pc: usize) -> (Option<Thunk>, usize) {
        if !self.ev {
            if let TOp::Ops { .. } | TOp::CritEnter | TOp::CritExit = code[pc] {
                return (None, pc + 1);
            }
        }
        let (t, next) = self.emit_thunk(code, pc);
        (Some(t), next)
    }

    #[allow(clippy::too_many_lines)]
    fn emit_thunk(&self, code: &[TOp], pc: usize) -> (Thunk, usize) {
        let w = self.w;
        match code[pc] {
            TOp::ConstF { dst, v } => (const_op!(w, dst, f, v), pc + 1),
            TOp::ConstI { dst, v } => (const_op!(w, dst, i, v), pc + 1),
            TOp::ConstB { dst, v } => (const_op!(w, dst, b, v), pc + 1),
            TOp::CopyF { dst, src } => (copy_op!(w, dst, src, f), pc + 1),
            TOp::CopyI { dst, src } => (copy_op!(w, dst, src, i), pc + 1),
            TOp::CopyB { dst, src } => (copy_op!(w, dst, src, b), pc + 1),
            TOp::FtoI { dst, a } => (un_x!(w, dst, a, i, f, |x: f64| x as i64), pc + 1),
            TOp::ItoF { dst, a } => (un_x!(w, dst, a, f, i, |x: i64| x as f64), pc + 1),
            TOp::BtoI { dst, a } => (un_x!(w, dst, a, i, b, |x: bool| x as i64), pc + 1),
            TOp::BtoF { dst, a } => (un_x!(w, dst, a, f, b, |x: bool| x as i64 as f64), pc + 1),
            TOp::FtoB { dst, a } => (un_x!(w, dst, a, b, f, |x: f64| x != 0.0), pc + 1),
            TOp::ItoB { dst, a } => (un_x!(w, dst, a, b, i, |x: i64| x != 0), pc + 1),
            TOp::NegF { dst, a } => (un_same!(w, dst, a, f, |x: f64| -x), pc + 1),
            TOp::NegI { dst, a } => (un_same!(w, dst, a, i, |x: i64| -x), pc + 1),
            TOp::NotB { dst, a } => (un_same!(w, dst, a, b, |x: bool| !x), pc + 1),
            TOp::AbsI { dst, a } => (un_same!(w, dst, a, i, |x: i64| x.abs()), pc + 1),
            TOp::ArithF { dst, op, a, b } => {
                let t = match op {
                    BinOp::Add => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x + y),
                    BinOp::Sub => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x - y),
                    BinOp::Mul => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x * y),
                    BinOp::Div => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x / y),
                    BinOp::Rem => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x % y),
                    BinOp::Min => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x.min(y)),
                    BinOp::Max => bin_same!(w, dst, a, b, f, |x: f64, y: f64| x.max(y)),
                    _ => unreachable!("non-arith op in ArithF"),
                };
                (t, pc + 1)
            }
            TOp::ArithI { dst, op, a, b } => {
                let t = match op {
                    BinOp::Add => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x.wrapping_add(y)),
                    BinOp::Sub => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x.wrapping_sub(y)),
                    BinOp::Mul => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x.wrapping_mul(y)),
                    BinOp::Div => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x / y),
                    BinOp::Rem => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x % y),
                    BinOp::Min => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x.min(y)),
                    BinOp::Max => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x.max(y)),
                    BinOp::Shl => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x << y),
                    BinOp::Shr => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x >> y),
                    BinOp::BitAnd => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x & y),
                    BinOp::BitOr => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x | y),
                    BinOp::BitXor => bin_same!(w, dst, a, b, i, |x: i64, y: i64| x ^ y),
                    _ => unreachable!("non-arith op in ArithI"),
                };
                (t, pc + 1)
            }
            TOp::CmpF { dst, op, a, b } => {
                let t = match op {
                    BinOp::Lt => bin_x!(w, dst, a, b, b, f, |x: f64, y: f64| x < y),
                    BinOp::Le => bin_x!(w, dst, a, b, b, f, |x: f64, y: f64| x <= y),
                    BinOp::Gt => bin_x!(w, dst, a, b, b, f, |x: f64, y: f64| x > y),
                    BinOp::Ge => bin_x!(w, dst, a, b, b, f, |x: f64, y: f64| x >= y),
                    BinOp::Eq => bin_x!(w, dst, a, b, b, f, |x: f64, y: f64| x == y),
                    BinOp::Ne => bin_x!(w, dst, a, b, b, f, |x: f64, y: f64| x != y),
                    _ => unreachable!("non-cmp op in CmpF"),
                };
                (t, pc + 1)
            }
            TOp::CmpI { dst, op, a, b } => {
                let t = match op {
                    BinOp::Lt => bin_x!(w, dst, a, b, b, i, |x: i64, y: i64| x < y),
                    BinOp::Le => bin_x!(w, dst, a, b, b, i, |x: i64, y: i64| x <= y),
                    BinOp::Gt => bin_x!(w, dst, a, b, b, i, |x: i64, y: i64| x > y),
                    BinOp::Ge => bin_x!(w, dst, a, b, b, i, |x: i64, y: i64| x >= y),
                    BinOp::Eq => bin_x!(w, dst, a, b, b, i, |x: i64, y: i64| x == y),
                    BinOp::Ne => bin_x!(w, dst, a, b, b, i, |x: i64, y: i64| x != y),
                    _ => unreachable!("non-cmp op in CmpI"),
                };
                (t, pc + 1)
            }
            TOp::AndB { dst, a, b } => (bin_same!(w, dst, a, b, b, |x: bool, y: bool| x & y), pc + 1),
            TOp::OrB { dst, a, b } => (bin_same!(w, dst, a, b, b, |x: bool, y: bool| x | y), pc + 1),
            TOp::Ops { n } => {
                let t: Thunk = Box::new(move |st, mask| {
                    if mask == full_mask(w) {
                        for x in st.lane_ops.iter_mut() {
                            *x += n;
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            st.lane_ops[l] += n;
                        }
                    }
                });
                (t, pc + 1)
            }
            TOp::IntrinF { dst, f, args_off, args_len } => {
                let a0 = self.pool[args_off as usize];
                let t: Thunk = match f {
                    Intrin::Pow => {
                        debug_assert!(args_len >= 2);
                        let dof = dst as usize * w;
                        let ao = a0 as usize * w;
                        let bo = self.pool[args_off as usize + 1] as usize * w;
                        Box::new(move |st, mask| {
                            lanes!(w, mask, l, {
                                st.f[dof + l] = st.f[ao + l].powf(st.f[bo + l]);
                            });
                        })
                    }
                    _ => {
                        let g: fn(f64) -> f64 = match f {
                            Intrin::Sqrt => f64::sqrt,
                            Intrin::Exp => f64::exp,
                            Intrin::Log => f64::ln,
                            Intrin::Sin => f64::sin,
                            Intrin::Cos => f64::cos,
                            Intrin::Floor => f64::floor,
                            Intrin::Abs => f64::abs,
                            Intrin::Pow => unreachable!(),
                        };
                        un_same!(w, dst, a0, f, move |x: f64| g(x))
                    }
                };
                (t, pc + 1)
            }
            TOp::Load { dst, dst_f, arr, site, idx_off, idx_len, fast } => {
                (self.emit_load(dst, dst_f, arr, site, idx_off, idx_len, fast), pc + 1)
            }
            TOp::Store { src, src_f, arr, site, idx_off, idx_len, fast } => {
                (self.emit_store(src, src_f, arr, site, idx_off, idx_len, fast), pc + 1)
            }
            TOp::If { cond, site, then_len, else_len } => {
                let t_start = pc + 1;
                let e_start = t_start + then_len as usize;
                let end_if = e_start + else_len as usize;
                let then_seq = self.seq(&code[t_start..e_start]);
                let else_seq = self.seq(&code[e_start..end_if]);
                let co = cond as usize * w;
                let site = site as usize;
                let ev = self.ev;
                let t: Thunk = Box::new(move |st, mask| {
                    let mut m_t = 0u64;
                    if ev {
                        st.touched[site] = true;
                        lanes!(w, mask, l, {
                            let c = st.b[co + l];
                            st.traces[site].record(l as u32, c as u64);
                            if c {
                                m_t |= 1 << l;
                            }
                        });
                    } else {
                        lanes!(w, mask, l, {
                            if st.b[co + l] {
                                m_t |= 1 << l;
                            }
                        });
                    }
                    let m_f = mask & !m_t;
                    if m_t != 0 {
                        run_seq(&then_seq, st, m_t);
                    }
                    if m_f != 0 {
                        run_seq(&else_seq, st, m_f);
                    }
                });
                (t, end_if)
            }
            TOp::Select { cond, dst, t_reg, f_reg, bank, t_len, f_len } => {
                let t_start = pc + 1;
                let f_start = t_start + t_len as usize;
                let end_sel = f_start + f_len as usize;
                let t_seq = self.seq(&code[t_start..f_start]);
                let f_seq = self.seq(&code[f_start..end_sel]);
                let co = cond as usize * w;
                let dof = dst as usize * w;
                let to = t_reg as usize * w;
                let fo2 = f_reg as usize * w;
                macro_rules! sel {
                    ($bank:ident) => {
                        Box::new(move |st: &mut NState<'_, '_>, mask: u64| {
                            let mut m_t = 0u64;
                            lanes!(w, mask, l, {
                                if st.b[co + l] {
                                    m_t |= 1 << l;
                                }
                            });
                            let m_f = mask & !m_t;
                            if m_t != 0 {
                                run_seq(&t_seq, st, m_t);
                            }
                            if m_f != 0 {
                                run_seq(&f_seq, st, m_f);
                            }
                            lanes!(w, mask, l, {
                                st.$bank[dof + l] =
                                    if m_t >> l & 1 == 1 { st.$bank[to + l] } else { st.$bank[fo2 + l] };
                            });
                        }) as Thunk
                    };
                }
                let t: Thunk = match bank {
                    Bank::F => sel!(f),
                    Bank::I => sel!(i),
                    Bank::B => sel!(b),
                };
                (t, end_sel)
            }
            TOp::For { var, hi_reg, step_reg, hi_len, step_len, body_len } => {
                let hi_start = pc + 1;
                let step_start = hi_start + hi_len as usize;
                let body_start = step_start + step_len as usize;
                let end_for = body_start + body_len as usize;
                let hi_seq = self.seq(&code[hi_start..step_start]);
                let step_seq = self.seq(&code[step_start..body_start]);
                let body_seq = self.seq(&code[body_start..end_for]);
                let vo = var as usize * w;
                let ho = hi_reg as usize * w;
                let so = step_reg as usize * w;
                // Counted-loop specialization: legal when the bounds cannot
                // change under the loop (no hi/step sub-blocks, body never
                // writes var/hi/step). Runtime still requires warp-uniform,
                // positive, overflow-safe bounds before taking the bulk
                // path; anything else runs the exact generic schedule.
                let bulk_ok =
                    hi_len == 0 && step_len == 0 && !writes_any(&code[body_start..end_for], [var, hi_reg, step_reg]);
                let body_reads_var = reads_reg(&code[body_start..end_for], self.pool, var);
                let ev = self.ev;
                let t: Thunk = Box::new(move |st, mask| {
                    if bulk_ok && mask != 0 {
                        let l0 = mask.trailing_zeros() as usize;
                        let (v0, h0, s0) = (st.i[vo + l0], st.i[ho + l0], st.i[so + l0]);
                        let mut uni = true;
                        lanes!(w, mask, l, {
                            uni &= st.i[vo + l] == v0 && st.i[ho + l] == h0 && st.i[so + l] == s0;
                        });
                        // Magnitude bound keeps every intermediate (trip
                        // count, final var) inside i64 with room to spare,
                        // so debug-overflow behaviour cannot diverge.
                        const LIM: i64 = 1 << 31;
                        if uni && s0 > 0 && v0.abs() < LIM && h0.abs() < LIM && s0 < LIM {
                            let trips = if v0 >= h0 { 0 } else { (h0 - v0 + s0 - 1) / s0 };
                            // The VM charges one op per loop test (trips + 1
                            // of them) and one per increment (trips): the
                            // same per-lane total, added in one step.
                            if ev {
                                let charges = 2 * trips as u64 + 1;
                                lanes!(w, mask, l, {
                                    st.lane_ops[l] += charges;
                                });
                            }
                            if body_reads_var {
                                for _ in 0..trips {
                                    run_seq(&body_seq, st, mask);
                                    lanes!(w, mask, l, {
                                        st.i[vo + l] += s0;
                                    });
                                }
                            } else {
                                for _ in 0..trips {
                                    run_seq(&body_seq, st, mask);
                                }
                                let fin = v0 + trips * s0;
                                lanes!(w, mask, l, {
                                    st.i[vo + l] = fin;
                                });
                            }
                            return;
                        }
                    }
                    let mut lm = mask;
                    loop {
                        if !hi_seq.is_empty() {
                            run_seq(&hi_seq, st, lm);
                        }
                        let mut next = 0u64;
                        lanes!(w, lm, l, {
                            if ev {
                                st.lane_ops[l] += 1;
                            }
                            if st.i[vo + l] < st.i[ho + l] {
                                next |= 1 << l;
                            }
                        });
                        lm = next;
                        if lm == 0 {
                            break;
                        }
                        run_seq(&body_seq, st, lm);
                        if !step_seq.is_empty() {
                            run_seq(&step_seq, st, lm);
                        }
                        lanes!(w, lm, l, {
                            let cur = st.i[vo + l];
                            let stp = st.i[so + l];
                            st.i[vo + l] = cur + stp;
                            if ev {
                                st.lane_ops[l] += 1;
                            }
                        });
                    }
                });
                (t, end_for)
            }
            TOp::While { cond, cond_len, body_len } => {
                let c_start = pc + 1;
                let b_start = c_start + cond_len as usize;
                let end_wh = b_start + body_len as usize;
                let cond_seq = self.seq(&code[c_start..b_start]);
                let body_seq = self.seq(&code[b_start..end_wh]);
                let co = cond as usize * w;
                let ev = self.ev;
                let t: Thunk = Box::new(move |st, mask| {
                    let mut lm = mask;
                    loop {
                        if !cond_seq.is_empty() {
                            run_seq(&cond_seq, st, lm);
                        }
                        let mut take = 0u64;
                        lanes!(w, lm, l, {
                            if st.b[co + l] {
                                take |= 1 << l;
                            }
                        });
                        if take == 0 {
                            break;
                        }
                        if ev {
                            lanes!(w, take, l, {
                                st.lane_ops[l] += 1;
                            });
                        }
                        run_seq(&body_seq, st, take);
                        lm = take;
                    }
                });
                (t, end_wh)
            }
            TOp::CritEnter => {
                let t: Thunk = Box::new(|st, _| st.in_critical = true);
                (t, pc + 1)
            }
            TOp::CritExit => {
                let t: Thunk = Box::new(|st, _| st.in_critical = false);
                (t, pc + 1)
            }
        }
    }

    /// Fast-path (`fast >= 0`) loads specialize on index arity and check the
    /// whole row's extents up front: the all-in-range full-mask case runs
    /// ascending-lane copy loops; any out-of-range lane re-runs the exact
    /// per-lane schedule so partial writes and the panic match the VM.
    #[allow(clippy::too_many_arguments)]
    fn emit_load(&self, dst: u16, dst_f: bool, arr: u16, site: u32, idx_off: u32, idx_len: u8, fast: i32) -> Thunk {
        let w = self.w;
        let ev = self.ev;
        let a = arr as usize;
        let dof = dst as usize * w;
        if fast < 0 {
            let offs: Vec<usize> =
                (0..idx_len as usize).map(|k| self.pool[idx_off as usize + k] as usize * w).collect();
            return Box::new(move |st, mask| {
                lanes!(w, mask, l, {
                    let flat = st.flat_index(a, &offs, l);
                    if ev {
                        st.account(a, flat, site, fast, l);
                    }
                    if st.ctx.priv_slot[a] >= 0 {
                        let b = &st.priv_bufs[st.ctx.priv_slot[a] as usize * w + l];
                        debug_assert_eq!(b.elem.is_float(), dst_f);
                        if dst_f {
                            st.f[dof + l] = b.get_f(flat);
                        } else {
                            st.i[dof + l] = b.get_i(flat);
                        }
                    } else {
                        let b = st.ctx.bufs[a];
                        if !b.is_alloc() {
                            panic!("kernel read of unallocated device array {a}");
                        }
                        debug_assert_eq!(b.elem_is_float(), dst_f);
                        if dst_f {
                            st.f[dof + l] = b.get_f(flat);
                        } else {
                            st.i[dof + l] = b.get_i(flat);
                        }
                    }
                });
            });
        }
        let fo = fast as usize * w;
        let po = idx_off as usize;
        match idx_len {
            1 => {
                let ro0 = self.pool[po] as usize * w;
                Box::new(move |st, mask| {
                    let eb = st.ctx.elem_bytes[a] as u64;
                    let base = st.ctx.base[a];
                    let (e0, s0) = (st.ctx.extents[a][0], st.ctx.strides[a][0]);
                    let buf = st.ctx.bufs[a];
                    if !buf.is_alloc() {
                        panic!("kernel read of unallocated device array {a}");
                    }
                    debug_assert_eq!(buf.elem_is_float(), dst_f);
                    if mask == full_mask(w) {
                        // `(i as u64) < e0` is the signed range test in one
                        // compare: a negative index wraps past any extent.
                        let iv = &st.i[ro0..ro0 + w];
                        let mut ok = true;
                        let mut flats = [0usize; MAX_W];
                        for l in 0..w {
                            let i = iv[l];
                            ok &= (i as u64) < e0 as u64;
                            flats[l] = (i as usize).wrapping_mul(s0);
                        }
                        if ok {
                            if ev {
                                for (r, &fl) in st.fast_rows[fo..fo + w].iter_mut().zip(&flats[..w]) {
                                    *r = base + fl as u64 * eb;
                                }
                            }
                            if dst_f {
                                if !buf.gather_f(&flats[..w], &mut st.f[dof..dof + w]) {
                                    for (d, &fl) in st.f[dof..dof + w].iter_mut().zip(&flats[..w]) {
                                        *d = buf.get_f(fl);
                                    }
                                }
                            } else if !buf.gather_i(&flats[..w], &mut st.i[dof..dof + w]) {
                                for (d, &fl) in st.i[dof..dof + w].iter_mut().zip(&flats[..w]) {
                                    *d = buf.get_i(fl);
                                }
                            }
                            if ev && st.in_critical {
                                st.atomic += mask.count_ones() as u64;
                            }
                            return;
                        }
                    }
                    lanes!(w, mask, l, {
                        let i = st.i[ro0 + l];
                        if i < 0 || i as usize >= e0 {
                            panic!(
                                "index {} out of bounds (dim 0 extent {}) on array {}",
                                i,
                                e0,
                                st.ctx.prog.array_name(ArrayId(a as u32))
                            );
                        }
                        let flat = i as usize * s0;
                        if ev {
                            st.fast_rows[fo + l] = base + flat as u64 * eb;
                        }
                        if dst_f {
                            st.f[dof + l] = buf.get_f(flat);
                        } else {
                            st.i[dof + l] = buf.get_i(flat);
                        }
                    });
                    if ev && st.in_critical {
                        st.atomic += mask.count_ones() as u64;
                    }
                })
            }
            2 => {
                let ro0 = self.pool[po] as usize * w;
                let ro1 = self.pool[po + 1] as usize * w;
                Box::new(move |st, mask| {
                    let eb = st.ctx.elem_bytes[a] as u64;
                    let base = st.ctx.base[a];
                    let (e0, s0) = (st.ctx.extents[a][0], st.ctx.strides[a][0]);
                    let (e1, s1) = (st.ctx.extents[a][1], st.ctx.strides[a][1]);
                    let buf = st.ctx.bufs[a];
                    if !buf.is_alloc() {
                        panic!("kernel read of unallocated device array {a}");
                    }
                    debug_assert_eq!(buf.elem_is_float(), dst_f);
                    if mask == full_mask(w) {
                        let iv = &st.i[ro0..ro0 + w];
                        let jv = &st.i[ro1..ro1 + w];
                        let mut ok = true;
                        let mut flats = [0usize; MAX_W];
                        for l in 0..w {
                            let (i, j) = (iv[l], jv[l]);
                            ok &= (i as u64) < e0 as u64 && (j as u64) < e1 as u64;
                            flats[l] = (i as usize).wrapping_mul(s0).wrapping_add((j as usize).wrapping_mul(s1));
                        }
                        if ok {
                            if ev {
                                for (r, &fl) in st.fast_rows[fo..fo + w].iter_mut().zip(&flats[..w]) {
                                    *r = base + fl as u64 * eb;
                                }
                            }
                            if dst_f {
                                if !buf.gather_f(&flats[..w], &mut st.f[dof..dof + w]) {
                                    for (d, &fl) in st.f[dof..dof + w].iter_mut().zip(&flats[..w]) {
                                        *d = buf.get_f(fl);
                                    }
                                }
                            } else if !buf.gather_i(&flats[..w], &mut st.i[dof..dof + w]) {
                                for (d, &fl) in st.i[dof..dof + w].iter_mut().zip(&flats[..w]) {
                                    *d = buf.get_i(fl);
                                }
                            }
                            if ev && st.in_critical {
                                st.atomic += mask.count_ones() as u64;
                            }
                            return;
                        }
                    }
                    lanes!(w, mask, l, {
                        let i = st.i[ro0 + l];
                        let j = st.i[ro1 + l];
                        let oob = |i: i64, d: usize, e: usize| -> usize {
                            panic!(
                                "index {} out of bounds (dim {} extent {}) on array {}",
                                i,
                                d,
                                e,
                                st.ctx.prog.array_name(ArrayId(a as u32))
                            )
                        };
                        let flat = if i < 0 || i as usize >= e0 {
                            oob(i, 0, e0)
                        } else if j < 0 || j as usize >= e1 {
                            oob(j, 1, e1)
                        } else {
                            i as usize * s0 + j as usize * s1
                        };
                        if ev {
                            st.fast_rows[fo + l] = base + flat as u64 * eb;
                        }
                        if dst_f {
                            st.f[dof + l] = buf.get_f(flat);
                        } else {
                            st.i[dof + l] = buf.get_i(flat);
                        }
                    });
                    if ev && st.in_critical {
                        st.atomic += mask.count_ones() as u64;
                    }
                })
            }
            _ => {
                let offs: Vec<usize> = (0..idx_len as usize).map(|k| self.pool[po + k] as usize * w).collect();
                Box::new(move |st, mask| {
                    let eb = st.ctx.elem_bytes[a] as u64;
                    let base = st.ctx.base[a];
                    let buf = st.ctx.bufs[a];
                    if !buf.is_alloc() {
                        panic!("kernel read of unallocated device array {a}");
                    }
                    debug_assert_eq!(buf.elem_is_float(), dst_f);
                    lanes!(w, mask, l, {
                        let mut flat = 0usize;
                        for (d, &ro) in offs.iter().enumerate() {
                            let i = st.i[ro + l];
                            let ext = st.ctx.extents[a][d];
                            if i < 0 || i as usize >= ext {
                                panic!(
                                    "index {} out of bounds (dim {} extent {}) on array {}",
                                    i,
                                    d,
                                    ext,
                                    st.ctx.prog.array_name(ArrayId(a as u32))
                                );
                            }
                            flat += i as usize * st.ctx.strides[a][d];
                        }
                        if ev {
                            st.fast_rows[fo + l] = base + flat as u64 * eb;
                        }
                        if dst_f {
                            st.f[dof + l] = buf.get_f(flat);
                        } else {
                            st.i[dof + l] = buf.get_i(flat);
                        }
                    });
                    if ev && st.in_critical {
                        st.atomic += mask.count_ones() as u64;
                    }
                })
            }
        }
    }

    /// Fast-path stores mirror [`Self::emit_load`]; lane order is ascending
    /// in both paths, so intra-warp write collisions resolve to the same
    /// last writer as the VM.
    #[allow(clippy::too_many_arguments)]
    fn emit_store(&self, src: u16, src_f: bool, arr: u16, site: u32, idx_off: u32, idx_len: u8, fast: i32) -> Thunk {
        let w = self.w;
        let ev = self.ev;
        let a = arr as usize;
        let so = src as usize * w;
        if fast < 0 {
            let offs: Vec<usize> =
                (0..idx_len as usize).map(|k| self.pool[idx_off as usize + k] as usize * w).collect();
            return Box::new(move |st, mask| {
                lanes!(w, mask, l, {
                    let flat = st.flat_index(a, &offs, l);
                    if ev {
                        st.account(a, flat, site, fast, l);
                    }
                    if st.ctx.priv_slot[a] >= 0 {
                        let slot = st.ctx.priv_slot[a] as usize;
                        let v_f = st.f[so + l];
                        let v_i = st.i[so + l];
                        let b = &mut st.priv_bufs[slot * w + l];
                        debug_assert_eq!(b.elem.is_float(), src_f);
                        if src_f {
                            b.set_f(flat, v_f);
                        } else {
                            b.set_i(flat, v_i);
                        }
                    } else {
                        let b = st.ctx.bufs[a];
                        if !b.is_alloc() {
                            panic!("kernel write of unallocated device array {a}");
                        }
                        debug_assert_eq!(b.elem_is_float(), src_f);
                        if src_f {
                            b.set_f(flat, st.f[so + l]);
                        } else {
                            b.set_i(flat, st.i[so + l]);
                        }
                    }
                });
            });
        }
        let fo = fast as usize * w;
        let po = idx_off as usize;
        match idx_len {
            1 => {
                let ro0 = self.pool[po] as usize * w;
                Box::new(move |st, mask| {
                    let eb = st.ctx.elem_bytes[a] as u64;
                    let base = st.ctx.base[a];
                    let (e0, s0) = (st.ctx.extents[a][0], st.ctx.strides[a][0]);
                    let buf = st.ctx.bufs[a];
                    if !buf.is_alloc() {
                        panic!("kernel write of unallocated device array {a}");
                    }
                    debug_assert_eq!(buf.elem_is_float(), src_f);
                    if mask == full_mask(w) {
                        let iv = &st.i[ro0..ro0 + w];
                        let mut ok = true;
                        let mut flats = [0usize; MAX_W];
                        for l in 0..w {
                            let i = iv[l];
                            ok &= (i as u64) < e0 as u64;
                            flats[l] = (i as usize).wrapping_mul(s0);
                        }
                        if ok {
                            if ev {
                                for (r, &fl) in st.fast_rows[fo..fo + w].iter_mut().zip(&flats[..w]) {
                                    *r = base + fl as u64 * eb;
                                }
                            }
                            if src_f {
                                if !buf.scatter_f(&flats[..w], &st.f[so..so + w]) {
                                    for (&v, &fl) in st.f[so..so + w].iter().zip(&flats[..w]) {
                                        buf.set_f(fl, v);
                                    }
                                }
                            } else if !buf.scatter_i(&flats[..w], &st.i[so..so + w]) {
                                for (&v, &fl) in st.i[so..so + w].iter().zip(&flats[..w]) {
                                    buf.set_i(fl, v);
                                }
                            }
                            if ev && st.in_critical {
                                st.atomic += mask.count_ones() as u64;
                            }
                            return;
                        }
                    }
                    lanes!(w, mask, l, {
                        let i = st.i[ro0 + l];
                        if i < 0 || i as usize >= e0 {
                            panic!(
                                "index {} out of bounds (dim 0 extent {}) on array {}",
                                i,
                                e0,
                                st.ctx.prog.array_name(ArrayId(a as u32))
                            );
                        }
                        let flat = i as usize * s0;
                        if ev {
                            st.fast_rows[fo + l] = base + flat as u64 * eb;
                        }
                        if src_f {
                            buf.set_f(flat, st.f[so + l]);
                        } else {
                            buf.set_i(flat, st.i[so + l]);
                        }
                    });
                    if ev && st.in_critical {
                        st.atomic += mask.count_ones() as u64;
                    }
                })
            }
            2 => {
                let ro0 = self.pool[po] as usize * w;
                let ro1 = self.pool[po + 1] as usize * w;
                Box::new(move |st, mask| {
                    let eb = st.ctx.elem_bytes[a] as u64;
                    let base = st.ctx.base[a];
                    let (e0, s0) = (st.ctx.extents[a][0], st.ctx.strides[a][0]);
                    let (e1, s1) = (st.ctx.extents[a][1], st.ctx.strides[a][1]);
                    let buf = st.ctx.bufs[a];
                    if !buf.is_alloc() {
                        panic!("kernel write of unallocated device array {a}");
                    }
                    debug_assert_eq!(buf.elem_is_float(), src_f);
                    if mask == full_mask(w) {
                        let iv = &st.i[ro0..ro0 + w];
                        let jv = &st.i[ro1..ro1 + w];
                        let mut ok = true;
                        let mut flats = [0usize; MAX_W];
                        for l in 0..w {
                            let (i, j) = (iv[l], jv[l]);
                            ok &= (i as u64) < e0 as u64 && (j as u64) < e1 as u64;
                            flats[l] = (i as usize).wrapping_mul(s0).wrapping_add((j as usize).wrapping_mul(s1));
                        }
                        if ok {
                            if ev {
                                for (r, &fl) in st.fast_rows[fo..fo + w].iter_mut().zip(&flats[..w]) {
                                    *r = base + fl as u64 * eb;
                                }
                            }
                            if src_f {
                                if !buf.scatter_f(&flats[..w], &st.f[so..so + w]) {
                                    for (&v, &fl) in st.f[so..so + w].iter().zip(&flats[..w]) {
                                        buf.set_f(fl, v);
                                    }
                                }
                            } else if !buf.scatter_i(&flats[..w], &st.i[so..so + w]) {
                                for (&v, &fl) in st.i[so..so + w].iter().zip(&flats[..w]) {
                                    buf.set_i(fl, v);
                                }
                            }
                            if ev && st.in_critical {
                                st.atomic += mask.count_ones() as u64;
                            }
                            return;
                        }
                    }
                    lanes!(w, mask, l, {
                        let i = st.i[ro0 + l];
                        let j = st.i[ro1 + l];
                        let oob = |i: i64, d: usize, e: usize| -> usize {
                            panic!(
                                "index {} out of bounds (dim {} extent {}) on array {}",
                                i,
                                d,
                                e,
                                st.ctx.prog.array_name(ArrayId(a as u32))
                            )
                        };
                        let flat = if i < 0 || i as usize >= e0 {
                            oob(i, 0, e0)
                        } else if j < 0 || j as usize >= e1 {
                            oob(j, 1, e1)
                        } else {
                            i as usize * s0 + j as usize * s1
                        };
                        if ev {
                            st.fast_rows[fo + l] = base + flat as u64 * eb;
                        }
                        if src_f {
                            buf.set_f(flat, st.f[so + l]);
                        } else {
                            buf.set_i(flat, st.i[so + l]);
                        }
                    });
                    if ev && st.in_critical {
                        st.atomic += mask.count_ones() as u64;
                    }
                })
            }
            _ => {
                let offs: Vec<usize> = (0..idx_len as usize).map(|k| self.pool[po + k] as usize * w).collect();
                Box::new(move |st, mask| {
                    let eb = st.ctx.elem_bytes[a] as u64;
                    let base = st.ctx.base[a];
                    let buf = st.ctx.bufs[a];
                    if !buf.is_alloc() {
                        panic!("kernel write of unallocated device array {a}");
                    }
                    debug_assert_eq!(buf.elem_is_float(), src_f);
                    lanes!(w, mask, l, {
                        let mut flat = 0usize;
                        for (d, &ro) in offs.iter().enumerate() {
                            let i = st.i[ro + l];
                            let ext = st.ctx.extents[a][d];
                            if i < 0 || i as usize >= ext {
                                panic!(
                                    "index {} out of bounds (dim {} extent {}) on array {}",
                                    i,
                                    d,
                                    ext,
                                    st.ctx.prog.array_name(ArrayId(a as u32))
                                );
                            }
                            flat += i as usize * st.ctx.strides[a][d];
                        }
                        if ev {
                            st.fast_rows[fo + l] = base + flat as u64 * eb;
                        }
                        if src_f {
                            buf.set_f(flat, st.f[so + l]);
                        } else {
                            buf.set_i(flat, st.i[so + l]);
                        }
                    });
                    if ev && st.in_critical {
                        st.atomic += mask.count_ones() as u64;
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_override_wins_and_resets() {
        set_native_threshold_override(Some(3));
        assert_eq!(native_threshold(), 3);
        set_native_threshold_override(Some(0));
        assert_eq!(native_threshold(), 0);
        set_native_threshold_override(None);
        // Back to env/default (8 unless the env var is set in this process).
        let t = native_threshold();
        assert!(t == 8 || std::env::var("ACCEVAL_NATIVE_THRESHOLD").is_ok(), "unexpected default {t}");
        set_native_threshold_override(None);
    }

    #[test]
    fn write_and_read_scans_cover_headers_and_pool() {
        let pool = vec![7u16, 9u16];
        let body = vec![
            TOp::ConstI { dst: 4, v: 1 },
            TOp::Load { dst: 5, dst_f: false, arr: 0, site: 0, idx_off: 0, idx_len: 2, fast: -1 },
            TOp::If { cond: 6, site: 1, then_len: 1, else_len: 0 },
            TOp::ArithI { dst: 8, op: BinOp::Add, a: 4, b: 5 },
        ];
        assert!(writes_any(&body, [4, 100, 101]));
        assert!(writes_any(&body, [8, 100, 101]), "nested block writes must be seen (flat scan)");
        assert!(!writes_any(&body, [7, 9, 6]), "reads are not writes");
        assert!(reads_reg(&body, &pool, 9), "pool-indirect index registers are reads");
        assert!(reads_reg(&body, &pool, 6), "branch conditions are reads");
        assert!(!reads_reg(&body, &pool, 8));
    }
}
