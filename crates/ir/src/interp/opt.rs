//! Bytecode optimizer: a pipeline between [`super::bytecode::compile`] and
//! warp execution that rewrites the compiled instruction stream for host
//! speed without changing any observable number.
//!
//! Passes, in order:
//!
//! 1. **Uniformity-driven hoisting.** Top-level instructions whose operands
//!    are launch-uniform (pooled constants, launch-broadcast scalars, and
//!    previously hoisted values) move into a *scalar prelude* executed once
//!    per launch on a single representative lane and splatted across the
//!    warp, instead of re-running on all 32 lanes of every warp.
//! 2. **CSE + constant folding.** A value-numbering pass folds constant
//!    subexpressions and replaces redundant recomputations with register
//!    copies. Folding is gated so it can never introduce a panic the
//!    original stream would not have raised (integer division, shifts,
//!    `i64::MIN` negation), and no algebraic identities are applied (so
//!    `-0.0` and NaN payloads survive bit-exactly).
//! 3. **Affine strength reduction.** Loop-body chains that are affine in
//!    the loop variable (`dst = c1*var + base`, recognised through the
//!    [`crate::analysis::affine::Aff`] combinator) are rewritten into an
//!    incremental add carried around the loop.
//! 4. **Dead-register elimination.** Pure instructions whose destinations
//!    are never observed (transitively from the reduction accumulators and
//!    every memory/trace side effect) are deleted, back-to-front, to a
//!    fixpoint.
//! 5. **Typed-bank specialization.** When every register's `Value` tag can
//!    be proven stable by a flow-sensitive bank inference, the stream is
//!    lowered to a typed instruction set ([`TOp`]) over split `f64`/`i64`/
//!    `bool` register banks, eliminating enum tag dispatch from the hot
//!    loop. Any ambiguity aborts the lowering and the optimized untyped
//!    stream runs instead.
//!
//! **Cost transparency.** All simulated charges live in `Op::Ops`
//! instructions, site traces, and divergence records, and the optimizer
//! treats every one of them as an immovable side effect: `Ops` charges are
//! never moved, scaled or deleted; loads/stores are never reordered,
//! deduplicated or hoisted; branch/loop structure is preserved exactly. A
//! hoisted or deleted pure instruction still *charges* what it always
//! charged (its cost was folded into an `Ops` at compile time) — only the
//! host-side work disappears. Every figure, trace and manifest is therefore
//! byte-identical with the optimizer on or off, which the `opt_equiv`
//! suites assert against both the unoptimized bytecode and tree engines.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::analysis::affine::{Aff, AffBase};
use crate::env::Toggle;
use crate::expr::{BinOp, Intrin, UnOp};
use crate::interp::{eval_bin, eval_intrin};
use crate::kernel::Expansion;
use crate::program::Program;
use crate::types::{ArrayId, Value};

use super::bytecode::{exec_warp, full_mask, lanes, ExecCtx, KernelBytecode, Op, WarpScratch};
use super::gpu::PRIV_BASE;

// ---------------------------------------------------------------------------
// Knob
// ---------------------------------------------------------------------------

/// Process-wide override: 0 = unset (use env), 1 = auto, 2 = on, 3 = off.
static OPT_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static OPT_FROM_ENV: OnceLock<Toggle> = OnceLock::new();

/// The optimizer mode: an override installed by [`set_opt_override`] wins,
/// else the `ACCEVAL_OPT` environment variable (`auto` | `on` | `off`),
/// else [`Toggle::Auto`]. Malformed values fail soft to `Auto` — results
/// are bit-identical either way by contract, so the worst outcome of a typo
/// is a performance profile; front-end binaries catch it up front via
/// [`crate::env::validate_env`].
pub fn opt_mode() -> Toggle {
    match OPT_OVERRIDE.load(Ordering::Relaxed) {
        1 => return Toggle::Auto,
        2 => return Toggle::On,
        3 => return Toggle::Off,
        _ => {}
    }
    *OPT_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_OPT") {
        Ok(s) => crate::env::parse_toggle("ACCEVAL_OPT", &s).unwrap_or(Toggle::Auto),
        Err(_) => Toggle::Auto,
    })
}

/// Force an optimizer mode for this process (tests/benches), overriding the
/// environment. `None` returns control to `ACCEVAL_OPT`.
pub fn set_opt_override(t: Option<Toggle>) {
    let v = match t {
        None => 0,
        Some(Toggle::Auto) => 1,
        Some(Toggle::On) => 2,
        Some(Toggle::Off) => 3,
    };
    OPT_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether launches should run the optimized stream (`auto` and `on` both
/// enable it; they differ only in intent, like the launch cache's toggle).
pub fn opt_enabled() -> bool {
    !matches!(opt_mode(), Toggle::Off)
}

/// Short name of the active optimizer mode, for reports and manifests.
pub fn opt_name() -> &'static str {
    match opt_mode() {
        Toggle::Auto => "auto",
        Toggle::On => "on",
        Toggle::Off => "off",
    }
}

// ---------------------------------------------------------------------------
// Stats and counters
// ---------------------------------------------------------------------------

/// Per-kernel optimization summary, cached alongside the optimized stream
/// and aggregated into sweep manifests.
#[derive(Debug, Clone, Default)]
pub struct OptStats {
    /// Instructions in the unoptimized stream.
    pub ops_pre: u64,
    /// Instructions in the optimized per-warp stream (prelude excluded).
    pub ops_post: u64,
    /// Instructions moved into the once-per-launch scalar prelude.
    pub prelude_ops: u64,
    /// Redundant computations replaced by a copy or dropped outright.
    pub cse_hits: u64,
    /// Constant subexpressions folded to literals.
    pub folded: u64,
    /// Affine loop chains rewritten into incremental adds.
    pub strength_reduced: u64,
    /// Dead pure instructions deleted.
    pub dce_removed: u64,
    /// The stream lowered onto split typed register banks.
    pub typed: bool,
}

static OPT_KERNELS: AtomicU64 = AtomicU64::new(0);
static OPT_OPS_PRE: AtomicU64 = AtomicU64::new(0);
static OPT_OPS_POST: AtomicU64 = AtomicU64::new(0);
static OPT_CSE_HITS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_KERNELS: Cell<u64> = const { Cell::new(0) };
    static TL_OPS_PRE: Cell<u64> = const { Cell::new(0) };
    static TL_OPS_POST: Cell<u64> = const { Cell::new(0) };
    static TL_CSE_HITS: Cell<u64> = const { Cell::new(0) };
}

/// Record one kernel's optimization outcome in the process-wide and
/// per-thread counters (the sweep reads the per-thread ones to attribute
/// work to its own runs, mirroring the launch-cache counter discipline).
pub(crate) fn note_opt(st: &OptStats) {
    OPT_KERNELS.fetch_add(1, Ordering::Relaxed);
    OPT_OPS_PRE.fetch_add(st.ops_pre, Ordering::Relaxed);
    OPT_OPS_POST.fetch_add(st.ops_post, Ordering::Relaxed);
    OPT_CSE_HITS.fetch_add(st.cse_hits, Ordering::Relaxed);
    TL_KERNELS.with(|c| c.set(c.get() + 1));
    TL_OPS_PRE.with(|c| c.set(c.get() + st.ops_pre));
    TL_OPS_POST.with(|c| c.set(c.get() + st.ops_post));
    TL_CSE_HITS.with(|c| c.set(c.get() + st.cse_hits));
}

/// This thread's `(kernels optimized, ops pre, ops post, cse hits)`.
pub fn thread_opt_counters() -> (u64, u64, u64, u64) {
    (TL_KERNELS.with(Cell::get), TL_OPS_PRE.with(Cell::get), TL_OPS_POST.with(Cell::get), TL_CSE_HITS.with(Cell::get))
}

/// Process-wide `(kernels optimized, ops pre, ops post, cse hits)`.
pub fn opt_totals() -> (u64, u64, u64, u64) {
    (
        OPT_KERNELS.load(Ordering::Relaxed),
        OPT_OPS_PRE.load(Ordering::Relaxed),
        OPT_OPS_POST.load(Ordering::Relaxed),
        OPT_CSE_HITS.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------
// Optimized kernel representation
// ---------------------------------------------------------------------------

/// Register bank of a typed register in the specialized stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bank {
    /// `f64`.
    F,
    /// `i64`.
    I,
    /// `bool`.
    B,
}

/// One instruction of the typed specialized stream. Mirrors [`Op`] exactly
/// — same control structure, same charge placement, same trap behaviour —
/// but with every register resolved to a concrete bank so execution never
/// dispatches on `Value` tags.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TOp {
    ConstF {
        dst: u16,
        v: f64,
    },
    ConstI {
        dst: u16,
        v: i64,
    },
    ConstB {
        dst: u16,
        v: bool,
    },
    CopyF {
        dst: u16,
        src: u16,
    },
    CopyI {
        dst: u16,
        src: u16,
    },
    CopyB {
        dst: u16,
        src: u16,
    },
    /// `i = f as i64` (the saturating cast `Value::as_i` performs).
    FtoI {
        dst: u16,
        a: u16,
    },
    /// `f = i as f64`.
    ItoF {
        dst: u16,
        a: u16,
    },
    /// `i = b as i64`.
    BtoI {
        dst: u16,
        a: u16,
    },
    /// `f = b as i64 as f64`.
    BtoF {
        dst: u16,
        a: u16,
    },
    /// `b = f != 0.0`.
    FtoB {
        dst: u16,
        a: u16,
    },
    /// `b = i != 0`.
    ItoB {
        dst: u16,
        a: u16,
    },
    NegF {
        dst: u16,
        a: u16,
    },
    /// `-i`, with the same debug-overflow behaviour as the untyped engine.
    NegI {
        dst: u16,
        a: u16,
    },
    NotB {
        dst: u16,
        a: u16,
    },
    /// `i.abs()`, same trap on `i64::MIN` as `eval_intrin`.
    AbsI {
        dst: u16,
        a: u16,
    },
    /// Float arithmetic (`Add..Max` subset of [`BinOp`]).
    ArithF {
        dst: u16,
        op: BinOp,
        a: u16,
        b: u16,
    },
    /// Integer arithmetic/shift/bit ops, wrapping and raw exactly as
    /// [`eval_bin`]'s integer lane.
    ArithI {
        dst: u16,
        op: BinOp,
        a: u16,
        b: u16,
    },
    CmpF {
        dst: u16,
        op: BinOp,
        a: u16,
        b: u16,
    },
    CmpI {
        dst: u16,
        op: BinOp,
        a: u16,
        b: u16,
    },
    AndB {
        dst: u16,
        a: u16,
        b: u16,
    },
    OrB {
        dst: u16,
        a: u16,
        b: u16,
    },
    Ops {
        n: u64,
    },
    /// All-float intrinsic call; argument registers live in the typed pool.
    IntrinF {
        dst: u16,
        f: Intrin,
        args_off: u32,
        args_len: u8,
    },
    Load {
        dst: u16,
        dst_f: bool,
        arr: u16,
        site: u32,
        idx_off: u32,
        idx_len: u8,
        fast: i32,
    },
    Store {
        src: u16,
        src_f: bool,
        arr: u16,
        site: u32,
        idx_off: u32,
        idx_len: u8,
        fast: i32,
    },
    If {
        cond: u16,
        site: u32,
        then_len: u32,
        else_len: u32,
    },
    Select {
        cond: u16,
        dst: u16,
        t_reg: u16,
        f_reg: u16,
        bank: Bank,
        t_len: u32,
        f_len: u32,
    },
    For {
        var: u16,
        hi_reg: u16,
        step_reg: u16,
        hi_len: u32,
        step_len: u32,
        body_len: u32,
    },
    While {
        cond: u16,
        cond_len: u32,
        body_len: u32,
    },
    CritEnter,
    CritExit,
}

/// The typed lowering of an optimized stream: same register numbering as
/// the untyped stream (plus minted conversion temporaries above), with
/// imports/exports bridging the `Value` register file the launch machinery
/// writes (axis variables, reduction identities) and reads (reduction
/// folds).
#[derive(Debug)]
pub(crate) struct TypedKernel {
    pub(crate) code: Vec<TOp>,
    /// Typed register pool for Load/Store indices and IntrinF arguments.
    pub(crate) pool: Vec<u16>,
    /// Bank sizes (each bank allocates `nregs` registers per lane).
    pub(crate) nregs: u16,
    /// Registers imported from the `Value` file once per launch (constants,
    /// launch-broadcast scalars, prelude results).
    pub(crate) launch_imports: Vec<(u16, Bank)>,
    /// Registers imported from the `Value` file at each warp (mutable
    /// scalars re-broadcast by `begin_warp`, axis variables, reduction
    /// identities written by the launch prologue).
    pub(crate) warp_imports: Vec<(u16, Bank)>,
    /// Registers exported back to the `Value` file after each warp so the
    /// reduction fold observes exactly the tags the untyped engine leaves.
    pub(crate) red_exports: Vec<(u16, Bank)>,
}

/// An optimized, executable kernel: the rewritten untyped stream, its
/// once-per-launch scalar prelude, and (when bank inference succeeded) the
/// typed specialization.
#[derive(Debug)]
pub struct OptKernel {
    /// The optimized untyped stream; also serves the pricing machinery
    /// (fast-site table, flags) and the typed fallback.
    pub(crate) bc: KernelBytecode,
    /// Launch-uniform instructions hoisted out of the per-warp stream; run
    /// once per launch on lane-0 values and splatted across the warp.
    pub(crate) prelude: Vec<Op>,
    /// Typed specialization, or `None` when bank inference found a register
    /// whose `Value` tag is not provably stable.
    pub(crate) typed: Option<TypedKernel>,
    /// What the pipeline did, for profiling and manifests.
    pub stats: OptStats,
}

impl OptKernel {
    /// The optimized untyped stream (pricing and geometry metadata live
    /// here; identical flags and fast-site table as the unoptimized
    /// compile).
    pub(crate) fn bytecode(&self) -> &KernelBytecode {
        &self.bc
    }
}

// ---------------------------------------------------------------------------
// Pipeline driver
// ---------------------------------------------------------------------------

/// Run the full optimization pipeline over a compiled stream.
///
/// The returned kernel executes bit-identically to `bc` under
/// [`exec_warp_opt`]: same values, same charges, same traces, same panics.
pub fn optimize(prog: &Program, bc: &KernelBytecode) -> OptKernel {
    let mut stats = OptStats { ops_pre: bc.code.len() as u64, ..OptStats::default() };

    // Flat stream -> block tree (pool offsets keep referencing bc's pool).
    let mut pos = 0usize;
    let mut root = parse_block(&bc.code, &mut pos, bc.code.len());
    debug_assert_eq!(pos, bc.code.len());

    // Registers holding launch-time constants, for folding / SR / hoisting.
    let mut minter = ConstMinter::new(bc);

    // CSE + constant folding.
    let mut cse = Cse::new(bc, &minter);
    root = cse.block(root);
    stats.cse_hits = cse.hits;
    stats.folded = cse.folded;

    // Affine strength reduction over counted loops.
    let ia = int_always(prog, bc, &root);
    stats.strength_reduced = strength_reduce(bc, &mut root, &ia, &mut minter);

    // Uniformity-driven hoisting into the launch prelude.
    let (prelude, _) = hoist(bc, &mut root);
    stats.prelude_ops = prelude.len() as u64;

    // Dead-register elimination to a fixpoint.
    let live_out: HashSet<u16> = bc.red_scalar_regs.iter().copied().collect();
    loop {
        let removed = dce_block(&mut root, &bc.pool, live_out.clone());
        stats.dce_removed += removed;
        if removed == 0 {
            break;
        }
    }

    // Flatten back and rebuild the kernel around the rewritten stream.
    let mut code = Vec::new();
    flatten(&root, &mut code);
    stats.ops_post = code.len() as u64;
    let new_bc = KernelBytecode {
        code,
        pool: bc.pool.clone(),
        nregs: minter.nregs,
        temp_base: bc.temp_base,
        scal_init_launch: bc.scal_init_launch.clone(),
        scal_init_warp: bc.scal_init_warp.clone(),
        const_init: minter.const_init,
        axis_regs: bc.axis_regs,
        red_scalar_regs: bc.red_scalar_regs.clone(),
        fast_sites: bc.fast_sites.clone(),
        serial_lanes: bc.serial_lanes,
        par_blocks_ok: bc.par_blocks_ok,
        uniform_pricing: bc.uniform_pricing,
    };

    // Typed-bank specialization (optional; any ambiguity falls back).
    let typed = lower_typed(prog, &new_bc, &prelude, &root);
    stats.typed = typed.is_some();

    OptKernel { bc: new_bc, prelude, typed, stats }
}

// ---------------------------------------------------------------------------
// Block tree
// ---------------------------------------------------------------------------

/// Structured view of the flat stream: header ops with their sub-blocks
/// recovered, so passes can reason about scopes without offset arithmetic.
#[derive(Debug, Clone)]
enum Node {
    Op(Op),
    If { cond: u16, site: u32, t: Vec<Node>, e: Vec<Node> },
    Select { cond: u16, dst: u16, t_reg: u16, f_reg: u16, t: Vec<Node>, f: Vec<Node> },
    For { var: u16, hi_reg: u16, step_reg: u16, hi: Vec<Node>, step: Vec<Node>, body: Vec<Node> },
    While { cond: u16, c: Vec<Node>, body: Vec<Node> },
}

fn parse_block(code: &[Op], pos: &mut usize, end: usize) -> Vec<Node> {
    let mut out = Vec::new();
    while *pos < end {
        let op = code[*pos];
        *pos += 1;
        match op {
            Op::If { cond, site, then_len, else_len } => {
                let t = parse_block(code, pos, *pos + then_len as usize);
                let e = parse_block(code, pos, *pos + else_len as usize);
                out.push(Node::If { cond, site, t, e });
            }
            Op::Select { cond, dst, t_reg, f_reg, t_len, f_len } => {
                let t = parse_block(code, pos, *pos + t_len as usize);
                let f = parse_block(code, pos, *pos + f_len as usize);
                out.push(Node::Select { cond, dst, t_reg, f_reg, t, f });
            }
            Op::For { var, hi_reg, step_reg, hi_len, step_len, body_len } => {
                let hi = parse_block(code, pos, *pos + hi_len as usize);
                let step = parse_block(code, pos, *pos + step_len as usize);
                let body = parse_block(code, pos, *pos + body_len as usize);
                out.push(Node::For { var, hi_reg, step_reg, hi, step, body });
            }
            Op::While { cond, cond_len, body_len } => {
                let c = parse_block(code, pos, *pos + cond_len as usize);
                let body = parse_block(code, pos, *pos + body_len as usize);
                out.push(Node::While { cond, c, body });
            }
            other => out.push(Node::Op(other)),
        }
    }
    out
}

fn flatten(nodes: &[Node], out: &mut Vec<Op>) {
    for n in nodes {
        match n {
            Node::Op(op) => out.push(*op),
            Node::If { cond, site, t, e } => {
                let at = out.len();
                out.push(Op::If { cond: *cond, site: *site, then_len: 0, else_len: 0 });
                let t0 = out.len();
                flatten(t, out);
                let tl = (out.len() - t0) as u32;
                let e0 = out.len();
                flatten(e, out);
                let el = (out.len() - e0) as u32;
                if let Op::If { then_len, else_len, .. } = &mut out[at] {
                    *then_len = tl;
                    *else_len = el;
                }
            }
            Node::Select { cond, dst, t_reg, f_reg, t, f } => {
                let at = out.len();
                out.push(Op::Select { cond: *cond, dst: *dst, t_reg: *t_reg, f_reg: *f_reg, t_len: 0, f_len: 0 });
                let t0 = out.len();
                flatten(t, out);
                let tl = (out.len() - t0) as u32;
                let f0 = out.len();
                flatten(f, out);
                let fl = (out.len() - f0) as u32;
                if let Op::Select { t_len, f_len, .. } = &mut out[at] {
                    *t_len = tl;
                    *f_len = fl;
                }
            }
            Node::For { var, hi_reg, step_reg, hi, step, body } => {
                let at = out.len();
                out.push(Op::For {
                    var: *var,
                    hi_reg: *hi_reg,
                    step_reg: *step_reg,
                    hi_len: 0,
                    step_len: 0,
                    body_len: 0,
                });
                let h0 = out.len();
                flatten(hi, out);
                let hl = (out.len() - h0) as u32;
                let s0 = out.len();
                flatten(step, out);
                let sl = (out.len() - s0) as u32;
                let b0 = out.len();
                flatten(body, out);
                let bl = (out.len() - b0) as u32;
                if let Op::For { hi_len, step_len, body_len, .. } = &mut out[at] {
                    *hi_len = hl;
                    *step_len = sl;
                    *body_len = bl;
                }
            }
            Node::While { cond, c, body } => {
                let at = out.len();
                out.push(Op::While { cond: *cond, cond_len: 0, body_len: 0 });
                let c0 = out.len();
                flatten(c, out);
                let cl = (out.len() - c0) as u32;
                let b0 = out.len();
                flatten(body, out);
                let bl = (out.len() - b0) as u32;
                if let Op::While { cond_len, body_len, .. } = &mut out[at] {
                    *cond_len = cl;
                    *body_len = bl;
                }
            }
        }
    }
}

/// Registers written anywhere in a subtree (a `For` writes its loop
/// variable; a `Select` writes its destination; `Load` writes its
/// destination).
fn writes_of(nodes: &[Node], set: &mut HashSet<u16>) {
    for n in nodes {
        match n {
            Node::Op(op) => {
                if let Some(d) = op_dst(op) {
                    set.insert(d);
                }
            }
            Node::If { t, e, .. } => {
                writes_of(t, set);
                writes_of(e, set);
            }
            Node::Select { dst, t, f, .. } => {
                set.insert(*dst);
                writes_of(t, set);
                writes_of(f, set);
            }
            Node::For { var, hi, step, body, .. } => {
                set.insert(*var);
                writes_of(hi, set);
                writes_of(step, set);
                writes_of(body, set);
            }
            Node::While { c, body, .. } => {
                writes_of(c, set);
                writes_of(body, set);
            }
        }
    }
}

/// Destination register of a plain op, if it writes one.
fn op_dst(op: &Op) -> Option<u16> {
    match *op {
        Op::ConstF { dst, .. }
        | Op::ConstI { dst, .. }
        | Op::ConstB { dst, .. }
        | Op::Copy { dst, .. }
        | Op::AsInt { dst, .. }
        | Op::Un { dst, .. }
        | Op::Bin { dst, .. }
        | Op::CastI { dst, .. }
        | Op::CastF { dst, .. }
        | Op::Intrin { dst, .. }
        | Op::Load { dst, .. } => Some(dst),
        Op::Ops { .. } | Op::Store { .. } | Op::CritEnter | Op::CritExit => None,
        // Headers never reach op_dst: parse_block turns them into Nodes.
        Op::If { .. } | Op::Select { .. } | Op::For { .. } | Op::While { .. } => None,
    }
}

/// Count reads of register `r` across a subtree, including header reads
/// (`For` reads its variable, bound and step; `If`/`While`/`Select` read
/// their condition; `Select`'s mux reads both arm registers).
fn count_reads(nodes: &[Node], pool: &[u16], r: u16) -> u64 {
    let mut n = 0u64;
    for node in nodes {
        match node {
            Node::Op(op) => n += op_reads(op, pool, r),
            Node::If { cond, t, e, .. } => {
                n += u64::from(*cond == r);
                n += count_reads(t, pool, r) + count_reads(e, pool, r);
            }
            Node::Select { cond, t_reg, f_reg, t, f, .. } => {
                n += u64::from(*cond == r) + u64::from(*t_reg == r) + u64::from(*f_reg == r);
                n += count_reads(t, pool, r) + count_reads(f, pool, r);
            }
            Node::For { var, hi_reg, step_reg, hi, step, body } => {
                n += u64::from(*var == r) + u64::from(*hi_reg == r) + u64::from(*step_reg == r);
                n += count_reads(hi, pool, r) + count_reads(step, pool, r) + count_reads(body, pool, r);
            }
            Node::While { cond, c, body } => {
                n += u64::from(*cond == r);
                n += count_reads(c, pool, r) + count_reads(body, pool, r);
            }
        }
    }
    n
}

fn op_reads(op: &Op, pool: &[u16], r: u16) -> u64 {
    let pool_hits =
        |off: u32, len: u8| pool[off as usize..off as usize + len as usize].iter().filter(|&&x| x == r).count() as u64;
    match *op {
        Op::ConstF { .. } | Op::ConstI { .. } | Op::ConstB { .. } | Op::Ops { .. } => 0,
        Op::CritEnter | Op::CritExit => 0,
        Op::Copy { src, .. } => u64::from(src == r),
        Op::AsInt { a, .. } | Op::Un { a, .. } | Op::CastI { a, .. } | Op::CastF { a, .. } => u64::from(a == r),
        Op::Bin { a, b, .. } => u64::from(a == r) + u64::from(b == r),
        Op::Intrin { args_off, args_len, .. } => pool_hits(args_off, args_len),
        Op::Load { idx_off, idx_len, .. } => pool_hits(idx_off, idx_len),
        Op::Store { src, idx_off, idx_len, .. } => u64::from(src == r) + pool_hits(idx_off, idx_len),
        Op::If { .. } | Op::Select { .. } | Op::For { .. } | Op::While { .. } => 0,
    }
}

/// Count writes of register `r` across a subtree.
fn count_writes(nodes: &[Node], r: u16) -> u64 {
    let mut n = 0u64;
    for node in nodes {
        match node {
            Node::Op(op) => n += u64::from(op_dst(op) == Some(r)),
            Node::If { t, e, .. } => n += count_writes(t, r) + count_writes(e, r),
            Node::Select { dst, t, f, .. } => {
                n += u64::from(*dst == r) + count_writes(t, r) + count_writes(f, r);
            }
            Node::For { var, hi, step, body, .. } => {
                n += u64::from(*var == r) + count_writes(hi, r) + count_writes(step, r) + count_writes(body, r);
            }
            Node::While { c, body, .. } => n += count_writes(c, r) + count_writes(body, r),
        }
    }
    n
}

// ---------------------------------------------------------------------------
// Constant registers
// ---------------------------------------------------------------------------

/// Hashable identity of a pooled constant (floats keyed by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KV {
    F(u64),
    I(i64),
    B(bool),
}

impl KV {
    fn of(v: Value) -> KV {
        match v {
            Value::F(x) => KV::F(x.to_bits()),
            Value::I(x) => KV::I(x),
            Value::B(x) => KV::B(x),
        }
    }
}

/// Tracks the launch-constant registers (seeded from `const_init`) and
/// mints new ones for values the optimizer materializes (folded constants,
/// strength-reduction coefficients).
struct ConstMinter {
    by_val: HashMap<KV, u16>,
    val_of: HashMap<u16, Value>,
    const_init: Vec<(u16, Value)>,
    nregs: u16,
}

impl ConstMinter {
    fn new(bc: &KernelBytecode) -> ConstMinter {
        let mut by_val = HashMap::new();
        let mut val_of = HashMap::new();
        for &(r, v) in &bc.const_init {
            by_val.entry(KV::of(v)).or_insert(r);
            val_of.insert(r, v);
        }
        ConstMinter { by_val, val_of, const_init: bc.const_init.clone(), nregs: bc.nregs }
    }

    /// Constant value held by register `r`, if it is a pooled constant.
    fn value_of(&self, r: u16) -> Option<Value> {
        self.val_of.get(&r).copied()
    }

    /// Register holding `v`, minting a fresh launch constant if needed.
    /// `None` when the register file is full (the caller skips the rewrite).
    fn reg_for(&mut self, v: Value) -> Option<u16> {
        if let Some(&r) = self.by_val.get(&KV::of(v)) {
            return Some(r);
        }
        if self.nregs > u16::MAX - 8 {
            return None;
        }
        let r = self.nregs;
        self.nregs += 1;
        self.by_val.insert(KV::of(v), r);
        self.val_of.insert(r, v);
        self.const_init.push((r, v));
        Some(r)
    }
}

// ---------------------------------------------------------------------------
// CSE + constant folding
// ---------------------------------------------------------------------------

/// Value-numbering key of a pure computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CseKey {
    /// Shared by `AsInt` and `CastI` — both compute `Value::I(a.as_i())`.
    AsI(u32),
    AsF(u32),
    Un(UnOp, u32),
    /// No commutative canonicalization: float `Add`/`Mul` on NaN payloads
    /// must keep the original operand order bit-exactly.
    Bin(BinOp, u32, u32),
    Intr(Intrin, [u32; 4], u8),
}

struct Cse<'a> {
    pool: &'a [u16],
    /// Current value number of each register.
    vn: Vec<u32>,
    next_vn: u32,
    /// Computation -> (register, value number at recording time); stale
    /// entries are detected lazily by `vn[reg] != recorded`.
    table: HashMap<CseKey, (u16, u32)>,
    /// Value number -> known constant value (monotone: a value number's
    /// constant never changes, so this map is never invalidated).
    konst: HashMap<u32, Value>,
    kvn: HashMap<KV, u32>,
    hits: u64,
    folded: u64,
}

impl<'a> Cse<'a> {
    fn new(bc: &'a KernelBytecode, minter: &ConstMinter) -> Cse<'a> {
        let mut s = Cse {
            pool: &bc.pool,
            vn: Vec::new(),
            next_vn: 0,
            table: HashMap::new(),
            konst: HashMap::new(),
            kvn: HashMap::new(),
            hits: 0,
            folded: 0,
        };
        s.vn = (0..bc.nregs as u32).collect();
        s.next_vn = bc.nregs as u32;
        // Seed constant registers with value numbers tied to their values,
        // so equal literals in different registers already share a number.
        for (&r, &v) in &minter.val_of {
            let n = s.vn_of_value(v);
            s.vn[r as usize] = n;
        }
        s
    }

    fn fresh(&mut self) -> u32 {
        let n = self.next_vn;
        self.next_vn += 1;
        n
    }

    /// Value number of a known constant (allocating and recording it).
    fn vn_of_value(&mut self, v: Value) -> u32 {
        let key = KV::of(v);
        if let Some(&n) = self.kvn.get(&key) {
            return n;
        }
        let n = self.fresh();
        self.kvn.insert(key, n);
        self.konst.insert(n, v);
        n
    }

    /// Fold a pure op whose operands are all known constants, refusing any
    /// fold that could trap differently from runtime evaluation (integer
    /// div/rem edge cases, out-of-range shifts, `i64::MIN` negation/abs).
    fn try_fold(&self, op: &Op, operand_vns: &[u32]) -> Option<Value> {
        let val = |i: usize| self.konst.get(&operand_vns[i]).copied();
        match *op {
            Op::AsInt { .. } | Op::CastI { .. } => Some(Value::I(val(0)?.as_i())),
            Op::CastF { .. } => Some(Value::F(val(0)?.as_f())),
            Op::Un { op: u, .. } => {
                let x = val(0)?;
                match u {
                    UnOp::Neg => match x {
                        Value::I(i) if i == i64::MIN => None,
                        Value::I(i) => Some(Value::I(-i)),
                        v => Some(Value::F(-v.as_f())),
                    },
                    UnOp::Not => Some(Value::B(!x.as_b())),
                }
            }
            Op::Bin { op: b, .. } => {
                let (x, y) = (val(0)?, val(1)?);
                let both_int = matches!(x, Value::I(_) | Value::B(_)) && matches!(y, Value::I(_) | Value::B(_));
                match b {
                    BinOp::Div | BinOp::Rem if both_int => {
                        let (a, d) = (x.as_i(), y.as_i());
                        if d == 0 || (a == i64::MIN && d == -1) {
                            return None;
                        }
                        Some(eval_bin(b, x, y))
                    }
                    BinOp::Shl | BinOp::Shr => {
                        let sh = y.as_i();
                        if !(0..64).contains(&sh) {
                            return None;
                        }
                        Some(eval_bin(b, x, y))
                    }
                    _ => Some(eval_bin(b, x, y)),
                }
            }
            Op::Intrin { f, args_len, .. } => {
                let mut vals = [Value::I(0); 4];
                for (k, slot) in vals.iter_mut().enumerate().take(args_len as usize) {
                    *slot = val(k)?;
                }
                if f == Intrin::Abs {
                    if let Value::I(i) = vals[0] {
                        if i == i64::MIN {
                            return None;
                        }
                    }
                }
                Some(eval_intrin(f, &vals[..args_len as usize]))
            }
            _ => None,
        }
    }

    /// Process a constant assignment to `dst`: drop it when the register
    /// already holds that value, else emit and record.
    fn put_const(&mut self, out: &mut Vec<Node>, emit: Op, dst: u16, v: Value, from_fold: bool) {
        let n = self.vn_of_value(v);
        if self.vn[dst as usize] == n {
            // Register already holds this value on every active lane.
            if from_fold {
                self.folded += 1;
            } else {
                self.hits += 1;
            }
            return;
        }
        if from_fold {
            self.folded += 1;
        }
        self.vn[dst as usize] = n;
        out.push(Node::Op(emit));
    }

    fn block(&mut self, nodes: Vec<Node>) -> Vec<Node> {
        let mut out = Vec::new();
        for node in nodes {
            match node {
                Node::Op(op) => self.op(&mut out, op),
                Node::If { cond, site, t, e } => {
                    let pre = self.vn.clone();
                    let t2 = self.block(t);
                    let vn_t = std::mem::replace(&mut self.vn, pre);
                    let e2 = self.block(e);
                    for (r, &vt) in vn_t.iter().enumerate() {
                        if self.vn[r] != vt {
                            self.vn[r] = self.fresh();
                        }
                    }
                    out.push(Node::If { cond, site, t: t2, e: e2 });
                }
                Node::Select { cond, dst, t_reg, f_reg, t, f } => {
                    let pre = self.vn.clone();
                    let t2 = self.block(t);
                    let vn_t = std::mem::replace(&mut self.vn, pre);
                    let f2 = self.block(f);
                    for (r, &vt) in vn_t.iter().enumerate() {
                        if self.vn[r] != vt {
                            self.vn[r] = self.fresh();
                        }
                    }
                    // The mux writes dst per lane from whichever arm ran.
                    self.vn[dst as usize] = self.fresh();
                    out.push(Node::Select { cond, dst, t_reg, f_reg, t: t2, f: f2 });
                }
                Node::For { var, hi_reg, step_reg, hi, step, body } => {
                    let mut ws = HashSet::new();
                    ws.insert(var);
                    writes_of(&hi, &mut ws);
                    writes_of(&step, &mut ws);
                    writes_of(&body, &mut ws);
                    // Fresh numbers before: loop-carried registers must not
                    // match pre-loop computations inside the body.
                    for &r in &ws {
                        self.vn[r as usize] = self.fresh();
                    }
                    // Process in per-iteration execution order (hi block,
                    // body, step block) so within-iteration reuse is exact.
                    let hi2 = self.block(hi);
                    let body2 = self.block(body);
                    let step2 = self.block(step);
                    // Fresh numbers after: a zero-trip loop leaves body
                    // writes unexecuted, so nothing the body computed may be
                    // reused past the loop.
                    for &r in &ws {
                        self.vn[r as usize] = self.fresh();
                    }
                    out.push(Node::For { var, hi_reg, step_reg, hi: hi2, step: step2, body: body2 });
                }
                Node::While { cond, c, body } => {
                    let mut ws = HashSet::new();
                    writes_of(&c, &mut ws);
                    writes_of(&body, &mut ws);
                    for &r in &ws {
                        self.vn[r as usize] = self.fresh();
                    }
                    let c2 = self.block(c);
                    let body2 = self.block(body);
                    for &r in &ws {
                        self.vn[r as usize] = self.fresh();
                    }
                    out.push(Node::While { cond, c: c2, body: body2 });
                }
            }
        }
        out
    }

    fn op(&mut self, out: &mut Vec<Node>, op: Op) {
        match op {
            Op::ConstF { dst, v } => self.put_const(out, op, dst, Value::F(v), false),
            Op::ConstI { dst, v } => self.put_const(out, op, dst, Value::I(v), false),
            Op::ConstB { dst, v } => self.put_const(out, op, dst, Value::B(v), false),
            Op::Copy { dst, src } => {
                if self.vn[dst as usize] == self.vn[src as usize] {
                    self.hits += 1;
                    return;
                }
                self.vn[dst as usize] = self.vn[src as usize];
                out.push(Node::Op(op));
            }
            Op::AsInt { dst, a } | Op::CastI { dst, a } => {
                let key = CseKey::AsI(self.vn[a as usize]);
                self.pure(out, op, dst, key, &[self.vn[a as usize]]);
            }
            Op::CastF { dst, a } => {
                let key = CseKey::AsF(self.vn[a as usize]);
                self.pure(out, op, dst, key, &[self.vn[a as usize]]);
            }
            Op::Un { dst, op: u, a } => {
                let key = CseKey::Un(u, self.vn[a as usize]);
                self.pure(out, op, dst, key, &[self.vn[a as usize]]);
            }
            Op::Bin { dst, op: b, a, b: rb } => {
                let (va, vb) = (self.vn[a as usize], self.vn[rb as usize]);
                let key = CseKey::Bin(b, va, vb);
                self.pure(out, op, dst, key, &[va, vb]);
            }
            Op::Intrin { dst, f, args_off, args_len } => {
                let mut avns = [u32::MAX; 4];
                let mut ops = [0u32; 4];
                for k in 0..args_len as usize {
                    let r = self.pool[args_off as usize + k];
                    avns[k] = self.vn[r as usize];
                    ops[k] = avns[k];
                }
                let key = CseKey::Intr(f, avns, args_len);
                self.pure(out, op, dst, key, &ops[..args_len as usize]);
            }
            Op::Load { dst, .. } => {
                // Loads are never CSE'd or folded: every execution records a
                // trace/fast-row entry and may observe earlier stores.
                self.vn[dst as usize] = self.fresh();
                out.push(Node::Op(op));
            }
            Op::Ops { .. } | Op::Store { .. } | Op::CritEnter | Op::CritExit => out.push(Node::Op(op)),
            Op::If { .. } | Op::Select { .. } | Op::For { .. } | Op::While { .. } => {
                unreachable!("headers arrive as structured nodes")
            }
        }
    }

    /// Handle a pure computation into `dst`: fold, reuse, or emit+record.
    fn pure(&mut self, out: &mut Vec<Node>, op: Op, dst: u16, key: CseKey, operand_vns: &[u32]) {
        if operand_vns.iter().all(|n| self.konst.contains_key(n)) {
            if let Some(v) = self.try_fold(&op, operand_vns) {
                let emit = match v {
                    Value::F(x) => Op::ConstF { dst, v: x },
                    Value::I(x) => Op::ConstI { dst, v: x },
                    Value::B(x) => Op::ConstB { dst, v: x },
                };
                self.put_const(out, emit, dst, v, true);
                return;
            }
        }
        if let Some(&(reg, n)) = self.table.get(&key) {
            if self.vn[reg as usize] == n {
                self.hits += 1;
                if self.vn[dst as usize] != n {
                    self.vn[dst as usize] = n;
                    out.push(Node::Op(Op::Copy { dst, src: reg }));
                }
                return;
            }
        }
        let n = self.fresh();
        self.vn[dst as usize] = n;
        self.table.insert(key, (dst, n));
        out.push(Node::Op(op));
    }
}

// ---------------------------------------------------------------------------
// Affine strength reduction
// ---------------------------------------------------------------------------

/// Fixpoint analysis: which registers hold an `I`-tagged `Value` at every
/// write (and at launch/warp initialization). Only strict `I` counts —
/// `B` demotes, because `eval_bin`'s integer lane accepts it but the affine
/// rewrite must produce the exact tags the original ops produced.
fn int_always(prog: &Program, bc: &KernelBytecode, root: &[Node]) -> Vec<bool> {
    let n = bc.nregs as usize;
    let mut ia = vec![true; n];
    // Seeds outside the instruction stream.
    for &(r, v) in &bc.const_init {
        if !matches!(v, Value::I(_)) {
            ia[r as usize] = false;
        }
    }
    for list in [&bc.scal_init_launch, &bc.scal_init_warp] {
        for &(slot, r) in list {
            if prog.scalars[slot as usize].is_float {
                ia[r as usize] = false;
            }
        }
    }
    // Axis registers are written `Value::I` by the launch prologue.
    loop {
        let mut changed = false;
        int_always_walk(prog, bc, root, &mut ia, &mut changed);
        if !changed {
            break;
        }
    }
    ia
}

fn int_always_walk(prog: &Program, bc: &KernelBytecode, nodes: &[Node], ia: &mut [bool], changed: &mut bool) {
    fn demote(ia: &mut [bool], changed: &mut bool, r: u16, ok: bool) {
        if !ok && ia[r as usize] {
            ia[r as usize] = false;
            *changed = true;
        }
    }
    for node in nodes {
        match node {
            Node::Op(op) => match *op {
                Op::ConstI { .. } => {}
                Op::ConstF { dst, .. } | Op::ConstB { dst, .. } => demote(ia, changed, dst, false),
                Op::Copy { dst, src } => {
                    let ok = ia[src as usize];
                    demote(ia, changed, dst, ok);
                }
                Op::AsInt { .. } | Op::CastI { .. } => {}
                Op::CastF { dst, .. } => demote(ia, changed, dst, false),
                Op::Un { dst, op: u, a } => {
                    let ok = matches!(u, UnOp::Neg) && ia[a as usize];
                    demote(ia, changed, dst, ok);
                }
                Op::Bin { dst, op: b, a, b: rb } => {
                    let ok = match b {
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Min | BinOp::Max => {
                            ia[a as usize] && ia[rb as usize]
                        }
                        BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => true,
                        _ => false,
                    };
                    demote(ia, changed, dst, ok);
                }
                Op::Intrin { dst, f, args_off, .. } => {
                    let a0 = bc.pool[args_off as usize];
                    let ok = f == Intrin::Abs && ia[a0 as usize];
                    demote(ia, changed, dst, ok);
                }
                Op::Load { dst, arr, .. } => {
                    let ok = !prog.array_elem(ArrayId(arr as u32)).is_float();
                    demote(ia, changed, dst, ok);
                }
                _ => {}
            },
            Node::If { t, e, .. } => {
                int_always_walk(prog, bc, t, ia, changed);
                int_always_walk(prog, bc, e, ia, changed);
            }
            Node::Select { dst, t_reg, f_reg, t, f, .. } => {
                int_always_walk(prog, bc, t, ia, changed);
                int_always_walk(prog, bc, f, ia, changed);
                let ok = ia[*t_reg as usize] && ia[*f_reg as usize];
                demote(ia, changed, *dst, ok);
            }
            Node::For { hi, step, body, .. } => {
                // The loop variable is written `Value::I` by the increment
                // and the `AsInt` init: stays int.
                int_always_walk(prog, bc, hi, ia, changed);
                int_always_walk(prog, bc, step, ia, changed);
                int_always_walk(prog, bc, body, ia, changed);
            }
            Node::While { c, body, .. } => {
                int_always_walk(prog, bc, c, ia, changed);
                int_always_walk(prog, bc, body, ia, changed);
            }
        }
    }
}

/// Rewrite affine loop-body chains (`dst = c1*var + base` with everything
/// in `base` loop-invariant) into an init before the loop plus one
/// incremental add at the end of the body. Sound per lane under divergent
/// trip counts: the init and increment run under exactly the masks the
/// original chain ran under (loop entry and body), and all reads of `dst`
/// occur after its original definition point in the body.
fn strength_reduce(bc: &KernelBytecode, root: &mut Vec<Node>, ia: &[bool], minter: &mut ConstMinter) -> u64 {
    let mut n = 0;
    sr_block(bc, root, ia, minter, &mut n);
    n
}

fn sr_block(bc: &KernelBytecode, nodes: &mut Vec<Node>, ia: &[bool], minter: &mut ConstMinter, n: &mut u64) {
    let mut i = 0;
    while i < nodes.len() {
        // Recurse first so inner loops are reduced before outer ones scan.
        match &mut nodes[i] {
            Node::If { t, e, .. } => {
                sr_block(bc, t, ia, minter, n);
                sr_block(bc, e, ia, minter, n);
            }
            Node::Select { t, f, .. } => {
                sr_block(bc, t, ia, minter, n);
                sr_block(bc, f, ia, minter, n);
            }
            Node::While { c, body, .. } => {
                sr_block(bc, c, ia, minter, n);
                sr_block(bc, body, ia, minter, n);
            }
            Node::For { hi, step, body, .. } => {
                sr_block(bc, hi, ia, minter, n);
                sr_block(bc, step, ia, minter, n);
                sr_block(bc, body, ia, minter, n);
            }
            Node::Op(_) => {}
        }
        if let Node::For { .. } = nodes[i] {
            let inits = sr_for(bc, nodes, i, ia, minter, n);
            // Splice the init ops in front of the loop header.
            let at = i;
            i += inits.len();
            for (k, op) in inits.into_iter().enumerate() {
                nodes.insert(at + k, Node::Op(op));
            }
        }
        i += 1;
    }
}

/// Try to strength-reduce candidates inside the `For` at `nodes[at]`;
/// returns the init ops to insert before it.
fn sr_for(
    bc: &KernelBytecode,
    nodes: &mut [Node],
    at: usize,
    ia: &[bool],
    minter: &mut ConstMinter,
    n: &mut u64,
) -> Vec<Op> {
    let Node::For { var, hi_reg, step_reg, step, .. } = &nodes[at] else {
        return Vec::new();
    };
    let (var, hi_reg, step_reg) = (*var, *hi_reg, *step_reg);
    // Only constant-step loops with no per-iteration step block: the
    // increment delta must be a launch-time constant.
    if !step.is_empty() {
        return Vec::new();
    }
    let Some(Value::I(st)) = minter.value_of(step_reg) else {
        return Vec::new();
    };
    let mut ws = HashSet::new();
    ws.insert(var);
    if let Node::For { hi, step, body, .. } = &nodes[at] {
        writes_of(hi, &mut ws);
        writes_of(step, &mut ws);
        writes_of(body, &mut ws);
    }

    // Scan top-level body ops for affine forms in `var`.
    let mut forms: HashMap<u16, Aff> = HashMap::new();
    let mut sinks: Vec<(usize, u16, Aff)> = Vec::new();
    {
        let Node::For { body, .. } = &nodes[at] else { unreachable!() };
        for (idx, node) in body.iter().enumerate() {
            match node {
                Node::Op(Op::Bin { dst, op, a, b }) if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) => {
                    let fa = aff_of(*a, var, &forms, &ws, ia, minter);
                    let fb = aff_of(*b, var, &forms, &ws, ia, minter);
                    let combined = match (fa, fb) {
                        (Some(x), Some(y)) => match op {
                            BinOp::Add => x.add(y),
                            BinOp::Sub => x.sub(y),
                            BinOp::Mul => x.mul(y),
                            _ => unreachable!(),
                        },
                        _ => None,
                    };
                    match combined {
                        Some(f) => {
                            forms.insert(*dst, f);
                            sinks.push((idx, *dst, f));
                        }
                        None => {
                            forms.remove(dst);
                        }
                    }
                }
                Node::Op(op) => {
                    if let Some(d) = op_dst(op) {
                        forms.remove(&d);
                    }
                }
                other => {
                    let mut sub = HashSet::new();
                    writes_of(std::slice::from_ref(other), &mut sub);
                    for d in sub {
                        forms.remove(&d);
                    }
                }
            }
        }
    }

    // Filter to applicable candidates and apply, last sink first so body
    // indices stay valid while removing.
    let mut inits: Vec<Op> = Vec::new();
    sinks.retain(|&(idx, dst, f)| {
        if f.c1 == 0 || dst < bc.temp_base || dst == var || dst == hi_reg || dst == step_reg {
            return false;
        }
        // The last recorded form for dst must be this sink (an earlier
        // tentative form may have been overwritten by a later one).
        if forms.get(&dst) != Some(&f) {
            return false;
        }
        let Node::For { body, .. } = &nodes[at] else { unreachable!() };
        // Exactly one write anywhere in the function, and every read of dst
        // happens strictly after the sink within the body: then replacing
        // the sink with init+increment is observationally equivalent.
        if count_writes(std::slice::from_ref(&nodes[at]), dst) != 1 {
            return false;
        }
        let total = count_reads(nodes, &bc.pool, dst);
        let after = count_reads(&body[idx + 1..], &bc.pool, dst);
        total == after
    });
    // Keep only the last surviving sink per dst (forms check above already
    // enforces uniqueness, but be explicit about duplicates).
    let mut seen_dst = HashSet::new();
    sinks.retain(|&(_, dst, _)| seen_dst.insert(dst));

    sinks.sort_by_key(|x| std::cmp::Reverse(x.0));
    for (idx, dst, f) in sinks {
        let delta = f.c1.wrapping_mul(st);
        // Mint constant registers up front; skip the candidate if full.
        let c1_reg = if f.c1 == 1 { None } else { Some(minter.reg_for(Value::I(f.c1))) };
        if matches!(c1_reg, Some(None)) {
            continue;
        }
        let delta_reg = if delta == 0 { None } else { Some(minter.reg_for(Value::I(delta))) };
        if matches!(delta_reg, Some(None)) {
            continue;
        }
        let base_regs = match f.base {
            AffBase::Const(0) => Ok(Vec::new()),
            AffBase::Const(k) => match minter.reg_for(Value::I(k)) {
                Some(r) => Ok(vec![r]),
                None => Err(()),
            },
            AffBase::RegConst(r, 0) => Ok(vec![r]),
            AffBase::RegConst(r, k) => match minter.reg_for(Value::I(k)) {
                Some(kr) => Ok(vec![r, kr]),
                None => Err(()),
            },
        };
        let Ok(base_regs) = base_regs else { continue };

        let Node::For { body, .. } = &mut nodes[at] else { unreachable!() };
        body.remove(idx);
        match c1_reg {
            None => inits.push(Op::Copy { dst, src: var }),
            Some(Some(cr)) => inits.push(Op::Bin { dst, op: BinOp::Mul, a: var, b: cr }),
            Some(None) => unreachable!(),
        }
        for r in base_regs {
            inits.push(Op::Bin { dst, op: BinOp::Add, a: dst, b: r });
        }
        if let Some(Some(dr)) = delta_reg {
            body.push(Node::Op(Op::Bin { dst, op: BinOp::Add, a: dst, b: dr }));
        }
        *n += 1;
    }
    inits
}

/// Affine view of an operand register inside a loop on `var`.
fn aff_of(
    r: u16,
    var: u16,
    forms: &HashMap<u16, Aff>,
    ws: &HashSet<u16>,
    ia: &[bool],
    minter: &ConstMinter,
) -> Option<Aff> {
    if r == var {
        return Some(Aff::var());
    }
    if let Some(f) = forms.get(&r) {
        return Some(*f);
    }
    if ws.contains(&r) {
        return None;
    }
    if let Some(Value::I(k)) = minter.value_of(r) {
        return Some(Aff::konst(k));
    }
    if ia[r as usize] {
        return Some(Aff::reg(r));
    }
    None
}

// ---------------------------------------------------------------------------
// Uniformity-driven hoisting
// ---------------------------------------------------------------------------

/// Move launch-uniform top-level instructions into the prelude. Returns the
/// prelude ops (in execution order) and their destination registers.
///
/// Eligibility is strict: a whitelisted non-trapping op (the prelude runs
/// unconditionally, even for launches whose grid masks out every lane), all
/// operands uniform (constants, launch-broadcast scalars, earlier hoisted
/// values), a temporary destination written exactly once in the whole
/// stream, and that write is the layout-first access to the register — so
/// no pre-hoist reader could have observed the unwritten register.
fn hoist(bc: &KernelBytecode, root: &mut Vec<Node>) -> (Vec<Op>, Vec<u16>) {
    let mut uniform: HashSet<u16> = HashSet::new();
    for &(r, _) in &bc.const_init {
        uniform.insert(r);
    }
    for &(_, r) in &bc.scal_init_launch {
        uniform.insert(r);
    }

    // Layout-order first access of each register (reads precede the write
    // within one op).
    let mut first: HashMap<u16, (usize, bool)> = HashMap::new();
    let mut ctr = 0usize;
    first_access(root, &bc.pool, &mut first, &mut ctr);

    // Census writes once over the tree, then peel eligible ops off the top
    // level in order (hoisted destinations join the uniform set as we go).
    let mut write_count: HashMap<u16, u64> = HashMap::new();
    write_census(root, &mut write_count);

    let mut prelude = Vec::new();
    let mut dsts = Vec::new();
    let mut kept = Vec::new();
    let mut pos = 0usize;
    for node in std::mem::take(root) {
        let node_pos = pos;
        advance_pos(&node, &mut pos);
        if let Node::Op(op) = &node {
            if hoist_whitelisted(op) && op_operands_uniform(op, &bc.pool, &uniform) {
                if let Some(d) = op_dst(op) {
                    if d >= bc.temp_base
                        && write_count.get(&d).copied().unwrap_or(0) == 1
                        && first.get(&d) == Some(&(node_pos, true))
                    {
                        uniform.insert(d);
                        dsts.push(d);
                        prelude.push(*op);
                        continue;
                    }
                }
            }
        }
        kept.push(node);
    }
    *root = kept;
    (prelude, dsts)
}

/// Structural position advance used by the hoist pass; must mirror
/// `first_access`'s counter exactly.
fn advance_pos(node: &Node, pos: &mut usize) {
    *pos += 1;
    match node {
        Node::Op(_) => {}
        Node::If { t, e, .. } => {
            for sub in t.iter().chain(e) {
                advance_pos(sub, pos);
            }
        }
        Node::Select { t, f, .. } => {
            for sub in t.iter().chain(f) {
                advance_pos(sub, pos);
            }
        }
        Node::For { hi, step, body, .. } => {
            for sub in hi.iter().chain(step).chain(body) {
                advance_pos(sub, pos);
            }
        }
        Node::While { c, body, .. } => {
            for sub in c.iter().chain(body) {
                advance_pos(sub, pos);
            }
        }
    }
}

fn write_census(nodes: &[Node], out: &mut HashMap<u16, u64>) {
    for node in nodes {
        match node {
            Node::Op(op) => {
                if let Some(d) = op_dst(op) {
                    *out.entry(d).or_insert(0) += 1;
                }
            }
            Node::If { t, e, .. } => {
                write_census(t, out);
                write_census(e, out);
            }
            Node::Select { dst, t, f, .. } => {
                *out.entry(*dst).or_insert(0) += 1;
                write_census(t, out);
                write_census(f, out);
            }
            Node::For { var, hi, step, body, .. } => {
                *out.entry(*var).or_insert(0) += 1;
                write_census(hi, out);
                write_census(step, out);
                write_census(body, out);
            }
            Node::While { c, body, .. } => {
                write_census(c, out);
                write_census(body, out);
            }
        }
    }
}

/// Record the layout-order first access (position, was-it-a-write) of every
/// register. Within one op, reads come before the write.
fn first_access(nodes: &[Node], pool: &[u16], first: &mut HashMap<u16, (usize, bool)>, ctr: &mut usize) {
    let read = |r: u16, at: usize, first: &mut HashMap<u16, (usize, bool)>| {
        first.entry(r).or_insert((at, false));
    };
    let write = |r: u16, at: usize, first: &mut HashMap<u16, (usize, bool)>| {
        first.entry(r).or_insert((at, true));
    };
    for node in nodes {
        let at = *ctr;
        *ctr += 1;
        match node {
            Node::Op(op) => {
                for r in op_read_regs(op, pool) {
                    read(r, at, first);
                }
                if let Some(d) = op_dst(op) {
                    write(d, at, first);
                }
            }
            Node::If { cond, t, e, .. } => {
                read(*cond, at, first);
                first_access(t, pool, first, ctr);
                first_access(e, pool, first, ctr);
            }
            Node::Select { cond, dst, t_reg, f_reg, t, f } => {
                read(*cond, at, first);
                first_access(t, pool, first, ctr);
                first_access(f, pool, first, ctr);
                read(*t_reg, at, first);
                read(*f_reg, at, first);
                write(*dst, at, first);
            }
            Node::For { var, hi_reg, step_reg, hi, step, body } => {
                read(*var, at, first);
                read(*hi_reg, at, first);
                read(*step_reg, at, first);
                write(*var, at, first);
                first_access(hi, pool, first, ctr);
                first_access(step, pool, first, ctr);
                first_access(body, pool, first, ctr);
            }
            Node::While { cond, c, body } => {
                read(*cond, at, first);
                first_access(c, pool, first, ctr);
                first_access(body, pool, first, ctr);
            }
        }
    }
}

fn op_read_regs(op: &Op, pool: &[u16]) -> Vec<u16> {
    match *op {
        Op::ConstF { .. } | Op::ConstI { .. } | Op::ConstB { .. } | Op::Ops { .. } => Vec::new(),
        Op::CritEnter | Op::CritExit => Vec::new(),
        Op::Copy { src, .. } => vec![src],
        Op::AsInt { a, .. } | Op::Un { a, .. } | Op::CastI { a, .. } | Op::CastF { a, .. } => vec![a],
        Op::Bin { a, b, .. } => vec![a, b],
        Op::Intrin { args_off, args_len, .. } => {
            pool[args_off as usize..args_off as usize + args_len as usize].to_vec()
        }
        Op::Load { idx_off, idx_len, .. } => pool[idx_off as usize..idx_off as usize + idx_len as usize].to_vec(),
        Op::Store { src, idx_off, idx_len, .. } => {
            let mut v = vec![src];
            v.extend_from_slice(&pool[idx_off as usize..idx_off as usize + idx_len as usize]);
            v
        }
        Op::If { .. } | Op::Select { .. } | Op::For { .. } | Op::While { .. } => Vec::new(),
    }
}

/// Ops safe to run unconditionally in the prelude: no division (by-zero),
/// no shifts (out-of-range), no `Neg`/`Abs` (`i64::MIN`), no loads/stores,
/// no charges.
fn hoist_whitelisted(op: &Op) -> bool {
    match *op {
        Op::ConstF { .. } | Op::ConstI { .. } | Op::ConstB { .. } | Op::Copy { .. } => true,
        Op::AsInt { .. } | Op::CastI { .. } | Op::CastF { .. } => true,
        Op::Un { op: u, .. } => matches!(u, UnOp::Not),
        Op::Bin { op: b, .. } => !matches!(b, BinOp::Div | BinOp::Rem | BinOp::Shl | BinOp::Shr),
        Op::Intrin { f, .. } => f != Intrin::Abs,
        _ => false,
    }
}

fn op_operands_uniform(op: &Op, pool: &[u16], uniform: &HashSet<u16>) -> bool {
    op_read_regs(op, pool).iter().all(|r| uniform.contains(r))
}

// ---------------------------------------------------------------------------
// Dead-register elimination
// ---------------------------------------------------------------------------

/// Remove pure instructions whose destinations are dead, walking each block
/// backward. `live` is the live-out set; returns the number of removals.
fn dce_block(nodes: &mut Vec<Node>, pool: &[u16], mut live: HashSet<u16>) -> u64 {
    let mut removed = 0u64;
    let mut i = nodes.len();
    while i > 0 {
        i -= 1;
        let mut drop_node = false;
        match &mut nodes[i] {
            Node::Op(op) => match *op {
                Op::ConstF { dst, .. }
                | Op::ConstI { dst, .. }
                | Op::ConstB { dst, .. }
                | Op::Copy { dst, .. }
                | Op::AsInt { dst, .. }
                | Op::Un { dst, .. }
                | Op::Bin { dst, .. }
                | Op::CastI { dst, .. }
                | Op::CastF { dst, .. }
                | Op::Intrin { dst, .. } => {
                    if live.contains(&dst) {
                        live.remove(&dst);
                        for r in op_read_regs(op, pool) {
                            live.insert(r);
                        }
                    } else {
                        drop_node = true;
                    }
                }
                Op::Load { dst, .. } => {
                    // Loads always execute (trace side effects); the loaded
                    // register may still be dead afterwards.
                    live.remove(&dst);
                    for r in op_read_regs(op, pool) {
                        live.insert(r);
                    }
                }
                Op::Store { .. } => {
                    for r in op_read_regs(op, pool) {
                        live.insert(r);
                    }
                }
                Op::Ops { .. } | Op::CritEnter | Op::CritExit => {}
                Op::If { .. } | Op::Select { .. } | Op::For { .. } | Op::While { .. } => unreachable!(),
            },
            Node::If { cond, t, e, .. } => {
                let lt = live.clone();
                let le = live.clone();
                removed += dce_block(t, pool, lt);
                removed += dce_block(e, pool, le);
                let mut merged = HashSet::new();
                block_live_in(t, pool, &live, &mut merged);
                block_live_in(e, pool, &live, &mut merged);
                merged.insert(*cond);
                live = merged;
            }
            Node::Select { cond, dst, t_reg, f_reg, t, f } => {
                let mut l2 = live.clone();
                l2.remove(dst);
                l2.insert(*t_reg);
                l2.insert(*f_reg);
                removed += dce_block(t, pool, l2.clone());
                removed += dce_block(f, pool, l2.clone());
                let mut merged = HashSet::new();
                block_live_in(t, pool, &l2, &mut merged);
                block_live_in(f, pool, &l2, &mut merged);
                merged.insert(*cond);
                live = merged;
            }
            Node::For { var, hi_reg, step_reg, hi, step, body } => {
                // Conservative: anything read anywhere in the loop is live
                // throughout (iterations feed each other).
                let mut inner = live.clone();
                subtree_reads(hi, pool, &mut inner);
                subtree_reads(step, pool, &mut inner);
                subtree_reads(body, pool, &mut inner);
                inner.insert(*var);
                inner.insert(*hi_reg);
                inner.insert(*step_reg);
                removed += dce_block(hi, pool, inner.clone());
                removed += dce_block(step, pool, inner.clone());
                removed += dce_block(body, pool, inner.clone());
                live = inner;
            }
            Node::While { cond, c, body } => {
                let mut inner = live.clone();
                subtree_reads(c, pool, &mut inner);
                subtree_reads(body, pool, &mut inner);
                inner.insert(*cond);
                removed += dce_block(c, pool, inner.clone());
                removed += dce_block(body, pool, inner.clone());
                live = inner;
            }
        }
        if drop_node {
            nodes.remove(i);
            removed += 1;
        }
    }
    removed
}

/// Live-in of a straight-line block given its live-out, ignoring removals
/// (used to merge branch arms after their own DCE ran).
fn block_live_in(nodes: &[Node], pool: &[u16], live_out: &HashSet<u16>, out: &mut HashSet<u16>) {
    let mut live = live_out.clone();
    let mut i = nodes.len();
    while i > 0 {
        i -= 1;
        match &nodes[i] {
            Node::Op(op) => {
                if let Some(d) = op_dst(op) {
                    live.remove(&d);
                }
                for r in op_read_regs(op, pool) {
                    live.insert(r);
                }
            }
            other => {
                // Nested structure: fold in everything it reads, drop
                // nothing (conservative).
                let mut sub = HashSet::new();
                subtree_reads(std::slice::from_ref(other), pool, &mut sub);
                live.extend(sub);
                match other {
                    Node::If { cond, .. } | Node::While { cond, .. } | Node::Select { cond, .. } => {
                        live.insert(*cond);
                    }
                    Node::For { var, hi_reg, step_reg, .. } => {
                        live.insert(*var);
                        live.insert(*hi_reg);
                        live.insert(*step_reg);
                    }
                    Node::Op(_) => {}
                }
            }
        }
    }
    out.extend(live);
}

/// Every register read anywhere in a subtree (headers included).
fn subtree_reads(nodes: &[Node], pool: &[u16], out: &mut HashSet<u16>) {
    for node in nodes {
        match node {
            Node::Op(op) => out.extend(op_read_regs(op, pool)),
            Node::If { cond, t, e, .. } => {
                out.insert(*cond);
                subtree_reads(t, pool, out);
                subtree_reads(e, pool, out);
            }
            Node::Select { cond, t_reg, f_reg, t, f, .. } => {
                out.insert(*cond);
                out.insert(*t_reg);
                out.insert(*f_reg);
                subtree_reads(t, pool, out);
                subtree_reads(f, pool, out);
            }
            Node::For { var, hi_reg, step_reg, hi, step, body } => {
                out.insert(*var);
                out.insert(*hi_reg);
                out.insert(*step_reg);
                subtree_reads(hi, pool, out);
                subtree_reads(step, pool, out);
                subtree_reads(body, pool, out);
            }
            Node::While { cond, c, body } => {
                out.insert(*cond);
                subtree_reads(c, pool, out);
                subtree_reads(body, pool, out);
            }
        }
    }
}

/// Record `r` as a loop live-in unless every path already wrote it.
fn livein_rd(r: u16, written: &HashSet<u16>, livein: &mut HashSet<u16>) {
    if !written.contains(&r) {
        livein.insert(r);
    }
}

/// Walk a subtree in execution order, recording registers read before any
/// guaranteed write. `written` holds registers written on every path since
/// the scan began; writes under a zero-or-more-trip construct (a nested loop
/// body) are not guaranteed to happen and stay out of it.
fn livein_scan(nodes: &[Node], pool: &[u16], written: &mut HashSet<u16>, livein: &mut HashSet<u16>) {
    for node in nodes {
        match node {
            Node::Op(op) => {
                for r in op_read_regs(op, pool) {
                    livein_rd(r, written, livein);
                }
                if let Some(d) = op_dst(op) {
                    written.insert(d);
                }
            }
            Node::If { cond, t, e, .. } => {
                livein_rd(*cond, written, livein);
                let mut wt = written.clone();
                livein_scan(t, pool, &mut wt, livein);
                let mut we = written.clone();
                livein_scan(e, pool, &mut we, livein);
                *written = wt.intersection(&we).copied().collect();
            }
            Node::Select { cond, dst, t_reg, f_reg, t, f } => {
                livein_rd(*cond, written, livein);
                let mut wt = written.clone();
                livein_scan(t, pool, &mut wt, livein);
                livein_rd(*t_reg, &wt, livein);
                let mut wf = written.clone();
                livein_scan(f, pool, &mut wf, livein);
                livein_rd(*f_reg, &wf, livein);
                *written = wt.intersection(&wf).copied().collect();
                written.insert(*dst);
            }
            Node::For { var, hi_reg, step_reg, hi, step, body } => {
                // The bound block runs whenever the header is reached.
                livein_scan(hi, pool, written, livein);
                livein_rd(*var, written, livein);
                livein_rd(*hi_reg, written, livein);
                // Body, step block and increment run zero or more times:
                // collect their reads but discard their writes.
                let mut wb = written.clone();
                livein_scan(body, pool, &mut wb, livein);
                livein_scan(step, pool, &mut wb, livein);
                livein_rd(*var, &wb, livein);
                livein_rd(*step_reg, &wb, livein);
            }
            Node::While { cond, c, body } => {
                livein_scan(c, pool, written, livein);
                livein_rd(*cond, written, livein);
                let mut wb = written.clone();
                livein_scan(body, pool, &mut wb, livein);
            }
        }
    }
}

/// Registers one `For` iteration reads before writing, in VM order: bound
/// block, bound check, body, step block, increment. These are the loop's
/// carried dependencies; everything else written inside is rebound fresh
/// each iteration and may change bank freely.
fn for_livein(
    var: u16,
    hi_reg: u16,
    step_reg: u16,
    hi: &[Node],
    step: &[Node],
    body: &[Node],
    pool: &[u16],
) -> HashSet<u16> {
    let mut written = HashSet::new();
    let mut livein = HashSet::new();
    livein_scan(hi, pool, &mut written, &mut livein);
    livein_rd(var, &written, &mut livein);
    livein_rd(hi_reg, &written, &mut livein);
    livein_scan(body, pool, &mut written, &mut livein);
    livein_scan(step, pool, &mut written, &mut livein);
    livein_rd(var, &written, &mut livein);
    livein_rd(step_reg, &written, &mut livein);
    livein
}

/// Registers one `While` iteration reads before writing (condition block,
/// condition check, then body).
fn while_livein(cond: u16, c: &[Node], body: &[Node], pool: &[u16]) -> HashSet<u16> {
    let mut written = HashSet::new();
    let mut livein = HashSet::new();
    livein_scan(c, pool, &mut written, &mut livein);
    livein_rd(cond, &written, &mut livein);
    livein_scan(body, pool, &mut written, &mut livein);
    livein
}

// ---------------------------------------------------------------------------
// Typed-bank lowering
// ---------------------------------------------------------------------------

/// Flow-sensitive bank state of one register during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// Never written on this path (and not seeded).
    Unset,
    /// Written with different banks on merging paths, or unknowable after a
    /// loop; any read fails the lowering.
    Conflict,
    Known(Bank),
}

struct Lower<'a> {
    prog: &'a Program,
    bc: &'a KernelBytecode,
    ty: Vec<Ty>,
    code: Vec<TOp>,
    pool: Vec<u16>,
    nregs: u16,
}

/// Lower the optimized stream onto typed banks. `None` when any register's
/// tag cannot be proven stable — the untyped optimized stream runs instead.
fn lower_typed(prog: &Program, bc: &KernelBytecode, prelude: &[Op], root: &[Node]) -> Option<TypedKernel> {
    let mut lw =
        Lower { prog, bc, ty: vec![Ty::Unset; bc.nregs as usize], code: Vec::new(), pool: Vec::new(), nregs: bc.nregs };
    // Seeds: constants by tag, scalars by declared type, axis registers
    // (written `Value::I` by the launch prologue each warp) as integers.
    for &(r, v) in &bc.const_init {
        lw.ty[r as usize] = Ty::Known(match v {
            Value::F(_) => Bank::F,
            Value::I(_) => Bank::I,
            Value::B(_) => Bank::B,
        });
    }
    let mut warp_imports: Vec<(u16, Bank)> = Vec::new();
    let mut launch_imports: Vec<(u16, Bank)> = Vec::new();
    for &(slot, r) in &bc.scal_init_launch {
        let b = if prog.scalars[slot as usize].is_float { Bank::F } else { Bank::I };
        lw.ty[r as usize] = Ty::Known(b);
        launch_imports.push((r, b));
    }
    for &(slot, r) in &bc.scal_init_warp {
        let b = if prog.scalars[slot as usize].is_float { Bank::F } else { Bank::I };
        lw.ty[r as usize] = Ty::Known(b);
        warp_imports.push((r, b));
    }
    // Axis registers are exactly the scalar registers not covered above;
    // `axis_regs[1]` aliases register 0 on 1-D kernels, so only seed slots
    // still unset (a genuine second axis is always unseeded).
    for &r in &bc.axis_regs {
        if lw.ty[r as usize] == Ty::Unset {
            lw.ty[r as usize] = Ty::Known(Bank::I);
            warp_imports.push((r, Bank::I));
        }
    }
    // The prelude computes on `Value`s once per launch; only its bank
    // effects matter here — results enter the typed file as imports.
    for op in prelude {
        let (dst, b) = prelude_bank(&lw.ty, bc, op)?;
        lw.ty[dst as usize] = Ty::Known(b);
        launch_imports.push((dst, b));
    }
    for &(r, _) in &bc.const_init {
        launch_imports.push((
            r,
            match lw.ty[r as usize] {
                Ty::Known(b) => b,
                _ => return None,
            },
        ));
    }
    launch_imports.sort_by_key(|&(r, _)| r);
    launch_imports.dedup_by_key(|&mut (r, _)| r);
    warp_imports.sort_by_key(|&(r, _)| r);
    warp_imports.dedup_by_key(|&mut (r, _)| r);

    lw.block(root)?;

    let mut red_exports = Vec::new();
    for &r in &bc.red_scalar_regs {
        match lw.ty[r as usize] {
            Ty::Known(b) => red_exports.push((r, b)),
            _ => return None,
        }
    }
    Some(TypedKernel { code: lw.code, pool: lw.pool, nregs: lw.nregs, launch_imports, warp_imports, red_exports })
}

/// Result bank of a prelude op from its operand banks (no code emission —
/// the prelude itself stays untyped). Mirrors the lowering rules exactly.
fn prelude_bank(ty: &[Ty], bc: &KernelBytecode, op: &Op) -> Option<(u16, Bank)> {
    let known = |r: u16| match ty[r as usize] {
        Ty::Known(b) => Some(b),
        _ => None,
    };
    match *op {
        Op::ConstF { dst, .. } => Some((dst, Bank::F)),
        Op::ConstI { dst, .. } => Some((dst, Bank::I)),
        Op::ConstB { dst, .. } => Some((dst, Bank::B)),
        Op::Copy { dst, src } => Some((dst, known(src)?)),
        Op::AsInt { dst, a } | Op::CastI { dst, a } => {
            known(a)?;
            Some((dst, Bank::I))
        }
        Op::CastF { dst, a } => {
            known(a)?;
            Some((dst, Bank::F))
        }
        Op::Un { dst, op: u, a } => {
            let ab = known(a)?;
            Some((
                dst,
                match u {
                    UnOp::Neg => {
                        if ab == Bank::I {
                            Bank::I
                        } else {
                            Bank::F
                        }
                    }
                    UnOp::Not => Bank::B,
                },
            ))
        }
        Op::Bin { dst, op: b, a, b: rb } => {
            let (ab, bb) = (known(a)?, known(rb)?);
            let both_int = ab != Bank::F && bb != Bank::F;
            Some((
                dst,
                match b {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Min | BinOp::Max => {
                        if both_int {
                            Bank::I
                        } else {
                            Bank::F
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => Bank::B,
                    BinOp::And | BinOp::Or => Bank::B,
                    BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => Bank::I,
                },
            ))
        }
        Op::Intrin { dst, f, args_off, args_len } => {
            let mut abs_int = false;
            for k in 0..args_len as usize {
                let ab = known(bc.pool[args_off as usize + k])?;
                if k == 0 && f == Intrin::Abs && ab == Bank::I {
                    abs_int = true;
                }
            }
            Some((dst, if abs_int { Bank::I } else { Bank::F }))
        }
        _ => None,
    }
}

impl Lower<'_> {
    fn known(&self, r: u16) -> Option<Bank> {
        match self.ty[r as usize] {
            Ty::Known(b) => Some(b),
            _ => None,
        }
    }

    /// Mint a fresh typed register of bank `b`.
    fn mint(&mut self, b: Bank) -> Option<u16> {
        if self.nregs == u16::MAX {
            return None;
        }
        let r = self.nregs;
        self.nregs += 1;
        self.ty.push(Ty::Known(b));
        Some(r)
    }

    /// Read register `r` as bank `want`, emitting a conversion into a fresh
    /// register when the banks differ. The conversions replicate
    /// `Value::as_f`/`as_i`/`as_b` bit-exactly.
    fn read_as(&mut self, r: u16, want: Bank, out: &mut Vec<TOp>) -> Option<u16> {
        let have = self.known(r)?;
        if have == want {
            return Some(r);
        }
        let m = self.mint(want)?;
        out.push(match (have, want) {
            (Bank::F, Bank::I) => TOp::FtoI { dst: m, a: r },
            (Bank::I, Bank::F) => TOp::ItoF { dst: m, a: r },
            (Bank::B, Bank::I) => TOp::BtoI { dst: m, a: r },
            (Bank::B, Bank::F) => TOp::BtoF { dst: m, a: r },
            (Bank::F, Bank::B) => TOp::FtoB { dst: m, a: r },
            (Bank::I, Bank::B) => TOp::ItoB { dst: m, a: r },
            _ => unreachable!(),
        });
        Some(m)
    }

    fn set_ty(&mut self, r: u16, b: Bank) {
        self.ty[r as usize] = Ty::Known(b);
    }

    fn block(&mut self, nodes: &[Node]) -> Option<()> {
        for node in nodes {
            match node {
                Node::Op(op) => self.op(op)?,
                Node::If { cond, site, t, e } => {
                    let mut pre_ops = Vec::new();
                    let cb = self.read_as(*cond, Bank::B, &mut pre_ops)?;
                    self.code.extend(pre_ops);
                    let at = self.code.len();
                    self.code.push(TOp::If { cond: cb, site: *site, then_len: 0, else_len: 0 });
                    let snap = self.ty.clone();
                    let t0 = self.code.len();
                    self.block(t)?;
                    let tl = (self.code.len() - t0) as u32;
                    let ty_t = std::mem::replace(&mut self.ty, {
                        let mut s = snap.clone();
                        s.resize(self.nregs as usize, Ty::Conflict);
                        s
                    });
                    let e0 = self.code.len();
                    self.block(e)?;
                    let el = (self.code.len() - e0) as u32;
                    self.merge_arms(&ty_t);
                    if let TOp::If { then_len, else_len, .. } = &mut self.code[at] {
                        *then_len = tl;
                        *else_len = el;
                    }
                }
                Node::Select { cond, dst, t_reg, f_reg, t, f } => {
                    let mut pre_ops = Vec::new();
                    let cb = self.read_as(*cond, Bank::B, &mut pre_ops)?;
                    self.code.extend(pre_ops);
                    let at = self.code.len();
                    self.code.push(TOp::Select {
                        cond: cb,
                        dst: *dst,
                        t_reg: *t_reg,
                        f_reg: *f_reg,
                        bank: Bank::I,
                        t_len: 0,
                        f_len: 0,
                    });
                    let snap = self.ty.clone();
                    let t0 = self.code.len();
                    self.block(t)?;
                    let tl = (self.code.len() - t0) as u32;
                    let tb = self.known(*t_reg)?;
                    let ty_t = std::mem::replace(&mut self.ty, {
                        let mut s = snap.clone();
                        s.resize(self.nregs as usize, Ty::Conflict);
                        s
                    });
                    let f0 = self.code.len();
                    self.block(f)?;
                    let fl = (self.code.len() - f0) as u32;
                    let fb = self.known(*f_reg)?;
                    if tb != fb {
                        return None;
                    }
                    self.merge_arms(&ty_t);
                    self.set_ty(*dst, tb);
                    if let TOp::Select { bank, t_len, f_len, .. } = &mut self.code[at] {
                        *bank = tb;
                        *t_len = tl;
                        *f_len = fl;
                    }
                }
                Node::For { var, hi_reg, step_reg, hi, step, body } => {
                    if self.known(*var)? != Bank::I {
                        return None;
                    }
                    let livein = for_livein(*var, *hi_reg, *step_reg, hi, step, body, &self.bc.pool);
                    let at = self.code.len();
                    self.code.push(TOp::For {
                        var: *var,
                        hi_reg: *hi_reg,
                        step_reg: *step_reg,
                        hi_len: 0,
                        step_len: 0,
                        body_len: 0,
                    });
                    let snap = self.ty.clone();
                    // Bound blocks re-run per iteration; a non-integer bound
                    // register gets a conversion appended to its block (the
                    // untyped engine re-converts via `as_i` per check too).
                    let h0 = self.code.len();
                    self.block(hi)?;
                    let mut conv = Vec::new();
                    let hr = self.read_as(*hi_reg, Bank::I, &mut conv)?;
                    self.code.extend(conv);
                    let hl = (self.code.len() - h0) as u32;
                    let s0 = self.code.len();
                    self.block(step)?;
                    let mut conv = Vec::new();
                    let sr = self.read_as(*step_reg, Bank::I, &mut conv)?;
                    self.code.extend(conv);
                    let sl = (self.code.len() - s0) as u32;
                    let b0 = self.code.len();
                    self.block(body)?;
                    let bl = (self.code.len() - b0) as u32;
                    self.loop_stabilize(&snap, &livein)?;
                    // The implicit increment writes the integer bank each
                    // iteration; the check reads it back. The variable must
                    // not have been rebound to another bank inside.
                    if self.ty[*var as usize] != snap[*var as usize] {
                        return None;
                    }
                    if let TOp::For { hi_reg, step_reg, hi_len, step_len, body_len, .. } = &mut self.code[at] {
                        *hi_reg = hr;
                        *step_reg = sr;
                        *hi_len = hl;
                        *step_len = sl;
                        *body_len = bl;
                    }
                }
                Node::While { cond, c, body } => {
                    let livein = while_livein(*cond, c, body, &self.bc.pool);
                    let at = self.code.len();
                    self.code.push(TOp::While { cond: 0, cond_len: 0, body_len: 0 });
                    let snap = self.ty.clone();
                    let c0 = self.code.len();
                    self.block(c)?;
                    let mut conv = Vec::new();
                    let cb = self.read_as(*cond, Bank::B, &mut conv)?;
                    self.code.extend(conv);
                    let cl = (self.code.len() - c0) as u32;
                    let b0 = self.code.len();
                    self.block(body)?;
                    let bl = (self.code.len() - b0) as u32;
                    self.loop_stabilize(&snap, &livein)?;
                    if let TOp::While { cond, cond_len, body_len } = &mut self.code[at] {
                        *cond = cb;
                        *cond_len = cl;
                        *body_len = bl;
                    }
                }
            }
        }
        Some(())
    }

    /// Merge branch-arm bank states: equal stays, anything else conflicts.
    /// (`self.ty` currently holds the else/false arm's out-state.)
    fn merge_arms(&mut self, ty_t: &[Ty]) {
        for r in 0..self.ty.len() {
            let a = ty_t.get(r).copied().unwrap_or(Ty::Conflict);
            if self.ty[r] != a {
                self.ty[r] = Ty::Conflict;
            }
        }
    }

    /// After lowering a loop: a loop-carried register (read before written
    /// in one iteration) must have kept its bank — iteration 2 re-enters
    /// with iteration 1's out-state, so a bank change there is fatal. A
    /// register rebound fresh each iteration (temps the compiler reuses
    /// across statements, possibly with a different bank than it held
    /// before the loop) is fine while the loop runs, but becomes
    /// unknowable after it: a zero-trip loop leaves the pre-loop value.
    fn loop_stabilize(&mut self, snap: &[Ty], livein: &HashSet<u16>) -> Option<()> {
        for (r, &pre) in snap.iter().enumerate() {
            if self.ty[r] == pre {
                continue;
            }
            if livein.contains(&(r as u16)) {
                return None;
            }
            self.ty[r] = Ty::Conflict;
        }
        // Conversion registers minted inside the loop body re-run each
        // iteration before use; nothing to do for them.
        Some(())
    }

    fn op(&mut self, op: &Op) -> Option<()> {
        let mut pre = Vec::new();
        let emit = match *op {
            Op::ConstF { dst, v } => {
                self.set_ty(dst, Bank::F);
                TOp::ConstF { dst, v }
            }
            Op::ConstI { dst, v } => {
                self.set_ty(dst, Bank::I);
                TOp::ConstI { dst, v }
            }
            Op::ConstB { dst, v } => {
                self.set_ty(dst, Bank::B);
                TOp::ConstB { dst, v }
            }
            Op::Copy { dst, src } => {
                let b = self.known(src)?;
                self.set_ty(dst, b);
                match b {
                    Bank::F => TOp::CopyF { dst, src },
                    Bank::I => TOp::CopyI { dst, src },
                    Bank::B => TOp::CopyB { dst, src },
                }
            }
            Op::AsInt { dst, a } | Op::CastI { dst, a } => {
                let b = self.known(a)?;
                self.set_ty(dst, Bank::I);
                match b {
                    Bank::F => TOp::FtoI { dst, a },
                    Bank::I => TOp::CopyI { dst, src: a },
                    Bank::B => TOp::BtoI { dst, a },
                }
            }
            Op::CastF { dst, a } => {
                let b = self.known(a)?;
                self.set_ty(dst, Bank::F);
                match b {
                    Bank::F => TOp::CopyF { dst, src: a },
                    Bank::I => TOp::ItoF { dst, a },
                    Bank::B => TOp::BtoF { dst, a },
                }
            }
            Op::Un { dst, op: u, a } => match u {
                UnOp::Neg => match self.known(a)? {
                    Bank::I => {
                        self.set_ty(dst, Bank::I);
                        TOp::NegI { dst, a }
                    }
                    Bank::F => {
                        self.set_ty(dst, Bank::F);
                        TOp::NegF { dst, a }
                    }
                    Bank::B => {
                        let m = self.read_as(a, Bank::F, &mut pre)?;
                        self.set_ty(dst, Bank::F);
                        TOp::NegF { dst, a: m }
                    }
                },
                UnOp::Not => {
                    let m = self.read_as(a, Bank::B, &mut pre)?;
                    self.set_ty(dst, Bank::B);
                    TOp::NotB { dst, a: m }
                }
            },
            Op::Bin { dst, op: b, a, b: rb } => {
                let (ab, bb) = (self.known(a)?, self.known(rb)?);
                let both_int = ab != Bank::F && bb != Bank::F;
                match b {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Min | BinOp::Max => {
                        if both_int {
                            let ra = self.read_as(a, Bank::I, &mut pre)?;
                            let rbb = self.read_as(rb, Bank::I, &mut pre)?;
                            self.set_ty(dst, Bank::I);
                            TOp::ArithI { dst, op: b, a: ra, b: rbb }
                        } else {
                            let ra = self.read_as(a, Bank::F, &mut pre)?;
                            let rbb = self.read_as(rb, Bank::F, &mut pre)?;
                            self.set_ty(dst, Bank::F);
                            TOp::ArithF { dst, op: b, a: ra, b: rbb }
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        if both_int {
                            let ra = self.read_as(a, Bank::I, &mut pre)?;
                            let rbb = self.read_as(rb, Bank::I, &mut pre)?;
                            self.set_ty(dst, Bank::B);
                            TOp::CmpI { dst, op: b, a: ra, b: rbb }
                        } else {
                            let ra = self.read_as(a, Bank::F, &mut pre)?;
                            let rbb = self.read_as(rb, Bank::F, &mut pre)?;
                            self.set_ty(dst, Bank::B);
                            TOp::CmpF { dst, op: b, a: ra, b: rbb }
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        let ra = self.read_as(a, Bank::B, &mut pre)?;
                        let rbb = self.read_as(rb, Bank::B, &mut pre)?;
                        self.set_ty(dst, Bank::B);
                        if b == BinOp::And {
                            TOp::AndB { dst, a: ra, b: rbb }
                        } else {
                            TOp::OrB { dst, a: ra, b: rbb }
                        }
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
                        let ra = self.read_as(a, Bank::I, &mut pre)?;
                        let rbb = self.read_as(rb, Bank::I, &mut pre)?;
                        self.set_ty(dst, Bank::I);
                        TOp::ArithI { dst, op: b, a: ra, b: rbb }
                    }
                }
            }
            Op::Intrin { dst, f, args_off, args_len } => {
                if f == Intrin::Abs && self.known(self.bc.pool[args_off as usize])? == Bank::I {
                    let a = self.bc.pool[args_off as usize];
                    self.set_ty(dst, Bank::I);
                    TOp::AbsI { dst, a }
                } else {
                    let off = self.pool.len() as u32;
                    for k in 0..args_len as usize {
                        let r = self.bc.pool[args_off as usize + k];
                        let m = self.read_as(r, Bank::F, &mut pre)?;
                        self.pool.push(m);
                    }
                    self.set_ty(dst, Bank::F);
                    TOp::IntrinF { dst, f, args_off: off, args_len }
                }
            }
            Op::Ops { n } => TOp::Ops { n },
            Op::Load { dst, arr, site, idx_off, idx_len, fast } => {
                let off = self.pool.len() as u32;
                for k in 0..idx_len as usize {
                    let r = self.bc.pool[idx_off as usize + k];
                    let m = self.read_as(r, Bank::I, &mut pre)?;
                    self.pool.push(m);
                }
                let dst_f = self.prog.array_elem(ArrayId(arr as u32)).is_float();
                self.set_ty(dst, if dst_f { Bank::F } else { Bank::I });
                TOp::Load { dst, dst_f, arr, site, idx_off: off, idx_len, fast }
            }
            Op::Store { src, arr, site, idx_off, idx_len, fast } => {
                let src_f = self.prog.array_elem(ArrayId(arr as u32)).is_float();
                let rs = self.read_as(src, if src_f { Bank::F } else { Bank::I }, &mut pre)?;
                let off = self.pool.len() as u32;
                for k in 0..idx_len as usize {
                    let r = self.bc.pool[idx_off as usize + k];
                    let m = self.read_as(r, Bank::I, &mut pre)?;
                    self.pool.push(m);
                }
                TOp::Store { src: rs, src_f, arr, site, idx_off: off, idx_len, fast }
            }
            Op::CritEnter => TOp::CritEnter,
            Op::CritExit => TOp::CritExit,
            Op::If { .. } | Op::Select { .. } | Op::For { .. } | Op::While { .. } => {
                unreachable!("headers arrive as structured nodes")
            }
        };
        self.code.extend(pre);
        self.code.push(emit);
        Some(())
    }
}

// ---------------------------------------------------------------------------
// Typed execution
// ---------------------------------------------------------------------------

/// Run the scalar prelude once for this scratch: every op reads uniform
/// registers, so lane 0 is evaluated and the result broadcast. Pure register
/// ops charge nothing at execution time (their cost lives in the stream's
/// `Ops` instructions, which stay in the body), so this is accounting-free.
pub(crate) fn run_prelude(ok: &OptKernel, s: &mut WarpScratch) {
    let w = s.warp;
    fn get(s: &WarpScratch, w: usize, r: u16) -> Value {
        s.regs[r as usize * w]
    }
    for op in &ok.prelude {
        let (dst, v) = match *op {
            Op::ConstF { dst, v } => (dst, Value::F(v)),
            Op::ConstI { dst, v } => (dst, Value::I(v)),
            Op::ConstB { dst, v } => (dst, Value::B(v)),
            Op::Copy { dst, src } => (dst, get(s, w, src)),
            Op::AsInt { dst, a } | Op::CastI { dst, a } => (dst, Value::I(get(s, w, a).as_i())),
            Op::CastF { dst, a } => (dst, Value::F(get(s, w, a).as_f())),
            Op::Un { dst, op: u, a } => {
                let x = get(s, w, a);
                (
                    dst,
                    match u {
                        UnOp::Neg => match x {
                            Value::I(i) => Value::I(-i),
                            v => Value::F(-v.as_f()),
                        },
                        UnOp::Not => Value::B(!x.as_b()),
                    },
                )
            }
            Op::Bin { dst, op: b, a, b: rb } => (dst, eval_bin(b, get(s, w, a), get(s, w, rb))),
            Op::Intrin { dst, f, args_off, args_len } => {
                let mut vals = [Value::I(0); 4];
                for (k, v) in vals.iter_mut().enumerate().take(args_len as usize) {
                    *v = get(s, w, ok.bc.pool[args_off as usize + k]);
                }
                (dst, eval_intrin(f, &vals[..args_len as usize]))
            }
            _ => unreachable!("prelude holds only whitelisted pure register ops"),
        };
        let dof = dst as usize * w;
        for l in 0..w {
            s.regs[dof + l] = v;
        }
    }
}

/// `WarpScratch::begin_launch` plus the optimizer's launch-scope work: run
/// the scalar prelude, and when a typed lowering exists, size the banks and
/// import every launch-uniform register into them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn begin_launch_opt(
    ok: &OptKernel,
    s: &mut WarpScratch,
    warp: usize,
    site_count: usize,
    priv_shapes: &[(acceval_sim::ElemType, usize)],
    base_env: &[Value],
    segment_bytes: u32,
) {
    s.begin_launch(&ok.bc, warp, site_count, priv_shapes, base_env, segment_bytes);
    run_prelude(ok, s);
    if let Some(t) = &ok.typed {
        let n = t.nregs as usize * warp;
        s.fregs.clear();
        s.fregs.resize(n, 0.0);
        s.iregs.clear();
        s.iregs.resize(n, 0);
        s.bregs.clear();
        s.bregs.resize(n, false);
        for &(r, b) in &t.launch_imports {
            let ro = r as usize * warp;
            for l in 0..warp {
                let v = s.regs[ro + l];
                match b {
                    Bank::F => s.fregs[ro + l] = v.as_f(),
                    Bank::I => s.iregs[ro + l] = v.as_i(),
                    Bank::B => s.bregs[ro + l] = v.as_b(),
                }
            }
        }
    }
}

/// Execute one warp through the optimized kernel: the typed VM when the
/// lowering succeeded, the plain VM over the optimized untyped stream
/// otherwise. Returns the critical-section atomic count, like `exec_warp`.
pub(crate) fn exec_warp_opt(ok: &OptKernel, s: &mut WarpScratch, ctx: &ExecCtx<'_>, mask: u64, tid_base: u64) -> u64 {
    let Some(t) = &ok.typed else {
        return exec_warp(&ok.bc, s, ctx, mask, tid_base);
    };
    let warp = s.warp;
    // Per-warp state enters the banks here: `begin_warp` re-broadcast the
    // warp scalars and the launch loop wrote this warp's axis values into
    // `regs` just before this call.
    for &(r, b) in &t.warp_imports {
        let ro = r as usize * warp;
        for l in 0..warp {
            let v = s.regs[ro + l];
            match b {
                Bank::F => s.fregs[ro + l] = v.as_f(),
                Bank::I => s.iregs[ro + l] = v.as_i(),
                Bank::B => s.bregs[ro + l] = v.as_b(),
            }
        }
    }
    let mut vm = TVm {
        code: &t.code,
        pool: &t.pool,
        w: warp,
        f: &mut s.fregs,
        i: &mut s.iregs,
        b: &mut s.bregs,
        lane_ops: &mut s.lane_ops,
        traces: &mut s.traces,
        touched: &mut s.site_touched,
        fast_rows: &mut s.fast_rows,
        priv_bufs: &mut s.priv_bufs,
        ctx,
        tid_base,
        in_critical: false,
        atomic: 0,
    };
    if ok.bc.serial_lanes {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros();
            m &= m - 1;
            vm.run(0, t.code.len(), 1u64 << l);
        }
    } else {
        vm.run(0, t.code.len(), mask);
    }
    let atomic = vm.atomic;
    // The reduction fold reads `regs`; hand the typed results back for every
    // lane (inactive lanes carry the warp-init broadcast, as untyped does).
    for &(r, b) in &t.red_exports {
        let ro = r as usize * warp;
        for l in 0..warp {
            s.regs[ro + l] = match b {
                Bank::F => Value::F(s.fregs[ro + l]),
                Bank::I => Value::I(s.iregs[ro + l]),
                Bank::B => Value::B(s.bregs[ro + l]),
            };
        }
    }
    atomic
}

/// The typed register VM: `Vm::run` with the `Value` match moved to compile
/// time. Control flow, masking, accounting, trace recording, and every
/// panic message mirror the untyped VM instruction for instruction.
struct TVm<'a, 'b> {
    code: &'a [TOp],
    pool: &'a [u16],
    w: usize,
    f: &'a mut [f64],
    i: &'a mut [i64],
    b: &'a mut [bool],
    lane_ops: &'a mut [u64],
    traces: &'a mut [acceval_sim::SiteWarpTrace],
    touched: &'a mut [bool],
    fast_rows: &'a mut [u64],
    priv_bufs: &'a mut [acceval_sim::Buffer],
    ctx: &'a ExecCtx<'b>,
    tid_base: u64,
    in_critical: bool,
    atomic: u64,
}

impl TVm<'_, '_> {
    fn run(&mut self, start: usize, end: usize, mask: u64) {
        let w = self.w;
        let mut pc = start;
        while pc < end {
            match self.code[pc] {
                TOp::ConstF { dst, v } => {
                    let dof = dst as usize * w;
                    lanes!(w, mask, l, {
                        self.f[dof + l] = v;
                    });
                    pc += 1;
                }
                TOp::ConstI { dst, v } => {
                    let dof = dst as usize * w;
                    lanes!(w, mask, l, {
                        self.i[dof + l] = v;
                    });
                    pc += 1;
                }
                TOp::ConstB { dst, v } => {
                    let dof = dst as usize * w;
                    lanes!(w, mask, l, {
                        self.b[dof + l] = v;
                    });
                    pc += 1;
                }
                TOp::CopyF { dst, src } => {
                    let (dof, so) = (dst as usize * w, src as usize * w);
                    lanes!(w, mask, l, {
                        self.f[dof + l] = self.f[so + l];
                    });
                    pc += 1;
                }
                TOp::CopyI { dst, src } => {
                    let (dof, so) = (dst as usize * w, src as usize * w);
                    lanes!(w, mask, l, {
                        self.i[dof + l] = self.i[so + l];
                    });
                    pc += 1;
                }
                TOp::CopyB { dst, src } => {
                    let (dof, so) = (dst as usize * w, src as usize * w);
                    lanes!(w, mask, l, {
                        self.b[dof + l] = self.b[so + l];
                    });
                    pc += 1;
                }
                TOp::FtoI { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.i[dof + l] = self.f[ao + l] as i64;
                    });
                    pc += 1;
                }
                TOp::ItoF { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.f[dof + l] = self.i[ao + l] as f64;
                    });
                    pc += 1;
                }
                TOp::BtoI { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.i[dof + l] = self.b[ao + l] as i64;
                    });
                    pc += 1;
                }
                TOp::BtoF { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.f[dof + l] = self.b[ao + l] as i64 as f64;
                    });
                    pc += 1;
                }
                TOp::FtoB { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.b[dof + l] = self.f[ao + l] != 0.0;
                    });
                    pc += 1;
                }
                TOp::ItoB { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.b[dof + l] = self.i[ao + l] != 0;
                    });
                    pc += 1;
                }
                TOp::NegF { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.f[dof + l] = -self.f[ao + l];
                    });
                    pc += 1;
                }
                TOp::NegI { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.i[dof + l] = -self.i[ao + l];
                    });
                    pc += 1;
                }
                TOp::NotB { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.b[dof + l] = !self.b[ao + l];
                    });
                    pc += 1;
                }
                TOp::AbsI { dst, a } => {
                    let (dof, ao) = (dst as usize * w, a as usize * w);
                    lanes!(w, mask, l, {
                        self.i[dof + l] = self.i[ao + l].abs();
                    });
                    pc += 1;
                }
                TOp::ArithF { dst, op, a, b } => {
                    let (dof, ao, bo) = (dst as usize * w, a as usize * w, b as usize * w);
                    macro_rules! bf {
                        ($e:expr) => {{
                            lanes!(w, mask, l, {
                                let x = self.f[ao + l];
                                let y = self.f[bo + l];
                                self.f[dof + l] = $e(x, y);
                            });
                        }};
                    }
                    match op {
                        BinOp::Add => bf!(|x: f64, y: f64| x + y),
                        BinOp::Sub => bf!(|x: f64, y: f64| x - y),
                        BinOp::Mul => bf!(|x: f64, y: f64| x * y),
                        BinOp::Div => bf!(|x: f64, y: f64| x / y),
                        BinOp::Rem => bf!(|x: f64, y: f64| x % y),
                        BinOp::Min => bf!(|x: f64, y: f64| x.min(y)),
                        BinOp::Max => bf!(|x: f64, y: f64| x.max(y)),
                        _ => unreachable!("non-arith op in ArithF"),
                    }
                    pc += 1;
                }
                TOp::ArithI { dst, op, a, b } => {
                    let (dof, ao, bo) = (dst as usize * w, a as usize * w, b as usize * w);
                    macro_rules! bi {
                        ($e:expr) => {{
                            lanes!(w, mask, l, {
                                let x = self.i[ao + l];
                                let y = self.i[bo + l];
                                self.i[dof + l] = $e(x, y);
                            });
                        }};
                    }
                    match op {
                        BinOp::Add => bi!(|x: i64, y: i64| x.wrapping_add(y)),
                        BinOp::Sub => bi!(|x: i64, y: i64| x.wrapping_sub(y)),
                        BinOp::Mul => bi!(|x: i64, y: i64| x.wrapping_mul(y)),
                        BinOp::Div => bi!(|x: i64, y: i64| x / y),
                        BinOp::Rem => bi!(|x: i64, y: i64| x % y),
                        BinOp::Min => bi!(|x: i64, y: i64| x.min(y)),
                        BinOp::Max => bi!(|x: i64, y: i64| x.max(y)),
                        BinOp::Shl => bi!(|x: i64, y: i64| x << y),
                        BinOp::Shr => bi!(|x: i64, y: i64| x >> y),
                        BinOp::BitAnd => bi!(|x: i64, y: i64| x & y),
                        BinOp::BitOr => bi!(|x: i64, y: i64| x | y),
                        BinOp::BitXor => bi!(|x: i64, y: i64| x ^ y),
                        _ => unreachable!("non-arith op in ArithI"),
                    }
                    pc += 1;
                }
                TOp::CmpF { dst, op, a, b } => {
                    let (dof, ao, bo) = (dst as usize * w, a as usize * w, b as usize * w);
                    macro_rules! cf {
                        ($e:expr) => {{
                            lanes!(w, mask, l, {
                                let x = self.f[ao + l];
                                let y = self.f[bo + l];
                                self.b[dof + l] = $e(x, y);
                            });
                        }};
                    }
                    match op {
                        BinOp::Lt => cf!(|x: f64, y: f64| x < y),
                        BinOp::Le => cf!(|x: f64, y: f64| x <= y),
                        BinOp::Gt => cf!(|x: f64, y: f64| x > y),
                        BinOp::Ge => cf!(|x: f64, y: f64| x >= y),
                        BinOp::Eq => cf!(|x: f64, y: f64| x == y),
                        BinOp::Ne => cf!(|x: f64, y: f64| x != y),
                        _ => unreachable!("non-cmp op in CmpF"),
                    }
                    pc += 1;
                }
                TOp::CmpI { dst, op, a, b } => {
                    let (dof, ao, bo) = (dst as usize * w, a as usize * w, b as usize * w);
                    macro_rules! ci {
                        ($e:expr) => {{
                            lanes!(w, mask, l, {
                                let x = self.i[ao + l];
                                let y = self.i[bo + l];
                                self.b[dof + l] = $e(x, y);
                            });
                        }};
                    }
                    match op {
                        BinOp::Lt => ci!(|x: i64, y: i64| x < y),
                        BinOp::Le => ci!(|x: i64, y: i64| x <= y),
                        BinOp::Gt => ci!(|x: i64, y: i64| x > y),
                        BinOp::Ge => ci!(|x: i64, y: i64| x >= y),
                        BinOp::Eq => ci!(|x: i64, y: i64| x == y),
                        BinOp::Ne => ci!(|x: i64, y: i64| x != y),
                        _ => unreachable!("non-cmp op in CmpI"),
                    }
                    pc += 1;
                }
                TOp::AndB { dst, a, b } => {
                    let (dof, ao, bo) = (dst as usize * w, a as usize * w, b as usize * w);
                    lanes!(w, mask, l, {
                        self.b[dof + l] = self.b[ao + l] & self.b[bo + l];
                    });
                    pc += 1;
                }
                TOp::OrB { dst, a, b } => {
                    let (dof, ao, bo) = (dst as usize * w, a as usize * w, b as usize * w);
                    lanes!(w, mask, l, {
                        self.b[dof + l] = self.b[ao + l] | self.b[bo + l];
                    });
                    pc += 1;
                }
                TOp::Ops { n } => {
                    if mask == full_mask(w) {
                        for x in self.lane_ops.iter_mut() {
                            *x += n;
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            self.lane_ops[l] += n;
                        }
                    }
                    pc += 1;
                }
                TOp::IntrinF { dst, f, args_off, args_len } => {
                    let dof = dst as usize * w;
                    lanes!(w, mask, l, {
                        let mut vals = [0.0f64; 4];
                        for (k, v) in vals.iter_mut().enumerate().take(args_len as usize) {
                            *v = self.f[self.pool[args_off as usize + k] as usize * w + l];
                        }
                        self.f[dof + l] = match f {
                            Intrin::Sqrt => vals[0].sqrt(),
                            Intrin::Exp => vals[0].exp(),
                            Intrin::Log => vals[0].ln(),
                            Intrin::Pow => vals[0].powf(vals[1]),
                            Intrin::Sin => vals[0].sin(),
                            Intrin::Cos => vals[0].cos(),
                            Intrin::Floor => vals[0].floor(),
                            Intrin::Abs => vals[0].abs(),
                        };
                    });
                    pc += 1;
                }
                TOp::Load { dst, dst_f, arr, site, idx_off, idx_len, fast } => {
                    let a = arr as usize;
                    if fast >= 0 {
                        let eb = self.ctx.elem_bytes[a] as u64;
                        let base = self.ctx.base[a];
                        let strides = &self.ctx.strides[a];
                        let extents = &self.ctx.extents[a];
                        let buf = self.ctx.bufs[a];
                        if !buf.is_alloc() {
                            panic!("kernel read of unallocated device array {a}");
                        }
                        debug_assert_eq!(buf.elem_is_float(), dst_f);
                        let fo = fast as usize * w;
                        let dof = dst as usize * w;
                        let po = idx_off as usize;
                        macro_rules! load_body {
                            ($flat_of:expr) => {
                                lanes!(w, mask, l, {
                                    let flat = $flat_of(l);
                                    self.fast_rows[fo + l] = base + flat as u64 * eb;
                                    if dst_f {
                                        self.f[dof + l] = buf.get_f(flat);
                                    } else {
                                        self.i[dof + l] = buf.get_i(flat);
                                    }
                                });
                            };
                        }
                        let oob = |i: i64, d: usize| -> usize {
                            panic!(
                                "index {} out of bounds (dim {} extent {}) on array {}",
                                i,
                                d,
                                extents[d],
                                self.ctx.prog.array_name(ArrayId(a as u32))
                            )
                        };
                        if idx_len == 1 {
                            let ro0 = self.pool[po] as usize * w;
                            let (e0, s0) = (extents[0], strides[0]);
                            load_body!(|l: usize| {
                                let i = self.i[ro0 + l];
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else {
                                    i as usize * s0
                                }
                            });
                        } else if idx_len == 2 {
                            let ro0 = self.pool[po] as usize * w;
                            let ro1 = self.pool[po + 1] as usize * w;
                            let (e0, s0) = (extents[0], strides[0]);
                            let (e1, s1) = (extents[1], strides[1]);
                            load_body!(|l: usize| {
                                let i = self.i[ro0 + l];
                                let j = self.i[ro1 + l];
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else if j < 0 || j as usize >= e1 {
                                    oob(j, 1)
                                } else {
                                    i as usize * s0 + j as usize * s1
                                }
                            });
                        } else {
                            load_body!(|l: usize| {
                                let mut flat = 0usize;
                                for d in 0..idx_len as usize {
                                    let i = self.i[self.pool[po + d] as usize * w + l];
                                    if i < 0 || i as usize >= extents[d] {
                                        oob(i, d);
                                    }
                                    flat += i as usize * strides[d];
                                }
                                flat
                            });
                        }
                        if self.in_critical {
                            self.atomic += mask.count_ones() as u64;
                        }
                    } else {
                        let dof = dst as usize * w;
                        lanes!(w, mask, l, {
                            let flat = self.flat_index(a, idx_off, idx_len, l);
                            self.account(a, flat, site, fast, l);
                            if self.ctx.priv_slot[a] >= 0 {
                                let b = &self.priv_bufs[self.ctx.priv_slot[a] as usize * w + l];
                                debug_assert_eq!(b.elem.is_float(), dst_f);
                                if dst_f {
                                    self.f[dof + l] = b.get_f(flat);
                                } else {
                                    self.i[dof + l] = b.get_i(flat);
                                }
                            } else {
                                let b = self.ctx.bufs[a];
                                if !b.is_alloc() {
                                    panic!("kernel read of unallocated device array {a}");
                                }
                                debug_assert_eq!(b.elem_is_float(), dst_f);
                                if dst_f {
                                    self.f[dof + l] = b.get_f(flat);
                                } else {
                                    self.i[dof + l] = b.get_i(flat);
                                }
                            }
                        });
                    }
                    pc += 1;
                }
                TOp::Store { src, src_f, arr, site, idx_off, idx_len, fast } => {
                    let a = arr as usize;
                    if fast >= 0 {
                        let eb = self.ctx.elem_bytes[a] as u64;
                        let base = self.ctx.base[a];
                        let strides = &self.ctx.strides[a];
                        let extents = &self.ctx.extents[a];
                        let name = self.ctx.prog.array_name(ArrayId(a as u32));
                        let buf = self.ctx.bufs[a];
                        if !buf.is_alloc() {
                            panic!("kernel write of unallocated device array {a}");
                        }
                        debug_assert_eq!(buf.elem_is_float(), src_f);
                        let fo = fast as usize * w;
                        let so = src as usize * w;
                        let po = idx_off as usize;
                        macro_rules! store_body {
                            ($flat_of:expr) => {
                                lanes!(w, mask, l, {
                                    let flat = $flat_of(l);
                                    self.fast_rows[fo + l] = base + flat as u64 * eb;
                                    if src_f {
                                        buf.set_f(flat, self.f[so + l]);
                                    } else {
                                        buf.set_i(flat, self.i[so + l]);
                                    }
                                });
                            };
                        }
                        let oob = |i: i64, d: usize| -> usize {
                            panic!("index {} out of bounds (dim {} extent {}) on array {}", i, d, extents[d], name)
                        };
                        if idx_len == 1 {
                            let ro0 = self.pool[po] as usize * w;
                            let (e0, s0) = (extents[0], strides[0]);
                            store_body!(|l: usize| {
                                let i = self.i[ro0 + l];
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else {
                                    i as usize * s0
                                }
                            });
                        } else if idx_len == 2 {
                            let ro0 = self.pool[po] as usize * w;
                            let ro1 = self.pool[po + 1] as usize * w;
                            let (e0, s0) = (extents[0], strides[0]);
                            let (e1, s1) = (extents[1], strides[1]);
                            store_body!(|l: usize| {
                                let i = self.i[ro0 + l];
                                let j = self.i[ro1 + l];
                                if i < 0 || i as usize >= e0 {
                                    oob(i, 0)
                                } else if j < 0 || j as usize >= e1 {
                                    oob(j, 1)
                                } else {
                                    i as usize * s0 + j as usize * s1
                                }
                            });
                        } else {
                            store_body!(|l: usize| {
                                let mut flat = 0usize;
                                for d in 0..idx_len as usize {
                                    let i = self.i[self.pool[po + d] as usize * w + l];
                                    if i < 0 || i as usize >= extents[d] {
                                        oob(i, d);
                                    }
                                    flat += i as usize * strides[d];
                                }
                                flat
                            });
                        }
                        if self.in_critical {
                            self.atomic += mask.count_ones() as u64;
                        }
                    } else {
                        let so = src as usize * w;
                        lanes!(w, mask, l, {
                            let flat = self.flat_index(a, idx_off, idx_len, l);
                            self.account(a, flat, site, fast, l);
                            if self.ctx.priv_slot[a] >= 0 {
                                let b = &mut self.priv_bufs[self.ctx.priv_slot[a] as usize * w + l];
                                debug_assert_eq!(b.elem.is_float(), src_f);
                                if src_f {
                                    b.set_f(flat, self.f[so + l]);
                                } else {
                                    b.set_i(flat, self.i[so + l]);
                                }
                            } else {
                                let b = self.ctx.bufs[a];
                                if !b.is_alloc() {
                                    panic!("kernel write of unallocated device array {a}");
                                }
                                debug_assert_eq!(b.elem_is_float(), src_f);
                                if src_f {
                                    b.set_f(flat, self.f[so + l]);
                                } else {
                                    b.set_i(flat, self.i[so + l]);
                                }
                            }
                        });
                    }
                    pc += 1;
                }
                TOp::If { cond, site, then_len, else_len } => {
                    let t_start = pc + 1;
                    let e_start = t_start + then_len as usize;
                    let end_if = e_start + else_len as usize;
                    let co = cond as usize * w;
                    let mut m_t = 0u64;
                    self.touched[site as usize] = true;
                    lanes!(w, mask, l, {
                        let c = self.b[co + l];
                        self.traces[site as usize].record(l as u32, c as u64);
                        if c {
                            m_t |= 1 << l;
                        }
                    });
                    let m_f = mask & !m_t;
                    if m_t != 0 {
                        self.run(t_start, e_start, m_t);
                    }
                    if m_f != 0 {
                        self.run(e_start, end_if, m_f);
                    }
                    pc = end_if;
                }
                TOp::Select { cond, dst, t_reg, f_reg, bank, t_len, f_len } => {
                    let t_start = pc + 1;
                    let f_start = t_start + t_len as usize;
                    let end_sel = f_start + f_len as usize;
                    let co = cond as usize * w;
                    let mut m_t = 0u64;
                    lanes!(w, mask, l, {
                        if self.b[co + l] {
                            m_t |= 1 << l;
                        }
                    });
                    let m_f = mask & !m_t;
                    if m_t != 0 {
                        self.run(t_start, f_start, m_t);
                    }
                    if m_f != 0 {
                        self.run(f_start, end_sel, m_f);
                    }
                    let dof = dst as usize * w;
                    let to = t_reg as usize * w;
                    let fo2 = f_reg as usize * w;
                    match bank {
                        Bank::F => {
                            lanes!(w, mask, l, {
                                self.f[dof + l] = if m_t >> l & 1 == 1 { self.f[to + l] } else { self.f[fo2 + l] };
                            });
                        }
                        Bank::I => {
                            lanes!(w, mask, l, {
                                self.i[dof + l] = if m_t >> l & 1 == 1 { self.i[to + l] } else { self.i[fo2 + l] };
                            });
                        }
                        Bank::B => {
                            lanes!(w, mask, l, {
                                self.b[dof + l] = if m_t >> l & 1 == 1 { self.b[to + l] } else { self.b[fo2 + l] };
                            });
                        }
                    }
                    pc = end_sel;
                }
                TOp::For { var, hi_reg, step_reg, hi_len, step_len, body_len } => {
                    let hi_start = pc + 1;
                    let step_start = hi_start + hi_len as usize;
                    let body_start = step_start + step_len as usize;
                    let end_for = body_start + body_len as usize;
                    let vo = var as usize * w;
                    let ho = hi_reg as usize * w;
                    let so = step_reg as usize * w;
                    let mut lm = mask;
                    loop {
                        if hi_len > 0 {
                            self.run(hi_start, step_start, lm);
                        }
                        let mut next = 0u64;
                        lanes!(w, lm, l, {
                            self.lane_ops[l] += 1;
                            if self.i[vo + l] < self.i[ho + l] {
                                next |= 1 << l;
                            }
                        });
                        lm = next;
                        if lm == 0 {
                            break;
                        }
                        self.run(body_start, end_for, lm);
                        if step_len > 0 {
                            self.run(step_start, body_start, lm);
                        }
                        lanes!(w, lm, l, {
                            let cur = self.i[vo + l];
                            let st = self.i[so + l];
                            self.i[vo + l] = cur + st;
                            self.lane_ops[l] += 1;
                        });
                    }
                    pc = end_for;
                }
                TOp::While { cond, cond_len, body_len } => {
                    let c_start = pc + 1;
                    let b_start = c_start + cond_len as usize;
                    let end_wh = b_start + body_len as usize;
                    let co = cond as usize * w;
                    let mut lm = mask;
                    loop {
                        if cond_len > 0 {
                            self.run(c_start, b_start, lm);
                        }
                        let mut take = 0u64;
                        lanes!(w, lm, l, {
                            if self.b[co + l] {
                                take |= 1 << l;
                            }
                        });
                        if take == 0 {
                            break;
                        }
                        lanes!(w, take, l, {
                            self.lane_ops[l] += 1;
                        });
                        self.run(b_start, end_wh, take);
                        lm = take;
                    }
                    pc = end_wh;
                }
                TOp::CritEnter => {
                    self.in_critical = true;
                    pc += 1;
                }
                TOp::CritExit => {
                    self.in_critical = false;
                    pc += 1;
                }
            }
        }
    }

    fn flat_index(&self, a: usize, off: u32, len: u8, l: usize) -> usize {
        let mut flat = 0usize;
        for d in 0..len as usize {
            let i = self.i[self.pool[off as usize + d] as usize * self.w + l];
            let ext = self.ctx.extents[a][d];
            assert!(
                i >= 0 && (i as usize) < ext,
                "index {} out of bounds (dim {} extent {}) on array {}",
                i,
                d,
                ext,
                self.ctx.prog.array_name(ArrayId(a as u32))
            );
            flat += i as usize * self.ctx.strides[a][d];
        }
        flat
    }

    fn account(&mut self, a: usize, flat: usize, site: u32, fast: i32, l: usize) {
        let eb = self.ctx.elem_bytes[a] as u64;
        if let Some(exp) = self.ctx.expansion[a] {
            match exp {
                Expansion::Register => {}
                Expansion::RowWise => {
                    let slot = self.ctx.priv_slot[a] as usize;
                    let len = self.priv_bufs[slot * self.w + l].len() as u64;
                    let tid = self.tid_base + l as u64;
                    self.touched[site as usize] = true;
                    self.traces[site as usize].record(l as u32, PRIV_BASE + (tid * len + flat as u64) * eb);
                }
                Expansion::ColumnWise => {
                    let tid = self.tid_base + l as u64;
                    self.touched[site as usize] = true;
                    self.traces[site as usize]
                        .record(l as u32, PRIV_BASE + (flat as u64 * self.ctx.total_threads + tid) * eb);
                }
            }
            return;
        }
        let addr = self.ctx.base[a] + flat as u64 * eb;
        if fast >= 0 {
            self.fast_rows[fast as usize * self.w + l] = addr;
        } else {
            self.touched[site as usize] = true;
            self.traces[site as usize].record(l as u32, addr);
        }
        if self.in_critical {
            self.atomic += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{fc, ld, v};
    use crate::interp::bytecode::compile;
    use crate::kernel::{axis, KernelPlan};

    fn opt_of(p: &Program, k: &KernelPlan) -> OptKernel {
        let bc = compile(p, k).expect("compiles");
        optimize(p, &bc)
    }

    #[test]
    fn knob_override_controls_enablement() {
        set_opt_override(Some(Toggle::Off));
        assert!(!opt_enabled());
        assert_eq!(opt_name(), "off");
        set_opt_override(Some(Toggle::On));
        assert!(opt_enabled());
        set_opt_override(Some(Toggle::Auto));
        assert!(opt_enabled());
        set_opt_override(None);
    }

    #[test]
    fn cse_dedupes_and_dce_cleans() {
        let mut pb = ProgramBuilder::new("cse");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        // (i+1)*(i+1): the second i+1 recomputation is a CSE hit, and the
        // orphaned add goes dead.
        let mut k =
            KernelPlan::new("k", vec![axis(i, v(n))], vec![store(y, vec![v(i)], ld(x, vec![(v(i) + 1) * (v(i) + 1)]))]);
        k.finalize();
        let ok = opt_of(&p, &k);
        // The recomputation becomes a register copy (the downstream multiply
        // still reads the original destination slot, so the copy stays).
        assert!(ok.stats.cse_hits >= 1, "{:?}", ok.stats);
        assert!(ok.stats.ops_post <= ok.stats.ops_pre, "{:?}", ok.stats);
    }

    #[test]
    fn unobserved_scalar_writes_die() {
        let mut pb = ProgramBuilder::new("dce");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let s = pb.iscalar("s");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        // s is written and never observed (not a reduction accumulator): the
        // pure write chain is dead.
        let mut k = KernelPlan::new(
            "k",
            vec![axis(i, v(n))],
            vec![assign(s, v(n) + 1), store(y, vec![v(i)], ld(x, vec![v(i)]))],
        );
        k.finalize();
        let ok = opt_of(&p, &k);
        assert!(ok.stats.dce_removed >= 1, "{:?}", ok.stats);
        assert!(ok.stats.ops_post < ok.stats.ops_pre, "{:?}", ok.stats);
    }

    #[test]
    fn constant_subexpressions_fold() {
        let mut pb = ProgramBuilder::new("fold");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut k = KernelPlan::new(
            "k",
            vec![axis(i, v(n))],
            vec![store(y, vec![v(i)], ld(x, vec![v(i)]) + fc(2.0) * fc(3.0))],
        );
        k.finalize();
        let ok = opt_of(&p, &k);
        assert!(ok.stats.folded >= 1, "{:?}", ok.stats);
    }

    #[test]
    fn uniform_index_math_hoists_into_prelude() {
        let mut pb = ProgramBuilder::new("hoist");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        // n-1 depends only on a launch-broadcast scalar: one launch-wide
        // evaluation replaces a per-warp, per-lane one. (As the right
        // operand of the add it gets its own register slot, written once —
        // chained into further arithmetic it would share the result slot
        // and lose single-write eligibility.)
        let mut k =
            KernelPlan::new("k", vec![axis(i, v(n))], vec![store(y, vec![v(i)], ld(x, vec![v(i)]) + (v(n) - 1))]);
        k.finalize();
        let ok = opt_of(&p, &k);
        assert!(ok.stats.prelude_ops >= 1, "{:?}", ok.stats);
    }

    #[test]
    fn affine_loop_chains_strength_reduce() {
        let mut pb = ProgramBuilder::new("sr");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let y = pb.farray("y", vec![v(n) * 3]);
        pb.main(vec![]);
        let p = pb.build();
        // y[3*j] inside a unit-step loop: the multiply becomes an init plus
        // an incremental add carried around the loop.
        let mut k =
            KernelPlan::new("k", vec![axis(i, v(n))], vec![sfor(j, 0i64, v(n), vec![store(y, vec![v(j) * 3], 1.0)])]);
        k.finalize();
        let ok = opt_of(&p, &k);
        assert!(ok.stats.strength_reduced >= 1, "{:?}", ok.stats);
    }

    #[test]
    fn straight_line_float_kernel_lowers_typed() {
        let mut pb = ProgramBuilder::new("typed");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut k =
            KernelPlan::new("k", vec![axis(i, v(n))], vec![store(y, vec![v(i)], ld(x, vec![v(i)]) * 0.5 + 1.0)]);
        k.finalize();
        let ok = opt_of(&p, &k);
        assert!(ok.stats.typed, "{:?}", ok.stats);
        assert!(ok.typed.is_some());
    }

    #[test]
    fn loop_temp_bank_rebinding_still_lowers_typed() {
        // The spmv shape: integer index temps and float product temps share
        // compiler registers across the loop body. They are rebound fresh
        // each iteration, so only the genuinely loop-carried accumulator
        // needs a stable bank.
        let mut pb = ProgramBuilder::new("spmv");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let kk = pb.iscalar("kk");
        let s = pb.fscalar("s");
        let ptr = pb.iarray("ptr", vec![v(n) + 1]);
        let val = pb.farray("val", vec![v(n)]);
        let col = pb.iarray("col", vec![v(n)]);
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let body = vec![
            assign(s, 0.0),
            sfor(
                kk,
                ld(ptr, vec![v(i)]),
                ld(ptr, vec![v(i) + 1]),
                vec![assign(s, v(s) + ld(val, vec![v(kk)]) * ld(x, vec![ld(col, vec![v(kk)])]))],
            ),
            store(y, vec![v(i)], v(s)),
        ];
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], body);
        k.finalize();
        let ok = opt_of(&p, &k);
        assert!(ok.stats.typed, "{:?}", ok.stats);
    }

    #[test]
    fn loop_carried_liveins_are_identified() {
        let mut pb = ProgramBuilder::new("livein");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let s = pb.fscalar("s");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let body = vec![
            assign(s, 0.0),
            sfor(j, 0i64, v(n), vec![assign(s, v(s) + ld(x, vec![v(j)]))]),
            store(y, vec![v(i)], v(s)),
        ];
        let mut k = KernelPlan::new("k", vec![axis(i, v(n))], body);
        k.finalize();
        let bc = compile(&p, &k).expect("compiles");
        let mut pos = 0usize;
        let root = parse_block(&bc.code, &mut pos, bc.code.len());
        let fors: Vec<&Node> = root.iter().filter(|nd| matches!(nd, Node::For { .. })).collect();
        assert_eq!(fors.len(), 1);
        let Node::For { var, hi_reg, step_reg, hi, step, body } = fors[0] else { unreachable!() };
        let li = for_livein(*var, *hi_reg, *step_reg, hi, step, body, &bc.pool);
        // The accumulator is read before written each iteration; the loop
        // variable is read by the bound check.
        assert!(li.contains(var), "{li:?}");
        let s_reg = (0..bc.temp_base).find(|&r| count_reads(&root, &bc.pool, r) > 0 && count_writes(&root, r) > 1);
        assert!(s_reg.is_some_and(|r| li.contains(&r)), "{li:?}");
    }
}
