//! Tree-walking evaluator, generic over the executing machine.
//!
//! One evaluator serves three roles:
//! * the **sequential CPU baseline** ([`cpu::CpuMachine`]) — the paper's
//!   "serial on the CPU" reference that speedups are measured against;
//! * **host portions** of GPU versions (same machine, driven by the runtime
//!   in `acceval` with [`Hooks`] intercepting regions/directives);
//! * **GPU thread bodies** ([`gpu`]) — each simulated thread runs the kernel
//!   body through this evaluator against a warp-level machine that records
//!   address traces.

pub mod bytecode;
pub mod cpu;
pub mod gpu;
pub mod launch_cache;
pub mod native;
pub mod opt;
pub mod store;

use crate::expr::{BinOp, Expr, Intrin, UnOp};
use crate::program::{eval_const, DataSet, Program};
use crate::stmt::{DataClauses, ParallelRegion, Stmt, UpdateDir};
use crate::types::{ArrayId, SiteId, Value};

/// The machine executing loads/stores and accounting costs.
pub trait Machine {
    /// Load element `flat` of (resolved) `array`.
    fn load(&mut self, array: ArrayId, flat: usize, site: SiteId) -> Value;
    /// Store element `flat` of (resolved) `array`.
    fn store(&mut self, array: ArrayId, flat: usize, v: Value, site: SiteId);
    /// Account `n` simple ALU operations.
    fn ops(&mut self, n: u64);
    /// Account one intrinsic evaluation.
    fn intrin(&mut self, f: Intrin);
    /// Record a branch outcome (GPU divergence accounting).
    fn branch(&mut self, _site: SiteId, _taken: bool) {}
    /// An OpenMP barrier was executed.
    fn barrier(&mut self) {}
    /// Entering / leaving a critical section.
    fn critical(&mut self, _entering: bool) {}
}

impl<M: Machine> Machine for &mut M {
    fn load(&mut self, array: ArrayId, flat: usize, site: SiteId) -> Value {
        (**self).load(array, flat, site)
    }
    fn store(&mut self, array: ArrayId, flat: usize, v: Value, site: SiteId) {
        (**self).store(array, flat, v, site)
    }
    fn ops(&mut self, n: u64) {
        (**self).ops(n)
    }
    fn intrin(&mut self, f: Intrin) {
        (**self).intrin(f)
    }
    fn branch(&mut self, site: SiteId, taken: bool) {
        (**self).branch(site, taken)
    }
    fn barrier(&mut self) {
        (**self).barrier()
    }
    fn critical(&mut self, entering: bool) {
        (**self).critical(entering)
    }
}

/// Interception points for the GPU runtime. The default implementation (and
/// [`NoHooks`]) executes everything sequentially on the current machine,
/// which is exactly OpenMP-on-one-thread semantics — the correctness oracle.
pub trait Hooks<M: Machine> {
    /// A parallel region was reached. Return `true` if the hook executed it
    /// (e.g. launched kernels); `false` to run it sequentially here.
    fn on_parallel(&mut self, _it: &mut Interp<M>, _r: &ParallelRegion) -> bool {
        false
    }
    /// A data region is being entered (`entering`) or exited.
    fn on_data_region(&mut self, _it: &mut Interp<M>, _c: &DataClauses, _entering: bool) {}
    /// An `update` directive was executed.
    fn on_update(&mut self, _it: &mut Interp<M>, _arrays: &[ArrayId], _dir: UpdateDir) {}
    /// About to execute a statement subtree containing no offload constructs.
    fn on_host_leaf(&mut self, _it: &mut Interp<M>, _s: &Stmt) {}
}

/// Hooks that do nothing: pure sequential execution.
pub struct NoHooks;
impl<M: Machine> Hooks<M> for NoHooks {}

/// The evaluator.
pub struct Interp<'p, M: Machine> {
    pub prog: &'p Program,
    pub m: M,
    /// Scalar environment (global slots).
    pub scal: Vec<Value>,
    /// Current array remapping (identity unless inside a call).
    remap: Vec<ArrayId>,
    /// Evaluated extents per array.
    pub extents: Vec<Vec<usize>>,
    /// Row-major strides per array.
    pub strides: Vec<Vec<usize>>,
}

impl<'p, M: Machine> Interp<'p, M> {
    /// Build an evaluator with a fresh environment from a dataset.
    pub fn new(prog: &'p Program, m: M, ds: &DataSet) -> Self {
        let mut scal: Vec<Value> =
            prog.scalars.iter().map(|d| if d.is_float { Value::F(0.0) } else { Value::I(0) }).collect();
        for (id, v) in &ds.scalars {
            scal[id.0 as usize] = *v;
        }
        Self::with_env(prog, m, scal)
    }

    /// Build an evaluator over an existing scalar environment (extents are
    /// recomputed from it).
    pub fn with_env(prog: &'p Program, m: M, scal: Vec<Value>) -> Self {
        let extents: Vec<Vec<usize>> =
            prog.arrays.iter().map(|a| a.dims.iter().map(|d| eval_const(d, &scal)).collect()).collect();
        let strides = extents.iter().map(|e| row_major_strides(e)).collect();
        let remap = (0..prog.arrays.len() as u32).map(ArrayId).collect();
        Interp { prog, m, scal, remap, extents, strides }
    }

    /// Resolve an array id through the current call remapping.
    #[inline]
    pub fn resolve(&self, a: ArrayId) -> ArrayId {
        self.remap[a.0 as usize]
    }

    /// Execute a statement list with no hooks (sequential semantics).
    pub fn run(&mut self, stmts: &[Stmt]) {
        self.run_with(stmts, &mut NoHooks);
    }

    /// Execute a statement list with hooks.
    pub fn run_with<H: Hooks<M>>(&mut self, stmts: &[Stmt], h: &mut H) {
        for s in stmts {
            self.exec(s, h);
        }
    }

    /// Execute one statement.
    pub fn exec<H: Hooks<M>>(&mut self, s: &Stmt, h: &mut H) {
        match s {
            Stmt::Parallel(r) => {
                if !h.on_parallel(self, r) {
                    self.run_with(&r.body, h);
                }
            }
            Stmt::DataRegion { clauses, body } => {
                h.on_data_region(self, clauses, true);
                self.run_with(body, h);
                h.on_data_region(self, clauses, false);
            }
            Stmt::Update { arrays, dir } => {
                h.on_update(self, arrays, *dir);
            }
            _ => {
                if s.contains_offload() {
                    // Compound host statement with offload inside: walk it.
                    self.exec_compound(s, h);
                } else {
                    h.on_host_leaf(self, s);
                    self.exec_plain(s);
                }
            }
        }
    }

    /// Walk a compound statement whose body contains offload constructs.
    fn exec_compound<H: Hooks<M>>(&mut self, s: &Stmt, h: &mut H) {
        match s {
            Stmt::If { cond, then_b, else_b, site } => {
                let c = self.eval(cond).as_b();
                self.m.branch(*site, c);
                if c {
                    self.run_with(then_b, h);
                } else {
                    self.run_with(else_b, h);
                }
            }
            Stmt::For { var, lo, hi, step, body, .. } => {
                let lo = self.eval(lo).as_i();
                self.scal[var.0 as usize] = Value::I(lo);
                loop {
                    let hi_v = self.eval(hi).as_i();
                    self.m.ops(1);
                    if self.scal[var.0 as usize].as_i() >= hi_v {
                        break;
                    }
                    self.run_with(body, h);
                    let st = self.eval(step).as_i();
                    let cur = self.scal[var.0 as usize].as_i();
                    self.scal[var.0 as usize] = Value::I(cur + st);
                    self.m.ops(1);
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond).as_b() {
                    self.m.ops(1);
                    self.run_with(body, h);
                }
            }
            Stmt::Call { func, scalar_args, array_args } => {
                self.do_call(*func, scalar_args, array_args, h);
            }
            Stmt::Critical { body } => {
                self.m.critical(true);
                self.run_with(body, h);
                self.m.critical(false);
            }
            // Parallel/DataRegion/Update handled by `exec`; leaves have no
            // offload inside and are handled by `exec_plain`.
            _ => self.exec_plain(s),
        }
    }

    fn do_call<H: Hooks<M>>(
        &mut self,
        func: crate::types::FuncId,
        scalar_args: &[Expr],
        array_args: &[ArrayId],
        h: &mut H,
    ) {
        // Clone the function out to avoid aliasing prog borrows cheaply; the
        // bodies are shared Vecs so this clones only Arc-free nodes. This is
        // on cold paths (calls per run are few).
        let f = &self.prog.funcs[func.0 as usize];
        assert_eq!(f.scalar_params.len(), scalar_args.len(), "call arity ({})", f.name);
        assert_eq!(f.array_params.len(), array_args.len(), "call array arity ({})", f.name);
        let vals: Vec<Value> = scalar_args.iter().map(|e| self.eval(e)).collect();
        for (p, v) in f.scalar_params.iter().zip(vals) {
            self.scal[p.0 as usize] = v;
        }
        let mut saved = Vec::with_capacity(f.array_params.len());
        // Resolve actuals through the *current* remap before installing.
        let resolved: Vec<ArrayId> = array_args.iter().map(|a| self.resolve(*a)).collect();
        for (p, actual) in f.array_params.iter().zip(resolved) {
            saved.push((p.0 as usize, self.remap[p.0 as usize]));
            self.remap[p.0 as usize] = actual;
        }
        let body = f.body.clone();
        self.run_with(&body, h);
        for (idx, old) in saved {
            self.remap[idx] = old;
        }
    }

    /// Execute a statement subtree with plain sequential semantics.
    pub fn exec_plain(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { var, value } => {
                let v = self.eval(value);
                self.m.ops(1);
                self.scal[var.0 as usize] = v;
            }
            Stmt::Store { array, index, value, site } => {
                let v = self.eval(value);
                let (arr, flat) = self.flat_index(*array, index);
                self.m.store(arr, flat, v, *site);
            }
            Stmt::If { cond, then_b, else_b, site } => {
                let c = self.eval(cond).as_b();
                self.m.branch(*site, c);
                let body = if c { then_b } else { else_b };
                for s in body {
                    self.exec_plain(s);
                }
            }
            Stmt::For { var, lo, hi, step, body, .. } => {
                let lo = self.eval(lo).as_i();
                self.scal[var.0 as usize] = Value::I(lo);
                loop {
                    let hi_v = self.eval(hi).as_i();
                    self.m.ops(1);
                    if self.scal[var.0 as usize].as_i() >= hi_v {
                        break;
                    }
                    for s in body {
                        self.exec_plain(s);
                    }
                    let st = self.eval(step).as_i();
                    let cur = self.scal[var.0 as usize].as_i();
                    self.scal[var.0 as usize] = Value::I(cur + st);
                    self.m.ops(1);
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond).as_b() {
                    self.m.ops(1);
                    for s in body {
                        self.exec_plain(s);
                    }
                }
            }
            Stmt::Call { func, scalar_args, array_args } => {
                self.do_call(*func, scalar_args, array_args, &mut NoHooks);
            }
            Stmt::Critical { body } => {
                self.m.critical(true);
                for s in body {
                    self.exec_plain(s);
                }
                self.m.critical(false);
            }
            Stmt::Parallel(r) => {
                for s in &r.body {
                    self.exec_plain(s);
                }
            }
            Stmt::DataRegion { body, .. } => {
                for s in body {
                    self.exec_plain(s);
                }
            }
            Stmt::Update { .. } => {}
            Stmt::Barrier => self.m.barrier(),
        }
    }

    /// Compute the resolved array and flat element index for an access.
    #[inline]
    pub fn flat_index(&mut self, array: ArrayId, index: &[Expr]) -> (ArrayId, usize) {
        let arr = self.resolve(array);
        let mut flat = 0usize;
        for (d, e) in index.iter().enumerate() {
            let i = self.eval(e).as_i();
            let ext = self.extents[arr.0 as usize][d];
            assert!(
                i >= 0 && (i as usize) < ext,
                "index {} out of bounds (dim {} extent {}) on array {}",
                i,
                d,
                ext,
                self.prog.array_name(arr)
            );
            flat += i as usize * self.strides[arr.0 as usize][d];
        }
        if index.len() > 1 {
            self.m.ops(index.len() as u64 - 1);
        }
        (arr, flat)
    }

    /// Evaluate an expression.
    pub fn eval(&mut self, e: &Expr) -> Value {
        match e {
            Expr::F(x) => Value::F(*x),
            Expr::I(x) => Value::I(*x),
            Expr::B(x) => Value::B(*x),
            Expr::Var(s) => self.scal[s.0 as usize],
            Expr::Load { array, index, site } => {
                let (arr, flat) = self.flat_index(*array, index);
                self.m.load(arr, flat, *site)
            }
            Expr::Un(op, a) => {
                let x = self.eval(a);
                self.m.ops(1);
                match op {
                    UnOp::Neg => match x {
                        Value::I(i) => Value::I(-i),
                        v => Value::F(-v.as_f()),
                    },
                    UnOp::Not => Value::B(!x.as_b()),
                }
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval(a);
                let y = self.eval(b);
                self.m.ops(1);
                eval_bin(*op, x, y)
            }
            Expr::Select { cond, t, f } => {
                let c = self.eval(cond).as_b();
                self.m.ops(1);
                if c {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Intrin(f, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a)).collect();
                self.m.intrin(*f);
                eval_intrin(*f, &vals)
            }
            Expr::CastI(a) => {
                let x = self.eval(a);
                self.m.ops(1);
                Value::I(x.as_i())
            }
            Expr::CastF(a) => {
                let x = self.eval(a);
                self.m.ops(1);
                Value::F(x.as_f())
            }
        }
    }
}

/// Row-major strides for the given extents.
pub fn row_major_strides(extents: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; extents.len()];
    for d in (0..extents.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * extents[d + 1];
    }
    strides
}

/// Evaluate a binary operation with C-like promotion.
#[inline]
pub fn eval_bin(op: BinOp, x: Value, y: Value) -> Value {
    use BinOp::*;
    let both_int = matches!(x, Value::I(_) | Value::B(_)) && matches!(y, Value::I(_) | Value::B(_));
    match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            if both_int {
                let (a, b) = (x.as_i(), y.as_i());
                Value::I(match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => a / b,
                    Rem => a % b,
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                })
            } else {
                let (a, b) = (x.as_f(), y.as_f());
                Value::F(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Rem => a % b,
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                })
            }
        }
        Lt | Le | Gt | Ge | Eq | Ne => {
            let r = if both_int {
                let (a, b) = (x.as_i(), y.as_i());
                match op {
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    Eq => a == b,
                    Ne => a != b,
                    _ => unreachable!(),
                }
            } else {
                let (a, b) = (x.as_f(), y.as_f());
                match op {
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    Eq => a == b,
                    Ne => a != b,
                    _ => unreachable!(),
                }
            };
            Value::B(r)
        }
        And => Value::B(x.as_b() && y.as_b()),
        Or => Value::B(x.as_b() || y.as_b()),
        Shl => Value::I(x.as_i() << y.as_i()),
        Shr => Value::I(x.as_i() >> y.as_i()),
        BitAnd => Value::I(x.as_i() & y.as_i()),
        BitOr => Value::I(x.as_i() | y.as_i()),
        BitXor => Value::I(x.as_i() ^ y.as_i()),
    }
}

/// Evaluate an intrinsic.
#[inline]
pub fn eval_intrin(f: Intrin, args: &[Value]) -> Value {
    match f {
        Intrin::Sqrt => Value::F(args[0].as_f().sqrt()),
        Intrin::Exp => Value::F(args[0].as_f().exp()),
        Intrin::Log => Value::F(args[0].as_f().ln()),
        Intrin::Pow => Value::F(args[0].as_f().powf(args[1].as_f())),
        Intrin::Sin => Value::F(args[0].as_f().sin()),
        Intrin::Cos => Value::F(args[0].as_f().cos()),
        Intrin::Floor => Value::F(args[0].as_f().floor()),
        Intrin::Abs => match args[0] {
            Value::I(x) => Value::I(x.abs()),
            v => Value::F(v.as_f().abs()),
        },
    }
}

/// Evaluate a load-free expression against a scalar environment, without a
/// machine (used for kernel launch bounds).
pub fn eval_pure(e: &Expr, scal: &[Value]) -> Value {
    match e {
        Expr::F(x) => Value::F(*x),
        Expr::I(x) => Value::I(*x),
        Expr::B(x) => Value::B(*x),
        Expr::Var(s) => scal[s.0 as usize],
        Expr::Load { .. } => panic!("eval_pure on expression with loads"),
        Expr::Un(op, a) => {
            let x = eval_pure(a, scal);
            match op {
                UnOp::Neg => match x {
                    Value::I(i) => Value::I(-i),
                    v => Value::F(-v.as_f()),
                },
                UnOp::Not => Value::B(!x.as_b()),
            }
        }
        Expr::Bin(op, a, b) => eval_bin(*op, eval_pure(a, scal), eval_pure(b, scal)),
        Expr::Select { cond, t, f } => {
            if eval_pure(cond, scal).as_b() {
                eval_pure(t, scal)
            } else {
                eval_pure(f, scal)
            }
        }
        Expr::Intrin(f, args) => {
            let vals: Vec<Value> = args.iter().map(|a| eval_pure(a, scal)).collect();
            eval_intrin(*f, &vals)
        }
        Expr::CastI(a) => Value::I(eval_pure(a, scal).as_i()),
        Expr::CastF(a) => Value::F(eval_pure(a, scal).as_f()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::types::ScalarId;
    use acceval_sim::ElemType;

    /// A machine with plain storage and op counting, for interpreter tests.
    pub struct TestMachine {
        pub bufs: Vec<acceval_sim::Buffer>,
        pub ops: u64,
        pub loads: u64,
        pub stores: u64,
    }

    impl TestMachine {
        pub fn for_prog(prog: &Program, ds: &DataSet) -> Self {
            let h = crate::program::HostData::materialize(prog, ds);
            TestMachine { bufs: h.bufs, ops: 0, loads: 0, stores: 0 }
        }
    }

    impl Machine for TestMachine {
        fn load(&mut self, array: ArrayId, flat: usize, _site: SiteId) -> Value {
            self.loads += 1;
            let b = &self.bufs[array.0 as usize];
            if b.elem.is_float() {
                Value::F(b.get_f(flat))
            } else {
                Value::I(b.get_i(flat))
            }
        }
        fn store(&mut self, array: ArrayId, flat: usize, v: Value, _site: SiteId) {
            self.stores += 1;
            let b = &mut self.bufs[array.0 as usize];
            if b.elem.is_float() {
                b.set_f(flat, v.as_f());
            } else {
                b.set_i(flat, v.as_i());
            }
        }
        fn ops(&mut self, n: u64) {
            self.ops += n;
        }
        fn intrin(&mut self, _f: Intrin) {
            self.ops += 1;
        }
    }

    fn saxpy_prog() -> Program {
        let mut pb = ProgramBuilder::new("saxpy");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let alpha = pb.fscalar("alpha");
        let x = pb.farray("x", vec![v(n)]);
        let y = pb.farray("y", vec![v(n)]);
        pb.main(vec![parallel(
            "saxpy",
            vec![pfor(i, 0i64, v(n), vec![store(y, vec![v(i)], v(alpha) * ld(x, vec![v(i)]) + ld(y, vec![v(i)]))])],
        )]);
        pb.outputs(vec![y]);
        pb.build()
    }

    fn saxpy_ds(n: usize) -> DataSet {
        DataSet {
            scalars: vec![(ScalarId(0), Value::I(n as i64)), (ScalarId(2), Value::F(2.0))],
            arrays: vec![
                (ArrayId(0), acceval_sim::Buffer::from_f64(ElemType::F64, (0..n).map(|i| i as f64).collect())),
                (ArrayId(1), acceval_sim::Buffer::from_f64(ElemType::F64, vec![1.0; n])),
            ],
            label: "test".into(),
        }
    }

    #[test]
    fn saxpy_computes_correctly() {
        let p = saxpy_prog();
        let ds = saxpy_ds(10);
        let m = TestMachine::for_prog(&p, &ds);
        let mut it = Interp::new(&p, m, &ds);
        let main = p.main.clone();
        it.run(&main);
        for i in 0..10 {
            assert_eq!(it.m.bufs[1].get_f(i), 2.0 * i as f64 + 1.0);
        }
        assert_eq!(it.m.loads, 20);
        assert_eq!(it.m.stores, 10);
        assert!(it.m.ops > 0);
    }

    #[test]
    fn call_remaps_arrays() {
        let mut pb = ProgramBuilder::new("call");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let src = pb.farray("src", vec![v(n)]);
        let dst = pb.farray("dst", vec![v(n)]);
        let pa = pb.farray("pa", vec![v(n)]); // formal
        let pb_arr = pb.farray("pb", vec![v(n)]); // formal
        let copyf = pb.func(
            "copyf",
            vec![],
            vec![pa, pb_arr],
            vec![sfor(i, 0i64, v(n), vec![store(pb_arr, vec![v(i)], ld(pa, vec![v(i)]))])],
        );
        pb.main(vec![call(copyf, vec![], vec![src, dst])]);
        let p = pb.build();
        let ds = DataSet {
            scalars: vec![(n, Value::I(4))],
            arrays: vec![(src, acceval_sim::Buffer::from_f64(ElemType::F64, vec![7.0, 8.0, 9.0, 10.0]))],
            label: "t".into(),
        };
        let m = TestMachine::for_prog(&p, &ds);
        let mut it = Interp::new(&p, m, &ds);
        let main = p.main.clone();
        it.run(&main);
        assert_eq!(it.m.bufs[dst.0 as usize].get_f(2), 9.0);
    }

    #[test]
    fn while_and_if_semantics() {
        let mut pb = ProgramBuilder::new("wh");
        let x = pb.iscalar("x");
        let y = pb.iscalar("y");
        pb.main(vec![
            assign(x, 0i64),
            assign(y, 0i64),
            wloop(
                v(x).lt(10i64),
                vec![
                    if_else((v(x) % 2i64).eq_(0i64), vec![assign(y, v(y) + 1i64)], vec![assign(y, v(y) + 10i64)]),
                    assign(x, v(x) + 1i64),
                ],
            ),
        ]);
        let p = pb.build();
        let ds = DataSet::default();
        let m = TestMachine::for_prog(&p, &ds);
        let mut it = Interp::new(&p, m, &ds);
        let main = p.main.clone();
        it.run(&main);
        assert_eq!(it.scal[y.0 as usize].as_i(), 5 + 50);
    }

    #[test]
    fn eval_pure_matches_interp() {
        let e = (ic_expr(3) + 4i64) * 2i64;
        assert_eq!(eval_pure(&e, &[]).as_i(), 14);
    }

    fn ic_expr(x: i64) -> Expr {
        Expr::I(x)
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let p = saxpy_prog();
        let mut ds = saxpy_ds(10);
        ds.scalars[0].1 = Value::I(11); // claim n=11 with 10-element buffers
        let m = TestMachine::for_prog(&p, &ds);
        // materialize used n=11 so buffers are 11 long; rebuild with short buffer
        let mut m = m;
        m.bufs[0] = acceval_sim::Buffer::from_f64(ElemType::F64, vec![0.0; 10]);
        let mut it = Interp::new(&p, m, &ds);
        it.extents[0] = vec![10]; // extent says 10, loop runs to 11
        let main = p.main.clone();
        it.run(&main);
    }

    #[test]
    fn integer_division_is_c_like() {
        assert_eq!(eval_bin(BinOp::Div, Value::I(7), Value::I(2)), Value::I(3));
        assert_eq!(eval_bin(BinOp::Rem, Value::I(7), Value::I(2)), Value::I(1));
        assert_eq!(eval_bin(BinOp::Div, Value::F(7.0), Value::I(2)), Value::F(3.5));
    }

    #[test]
    fn promotion_rules() {
        assert_eq!(eval_bin(BinOp::Add, Value::I(1), Value::I(2)), Value::I(3));
        assert_eq!(eval_bin(BinOp::Add, Value::I(1), Value::F(2.0)), Value::F(3.0));
        assert_eq!(eval_bin(BinOp::Lt, Value::I(1), Value::I(2)), Value::B(true));
        assert_eq!(eval_bin(BinOp::Max, Value::I(5), Value::I(2)), Value::I(5));
    }
}
