//! The GPU executor: runs a [`KernelPlan`] functionally, one simulated
//! thread at a time, while collecting per-warp address traces that the
//! simulator prices.
//!
//! Correctness: every thread executes the kernel body through the same
//! evaluator as the CPU oracle, against device buffers; reductions are
//! combined deterministically in (block, lane) order. Timing: per-warp
//! traces are reduced to coalescing transactions, shared-memory slots,
//! texture-cache misses, constant serialization and divergence penalties,
//! then fed to [`acceval_sim::estimate_kernel`].

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use acceval_sim::{
    estimate_kernel, warp_issue_cycles, AccessSummary, BufGen, Buffer, Cache, DeviceConfig, Digest128, ElemType,
    KernelCost, KernelFootprint, KernelTotals, NullSink, Payload, SharedSummary, SimError, SiteWarpTrace, TraceEvent,
    TraceSink,
};

use crate::expr::{Expr, Intrin};
use crate::interp::bytecode::{self, intrin_cost};
use crate::interp::launch_cache::{self, ArrayOut, LaunchEffect, LaunchKey};
use crate::interp::native;
use crate::interp::opt;
use crate::interp::{eval_pure, row_major_strides, Interp, Machine};
use crate::kernel::{Expansion, KernelPlan, MemSpace, ReduceStrategy};
use crate::program::{eval_const, Program};
use crate::stmt::{visit_exprs, visit_stmts, Stmt};
use crate::types::{ArrayId, ScalarId, SiteId, Value, VarRef};

/// Which executor runs kernel bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The reference tree-walking interpreter: one simulated thread at a
    /// time through [`Interp`]. Always available; also the fallback for
    /// bodies the bytecode compiler bails on (e.g. function calls).
    Tree,
    /// The compiled bytecode engine ([`crate::interp::bytecode`]): whole
    /// warps in lockstep over a SoA register file. The default. All scores
    /// and statistics are bit-identical to the tree engine.
    Bytecode,
    /// The native closure tier ([`crate::interp::native`]): the typed
    /// optimized stream compiled into monomorphized Rust closures. Requires
    /// the optimizer's typed lowering; plans without one fall back to
    /// bytecode. Bit-identical to both lower tiers.
    Native,
}

/// Engine selection as configured: a fixed engine for every launch, or
/// `auto` — bytecode with per-plan hotness-driven promotion to the native
/// tier (see [`native::native_threshold`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSel {
    /// Every launch runs this engine (modulo per-body fallbacks).
    Fixed(Engine),
    /// Bytecode until a plan's launch count or accumulated simulated cost
    /// crosses the hotness threshold; native from then on.
    Auto,
}

/// Process-wide override: 0 = unset (use env), 1 = tree, 2 = bytecode,
/// 3 = native, 4 = auto.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENGINE_FROM_ENV: OnceLock<EngineSel> = OnceLock::new();

/// The engine selection for kernel execution: an override installed by
/// [`set_engine_sel_override`]/[`set_engine_override`] wins, else the
/// `ACCEVAL_ENGINE` environment variable (`tree` | `bytecode` | `native` |
/// `auto`), else [`Engine::Bytecode`].
pub fn engine_sel() -> EngineSel {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return EngineSel::Fixed(Engine::Tree),
        2 => return EngineSel::Fixed(Engine::Bytecode),
        3 => return EngineSel::Fixed(Engine::Native),
        4 => return EngineSel::Auto,
        _ => {}
    }
    *ENGINE_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_ENGINE") {
        // Fail soft to the default engine on a malformed value: all tiers
        // are bit-identical by contract, so the worst outcome of a typo is
        // the default's performance profile. Front-end binaries catch the
        // typo up front via `crate::env::validate_env`.
        Ok(s) => match crate::env::parse_engine_name(&s) {
            Ok("tree") => EngineSel::Fixed(Engine::Tree),
            Ok("native") => EngineSel::Fixed(Engine::Native),
            Ok("auto") => EngineSel::Auto,
            _ => EngineSel::Fixed(Engine::Bytecode),
        },
        Err(_) => EngineSel::Fixed(Engine::Bytecode),
    })
}

/// The fixed engine the current selection starts launches on (`auto`
/// resolves to [`Engine::Bytecode`] — promotion is per plan, not global).
pub fn engine() -> Engine {
    match engine_sel() {
        EngineSel::Fixed(e) => e,
        EngineSel::Auto => Engine::Bytecode,
    }
}

/// Force an engine for this process (tests/benches), overriding the
/// environment. `None` returns control to `ACCEVAL_ENGINE`.
pub fn set_engine_override(e: Option<Engine>) {
    set_engine_sel_override(e.map(EngineSel::Fixed));
}

/// Force a full engine *selection* — including [`EngineSel::Auto`] — for
/// this process, overriding the environment. `None` returns control to
/// `ACCEVAL_ENGINE`.
pub fn set_engine_sel_override(s: Option<EngineSel>) {
    let v = match s {
        None => 0,
        Some(EngineSel::Fixed(Engine::Tree)) => 1,
        Some(EngineSel::Fixed(Engine::Bytecode)) => 2,
        Some(EngineSel::Fixed(Engine::Native)) => 3,
        Some(EngineSel::Auto) => 4,
    };
    ENGINE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Short name of the active engine selection, for reports and manifests.
pub fn engine_name() -> &'static str {
    match engine_sel() {
        EngineSel::Fixed(Engine::Tree) => "tree",
        EngineSel::Fixed(Engine::Bytecode) => "bytecode",
        EngineSel::Fixed(Engine::Native) => "native",
        EngineSel::Auto => "auto",
    }
}

/// Intra-launch block-parallelism policy (`ACCEVAL_LAUNCH_PAR`). Applies
/// only to the bytecode engine and only to launches the hazard analysis
/// proves block-independent ([`crate::interp::bytecode`]'s `par_blocks_ok`);
/// everything else runs the serial block walk regardless of policy. Results
/// are bit-identical either way — parallel chunks journal every
/// order-sensitive accumulation and fold in block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchPar {
    /// Parallel when eligible and the scheduling context asks for it: the
    /// sweep flips the [`set_launch_par_hint`] hint on its task tail; with
    /// no hint installed (standalone runs), eligible launches go parallel.
    Auto,
    /// Parallel whenever the launch is eligible.
    On,
    /// Always serial.
    Off,
}

/// Process-wide override: 0 = unset (use env), 1 = auto, 2 = on, 3 = off.
static LAUNCH_PAR_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static LAUNCH_PAR_FROM_ENV: OnceLock<LaunchPar> = OnceLock::new();

thread_local! {
    static LAUNCH_PAR_HINT: Cell<Option<bool>> = const { Cell::new(None) };
}

/// The intra-launch parallelism policy: an override installed by
/// [`set_launch_par_override`] wins, else the `ACCEVAL_LAUNCH_PAR`
/// environment variable (`auto` | `on` | `off`), else [`LaunchPar::Auto`].
pub fn launch_par() -> LaunchPar {
    match LAUNCH_PAR_OVERRIDE.load(Ordering::Relaxed) {
        1 => return LaunchPar::Auto,
        2 => return LaunchPar::On,
        3 => return LaunchPar::Off,
        _ => {}
    }
    *LAUNCH_PAR_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_LAUNCH_PAR") {
        // Fail soft to Auto on a malformed value; see `engine()`.
        Ok(s) => match crate::env::parse_toggle("ACCEVAL_LAUNCH_PAR", &s) {
            Ok(crate::env::Toggle::On) => LaunchPar::On,
            Ok(crate::env::Toggle::Off) => LaunchPar::Off,
            _ => LaunchPar::Auto,
        },
        Err(_) => LaunchPar::Auto,
    })
}

/// Force a launch-parallelism policy for this process (tests/benches),
/// overriding the environment. `None` returns control to
/// `ACCEVAL_LAUNCH_PAR`.
pub fn set_launch_par_override(p: Option<LaunchPar>) {
    let v = match p {
        None => 0,
        Some(LaunchPar::Auto) => 1,
        Some(LaunchPar::On) => 2,
        Some(LaunchPar::Off) => 3,
    };
    LAUNCH_PAR_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Scheduler hint consumed by [`LaunchPar::Auto`]: the sweep sets
/// `Some(false)` while its task queue is deeper than the worker pool (task
/// parallelism already saturates the machine) and `Some(true)` on the tail,
/// where workers would otherwise idle. Thread-local, so each sweep worker
/// steers only the launches of the task it is running.
pub fn set_launch_par_hint(h: Option<bool>) {
    LAUNCH_PAR_HINT.with(|c| c.set(h));
}

fn launch_par_hint() -> Option<bool> {
    LAUNCH_PAR_HINT.with(|c| c.get())
}

/// Worker threads available to one launch: `RAYON_NUM_THREADS` when set
/// (the same knob the sweep's thread pool honors, re-read per call so tests
/// can vary it), else the machine's available parallelism.
pub fn launch_par_workers() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Short name of the active launch-parallelism policy, for manifests.
pub fn launch_par_name() -> &'static str {
    match launch_par() {
        LaunchPar::Auto => "auto",
        LaunchPar::On => "on",
        LaunchPar::Off => "off",
    }
}

/// Cap on scalar-reduction journal entries a parallel launch may buffer
/// (per-lane values replayed in block order at fold time); launches that
/// would exceed it run serially instead of ballooning memory.
const RED_JOURNAL_CAP: u64 = 1 << 23;

/// Device memory image: one optional buffer per program array, plus the
/// simulated texture cache.
///
/// Every buffer carries a monotonic generation tag ([`BufGen`]) bumped on
/// each mutation; the launch cache memoizes content digests per
/// (buffer, generation), so probes over unchanged buffers hash nothing.
/// All mutation goes through the methods here or through [`launch`]; code
/// that writes `bufs` directly must bump the matching tag itself.
pub struct DeviceState {
    pub bufs: Vec<Option<Buffer>>,
    pub tex_cache: Cache,
    /// Generation tags, parallel to `bufs`.
    pub tags: Vec<BufGen>,
}

impl DeviceState {
    /// Fresh device with nothing allocated.
    pub fn new(prog: &Program, cfg: &DeviceConfig) -> Self {
        DeviceState {
            bufs: vec![None; prog.arrays.len()],
            tex_cache: Cache::new(cfg.tex_cache_bytes * cfg.num_sms, 8, cfg.tex_line_bytes),
            tags: vec![BufGen::new(); prog.arrays.len()],
        }
    }

    /// Upload a host buffer (allocate + copy contents). Reuses an existing
    /// same-shape allocation in place instead of cloning a fresh buffer, and
    /// skips the copy entirely when the device copy's memoized content
    /// digest already matches the incoming host contents (the content-level
    /// extension of the redundant-copy skip; the transfer is still charged
    /// by the caller — this is purely a host-side memory optimization).
    pub fn upload(&mut self, id: ArrayId, host: &Buffer) {
        let i = id.0 as usize;
        match &mut self.bufs[i] {
            Some(b) if b.elem == host.elem && b.len() == host.len() => {
                if let Some(d) = self.tags[i].memoized() {
                    let hd = launch_cache::timed_digest(|| host.content_digest());
                    if hd == d {
                        return;
                    }
                    b.copy_from(host);
                    self.tags[i].bump();
                    self.tags[i].prime(hd);
                } else {
                    b.copy_from(host);
                    self.tags[i].bump();
                }
            }
            slot => {
                *slot = Some(host.clone());
                self.tags[i].bump();
            }
        }
    }

    /// Allocate zeroed device storage without a transfer. Skips the clear
    /// when the device copy's memoized digest proves it already holds zeros
    /// of the right shape.
    pub fn alloc(&mut self, id: ArrayId, host: &Buffer) {
        let i = id.0 as usize;
        match &mut self.bufs[i] {
            Some(b) if b.elem == host.elem && b.len() == host.len() => {
                if self.tags[i].memoized().is_some() {
                    let zd = launch_cache::timed_digest(|| acceval_sim::zero_digest(host.elem, host.len()));
                    if self.tags[i].memoized() == Some(zd) {
                        return;
                    }
                    *b = Buffer::zeroed(host.elem, host.len());
                    self.tags[i].bump();
                    self.tags[i].prime(zd);
                } else {
                    *b = Buffer::zeroed(host.elem, host.len());
                    self.tags[i].bump();
                }
            }
            slot => {
                *slot = Some(Buffer::zeroed(host.elem, host.len()));
                self.tags[i].bump();
            }
        }
    }

    /// Download device contents into a host buffer, copying in place when
    /// the host allocation already has the right shape.
    ///
    /// Downloading an array that was never allocated on the device is a
    /// runtime protocol error (a real driver returns a status code), so it
    /// is reported as [`SimError::DownloadUnallocated`] rather than a panic;
    /// the caller owns mapping the array index to a source-level name.
    pub fn download(&self, id: ArrayId, host: &mut Buffer) -> Result<(), SimError> {
        let src = self.bufs[id.0 as usize]
            .as_ref()
            .ok_or_else(|| SimError::DownloadUnallocated { array: id.0.to_string() })?;
        if host.elem == src.elem && host.len() == src.len() {
            host.copy_from(src);
        } else {
            *host = src.clone();
        }
        Ok(())
    }

    /// Whether the array is allocated on the device.
    pub fn is_allocated(&self, id: ArrayId) -> bool {
        self.bufs[id.0 as usize].is_some()
    }
}

/// What a site refers to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SiteKind {
    Mem(ArrayId),
    Branch,
    Unused,
}

fn classify_sites(plan: &KernelPlan) -> Vec<SiteKind> {
    let mut kinds = vec![SiteKind::Unused; plan.site_count as usize];
    visit_stmts(&plan.body, &mut |s| match s {
        Stmt::Store { array, site, .. } => kinds[site.0 as usize] = SiteKind::Mem(*array),
        Stmt::If { site, .. } => kinds[site.0 as usize] = SiteKind::Branch,
        _ => {}
    });
    visit_exprs(&plan.body, &mut |e| {
        if let Expr::Load { array, site, .. } = e {
            kinds[site.0 as usize] = SiteKind::Mem(*array);
        }
    });
    kinds
}

/// Per-warp machine: executes one lane at a time, recording traces.
struct WarpMachine<'a> {
    dev: &'a mut DeviceState,
    plan: &'a KernelPlan,
    /// Byte base address per array in the simulated device address space.
    base: &'a [u64],
    elem_bytes: &'a [u32],
    traces: Vec<SiteWarpTrace>,
    lane: u32,
    lane_ops: Vec<u64>,
    in_critical: bool,
    atomic_accesses: u64,
    /// Current lane's private array storage.
    priv_bufs: HashMap<ArrayId, Buffer>,
    tid_linear: u64,
    total_threads: u64,
    warp_size: u32,
}

impl<'a> WarpMachine<'a> {
    fn trace(&mut self, site: SiteId, addr: u64) {
        self.traces[site.0 as usize].record(self.lane, addr);
    }

    fn account(&mut self, array: ArrayId, flat: usize, site: SiteId) {
        // Private arrays are priced by their expansion layout.
        if let Some(exp) = self.plan.expansion_of(array) {
            let eb = self.elem_bytes[array.0 as usize] as u64;
            match exp {
                Expansion::Register => {}
                Expansion::RowWise => {
                    let len = self.priv_bufs[&array].len() as u64;
                    self.trace(site, PRIV_BASE + (self.tid_linear * len + flat as u64) * eb);
                }
                Expansion::ColumnWise => {
                    self.trace(site, PRIV_BASE + (flat as u64 * self.total_threads + self.tid_linear) * eb);
                }
            }
            return;
        }
        let eb = self.elem_bytes[array.0 as usize] as u64;
        let addr = self.base[array.0 as usize] + flat as u64 * eb;
        self.trace(site, addr);
        if self.in_critical {
            self.atomic_accesses += 1;
        }
    }

    fn value_of(&self, array: ArrayId, flat: usize) -> Value {
        let b = if self.plan.expansion_of(array).is_some() {
            &self.priv_bufs[&array]
        } else {
            self.dev.bufs[array.0 as usize]
                .as_ref()
                .unwrap_or_else(|| panic!("kernel read of unallocated device array {}", array.0))
        };
        if b.elem.is_float() {
            Value::F(b.get_f(flat))
        } else {
            Value::I(b.get_i(flat))
        }
    }
}

/// Base address for the expanded private-array segment (kept clear of real
/// arrays so traces never alias). Shared with the bytecode engine.
pub(crate) const PRIV_BASE: u64 = 1 << 40;

impl Machine for WarpMachine<'_> {
    fn load(&mut self, array: ArrayId, flat: usize, site: SiteId) -> Value {
        self.account(array, flat, site);
        self.value_of(array, flat)
    }

    fn store(&mut self, array: ArrayId, flat: usize, v: Value, site: SiteId) {
        self.account(array, flat, site);
        let b = if self.plan.expansion_of(array).is_some() {
            self.priv_bufs.get_mut(&array).expect("private buffer")
        } else {
            self.dev.bufs[array.0 as usize]
                .as_mut()
                .unwrap_or_else(|| panic!("kernel write of unallocated device array {}", array.0))
        };
        if b.elem.is_float() {
            b.set_f(flat, v.as_f());
        } else {
            b.set_i(flat, v.as_i());
        }
    }

    fn ops(&mut self, n: u64) {
        self.lane_ops[self.lane as usize] += n;
    }

    fn intrin(&mut self, f: Intrin) {
        // GPUs have SFUs: transcendental ops are cheap relative to CPUs.
        // (Cost table shared with the bytecode engine.)
        self.lane_ops[self.lane as usize] += intrin_cost(f);
    }

    fn branch(&mut self, site: SiteId, taken: bool) {
        self.traces[site.0 as usize].record(self.lane, taken as u64);
    }

    fn barrier(&mut self) {
        self.lane_ops[self.lane as usize] += 4;
    }

    fn critical(&mut self, entering: bool) {
        self.in_critical = entering;
    }
}

/// Result of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    pub cost: KernelCost,
    pub totals: KernelTotals,
    pub footprint: KernelFootprint,
    /// Threads that actually executed.
    pub active_threads: u64,
}

/// Execute a kernel plan on the device.
///
/// `scal` is the host scalar environment at launch; axis bounds are
/// evaluated against it and scalar reduction results are written back into
/// it. Device buffers are read/written in place.
pub fn launch(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
) -> LaunchResult {
    launch_traced(prog, plan, dev, scal, cfg, &mut NullSink)
}

/// [`launch`] with an explicit engine choice, bypassing the process-wide
/// selection — lets equivalence tests and benches compare engines without
/// touching global state.
pub fn launch_with_engine(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    eng: Engine,
) -> LaunchResult {
    launch_impl(prog, plan, dev, scal, cfg, &mut NullSink, EngineSel::Fixed(eng))
}

/// [`launch_traced`] with an explicit engine choice.
pub fn launch_traced_with_engine(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
    eng: Engine,
) -> LaunchResult {
    launch_impl(prog, plan, dev, scal, cfg, sink, EngineSel::Fixed(eng))
}

/// [`launch`], emitting structured trace events into `sink`: one
/// [`TraceEvent::CoalesceSite`] per active memory site (in site order, so
/// traces are deterministic), texture-cache counters when the kernel used
/// texture memory, and a final [`TraceEvent::KernelLaunch`] with the full
/// cost attribution. With a disabled sink this is exactly [`launch`]: no
/// event is constructed and the per-site accumulators stay empty.
pub fn launch_traced(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
) -> LaunchResult {
    launch_impl(prog, plan, dev, scal, cfg, sink, engine_sel())
}

fn launch_impl(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
    sel: EngineSel,
) -> LaunchResult {
    // Hotness bookkeeping runs before the launch-cache probe so a plan's
    // promotion point is identical with the cache on or off.
    let n_launch = plan.engine_cache.note_launch();
    let eng = match sel {
        EngineSel::Fixed(e) => e,
        EngineSel::Auto => Engine::Bytecode,
    };
    let native_want = match sel {
        EngineSel::Fixed(Engine::Native) => true,
        EngineSel::Auto => n_launch > native::native_threshold() || plan.engine_cache.sim_us() >= native::HOT_SIM_US,
        EngineSel::Fixed(_) => false,
    };
    assert!(
        plan.site_count > 0 || plan.body.iter().all(|s| !matches!(s, Stmt::Store { .. })),
        "plan must be finalized"
    );
    let site_kinds = classify_sites(plan);
    let traced = sink.enabled();
    // Per-site evidence accumulated across all warps (trace-only).
    let mut site_global: Vec<AccessSummary> =
        if traced { vec![AccessSummary::default(); plan.site_count as usize] } else { Vec::new() };
    let mut site_shared: Vec<SharedSummary> =
        if traced { vec![SharedSummary::default(); plan.site_count as usize] } else { Vec::new() };
    let tex_hits0 = dev.tex_cache.hits;
    let tex_misses0 = dev.tex_cache.misses;

    // Geometry.
    let n0 = eval_pure(&plan.axes[0].count, scal).as_i().max(0) as u64;
    let n1 = if plan.axes.len() > 1 { eval_pure(&plan.axes[1].count, scal).as_i().max(0) as u64 } else { 1 };
    let (bx, by) = (plan.block.0 as u64, plan.block.1 as u64);
    let gx = n0.div_ceil(bx).max(1);
    let gy = n1.div_ceil(by).max(1);
    let tpb = (bx * by) as u32;
    let total_blocks = gx * gy;
    let total_threads = total_blocks * tpb as u64;

    // Device address layout.
    let mut base = Vec::with_capacity(prog.arrays.len());
    let mut elem_bytes = Vec::with_capacity(prog.arrays.len());
    let mut cur = 0u64;
    for (i, a) in prog.arrays.iter().enumerate() {
        base.push(cur);
        elem_bytes.push(a.elem.size_bytes());
        if let Some(b) = &dev.bufs[i] {
            cur += (b.size_bytes() + 511) & !511;
            cur += 512;
        }
    }

    // Array extents/strides and private shapes (evaluated against the host
    // env — exactly what `Interp::with_env` computes per warp on the tree
    // path).
    let base_env: Vec<Value> = scal.to_vec();
    let extents: Vec<Vec<usize>> =
        prog.arrays.iter().map(|a| a.dims.iter().map(|d| eval_const(d, &base_env)).collect()).collect();
    let strides: Vec<Vec<usize>> = extents.iter().map(|e| row_major_strides(e)).collect();
    let priv_shapes: Vec<(ArrayId, usize, bool)> = plan
        .private_arrays
        .iter()
        .map(|p| {
            let len: usize = extents[p.array.0 as usize].iter().product();
            (p.array, len, prog.array_elem(p.array).is_float())
        })
        .collect();

    // Reduction accumulators.
    let red_scalar: Vec<(usize, crate::types::ReduceOp, bool)> = plan
        .reductions
        .iter()
        .filter_map(|r| match r.target {
            VarRef::Scalar(s) => Some((s.0 as usize, r.op, prog.scalars[s.0 as usize].is_float)),
            VarRef::Array(_) => None,
        })
        .collect();
    let red_arrays: Vec<(ArrayId, crate::types::ReduceOp)> = plan
        .reductions
        .iter()
        .filter_map(|r| match r.target {
            VarRef::Array(a) => Some((a, r.op)),
            VarRef::Scalar(_) => None,
        })
        .collect();
    let mut scal_acc: Vec<Value> = red_scalar
        .iter()
        .map(|&(_, op, isf)| if isf { Value::F(op.identity_f()) } else { Value::I(op.identity_i()) })
        .collect();
    let mut arr_acc: HashMap<ArrayId, Buffer> = HashMap::new();
    for &(a, op) in &red_arrays {
        let (_, len, isf) = priv_shapes
            .iter()
            .find(|(id, _, _)| *id == a)
            .copied()
            .unwrap_or_else(|| panic!("array reduction target must be a private array"));
        let elem = prog.array_elem(a);
        let mut b = Buffer::zeroed(elem, len);
        for i in 0..len {
            if isf {
                b.set_f(i, op.identity_f());
            } else {
                b.set_i(i, op.identity_i());
            }
        }
        arr_acc.insert(a, b);
    }

    // Texture sites mutate the cross-launch texture cache, which makes the
    // launch both ineligible for memoization (state the key cannot cover)
    // and for intra-launch parallelism (shared mutable cache).
    let has_tex = site_kinds.iter().any(|k| {
        matches!(k, SiteKind::Mem(a)
            if plan.expansion_of(*a).is_none() && matches!(plan.space_of(*a), MemSpace::Texture))
    });

    // ---- launch memoization ------------------------------------------------
    // A launch's effects are a pure function of (plan, geometry, config,
    // scalars, readable array contents): probe the content-addressed cache
    // and replay the captured effect on a hit. Opaque bodies (calls into
    // program functions) have an unbounded effect set and always execute.
    let arrays = body_arrays(plan, &red_arrays);
    // Optimizer activation is part of the launch identity: effects are
    // byte-identical by contract, but keying the mode keeps a cached effect
    // from ever crossing an optimizer boundary.
    let opt_on = matches!(eng, Engine::Bytecode | Engine::Native) && opt::opt_enabled();
    // The native tier compiles from the optimizer's typed lowering; with the
    // optimizer off or no typed stream (checked below), native launches fall
    // back to bytecode.
    let native_k =
        if native_want && opt_on { plan.engine_cache.get_or_native(prog, plan, cfg.warp_size as usize) } else { None };
    if native_want {
        if native_k.is_some() {
            // Under `auto`, the first launch past the threshold that also
            // compiled is the promotion event.
            if sel == EngineSel::Auto && plan.engine_cache.mark_promoted(n_launch) {
                native::note_promotion();
            }
        } else {
            native::note_ineligible();
        }
    }
    // The effective tier is part of the launch identity (folded into the
    // key): effects are byte-identical across tiers by contract, but keying
    // the tier keeps a cached effect from ever crossing a tier boundary.
    let eff_eng = if native_k.is_some() { Engine::Native } else { eng };
    let cache_key = if launch_cache::launch_cache_enabled() && !arrays.opaque && !has_tex {
        Some(build_launch_key(plan, dev, cfg, scal, &extents, eff_eng, opt_on, traced, &arrays))
    } else {
        None
    };
    if let Some(key) = &cache_key {
        if let Some((effect, tier)) = launch_cache::probe_two_tier(key) {
            match tier {
                launch_cache::ProbeTier::Memory => launch_cache::note_hit(),
                launch_cache::ProbeTier::Disk => launch_cache::note_disk_hit(),
            }
            let result = replay_effect(&effect, dev, scal, sink, traced);
            // Replays still feed the hotness cost signal — promotion points
            // must not depend on whether the cache happened to hit.
            plan.engine_cache.note_sim_cost(result.cost.time_secs);
            return result;
        }
        launch_cache::note_miss();
    }
    // Pre-launch contents of the write set, diffed into deltas on capture.
    let pre_writes: Vec<(usize, Option<Buffer>)> = if cache_key.is_some() {
        arrays.writes.iter().map(|&i| (i, dev.bufs[i].clone())).collect()
    } else {
        Vec::new()
    };
    let capturing = cache_key.is_some();
    let mut captured_events: Vec<TraceEvent> = Vec::new();

    let warp = cfg.warp_size;
    let warps_per_block = (tpb as u64).div_ceil(warp as u64);
    let mut totals = KernelTotals::default();
    let mut active_threads = 0u64;
    let partials_in_shared = matches!(plan.reduce_strategy, ReduceStrategy::TwoLevelTree { partials_in_shared: true });

    // Engine dispatch: the bytecode engine handles everything its compiler
    // accepts; bodies out of scope (e.g. with calls) fall back to the tree
    // walker even when the bytecode engine is selected.
    let opt_k = if opt_on { plan.engine_cache.get_or_optimize(prog, plan) } else { None };
    let bc = if matches!(eng, Engine::Bytecode | Engine::Native) {
        plan.engine_cache.get_or_compile(prog, plan)
    } else {
        None
    };

    if let Some(bc) = bc {
        if native_k.is_some() {
            native::note_native_launch();
            plan.engine_cache.note_native_launch();
        }
        // With the optimizer active, the executed stream is the optimized
        // one; metadata (axis/reduction registers, fast sites, pricing
        // flags) is identical between the two by construction.
        let bc: &bytecode::KernelBytecode = match &opt_k {
            Some(ok) => ok.bytecode(),
            None => &bc,
        };
        assert!(warp as usize <= 64, "active-lane masks hold at most 64 lanes");
        let mut expansion: Vec<Option<Expansion>> = vec![None; prog.arrays.len()];
        let mut priv_slot: Vec<i32> = vec![-1; prog.arrays.len()];
        for (k, &(a, _, _)) in priv_shapes.iter().enumerate() {
            priv_slot[a.0 as usize] = k as i32;
            expansion[a.0 as usize] = plan.expansion_of(a);
        }
        let priv_elems: Vec<(ElemType, usize)> =
            priv_shapes.iter().map(|&(a, len, _)| (prog.array_elem(a), len)).collect();
        // Axis bounds are launch constants here: the compiler bails when a
        // second axis depends on the first axis variable, so evaluating
        // against the base env matches the tree path's per-lane evaluation.
        let lo0 = eval_pure(&plan.axes[0].lo, &base_env).as_i();
        let st0 = eval_pure(&plan.axes[0].step, &base_env).as_i();
        let (lo1, st1) = if plan.axes.len() > 1 {
            (eval_pure(&plan.axes[1].lo, &base_env).as_i(), eval_pure(&plan.axes[1].step, &base_env).as_i())
        } else {
            (0, 0)
        };
        let atomic_serial = matches!(plan.reduce_strategy, ReduceStrategy::AtomicSerial);
        let DeviceState { bufs, tex_cache, .. } = dev;
        // Pricing recipe per fast site: global sites reduce through the
        // segment memo; shared-tiled sites through the bank-conflict memo
        // plus the reuse-discounted fill charge (the same arithmetic
        // `price_warp` applies to a traced shared site).
        let fast_pricing: Vec<(u64, Option<f64>)> = bc
            .fast_sites
            .iter()
            .map(|&site| {
                let SiteKind::Mem(arr) = site_kinds[site as usize] else {
                    unreachable!("fast site must be a memory site")
                };
                let eb = elem_bytes[arr.0 as usize] as u64;
                match plan.space_of(arr) {
                    MemSpace::SharedTiled { reuse } => (eb, Some(reuse)),
                    _ => (eb, None),
                }
            })
            .collect();
        let views: Vec<bytecode::RawBuf> = bufs.iter_mut().map(bytecode::RawBuf::of).collect();
        // Representative-block pricing dedup: under `uniform_pricing` a
        // block's entire pricing (totals deltas, per-warp issue cycles,
        // per-site evidence) is a pure function of its active-lane shape
        // and each fast site's block-base address modulo the site's
        // translation modulus — the coalescing segment for global sites,
        // the bank cycle for shared-tiled ones. Addresses are affine in the
        // block indices and both summaries are translation-invariant, so
        // the probe extracts the per-block address steps once; the executor
        // then prices one representative per equivalence class and replays
        // the cached deltas for the rest, while still executing every
        // block's functional effects.
        let dedup = if bc.uniform_pricing && total_blocks > 1 {
            Some(site_affine_probe(
                plan,
                bc,
                &site_kinds,
                &base,
                &elem_bytes,
                &strides,
                &base_env,
                lo0,
                st0,
                lo1,
                st1,
                bx,
                by,
                cfg,
            ))
        } else {
            None
        };
        // Parallel eligibility: block-independent stores, no accumulator
        // that cannot be journaled cheaply (array reductions fold per
        // element; texture sites mutate a shared cache), a grid worth
        // splitting, and a bounded scalar-reduction journal.
        let journal_ok = total_threads.saturating_mul(red_scalar.len() as u64) <= RED_JOURNAL_CAP;
        let eligible = bc.par_blocks_ok && red_arrays.is_empty() && !has_tex && total_blocks >= 2 && journal_ok;
        let want = match launch_par() {
            LaunchPar::Off => false,
            LaunchPar::On => true,
            LaunchPar::Auto => launch_par_hint().unwrap_or(true),
        };
        let workers = if want && eligible { launch_par_workers().min(total_blocks as usize) } else { 1 };

        let g = GridCtx {
            prog,
            plan,
            bc,
            opt: opt_k.as_deref(),
            native: native_k.as_deref(),
            cfg,
            site_kinds: &site_kinds,
            views: &views,
            base: &base,
            elem_bytes: &elem_bytes,
            extents: &extents,
            strides: &strides,
            expansion: &expansion,
            priv_slot: &priv_slot,
            priv_elems: &priv_elems,
            priv_shapes: &priv_shapes,
            base_env: &base_env,
            red_scalar: &red_scalar,
            red_arrays: &red_arrays,
            fast_pricing: &fast_pricing,
            dedup,
            atomic_serial,
            partials_in_shared,
            traced,
            n0,
            n1,
            bx,
            by,
            gx,
            tpb,
            warp,
            warps_per_block,
            total_threads,
            lo0,
            st0,
            lo1,
            st1,
        };
        if workers <= 1 {
            // Serial block walk (also the reference for the parallel fold).
            let mut out = ChunkOut::new(plan.site_count as usize, traced);
            bytecode::with_scratch(|scratch| {
                let mut sink = RedSink::Direct { scal: &mut scal_acc, arrs: &mut arr_acc };
                run_block_range(&g, 0..total_blocks, scratch, tex_cache, &mut sink, &mut out);
            });
            fold_chunk(
                out,
                &mut totals,
                &mut active_threads,
                &mut site_global,
                &mut site_shared,
                &mut scal_acc,
                &red_scalar,
            );
        } else {
            // Deterministic contiguous chunks, one scoped worker each. The
            // join collects chunk outputs in block order and `fold_chunk`
            // replays every order-sensitive accumulation in that order, so
            // the result is bit-identical to `workers == 1`.
            let mut ranges: Vec<Range<u64>> = Vec::with_capacity(workers);
            let per = total_blocks / workers as u64;
            let rem = total_blocks % workers as u64;
            let mut at = 0u64;
            for k in 0..workers as u64 {
                let len = per + u64::from(k < rem);
                ranges.push(at..at + len);
                at += len;
            }
            let outs: Vec<ChunkOut> = std::thread::scope(|scope| {
                let g = &g;
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        scope.spawn(move || {
                            // Texture sites are ineligible for parallel
                            // launches, so this cache is never consulted.
                            let mut tex = Cache::new(g.cfg.tex_line_bytes, 1, g.cfg.tex_line_bytes);
                            let mut out = ChunkOut::new(g.plan.site_count as usize, g.traced);
                            bytecode::with_scratch(|scratch| {
                                run_block_range(g, r, scratch, &mut tex, &mut RedSink::Journal, &mut out);
                            });
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))).collect()
            });
            for out in outs {
                fold_chunk(
                    out,
                    &mut totals,
                    &mut active_threads,
                    &mut site_global,
                    &mut site_shared,
                    &mut scal_acc,
                    &red_scalar,
                );
            }
        }
    } else {
        // Reference tree-walking engine: one `Interp` per warp, one pass per lane.
        for blk in 0..total_blocks {
            let bxi = blk % gx;
            let byi = blk / gx;
            for w in 0..warps_per_block {
                let wm = WarpMachine {
                    dev,
                    plan,
                    base: &base,
                    elem_bytes: &elem_bytes,
                    traces: (0..plan.site_count).map(|_| SiteWarpTrace::new(warp)).collect(),
                    lane: 0,
                    lane_ops: vec![0; warp as usize],
                    in_critical: false,
                    atomic_accesses: 0,
                    priv_bufs: HashMap::new(),
                    tid_linear: 0,
                    total_threads,
                    warp_size: warp,
                };
                let _ = wm.warp_size;
                let mut it = Interp::with_env(prog, wm, base_env.clone());
                let mut any_active = false;
                for lane in 0..warp as u64 {
                    let t = w * warp as u64 + lane;
                    if t >= tpb as u64 {
                        break;
                    }
                    let tx = t % bx;
                    let ty = t / bx;
                    let ix = bxi * bx + tx;
                    let iy = byi * by + ty;
                    if ix >= n0 || iy >= n1 {
                        continue;
                    }
                    any_active = true;
                    active_threads += 1;
                    it.m.lane = lane as u32;
                    it.m.tid_linear = blk * tpb as u64 + t;
                    it.m.in_critical = false;
                    // Fresh private buffers for this thread.
                    it.m.priv_bufs.clear();
                    for &(a, len, isf) in &priv_shapes {
                        let elem = prog.array_elem(a);
                        let mut b = Buffer::zeroed(elem, len);
                        if let Some(&(_, op)) = red_arrays.iter().find(|(id, _)| *id == a) {
                            for i in 0..len {
                                if isf {
                                    b.set_f(i, op.identity_f());
                                } else {
                                    b.set_i(i, op.identity_i());
                                }
                            }
                        }
                        it.m.priv_bufs.insert(a, b);
                    }
                    // Thread environment.
                    it.scal.clone_from(&base_env);
                    let v0 = eval_pure(&plan.axes[0].lo, &it.scal).as_i()
                        + ix as i64 * eval_pure(&plan.axes[0].step, &it.scal).as_i();
                    it.scal[plan.axes[0].var.0 as usize] = Value::I(v0);
                    if plan.axes.len() > 1 {
                        let v1 = eval_pure(&plan.axes[1].lo, &it.scal).as_i()
                            + iy as i64 * eval_pure(&plan.axes[1].step, &it.scal).as_i();
                        it.scal[plan.axes[1].var.0 as usize] = Value::I(v1);
                    }
                    // Scalar reduction identities.
                    for (k, &(slot, op, isf)) in red_scalar.iter().enumerate() {
                        let _ = k;
                        it.scal[slot] = if isf { Value::F(op.identity_f()) } else { Value::I(op.identity_i()) };
                    }
                    // Execute the body.
                    for s in &plan.body {
                        it.exec_plain(s);
                    }
                    // Fold reductions.
                    for (k, &(slot, op, _)) in red_scalar.iter().enumerate() {
                        scal_acc[k] = op.combine(scal_acc[k], it.scal[slot]);
                    }
                    for &(a, op) in &red_arrays {
                        let src = &it.m.priv_bufs[&a];
                        let acc = arr_acc.get_mut(&a).expect("acc");
                        for i in 0..src.len() {
                            let cur = if acc.elem.is_float() { Value::F(acc.get_f(i)) } else { Value::I(acc.get_i(i)) };
                            let nv = if src.elem.is_float() { Value::F(src.get_f(i)) } else { Value::I(src.get_i(i)) };
                            let c = op.combine(cur, nv);
                            if acc.elem.is_float() {
                                acc.set_f(i, c.as_f());
                            } else {
                                acc.set_i(i, c.as_i());
                            }
                        }
                        if matches!(plan.reduce_strategy, ReduceStrategy::AtomicSerial) {
                            it.m.atomic_accesses += src.len() as u64;
                        }
                    }
                    if matches!(plan.reduce_strategy, ReduceStrategy::AtomicSerial) && !red_scalar.is_empty() {
                        it.m.atomic_accesses += red_scalar.len() as u64;
                    }
                }
                // Reduce the warp's traces into totals.
                let wm = it.m;
                if any_active {
                    let issue = price_warp(
                        plan,
                        cfg,
                        &site_kinds,
                        &elem_bytes,
                        partials_in_shared,
                        &red_arrays,
                        &wm.traces,
                        None,
                        &wm.lane_ops,
                        wm.atomic_accesses,
                        &mut wm.dev.tex_cache,
                        &mut totals,
                        traced,
                        &mut site_global,
                        &mut site_shared,
                    );
                    totals.issue_cycles += issue;
                }
            }
        }
    }

    // Apply reductions.
    for (k, &(slot, op, _)) in red_scalar.iter().enumerate() {
        scal[slot] = op.combine(scal[slot], scal_acc[k]);
    }
    for &(a, op) in &red_arrays {
        let acc = &arr_acc[&a];
        // Combine into the device copy (allocating if necessary).
        if dev.bufs[a.0 as usize].is_none() {
            dev.bufs[a.0 as usize] = Some(Buffer::zeroed(acc.elem, acc.len()));
        }
        let dst = dev.bufs[a.0 as usize].as_mut().expect("reduction target");
        for i in 0..acc.len() {
            let cur = if dst.elem.is_float() { Value::F(dst.get_f(i)) } else { Value::I(dst.get_i(i)) };
            let nv = if acc.elem.is_float() { Value::F(acc.get_f(i)) } else { Value::I(acc.get_i(i)) };
            let c = op.combine(cur, nv);
            if dst.elem.is_float() {
                dst.set_f(i, c.as_f());
            } else {
                dst.set_i(i, c.as_i());
            }
        }
    }

    // Tree-reduction overhead.
    if !plan.reductions.is_empty() {
        if let ReduceStrategy::TwoLevelTree { .. } = plan.reduce_strategy {
            let rounds = (tpb.max(2) as f64).log2().ceil() as u64;
            totals.shared_slots += total_blocks * rounds * warps_per_block;
            totals.issue_cycles += (total_blocks * rounds * 2) as f64;
            // Partial writes + second-stage reads.
            let partial_bytes = total_blocks * 8 * plan.reductions.len() as u64;
            totals.global_transactions += 2 * partial_bytes.div_ceil(cfg.segment_bytes as u64).max(1);
            totals.global_requests += 2 * total_blocks.div_ceil(cfg.warp_size as u64).max(1);
        }
    }

    let mut shared_bytes = plan.shared_bytes_per_block;
    if partials_in_shared {
        let red_bytes: u32 = red_arrays
            .iter()
            .map(|(a, _)| {
                let (_, len, _) = priv_shapes.iter().find(|(id, _, _)| id == a).expect("shape");
                *len as u32 * prog.array_elem(*a).size_bytes()
            })
            .sum::<u32>()
            .saturating_mul(tpb / 32);
        shared_bytes = shared_bytes.max(red_bytes.min(cfg.shared_per_sm / 2));
    }

    let footprint = KernelFootprint {
        threads_per_block: tpb,
        shared_bytes_per_block: shared_bytes,
        regs_per_thread: plan.regs_per_thread,
        grid_blocks: total_blocks,
    };
    let mut cost = estimate_kernel(cfg, &footprint, &totals);
    if !plan.reductions.is_empty() {
        // Second-stage kernel launch.
        cost.time_secs += cfg.launch_overhead_us * 1e-6;
    }

    if traced {
        // Per-site coalescing evidence, in site order (deterministic).
        for (i, kind) in site_kinds.iter().enumerate() {
            let SiteKind::Mem(arr) = kind else { continue };
            let g = site_global[i];
            let sh = site_shared[i];
            if g.requests == 0 && g.transactions == 0 && sh.requests == 0 {
                continue;
            }
            let space = if plan.expansion_of(*arr).is_some() {
                if partials_in_shared && red_arrays.iter().any(|(a, _)| a == arr) {
                    "shared"
                } else {
                    "global"
                }
            } else {
                match plan.space_of(*arr) {
                    MemSpace::Global => "global",
                    MemSpace::SharedTiled { .. } => "shared",
                    MemSpace::Constant => "constant",
                    MemSpace::Texture => "texture",
                }
            };
            let ev = TraceEvent::CoalesceSite {
                kernel: plan.name.clone(),
                site: i as u32,
                array: prog.array_name(*arr).to_string(),
                space: space.to_string(),
                requests: g.requests + sh.requests,
                transactions: g.transactions,
                lane_accesses: g.lane_accesses,
                shared_slots: sh.slots,
            };
            if capturing {
                captured_events.push(ev.clone());
            }
            sink.emit(ev);
        }
        if dev.tex_cache.hits != tex_hits0 || dev.tex_cache.misses != tex_misses0 {
            // Texture launches are never memoized, so this event is not captured.
            sink.emit(dev.tex_cache.trace_event(&format!("{}/texture", plan.name)));
        }
        let ev = cost.trace_event(&plan.name, &footprint, &totals, cfg);
        if capturing {
            captured_events.push(ev.clone());
        }
        sink.emit(ev);
    }

    // Generation bookkeeping: the launch mutated its write set, so those
    // digest memos are stale (opaque bodies invalidate every allocated
    // array — the write set cannot be bounded statically).
    if arrays.opaque {
        for (i, b) in dev.bufs.iter().enumerate() {
            if b.is_some() {
                dev.tags[i].bump();
            }
        }
    } else {
        for &i in &arrays.writes {
            dev.tags[i].bump();
        }
    }

    let result = LaunchResult { cost, totals, footprint, active_threads };
    plan.engine_cache.note_sim_cost(result.cost.time_secs);
    if let Some(key) = cache_key {
        // Capture the launch's complete effect: output deltas + digests
        // (which also prime the freshly bumped generation memos), scalar
        // writebacks, the result, and the trace-event slice.
        let mut outputs: Vec<(u32, ArrayOut, u128)> = Vec::with_capacity(pre_writes.len());
        launch_cache::timed_digest(|| {
            for (i, pre) in &pre_writes {
                let Some(post) = dev.bufs[*i].as_ref() else { continue };
                let (out, d) = diff_and_digest(pre.as_ref(), post);
                dev.tags[*i].prime(d);
                outputs.push((*i as u32, out, d));
            }
        });
        let scalar_writes: Vec<(usize, Value)> = red_scalar.iter().map(|&(slot, _, _)| (slot, scal[slot])).collect();
        launch_cache::insert(
            key,
            LaunchEffect { outputs, scalar_writes, result: result.clone(), events: captured_events },
        );
    }
    result
}

/// Readable/writable device arrays of a kernel body, for launch memoization.
struct BodyArrays {
    /// Non-private arrays the body can observe — loads and (partial-write)
    /// store targets — plus reduction targets: the content read set.
    reads: Vec<usize>,
    /// Non-private store targets plus reduction targets: everything the
    /// launch may mutate on the device.
    writes: Vec<usize>,
    /// The body contains constructs whose effect set this walk cannot bound
    /// (calls into program functions and other non-kernel constructs).
    opaque: bool,
}

fn body_arrays(plan: &KernelPlan, red_arrays: &[(ArrayId, crate::types::ReduceOp)]) -> BodyArrays {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut opaque = false;
    visit_stmts(&plan.body, &mut |s| match s {
        Stmt::Store { array, .. } if plan.expansion_of(*array).is_none() => {
            writes.push(array.0 as usize);
            reads.push(array.0 as usize);
        }
        Stmt::Call { .. } | Stmt::DataRegion { .. } | Stmt::Update { .. } | Stmt::Parallel(_) => opaque = true,
        _ => {}
    });
    visit_exprs(&plan.body, &mut |e| {
        if let Expr::Load { array, .. } = e {
            if plan.expansion_of(*array).is_none() {
                reads.push(array.0 as usize);
            }
        }
    });
    for &(a, _) in red_arrays {
        reads.push(a.0 as usize);
        writes.push(a.0 as usize);
    }
    reads.sort_unstable();
    reads.dedup();
    writes.sort_unstable();
    writes.dedup();
    BodyArrays { reads, writes, opaque }
}

/// Fold a debug representation into a digest, 8 bytes at a time.
fn fold_str(d: &mut Digest128, s: &str) {
    let bytes = s.as_bytes();
    d.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        d.push(u64::from_le_bytes(w));
    }
}

/// Assemble the content-addressed key of this launch. Buffer digests go
/// through the generation memos, so a steady-state probe hashes nothing but
/// the (small) config/layout/scalar material.
#[allow(clippy::too_many_arguments)]
fn build_launch_key(
    plan: &KernelPlan,
    dev: &mut DeviceState,
    cfg: &DeviceConfig,
    scal: &[Value],
    extents: &[Vec<usize>],
    eng: Engine,
    opt: bool,
    traced: bool,
    arrays: &BodyArrays,
) -> LaunchKey {
    launch_cache::timed_digest(|| {
        let plan_fp = plan.engine_cache.fingerprint(plan);
        let mut cfgd = Digest128::new();
        fold_str(&mut cfgd, &format!("{cfg:?}"));
        // Address layout: the device base of every array depends on the
        // allocation state, length, and element size of all the arrays
        // before it; extents additionally pin index linearisation.
        let mut lay = Digest128::new();
        for (i, b) in dev.bufs.iter().enumerate() {
            match b {
                Some(b) => {
                    lay.push(1);
                    lay.push(b.len() as u64);
                    lay.push(b.elem.size_bytes() as u64);
                    lay.push(b.elem.is_float() as u64);
                }
                None => lay.push(0),
            }
            for &e in &extents[i] {
                lay.push(e as u64);
            }
            lay.push(u64::MAX); // extent-list terminator
        }
        let scalars: Vec<(u8, u64)> = scal
            .iter()
            .map(|v| match v {
                Value::F(x) => (1u8, x.to_bits()),
                Value::I(x) => (2u8, *x as u64),
                Value::B(x) => (3u8, *x as u64),
            })
            .collect();
        let inputs: Vec<(u32, Option<u128>)> = arrays
            .reads
            .iter()
            .map(|&i| {
                let d = match dev.bufs[i].as_ref() {
                    Some(b) => Some(dev.tags[i].digest(b).0),
                    None => None,
                };
                (i as u32, d)
            })
            .collect();
        LaunchKey {
            plan_fp,
            block: plan.block,
            shared_bytes: plan.shared_bytes_per_block,
            regs: plan.regs_per_thread,
            engine: match eng {
                Engine::Tree => 0,
                Engine::Bytecode => 1,
                Engine::Native => 2,
            },
            opt,
            traced,
            cfg_digest: (cfgd.finish() >> 64) as u64 ^ cfgd.finish() as u64,
            layout_digest: (lay.finish() >> 64) as u64 ^ lay.finish() as u64,
            scalars,
            inputs,
        }
    })
}

/// Apply a cached launch effect to the device and scalar environment,
/// re-emitting the captured trace-event slice. Bit-identical to executing
/// the launch.
fn replay_effect(
    effect: &LaunchEffect,
    dev: &mut DeviceState,
    scal: &mut [Value],
    sink: &mut dyn TraceSink,
    traced: bool,
) -> LaunchResult {
    for (ai, out, digest) in &effect.outputs {
        let i = *ai as usize;
        match out {
            ArrayOut::Full(src) => match &mut dev.bufs[i] {
                Some(b) if b.elem == src.elem && b.len() == src.len() => b.copy_from(src),
                slot => *slot = Some((**src).clone()),
            },
            ArrayOut::Sparse(writes) => {
                let b = dev.bufs[i].as_mut().expect("sparse replay target is allocated (keyed by layout)");
                match &mut b.data {
                    Payload::F(v) => {
                        for &(idx, bits) in writes {
                            v[idx as usize] = f64::from_bits(bits);
                        }
                    }
                    Payload::I(v) => {
                        for &(idx, bits) in writes {
                            v[idx as usize] = bits as i64;
                        }
                    }
                }
            }
        }
        dev.tags[i].bump();
        dev.tags[i].prime(*digest);
    }
    for &(slot, v) in &effect.scalar_writes {
        scal[slot] = v;
    }
    if traced {
        for e in &effect.events {
            sink.emit(e.clone());
        }
    }
    effect.result.clone()
}

/// Delta between pre- and post-launch contents of one buffer (sparse when at
/// most a quarter of the elements changed, dense otherwise) fused with the
/// post buffer's content digest, so capture walks each written buffer once
/// instead of diffing and hashing in separate passes. The digest folds the
/// same header and element bits as [`Buffer::content_digest`], so priming a
/// generation memo with it is indistinguishable from re-hashing.
fn diff_and_digest(pre: Option<&Buffer>, post: &Buffer) -> (ArrayOut, u128) {
    let n = post.len();
    let comparable = n <= u32::MAX as usize && matches!(pre, Some(p) if p.elem == post.elem && p.len() == n);
    let cap = n / 4 + 1;
    let mut d = post.digest_header();
    let mut writes: Vec<(u32, u64)> = Vec::new();
    let mut fits = comparable;
    match (&post.data, pre.map(|p| &p.data)) {
        (Payload::F(b), Some(Payload::F(a))) if comparable => {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                let bits = y.to_bits();
                d.push(bits);
                if fits && x.to_bits() != bits {
                    if writes.len() >= cap {
                        // Delta too dense for the sparse form: stop collecting
                        // but keep folding the digest to finish the pass.
                        fits = false;
                    } else {
                        writes.push((i as u32, bits));
                    }
                }
            }
        }
        (Payload::I(b), Some(Payload::I(a))) if comparable => {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                d.push(*y as u64);
                if fits && x != y {
                    if writes.len() >= cap {
                        fits = false;
                    } else {
                        writes.push((i as u32, *y as u64));
                    }
                }
            }
        }
        (Payload::F(b), _) => {
            fits = false;
            for y in b {
                d.push(y.to_bits());
            }
        }
        (Payload::I(b), _) => {
            fits = false;
            for y in b {
                d.push(*y as u64);
            }
        }
    }
    let out = if fits { ArrayOut::Sparse(writes) } else { ArrayOut::Full(std::sync::Arc::new(post.clone())) };
    (out, d.finish())
}

/// Launch-wide immutable context shared by every block-chunk executor of
/// one bytecode launch. Everything is a plain borrow or `Copy` geometry, so
/// a reference to it crosses scoped-thread boundaries.
struct GridCtx<'a> {
    prog: &'a Program,
    plan: &'a KernelPlan,
    bc: &'a bytecode::KernelBytecode,
    /// Optimized kernel when `ACCEVAL_OPT` resolved to enabled and the plan
    /// optimized; `bc` then aliases its post-optimization stream.
    opt: Option<&'a opt::OptKernel>,
    /// Native closure kernel when this launch runs the native tier (forced
    /// or hotness-promoted); `opt` is always `Some` alongside it.
    native: Option<&'a native::NativeKernel>,
    cfg: &'a DeviceConfig,
    site_kinds: &'a [SiteKind],
    views: &'a [bytecode::RawBuf],
    base: &'a [u64],
    elem_bytes: &'a [u32],
    extents: &'a [Vec<usize>],
    strides: &'a [Vec<usize>],
    expansion: &'a [Option<Expansion>],
    priv_slot: &'a [i32],
    priv_elems: &'a [(ElemType, usize)],
    priv_shapes: &'a [(ArrayId, usize, bool)],
    base_env: &'a [Value],
    red_scalar: &'a [(usize, crate::types::ReduceOp, bool)],
    red_arrays: &'a [(ArrayId, crate::types::ReduceOp)],
    fast_pricing: &'a [(u64, Option<f64>)],
    /// Per-fast-site affine address steps for representative-block pricing
    /// dedup (`None` disables dedup).
    dedup: Option<Vec<SiteAffine>>,
    atomic_serial: bool,
    partials_in_shared: bool,
    traced: bool,
    n0: u64,
    n1: u64,
    bx: u64,
    by: u64,
    gx: u64,
    tpb: u32,
    warp: u32,
    warps_per_block: u64,
    total_threads: u64,
    lo0: i64,
    st0: i64,
    lo1: i64,
    st1: i64,
}

/// Where scalar/array reduction partials go during block execution.
enum RedSink<'a> {
    /// Serial path: fold straight into the launch accumulators in
    /// (block, warp, lane) order, exactly as the tree engine does.
    Direct { scal: &'a mut [Value], arrs: &'a mut HashMap<ArrayId, Buffer> },
    /// Parallel chunks: journal per-lane values in (block, warp, lane)
    /// order; [`fold_chunk`] replays them serially so the combine sequence
    /// is identical to the serial path. (Array reductions are ineligible
    /// for parallel launches, so only scalars journal.)
    Journal,
}

/// One chunk's accumulated results, foldable in block order.
struct ChunkOut {
    totals: KernelTotals,
    active_threads: u64,
    /// Per-priced-warp issue-cycle increments, in block order. Folded into
    /// `KernelTotals::issue_cycles` by serial left-to-right addition at
    /// merge time, so the f64 sum is independent of the chunking.
    issue: Vec<f64>,
    /// Scalar-reduction journal (see [`RedSink::Journal`]).
    red_journal: Vec<Value>,
    site_global: Vec<AccessSummary>,
    site_shared: Vec<SharedSummary>,
}

impl ChunkOut {
    fn new(site_count: usize, traced: bool) -> ChunkOut {
        ChunkOut {
            totals: KernelTotals::default(),
            active_threads: 0,
            issue: Vec::new(),
            red_journal: Vec::new(),
            site_global: if traced { vec![AccessSummary::default(); site_count] } else { Vec::new() },
            site_shared: if traced { vec![SharedSummary::default(); site_count] } else { Vec::new() },
        }
    }
}

/// Affine address behaviour of one fast site across the grid: the whole
/// block's address set translates by `dx`/`dy` per block-index step, and
/// its pricing is invariant under translation by multiples of `modulus`
/// (the coalescing segment for global sites, the bank cycle for
/// shared-tiled ones).
struct SiteAffine {
    addr0: i128,
    dx: i128,
    dy: i128,
    modulus: u64,
}

/// Probe each fast site's index expressions at (ix, iy) in
/// {(0,0), (1,0), (0,1)} to extract its affine address coefficients.
/// `uniform_pricing` guarantees every such index is affine in the axis
/// variables with launch-uniform remaining terms, so three pure
/// evaluations determine the whole map exactly.
#[allow(clippy::too_many_arguments)]
fn site_affine_probe(
    plan: &KernelPlan,
    bc: &bytecode::KernelBytecode,
    site_kinds: &[SiteKind],
    base: &[u64],
    elem_bytes: &[u32],
    strides: &[Vec<usize>],
    base_env: &[Value],
    lo0: i64,
    st0: i64,
    lo1: i64,
    st1: i64,
    bx: u64,
    by: u64,
    cfg: &DeviceConfig,
) -> Vec<SiteAffine> {
    let mut site_idx: HashMap<u32, &Vec<Expr>> = HashMap::new();
    visit_stmts(&plan.body, &mut |s| {
        if let Stmt::Store { index, site, .. } = s {
            site_idx.insert(site.0, index);
        }
    });
    visit_exprs(&plan.body, &mut |e| {
        if let Expr::Load { index, site, .. } = e {
            site_idx.insert(site.0, index);
        }
    });
    let ax0 = plan.axes[0].var.0 as usize;
    let ax1 = if plan.axes.len() > 1 { Some(plan.axes[1].var.0 as usize) } else { None };
    let mut env = base_env.to_vec();
    bc.fast_sites
        .iter()
        .map(|&site| {
            let SiteKind::Mem(arr) = site_kinds[site as usize] else { unreachable!("fast site must be a memory site") };
            let a = arr.0 as usize;
            let idx = site_idx[&site];
            let mut flat_at = |ixv: i64, iyv: i64| -> i128 {
                env[ax0] = Value::I(lo0 + st0 * ixv);
                if let Some(a1) = ax1 {
                    env[a1] = Value::I(lo1 + st1 * iyv);
                }
                idx.iter().zip(&strides[a]).map(|(e, st)| eval_pure(e, &env).as_i() as i128 * *st as i128).sum()
            };
            let f00 = flat_at(0, 0);
            let fx = flat_at(1, 0) - f00;
            let fy = if ax1.is_some() { flat_at(0, 1) - f00 } else { 0 };
            let eb = elem_bytes[a] as i128;
            let modulus = match plan.space_of(arr) {
                MemSpace::SharedTiled { .. } => (cfg.shared_banks * 4) as u64,
                _ => cfg.segment_bytes as u64,
            };
            SiteAffine {
                addr0: base[a] as i128 + f00 * eb,
                dx: fx * bx as i128 * eb,
                dy: fy * by as i128 * eb,
                modulus,
            }
        })
        .collect()
}

/// Pre-block snapshot of a chunk's pricing accumulators; [`PriceSnap::diff`]
/// turns it into the block's pricing delta once the representative block
/// has been priced.
struct PriceSnap {
    warps: u64,
    greq: u64,
    gtx: u64,
    ubytes: u64,
    sslots: u64,
    aslots: u64,
    treq: u64,
    tmiss: u64,
    issue_len: usize,
    sites: Vec<(u32, AccessSummary, SharedSummary)>,
}

impl PriceSnap {
    fn take(out: &ChunkOut, g: &GridCtx<'_>) -> PriceSnap {
        let t = &out.totals;
        PriceSnap {
            warps: t.warps,
            greq: t.global_requests,
            gtx: t.global_transactions,
            ubytes: t.useful_bytes,
            sslots: t.shared_slots,
            aslots: t.atomic_slots,
            treq: t.tex_requests,
            tmiss: t.tex_miss_lines,
            issue_len: out.issue.len(),
            sites: if g.traced {
                g.bc.fast_sites.iter().map(|&s| (s, out.site_global[s as usize], out.site_shared[s as usize])).collect()
            } else {
                Vec::new()
            },
        }
    }

    fn diff(self, out: &ChunkOut) -> BlockPricing {
        let t = &out.totals;
        BlockPricing {
            warps: t.warps - self.warps,
            greq: t.global_requests - self.greq,
            gtx: t.global_transactions - self.gtx,
            ubytes: t.useful_bytes - self.ubytes,
            sslots: t.shared_slots - self.sslots,
            aslots: t.atomic_slots - self.aslots,
            treq: t.tex_requests - self.treq,
            tmiss: t.tex_miss_lines - self.tmiss,
            issue: out.issue[self.issue_len..].to_vec(),
            sites: self
                .sites
                .into_iter()
                .map(|(s, g0, s0)| {
                    let g1 = out.site_global[s as usize];
                    let s1 = out.site_shared[s as usize];
                    (
                        s,
                        AccessSummary {
                            requests: g1.requests - g0.requests,
                            transactions: g1.transactions - g0.transactions,
                            lane_accesses: g1.lane_accesses - g0.lane_accesses,
                        },
                        SharedSummary { slots: s1.slots - s0.slots, requests: s1.requests - s0.requests },
                    )
                })
                .collect(),
        }
    }
}

/// Cached pricing delta of one block equivalence class.
struct BlockPricing {
    warps: u64,
    greq: u64,
    gtx: u64,
    ubytes: u64,
    sslots: u64,
    aslots: u64,
    treq: u64,
    tmiss: u64,
    issue: Vec<f64>,
    sites: Vec<(u32, AccessSummary, SharedSummary)>,
}

impl BlockPricing {
    fn replay(&self, out: &mut ChunkOut, traced: bool) {
        let t = &mut out.totals;
        t.warps += self.warps;
        t.global_requests += self.greq;
        t.global_transactions += self.gtx;
        t.useful_bytes += self.ubytes;
        t.shared_slots += self.sslots;
        t.atomic_slots += self.aslots;
        t.tex_requests += self.treq;
        t.tex_miss_lines += self.tmiss;
        out.issue.extend_from_slice(&self.issue);
        if traced {
            for &(s, ga, sh) in &self.sites {
                out.site_global[s as usize].merge(&ga);
                out.site_shared[s as usize].merge(&sh);
            }
        }
    }
}

/// Fold one chunk's results into the launch accumulators. Called in block
/// (chunk) order: u64 counters and per-site summaries merge associatively,
/// while the f64 issue-cycle increments and the scalar-reduction journal
/// replay serially so every order-sensitive fold reproduces the serial
/// path bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn fold_chunk(
    out: ChunkOut,
    totals: &mut KernelTotals,
    active_threads: &mut u64,
    site_global: &mut [AccessSummary],
    site_shared: &mut [SharedSummary],
    scal_acc: &mut [Value],
    red_scalar: &[(usize, crate::types::ReduceOp, bool)],
) {
    debug_assert!(out.totals.issue_cycles == 0.0, "issue cycles travel via the per-warp journal");
    totals.warps += out.totals.warps;
    totals.global_requests += out.totals.global_requests;
    totals.global_transactions += out.totals.global_transactions;
    totals.useful_bytes += out.totals.useful_bytes;
    totals.shared_slots += out.totals.shared_slots;
    totals.atomic_slots += out.totals.atomic_slots;
    totals.tex_requests += out.totals.tex_requests;
    totals.tex_miss_lines += out.totals.tex_miss_lines;
    for x in &out.issue {
        totals.issue_cycles += *x;
    }
    *active_threads += out.active_threads;
    for (d, s) in site_global.iter_mut().zip(&out.site_global) {
        d.merge(s);
    }
    for (d, s) in site_shared.iter_mut().zip(&out.site_shared) {
        d.merge(s);
    }
    if !red_scalar.is_empty() {
        for lane_vals in out.red_journal.chunks_exact(red_scalar.len()) {
            for (k, &(_, op, _)) in red_scalar.iter().enumerate() {
                scal_acc[k] = op.combine(scal_acc[k], lane_vals[k]);
            }
        }
    }
}

/// Execute a contiguous range of blocks against shared buffer views,
/// accumulating pricing into `out` and reduction partials into `sink`.
/// Both the serial path (one call covering the whole grid) and every
/// parallel chunk run exactly this code, so the paths cannot drift.
fn run_block_range(
    g: &GridCtx<'_>,
    blocks: Range<u64>,
    scratch: &mut bytecode::WarpScratch,
    tex_cache: &mut Cache,
    sink: &mut RedSink<'_>,
    out: &mut ChunkOut,
) {
    let bc = g.bc;
    let wu = g.warp as usize;
    match g.opt {
        Some(ok) => opt::begin_launch_opt(
            ok,
            scratch,
            wu,
            g.plan.site_count as usize,
            g.priv_elems,
            g.base_env,
            g.cfg.segment_bytes,
        ),
        None => scratch.begin_launch(bc, wu, g.plan.site_count as usize, g.priv_elems, g.base_env, g.cfg.segment_bytes),
    }
    let mut ax0 = vec![0i64; wu];
    let mut ax1 = vec![0i64; wu];
    let mut row: Vec<(u32, u64)> = Vec::with_capacity(wu);
    let mut price_cache: HashMap<Vec<u64>, BlockPricing> = HashMap::new();
    let mut key: Vec<u64> = Vec::new();
    let ctx = bytecode::ExecCtx {
        prog: g.prog,
        bufs: g.views,
        base: g.base,
        elem_bytes: g.elem_bytes,
        extents: g.extents,
        strides: g.strides,
        expansion: g.expansion,
        priv_slot: g.priv_slot,
        total_threads: g.total_threads,
    };
    for blk in blocks {
        let bxi = blk % g.gx;
        let byi = blk / g.gx;
        // Representative-block dedup: a block's pricing class is its
        // active-lane shape plus each fast site's base address residue.
        // On a class hit, replay the cached deltas; execution of the
        // block's functional effects still runs below — only the pricing
        // work is skipped.
        let mut cached = false;
        if let Some(aff) = &g.dedup {
            key.clear();
            key.push(g.n0.saturating_sub(bxi * g.bx).min(g.bx));
            key.push(g.n1.saturating_sub(byi * g.by).min(g.by));
            for s in aff {
                let addr = s.addr0 + s.dx * bxi as i128 + s.dy * byi as i128;
                key.push(addr.rem_euclid(s.modulus as i128) as u64);
            }
            if let Some(bp) = price_cache.get(&key) {
                bp.replay(out, g.traced);
                cached = true;
            }
        }
        let snap = if g.dedup.is_some() && !cached { Some(PriceSnap::take(out, g)) } else { None };
        for w in 0..g.warps_per_block {
            let mut mask = 0u64;
            for lane in 0..g.warp as u64 {
                let t = w * g.warp as u64 + lane;
                if t >= g.tpb as u64 {
                    break;
                }
                let tx = t % g.bx;
                let ty = t / g.bx;
                let ix = bxi * g.bx + tx;
                let iy = byi * g.by + ty;
                if ix >= g.n0 || iy >= g.n1 {
                    continue;
                }
                mask |= 1u64 << lane;
                ax0[lane as usize] = g.lo0 + ix as i64 * g.st0;
                ax1[lane as usize] = g.lo1 + iy as i64 * g.st1;
            }
            if mask == 0 {
                continue;
            }
            out.active_threads += mask.count_ones() as u64;
            // A pricing-cached block discards its warps' evidence; the
            // native tier's functional-only variant neither reads nor
            // writes it, so the evidence resets can be skipped with it.
            let functional = cached && g.native.is_some() && g.opt.is_some();
            if functional {
                scratch.begin_warp_functional(bc, g.base_env);
            } else {
                scratch.begin_warp(bc, g.base_env);
            }
            // Per-lane prologue: axis variables, scalar-reduction
            // identities, private-array scratch reset. Functional warps
            // take their axis values through the typed I bank directly —
            // the native kernel skips the axis import for them, and nothing
            // else reads the Value axis rows of a discarded-evidence warp.
            let a0 = bc.axis_regs[0] as usize;
            let a1 = if g.plan.axes.len() > 1 { Some(bc.axis_regs[1] as usize) } else { None };
            if functional {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    scratch.iregs[a0 * wu + l] = ax0[l];
                    if let Some(a1) = a1 {
                        scratch.iregs[a1 * wu + l] = ax1[l];
                    }
                }
            } else {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    scratch.regs[a0 * wu + l] = Value::I(ax0[l]);
                }
                if let Some(a1) = a1 {
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        scratch.regs[a1 * wu + l] = Value::I(ax1[l]);
                    }
                }
            }
            for (k, &(_, op, isf)) in g.red_scalar.iter().enumerate() {
                let r = bc.red_scalar_regs[k] as usize;
                let idv = if isf { Value::F(op.identity_f()) } else { Value::I(op.identity_i()) };
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    scratch.regs[r * wu + l] = idv;
                }
            }
            for &(a, len, isf) in g.priv_shapes {
                let slot = g.priv_slot[a.0 as usize] as usize;
                let ident = g.red_arrays.iter().find(|(id, _)| *id == a).map(|&(_, op)| op);
                let fill_f = ident.map_or(0.0, |op| op.identity_f());
                let fill_i = ident.map_or(0, |op| op.identity_i());
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let b = &mut scratch.priv_bufs[slot * wu + l];
                    for e in 0..len {
                        if isf {
                            b.set_f(e, fill_f);
                        } else {
                            b.set_i(e, fill_i);
                        }
                    }
                }
            }
            // Execute the warp in lockstep.
            let tid_base = blk * g.tpb as u64 + w * g.warp as u64;
            let atomic = match (g.native, g.opt) {
                (Some(nk), Some(ok)) => native::exec_warp_native(nk, ok, scratch, &ctx, mask, tid_base, !cached),
                (_, Some(ok)) => opt::exec_warp_opt(ok, scratch, &ctx, mask, tid_base),
                _ => bytecode::exec_warp(bc, scratch, &ctx, mask, tid_base),
            };
            // Fold reductions in ascending lane order — the same combine
            // sequence the tree path produces (journaled chunks replay it
            // at fold time). With no reductions the lane scan is a no-op;
            // skip it.
            let mut extra_atomic = 0u64;
            let mut m = if g.red_scalar.is_empty() && g.red_arrays.is_empty() { 0 } else { mask };
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                for (k, &(_, op, _)) in g.red_scalar.iter().enumerate() {
                    let v = scratch.regs[bc.red_scalar_regs[k] as usize * wu + l];
                    match sink {
                        RedSink::Direct { scal, .. } => scal[k] = op.combine(scal[k], v),
                        RedSink::Journal => out.red_journal.push(v),
                    }
                }
                for &(a, op) in g.red_arrays {
                    let slot = g.priv_slot[a.0 as usize] as usize;
                    let src = &scratch.priv_bufs[slot * wu + l];
                    let RedSink::Direct { arrs, .. } = &mut *sink else {
                        unreachable!("array reductions are ineligible for parallel launches")
                    };
                    let acc = arrs.get_mut(&a).expect("acc");
                    for i in 0..src.len() {
                        let cur = if acc.elem.is_float() { Value::F(acc.get_f(i)) } else { Value::I(acc.get_i(i)) };
                        let nv = if src.elem.is_float() { Value::F(src.get_f(i)) } else { Value::I(src.get_i(i)) };
                        let c = op.combine(cur, nv);
                        if acc.elem.is_float() {
                            acc.set_f(i, c.as_f());
                        } else {
                            acc.set_i(i, c.as_i());
                        }
                    }
                    if g.atomic_serial {
                        extra_atomic += src.len() as u64;
                    }
                }
                if g.atomic_serial && !g.red_scalar.is_empty() {
                    extra_atomic += g.red_scalar.len() as u64;
                }
            }
            if cached {
                continue;
            }
            // Price the warp's evidence; the issue-cycle increment is
            // journaled so chunk folding replays the serial f64 left-fold.
            let issue = price_warp(
                g.plan,
                g.cfg,
                g.site_kinds,
                g.elem_bytes,
                g.partials_in_shared,
                g.red_arrays,
                &scratch.traces,
                Some(&scratch.site_touched),
                &scratch.lane_ops,
                atomic + extra_atomic,
                tex_cache,
                &mut out.totals,
                g.traced,
                &mut out.site_global,
                &mut out.site_shared,
            );
            out.issue.push(issue);
            // Affine fast-path sites: one address row per site, summarised
            // through the memo instead of a trace.
            for (fidx, &site) in bc.fast_sites.iter().enumerate() {
                row.clear();
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    row.push((l as u32, scratch.fast_rows[fidx * wu + l]));
                }
                let (eb, shared_reuse) = g.fast_pricing[fidx];
                match shared_reuse {
                    None => {
                        let s = scratch.memo.reduce_row(site, &row);
                        out.totals.global_requests += s.requests;
                        out.totals.global_transactions += s.transactions;
                        out.totals.useful_bytes += s.lane_accesses * eb;
                        if g.traced {
                            out.site_global[site as usize].merge(&s);
                        }
                    }
                    Some(reuse) => {
                        let sh = scratch.memo.reduce_row_shared(site, &row, g.cfg.shared_banks, 4);
                        out.totals.shared_slots += sh.slots;
                        let lane_accesses = row.len() as u64;
                        let fill_bytes = (lane_accesses * eb) as f64 / reuse.max(1.0);
                        let fill_tx = (fill_bytes / g.cfg.segment_bytes as f64).ceil() as u64;
                        out.totals.global_transactions += fill_tx;
                        out.totals.global_requests += fill_tx;
                        out.totals.useful_bytes += fill_bytes as u64;
                        if g.traced {
                            out.site_shared[site as usize].merge(&sh);
                            out.site_global[site as usize].merge(&AccessSummary {
                                requests: fill_tx,
                                transactions: fill_tx,
                                lane_accesses,
                            });
                        }
                    }
                }
            }
        }
        if let Some(sn) = snap {
            price_cache.insert(key.clone(), sn.diff(out));
        }
    }
}

/// Price one warp's worth of execution evidence into `totals`.
///
/// Shared by both engines: the tree walker feeds it from `WarpMachine`
/// state, the bytecode engine from its thread-local `WarpScratch`. Keeping
/// a single pricing routine is what makes the two engines bit-identical on
/// everything downstream of the traces.
#[allow(clippy::too_many_arguments)]
fn price_warp(
    plan: &KernelPlan,
    cfg: &DeviceConfig,
    site_kinds: &[SiteKind],
    elem_bytes: &[u32],
    partials_in_shared: bool,
    red_arrays: &[(ArrayId, crate::types::ReduceOp)],
    traces: &[SiteWarpTrace],
    touched: Option<&[bool]>,
    lane_ops: &[u64],
    atomic_accesses: u64,
    tex_cache: &mut Cache,
    totals: &mut KernelTotals,
    traced: bool,
    site_global: &mut [AccessSummary],
    site_shared: &mut [SharedSummary],
) -> f64 {
    totals.warps += 1;
    let mut divergent_rows = 0u64;
    let mut extra_issue = 0.0f64;
    for (i, tr) in traces.iter().enumerate() {
        // The bytecode engine tracks which sites recorded anything this
        // warp; skipping the rest changes nothing (empty traces price to
        // zero) but avoids scanning every lane stream of every site.
        if touched.is_some_and(|t| !t[i]) {
            continue;
        }
        if tr.is_empty() {
            continue;
        }
        match site_kinds[i] {
            SiteKind::Branch => divergent_rows += tr.reduce_divergent_rows(),
            SiteKind::Mem(arr) => {
                let eb = elem_bytes[arr.0 as usize] as u64;
                let space = if plan.expansion_of(arr).is_some() {
                    // Reduction partials may be staged in shared.
                    if partials_in_shared && red_arrays.iter().any(|(a, _)| *a == arr) {
                        MemSpace::SharedTiled { reuse: 1.0 }
                    } else {
                        MemSpace::Global
                    }
                } else {
                    plan.space_of(arr)
                };
                match space {
                    MemSpace::Global => {
                        let s = tr.reduce_global(cfg.segment_bytes);
                        totals.global_requests += s.requests;
                        totals.global_transactions += s.transactions;
                        totals.useful_bytes += s.lane_accesses * eb;
                        if traced {
                            site_global[i].merge(&s);
                        }
                    }
                    MemSpace::SharedTiled { reuse } => {
                        let sh = tr.reduce_shared(cfg.shared_banks, 4);
                        totals.shared_slots += sh.slots;
                        let s = tr.reduce_global(cfg.segment_bytes);
                        let fill_bytes = (s.lane_accesses * eb) as f64 / reuse.max(1.0);
                        let fill_tx = (fill_bytes / cfg.segment_bytes as f64).ceil() as u64;
                        totals.global_transactions += fill_tx;
                        totals.global_requests += fill_tx;
                        totals.useful_bytes += fill_bytes as u64;
                        if traced {
                            site_shared[i].merge(&sh);
                            site_global[i].merge(&AccessSummary {
                                requests: fill_tx,
                                transactions: fill_tx,
                                lane_accesses: s.lane_accesses,
                            });
                        }
                    }
                    MemSpace::Constant => {
                        // Distinct words per row serialize.
                        let s = tr.reduce_global(eb.max(4) as u32);
                        extra_issue += (s.transactions - s.requests) as f64;
                        if traced {
                            site_global[i].merge(&s);
                        }
                    }
                    MemSpace::Texture if cfg.has_texture_path => {
                        let line = cfg.tex_line_bytes as u64;
                        let (req0, miss0) = (totals.tex_requests, totals.tex_miss_lines);
                        tr.for_each_row(|row| {
                            totals.tex_requests += 1;
                            let mut lines: Vec<u64> = row.iter().map(|a| a / line).collect();
                            lines.sort_unstable();
                            lines.dedup();
                            for l in lines {
                                if !tex_cache.access(l * line) {
                                    totals.tex_miss_lines += 1;
                                }
                            }
                        });
                        if traced {
                            site_global[i].merge(&AccessSummary {
                                requests: totals.tex_requests - req0,
                                transactions: totals.tex_miss_lines - miss0,
                                lane_accesses: 0,
                            });
                        }
                    }
                    MemSpace::Texture => {
                        // No dedicated texture pipeline on this generation:
                        // read-only data flows through the unified L1 (the
                        // same cache simulator, sized per preset) and misses
                        // move ordinary global segments, so the cost lands on
                        // the global-memory roofline terms instead of the
                        // texture ones.
                        let line = cfg.tex_line_bytes as u64;
                        let tx_per_line = (line / cfg.segment_bytes as u64).max(1);
                        let (req0, tx0) = (totals.global_requests, totals.global_transactions);
                        let mut lanes = 0u64;
                        tr.for_each_row(|row| {
                            totals.global_requests += 1;
                            lanes += row.len() as u64;
                            let mut lines: Vec<u64> = row.iter().map(|a| a / line).collect();
                            lines.sort_unstable();
                            lines.dedup();
                            for l in lines {
                                if !tex_cache.access(l * line) {
                                    totals.global_transactions += tx_per_line;
                                }
                            }
                        });
                        totals.useful_bytes += lanes * eb;
                        if traced {
                            site_global[i].merge(&AccessSummary {
                                requests: totals.global_requests - req0,
                                transactions: totals.global_transactions - tx0,
                                lane_accesses: lanes,
                            });
                        }
                    }
                }
            }
            SiteKind::Unused => {}
        }
    }
    totals.atomic_slots += atomic_accesses;
    // Returned, not accumulated: callers journal the increment so parallel
    // chunk folding can replay the serial f64 left-fold exactly.
    warp_issue_cycles(lane_ops, divergent_rows) + extra_issue
}

/// Convenience for tests: allocate+upload every array the kernel touches.
pub fn upload_all(prog: &Program, dev: &mut DeviceState, host: &crate::program::HostData) {
    for i in 0..prog.arrays.len() {
        dev.upload(ArrayId(i as u32), &host.bufs[i]);
    }
}

/// Convenience for tests: make a scalar environment from a dataset.
pub fn env_from_dataset(prog: &Program, ds: &crate::program::DataSet) -> Vec<Value> {
    let mut scal: Vec<Value> =
        prog.scalars.iter().map(|d| if d.is_float { Value::F(0.0) } else { Value::I(0) }).collect();
    for (id, v) in &ds.scalars {
        scal[id.0 as usize] = *v;
    }
    scal
}

/// Convenience: bind a kernel axis variable id (for assertions in tests).
pub fn axis_var(plan: &KernelPlan, i: usize) -> ScalarId {
    plan.axes[i].var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::kernel::axis;
    use crate::program::{DataSet, HostData};
    use crate::types::ReduceOp;
    use acceval_sim::ElemType;

    fn setup(n: i64) -> (Program, DataSet) {
        let mut pb = ProgramBuilder::new("t");
        let nn = pb.iscalar("n");
        let _i = pb.iscalar("i");
        let _s = pb.fscalar("s");
        let _x = pb.farray("x", vec![v(nn)]);
        let _y = pb.farray("y", vec![v(nn)]);
        pb.main(vec![]);
        let p = pb.build();
        let ds = DataSet {
            scalars: vec![(nn, Value::I(n))],
            arrays: vec![(ArrayId(0), Buffer::from_f64(ElemType::F64, (0..n).map(|i| i as f64).collect()))],
            label: "t".into(),
        };
        (p, ds)
    }

    #[test]
    fn elementwise_kernel_computes_and_prices() {
        let (p, ds) = setup(1000);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let x = p.array_named("x");
        let y = p.array_named("y");
        let mut k = crate::kernel::KernelPlan::new(
            "add1",
            vec![axis(i, v(n))],
            vec![store(y, vec![v(i)], ld(x, vec![v(i)]) * 2.0)],
        );
        k.finalize();

        let cfg = DeviceConfig::tesla_m2090();
        let mut dev = DeviceState::new(&p, &cfg);
        let host = HostData::materialize(&p, &ds);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let r = launch(&p, &k, &mut dev, &mut scal, &cfg);

        assert_eq!(r.active_threads, 1000);
        let yb = dev.bufs[y.0 as usize].as_ref().unwrap();
        assert_eq!(yb.get_f(7), 14.0);
        // 1000 threads reading f64 unit-stride: 2 tx per full warp per site.
        assert!(r.totals.global_transactions >= 2 * 31 * 2);
        assert!(r.totals.global_transactions <= 2 * 32 * 2 + 8);
        assert!(r.cost.time_secs > 0.0);
    }

    #[test]
    fn strided_kernel_needs_more_transactions() {
        let (p, ds) = setup(4096);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let x = p.array_named("x");
        let y = p.array_named("y");
        // y[i] = x[(i*64) % n] — uncoalesced gather.
        let mut k = crate::kernel::KernelPlan::new(
            "gather",
            vec![axis(i, v(n))],
            vec![store(y, vec![v(i)], ld(x, vec![(v(i) * 64i64) % v(n)]))],
        );
        k.finalize();
        let mut k2 =
            crate::kernel::KernelPlan::new("unit", vec![axis(i, v(n))], vec![store(y, vec![v(i)], ld(x, vec![v(i)]))]);
        k2.finalize();

        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let bad = launch(&p, &k, &mut dev, &mut scal, &cfg);
        let good = launch(&p, &k2, &mut dev, &mut scal, &cfg);
        assert!(
            bad.totals.global_transactions > 5 * good.totals.global_transactions,
            "gather {} vs unit {}",
            bad.totals.global_transactions,
            good.totals.global_transactions
        );
    }

    #[test]
    fn scalar_reduction_matches_serial() {
        let (p, ds) = setup(10_000);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let s = p.scalar_named("s");
        let x = p.array_named("x");
        let mut k =
            crate::kernel::KernelPlan::new("sum", vec![axis(i, v(n))], vec![assign(s, v(s) + ld(x, vec![v(i)]))])
                .with_reduction(ReduceOp::Add, VarRef::Scalar(s));
        k.finalize();

        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        scal[s.0 as usize] = Value::F(5.0); // initial value participates
        launch(&p, &k, &mut dev, &mut scal, &cfg);
        let expect = 5.0 + (0..10_000).map(|i| i as f64).sum::<f64>();
        assert!((scal[s.0 as usize].as_f() - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn private_array_expansion_changes_traffic_not_values() {
        // Each thread fills a private array then writes its sum to y[i].
        let mut pb = ProgramBuilder::new("pr");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let s = pb.fscalar("s");
        let y = pb.farray("y", vec![v(n)]);
        let q = pb.farray("q", vec![16i64.into()]);
        pb.main(vec![]);
        let p = pb.build();
        let ds = DataSet { scalars: vec![(n, Value::I(2048))], arrays: vec![], label: "t".into() };

        let body = vec![
            sfor(j, 0i64, 16i64, vec![store(q, vec![v(j)], (v(i) + v(j)).to_f())]),
            assign(s, 0.0),
            sfor(j, 0i64, 16i64, vec![assign(s, v(s) + ld(q, vec![v(j)]))]),
            store(y, vec![v(i)], v(s)),
        ];
        let mk = |exp: Expansion| {
            let mut k = crate::kernel::KernelPlan::new("priv", vec![axis(i, v(n))], body.clone()).with_private(q, exp);
            k.finalize();
            k
        };
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);

        let run = |k: &crate::kernel::KernelPlan| {
            let mut dev = DeviceState::new(&p, &cfg);
            upload_all(&p, &mut dev, &host);
            let mut scal = env_from_dataset(&p, &ds);
            let r = launch(&p, k, &mut dev, &mut scal, &cfg);
            let yv = dev.bufs[y.0 as usize].as_ref().unwrap().get_f(5);
            (r, yv)
        };
        let (row, yr) = run(&mk(Expansion::RowWise));
        let (col, yc) = run(&mk(Expansion::ColumnWise));
        assert_eq!(yr, yc);
        let expect: f64 = (0..16).map(|j| (5 + j) as f64).sum();
        assert_eq!(yr, expect);
        assert!(
            row.totals.global_transactions > 4 * col.totals.global_transactions,
            "row-wise {} should be far less coalesced than column-wise {}",
            row.totals.global_transactions,
            col.totals.global_transactions
        );
        assert!(row.cost.time_secs > col.cost.time_secs);
    }

    #[test]
    fn two_d_kernel_covers_grid() {
        let mut pb = ProgramBuilder::new("t2");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let a = pb.farray("a", vec![v(n), v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let ds = DataSet { scalars: vec![(n, Value::I(70))], arrays: vec![], label: "t".into() };
        let mut k = crate::kernel::KernelPlan::new(
            "fill2d",
            vec![axis(i, v(n)), axis(j, v(n))],
            vec![store(a, vec![v(i), v(j)], (v(i) * 1000i64 + v(j)).to_f())],
        )
        .with_block(16, 16);
        k.finalize();
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let r = launch(&p, &k, &mut dev, &mut scal, &cfg);
        assert_eq!(r.active_threads, 70 * 70);
        let ab = dev.bufs[a.0 as usize].as_ref().unwrap();
        assert_eq!(ab.get_f(69 * 70 + 69), 69069.0);
        assert_eq!(r.footprint.grid_blocks, 5 * 5);
    }

    #[test]
    fn divergent_branches_cost_issue_cycles() {
        let (p, ds) = setup(4096);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let y = p.array_named("y");
        // Divergent: every other lane takes a different path.
        let body_div =
            vec![if_else((v(i) % 2i64).eq_(0i64), vec![store(y, vec![v(i)], 1.0)], vec![store(y, vec![v(i)], 2.0)])];
        // Uniform: whole warps take the same path.
        let body_uni = vec![if_else(
            ((v(i) / 32i64) % 2i64).eq_(0i64),
            vec![store(y, vec![v(i)], 1.0)],
            vec![store(y, vec![v(i)], 2.0)],
        )];
        let mk = |body: Vec<Stmt>, name: &str| {
            let mut k = crate::kernel::KernelPlan::new(name, vec![axis(i, v(n))], body);
            k.finalize();
            k
        };
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let div = launch(&p, &mk(body_div, "div"), &mut dev, &mut scal, &cfg);
        let uni = launch(&p, &mk(body_uni, "uni"), &mut dev, &mut scal, &cfg);
        assert!(div.totals.issue_cycles > uni.totals.issue_cycles);
    }

    #[test]
    fn texture_placement_reduces_transactions_for_reuse() {
        let (p, ds) = setup(4096);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let x = p.array_named("x");
        let y = p.array_named("y");
        // Gather with heavy reuse: x[i % 64].
        let body = vec![store(y, vec![v(i)], ld(x, vec![v(i) % 64i64]))];
        let mk = |tex: bool| {
            let mut k = crate::kernel::KernelPlan::new("g", vec![axis(i, v(n))], body.clone());
            if tex {
                k = k.with_placement(x, MemSpace::Texture);
            }
            k.finalize();
            k
        };
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let plain = launch(&p, &mk(false), &mut dev, &mut scal, &cfg);
        let tex = launch(&p, &mk(true), &mut dev, &mut scal, &cfg);
        let plain_traffic = plain.totals.traffic_bytes(&cfg);
        let tex_traffic = tex.totals.traffic_bytes(&cfg);
        // The y-store traffic (32 KiB) is common to both; the gather's own
        // traffic drops from ~32 KiB to under 1 KiB with the texture cache.
        assert!(
            (tex_traffic as f64) < 0.6 * plain_traffic as f64,
            "texture-cached gather should move far less DRAM traffic ({tex_traffic} vs {plain_traffic})"
        );
        assert!(tex.totals.tex_miss_lines < 100);
    }
}
