//! The GPU executor: runs a [`KernelPlan`] functionally, one simulated
//! thread at a time, while collecting per-warp address traces that the
//! simulator prices.
//!
//! Correctness: every thread executes the kernel body through the same
//! evaluator as the CPU oracle, against device buffers; reductions are
//! combined deterministically in (block, lane) order. Timing: per-warp
//! traces are reduced to coalescing transactions, shared-memory slots,
//! texture-cache misses, constant serialization and divergence penalties,
//! then fed to [`acceval_sim::estimate_kernel`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use acceval_sim::{
    estimate_kernel, warp_issue_cycles, AccessSummary, Buffer, Cache, DeviceConfig, ElemType, KernelCost,
    KernelFootprint, KernelTotals, NullSink, SharedSummary, SimError, SiteWarpTrace, TraceEvent, TraceSink,
};

use crate::expr::{Expr, Intrin};
use crate::interp::bytecode::{self, intrin_cost};
use crate::interp::{eval_pure, row_major_strides, Interp, Machine};
use crate::kernel::{Expansion, KernelPlan, MemSpace, ReduceStrategy};
use crate::program::{eval_const, Program};
use crate::stmt::{visit_exprs, visit_stmts, Stmt};
use crate::types::{ArrayId, ScalarId, SiteId, Value, VarRef};

/// Which executor runs kernel bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The reference tree-walking interpreter: one simulated thread at a
    /// time through [`Interp`]. Always available; also the fallback for
    /// bodies the bytecode compiler bails on (e.g. function calls).
    Tree,
    /// The compiled bytecode engine ([`crate::interp::bytecode`]): whole
    /// warps in lockstep over a SoA register file. The default. All scores
    /// and statistics are bit-identical to the tree engine.
    Bytecode,
}

/// Process-wide override: 0 = unset (use env), 1 = tree, 2 = bytecode.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENGINE_FROM_ENV: OnceLock<Engine> = OnceLock::new();

/// The engine selected for kernel execution: an override installed by
/// [`set_engine_override`] wins, else the `ACCEVAL_ENGINE` environment
/// variable (`tree` | `bytecode`), else [`Engine::Bytecode`].
pub fn engine() -> Engine {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return Engine::Tree,
        2 => return Engine::Bytecode,
        _ => {}
    }
    *ENGINE_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_ENGINE") {
        Ok(s) if s == "tree" => Engine::Tree,
        Ok(s) if s == "bytecode" => Engine::Bytecode,
        Ok(s) => panic!("ACCEVAL_ENGINE must be `tree` or `bytecode`, got `{s}`"),
        Err(_) => Engine::Bytecode,
    })
}

/// Force an engine for this process (tests/benches), overriding the
/// environment. `None` returns control to `ACCEVAL_ENGINE`.
pub fn set_engine_override(e: Option<Engine>) {
    let v = match e {
        None => 0,
        Some(Engine::Tree) => 1,
        Some(Engine::Bytecode) => 2,
    };
    ENGINE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Short name of the active engine, for reports and manifests.
pub fn engine_name() -> &'static str {
    match engine() {
        Engine::Tree => "tree",
        Engine::Bytecode => "bytecode",
    }
}

/// Device memory image: one optional buffer per program array, plus the
/// simulated texture cache.
pub struct DeviceState {
    pub bufs: Vec<Option<Buffer>>,
    pub tex_cache: Cache,
}

impl DeviceState {
    /// Fresh device with nothing allocated.
    pub fn new(prog: &Program, cfg: &DeviceConfig) -> Self {
        DeviceState {
            bufs: vec![None; prog.arrays.len()],
            tex_cache: Cache::new(cfg.tex_cache_bytes * cfg.num_sms, 8, cfg.tex_line_bytes),
        }
    }

    /// Upload a host buffer (allocate + copy contents). Reuses an existing
    /// same-shape allocation in place instead of cloning a fresh buffer.
    pub fn upload(&mut self, id: ArrayId, host: &Buffer) {
        match &mut self.bufs[id.0 as usize] {
            Some(b) if b.elem == host.elem && b.len() == host.len() => b.copy_from(host),
            slot => *slot = Some(host.clone()),
        }
    }

    /// Allocate zeroed device storage without a transfer.
    pub fn alloc(&mut self, id: ArrayId, host: &Buffer) {
        self.bufs[id.0 as usize] = Some(Buffer::zeroed(host.elem, host.len()));
    }

    /// Download device contents into a host buffer, copying in place when
    /// the host allocation already has the right shape.
    ///
    /// Downloading an array that was never allocated on the device is a
    /// runtime protocol error (a real driver returns a status code), so it
    /// is reported as [`SimError::DownloadUnallocated`] rather than a panic;
    /// the caller owns mapping the array index to a source-level name.
    pub fn download(&self, id: ArrayId, host: &mut Buffer) -> Result<(), SimError> {
        let src = self.bufs[id.0 as usize]
            .as_ref()
            .ok_or_else(|| SimError::DownloadUnallocated { array: id.0.to_string() })?;
        if host.elem == src.elem && host.len() == src.len() {
            host.copy_from(src);
        } else {
            *host = src.clone();
        }
        Ok(())
    }

    /// Whether the array is allocated on the device.
    pub fn is_allocated(&self, id: ArrayId) -> bool {
        self.bufs[id.0 as usize].is_some()
    }
}

/// What a site refers to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SiteKind {
    Mem(ArrayId),
    Branch,
    Unused,
}

fn classify_sites(plan: &KernelPlan) -> Vec<SiteKind> {
    let mut kinds = vec![SiteKind::Unused; plan.site_count as usize];
    visit_stmts(&plan.body, &mut |s| match s {
        Stmt::Store { array, site, .. } => kinds[site.0 as usize] = SiteKind::Mem(*array),
        Stmt::If { site, .. } => kinds[site.0 as usize] = SiteKind::Branch,
        _ => {}
    });
    visit_exprs(&plan.body, &mut |e| {
        if let Expr::Load { array, site, .. } = e {
            kinds[site.0 as usize] = SiteKind::Mem(*array);
        }
    });
    kinds
}

/// Per-warp machine: executes one lane at a time, recording traces.
struct WarpMachine<'a> {
    dev: &'a mut DeviceState,
    plan: &'a KernelPlan,
    /// Byte base address per array in the simulated device address space.
    base: &'a [u64],
    elem_bytes: &'a [u32],
    traces: Vec<SiteWarpTrace>,
    lane: u32,
    lane_ops: Vec<u64>,
    in_critical: bool,
    atomic_accesses: u64,
    /// Current lane's private array storage.
    priv_bufs: HashMap<ArrayId, Buffer>,
    tid_linear: u64,
    total_threads: u64,
    warp_size: u32,
}

impl<'a> WarpMachine<'a> {
    fn trace(&mut self, site: SiteId, addr: u64) {
        self.traces[site.0 as usize].record(self.lane, addr);
    }

    fn account(&mut self, array: ArrayId, flat: usize, site: SiteId) {
        // Private arrays are priced by their expansion layout.
        if let Some(exp) = self.plan.expansion_of(array) {
            let eb = self.elem_bytes[array.0 as usize] as u64;
            match exp {
                Expansion::Register => {}
                Expansion::RowWise => {
                    let len = self.priv_bufs[&array].len() as u64;
                    self.trace(site, PRIV_BASE + (self.tid_linear * len + flat as u64) * eb);
                }
                Expansion::ColumnWise => {
                    self.trace(site, PRIV_BASE + (flat as u64 * self.total_threads + self.tid_linear) * eb);
                }
            }
            return;
        }
        let eb = self.elem_bytes[array.0 as usize] as u64;
        let addr = self.base[array.0 as usize] + flat as u64 * eb;
        self.trace(site, addr);
        if self.in_critical {
            self.atomic_accesses += 1;
        }
    }

    fn value_of(&self, array: ArrayId, flat: usize) -> Value {
        let b = if self.plan.expansion_of(array).is_some() {
            &self.priv_bufs[&array]
        } else {
            self.dev.bufs[array.0 as usize]
                .as_ref()
                .unwrap_or_else(|| panic!("kernel read of unallocated device array {}", array.0))
        };
        if b.elem.is_float() {
            Value::F(b.get_f(flat))
        } else {
            Value::I(b.get_i(flat))
        }
    }
}

/// Base address for the expanded private-array segment (kept clear of real
/// arrays so traces never alias). Shared with the bytecode engine.
pub(crate) const PRIV_BASE: u64 = 1 << 40;

impl Machine for WarpMachine<'_> {
    fn load(&mut self, array: ArrayId, flat: usize, site: SiteId) -> Value {
        self.account(array, flat, site);
        self.value_of(array, flat)
    }

    fn store(&mut self, array: ArrayId, flat: usize, v: Value, site: SiteId) {
        self.account(array, flat, site);
        let b = if self.plan.expansion_of(array).is_some() {
            self.priv_bufs.get_mut(&array).expect("private buffer")
        } else {
            self.dev.bufs[array.0 as usize]
                .as_mut()
                .unwrap_or_else(|| panic!("kernel write of unallocated device array {}", array.0))
        };
        if b.elem.is_float() {
            b.set_f(flat, v.as_f());
        } else {
            b.set_i(flat, v.as_i());
        }
    }

    fn ops(&mut self, n: u64) {
        self.lane_ops[self.lane as usize] += n;
    }

    fn intrin(&mut self, f: Intrin) {
        // GPUs have SFUs: transcendental ops are cheap relative to CPUs.
        // (Cost table shared with the bytecode engine.)
        self.lane_ops[self.lane as usize] += intrin_cost(f);
    }

    fn branch(&mut self, site: SiteId, taken: bool) {
        self.traces[site.0 as usize].record(self.lane, taken as u64);
    }

    fn barrier(&mut self) {
        self.lane_ops[self.lane as usize] += 4;
    }

    fn critical(&mut self, entering: bool) {
        self.in_critical = entering;
    }
}

/// Result of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    pub cost: KernelCost,
    pub totals: KernelTotals,
    pub footprint: KernelFootprint,
    /// Threads that actually executed.
    pub active_threads: u64,
}

/// Execute a kernel plan on the device.
///
/// `scal` is the host scalar environment at launch; axis bounds are
/// evaluated against it and scalar reduction results are written back into
/// it. Device buffers are read/written in place.
pub fn launch(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
) -> LaunchResult {
    launch_traced(prog, plan, dev, scal, cfg, &mut NullSink)
}

/// [`launch`] with an explicit engine choice, bypassing the process-wide
/// selection — lets equivalence tests and benches compare engines without
/// touching global state.
pub fn launch_with_engine(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    eng: Engine,
) -> LaunchResult {
    launch_impl(prog, plan, dev, scal, cfg, &mut NullSink, eng)
}

/// [`launch_traced`] with an explicit engine choice.
pub fn launch_traced_with_engine(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
    eng: Engine,
) -> LaunchResult {
    launch_impl(prog, plan, dev, scal, cfg, sink, eng)
}

/// [`launch`], emitting structured trace events into `sink`: one
/// [`TraceEvent::CoalesceSite`] per active memory site (in site order, so
/// traces are deterministic), texture-cache counters when the kernel used
/// texture memory, and a final [`TraceEvent::KernelLaunch`] with the full
/// cost attribution. With a disabled sink this is exactly [`launch`]: no
/// event is constructed and the per-site accumulators stay empty.
pub fn launch_traced(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
) -> LaunchResult {
    launch_impl(prog, plan, dev, scal, cfg, sink, engine())
}

fn launch_impl(
    prog: &Program,
    plan: &KernelPlan,
    dev: &mut DeviceState,
    scal: &mut [Value],
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
    eng: Engine,
) -> LaunchResult {
    assert!(
        plan.site_count > 0 || plan.body.iter().all(|s| !matches!(s, Stmt::Store { .. })),
        "plan must be finalized"
    );
    let site_kinds = classify_sites(plan);
    let traced = sink.enabled();
    // Per-site evidence accumulated across all warps (trace-only).
    let mut site_global: Vec<AccessSummary> =
        if traced { vec![AccessSummary::default(); plan.site_count as usize] } else { Vec::new() };
    let mut site_shared: Vec<SharedSummary> =
        if traced { vec![SharedSummary::default(); plan.site_count as usize] } else { Vec::new() };
    let tex_hits0 = dev.tex_cache.hits;
    let tex_misses0 = dev.tex_cache.misses;

    // Geometry.
    let n0 = eval_pure(&plan.axes[0].count, scal).as_i().max(0) as u64;
    let n1 = if plan.axes.len() > 1 { eval_pure(&plan.axes[1].count, scal).as_i().max(0) as u64 } else { 1 };
    let (bx, by) = (plan.block.0 as u64, plan.block.1 as u64);
    let gx = n0.div_ceil(bx).max(1);
    let gy = n1.div_ceil(by).max(1);
    let tpb = (bx * by) as u32;
    let total_blocks = gx * gy;
    let total_threads = total_blocks * tpb as u64;

    // Device address layout.
    let mut base = Vec::with_capacity(prog.arrays.len());
    let mut elem_bytes = Vec::with_capacity(prog.arrays.len());
    let mut cur = 0u64;
    for (i, a) in prog.arrays.iter().enumerate() {
        base.push(cur);
        elem_bytes.push(a.elem.size_bytes());
        if let Some(b) = &dev.bufs[i] {
            cur += (b.size_bytes() + 511) & !511;
            cur += 512;
        }
    }

    // Array extents/strides and private shapes (evaluated against the host
    // env — exactly what `Interp::with_env` computes per warp on the tree
    // path).
    let base_env: Vec<Value> = scal.to_vec();
    let extents: Vec<Vec<usize>> =
        prog.arrays.iter().map(|a| a.dims.iter().map(|d| eval_const(d, &base_env)).collect()).collect();
    let strides: Vec<Vec<usize>> = extents.iter().map(|e| row_major_strides(e)).collect();
    let priv_shapes: Vec<(ArrayId, usize, bool)> = plan
        .private_arrays
        .iter()
        .map(|p| {
            let len: usize = extents[p.array.0 as usize].iter().product();
            (p.array, len, prog.array_elem(p.array).is_float())
        })
        .collect();

    // Reduction accumulators.
    let red_scalar: Vec<(usize, crate::types::ReduceOp, bool)> = plan
        .reductions
        .iter()
        .filter_map(|r| match r.target {
            VarRef::Scalar(s) => Some((s.0 as usize, r.op, prog.scalars[s.0 as usize].is_float)),
            VarRef::Array(_) => None,
        })
        .collect();
    let red_arrays: Vec<(ArrayId, crate::types::ReduceOp)> = plan
        .reductions
        .iter()
        .filter_map(|r| match r.target {
            VarRef::Array(a) => Some((a, r.op)),
            VarRef::Scalar(_) => None,
        })
        .collect();
    let mut scal_acc: Vec<Value> = red_scalar
        .iter()
        .map(|&(_, op, isf)| if isf { Value::F(op.identity_f()) } else { Value::I(op.identity_i()) })
        .collect();
    let mut arr_acc: HashMap<ArrayId, Buffer> = HashMap::new();
    for &(a, op) in &red_arrays {
        let (_, len, isf) = priv_shapes
            .iter()
            .find(|(id, _, _)| *id == a)
            .copied()
            .unwrap_or_else(|| panic!("array reduction target must be a private array"));
        let elem = prog.array_elem(a);
        let mut b = Buffer::zeroed(elem, len);
        for i in 0..len {
            if isf {
                b.set_f(i, op.identity_f());
            } else {
                b.set_i(i, op.identity_i());
            }
        }
        arr_acc.insert(a, b);
    }

    let warp = cfg.warp_size;
    let warps_per_block = (tpb as u64).div_ceil(warp as u64);
    let mut totals = KernelTotals::default();
    let mut active_threads = 0u64;
    let partials_in_shared = matches!(plan.reduce_strategy, ReduceStrategy::TwoLevelTree { partials_in_shared: true });

    // Engine dispatch: the bytecode engine handles everything its compiler
    // accepts; bodies out of scope (e.g. with calls) fall back to the tree
    // walker even when the bytecode engine is selected.
    let bc = if eng == Engine::Bytecode { plan.engine_cache.get_or_compile(prog, plan) } else { None };

    if let Some(bc) = bc {
        assert!(warp as usize <= 64, "active-lane masks hold at most 64 lanes");
        let mut expansion: Vec<Option<Expansion>> = vec![None; prog.arrays.len()];
        let mut priv_slot: Vec<i32> = vec![-1; prog.arrays.len()];
        for (k, &(a, _, _)) in priv_shapes.iter().enumerate() {
            priv_slot[a.0 as usize] = k as i32;
            expansion[a.0 as usize] = plan.expansion_of(a);
        }
        let priv_elems: Vec<(ElemType, usize)> =
            priv_shapes.iter().map(|&(a, len, _)| (prog.array_elem(a), len)).collect();
        // Axis bounds are launch constants here: the compiler bails when a
        // second axis depends on the first axis variable, so evaluating
        // against the base env matches the tree path's per-lane evaluation.
        let lo0 = eval_pure(&plan.axes[0].lo, &base_env).as_i();
        let st0 = eval_pure(&plan.axes[0].step, &base_env).as_i();
        let (lo1, st1) = if plan.axes.len() > 1 {
            (eval_pure(&plan.axes[1].lo, &base_env).as_i(), eval_pure(&plan.axes[1].step, &base_env).as_i())
        } else {
            (0, 0)
        };
        let atomic_serial = matches!(plan.reduce_strategy, ReduceStrategy::AtomicSerial);
        let DeviceState { bufs, tex_cache } = dev;
        // Pricing recipe per fast site: global sites reduce through the
        // segment memo; shared-tiled sites through the bank-conflict memo
        // plus the reuse-discounted fill charge (the same arithmetic
        // `price_warp` applies to a traced shared site).
        let fast_pricing: Vec<(u64, Option<f64>)> = bc
            .fast_sites
            .iter()
            .map(|&site| {
                let SiteKind::Mem(arr) = site_kinds[site as usize] else {
                    unreachable!("fast site must be a memory site")
                };
                let eb = elem_bytes[arr.0 as usize] as u64;
                match plan.space_of(arr) {
                    MemSpace::SharedTiled { reuse } => (eb, Some(reuse)),
                    _ => (eb, None),
                }
            })
            .collect();
        bytecode::with_scratch(|scratch| {
            let wu = warp as usize;
            scratch.begin_launch(&bc, wu, plan.site_count as usize, &priv_elems, &base_env, cfg.segment_bytes);
            let mut ax0 = vec![0i64; wu];
            let mut ax1 = vec![0i64; wu];
            let mut row: Vec<(u32, u64)> = Vec::with_capacity(wu);
            for blk in 0..total_blocks {
                let bxi = blk % gx;
                let byi = blk / gx;
                for w in 0..warps_per_block {
                    let mut mask = 0u64;
                    for lane in 0..warp as u64 {
                        let t = w * warp as u64 + lane;
                        if t >= tpb as u64 {
                            break;
                        }
                        let tx = t % bx;
                        let ty = t / bx;
                        let ix = bxi * bx + tx;
                        let iy = byi * by + ty;
                        if ix >= n0 || iy >= n1 {
                            continue;
                        }
                        mask |= 1u64 << lane;
                        ax0[lane as usize] = lo0 + ix as i64 * st0;
                        ax1[lane as usize] = lo1 + iy as i64 * st1;
                    }
                    if mask == 0 {
                        continue;
                    }
                    active_threads += mask.count_ones() as u64;
                    scratch.begin_warp(&bc, &base_env);
                    // Per-lane prologue: axis variables, scalar-reduction
                    // identities, private-array scratch reset.
                    let a0 = bc.axis_regs[0] as usize;
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        scratch.regs[a0 * wu + l] = Value::I(ax0[l]);
                    }
                    if plan.axes.len() > 1 {
                        let a1 = bc.axis_regs[1] as usize;
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            scratch.regs[a1 * wu + l] = Value::I(ax1[l]);
                        }
                    }
                    for (k, &(_, op, isf)) in red_scalar.iter().enumerate() {
                        let r = bc.red_scalar_regs[k] as usize;
                        let idv = if isf { Value::F(op.identity_f()) } else { Value::I(op.identity_i()) };
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            scratch.regs[r * wu + l] = idv;
                        }
                    }
                    for &(a, len, isf) in &priv_shapes {
                        let slot = priv_slot[a.0 as usize] as usize;
                        let ident = red_arrays.iter().find(|(id, _)| *id == a).map(|&(_, op)| op);
                        let fill_f = ident.map_or(0.0, |op| op.identity_f());
                        let fill_i = ident.map_or(0, |op| op.identity_i());
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            let b = &mut scratch.priv_bufs[slot * wu + l];
                            for e in 0..len {
                                if isf {
                                    b.set_f(e, fill_f);
                                } else {
                                    b.set_i(e, fill_i);
                                }
                            }
                        }
                    }
                    // Execute the warp in lockstep.
                    let tid_base = blk * tpb as u64 + w * warp as u64;
                    let atomic = {
                        let mut ctx = bytecode::ExecCtx {
                            prog,
                            bufs,
                            base: &base,
                            elem_bytes: &elem_bytes,
                            extents: &extents,
                            strides: &strides,
                            expansion: &expansion,
                            priv_slot: &priv_slot,
                            total_threads,
                        };
                        bytecode::exec_warp(&bc, scratch, &mut ctx, mask, tid_base)
                    };
                    // Fold reductions in ascending lane order — the same
                    // combine sequence the tree path produces.
                    let mut extra_atomic = 0u64;
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        for (k, &(_, op, _)) in red_scalar.iter().enumerate() {
                            let v = scratch.regs[bc.red_scalar_regs[k] as usize * wu + l];
                            scal_acc[k] = op.combine(scal_acc[k], v);
                        }
                        for &(a, op) in &red_arrays {
                            let slot = priv_slot[a.0 as usize] as usize;
                            let src = &scratch.priv_bufs[slot * wu + l];
                            let acc = arr_acc.get_mut(&a).expect("acc");
                            for i in 0..src.len() {
                                let cur =
                                    if acc.elem.is_float() { Value::F(acc.get_f(i)) } else { Value::I(acc.get_i(i)) };
                                let nv =
                                    if src.elem.is_float() { Value::F(src.get_f(i)) } else { Value::I(src.get_i(i)) };
                                let c = op.combine(cur, nv);
                                if acc.elem.is_float() {
                                    acc.set_f(i, c.as_f());
                                } else {
                                    acc.set_i(i, c.as_i());
                                }
                            }
                            if atomic_serial {
                                extra_atomic += src.len() as u64;
                            }
                        }
                        if atomic_serial && !red_scalar.is_empty() {
                            extra_atomic += red_scalar.len() as u64;
                        }
                    }
                    // Price the warp's evidence.
                    price_warp(
                        plan,
                        cfg,
                        &site_kinds,
                        &elem_bytes,
                        partials_in_shared,
                        &red_arrays,
                        &scratch.traces,
                        Some(&scratch.site_touched),
                        &scratch.lane_ops,
                        atomic + extra_atomic,
                        tex_cache,
                        &mut totals,
                        traced,
                        &mut site_global,
                        &mut site_shared,
                    );
                    // Affine fast-path sites: one address row per site,
                    // summarised through the memo instead of a trace.
                    for (fidx, &site) in bc.fast_sites.iter().enumerate() {
                        row.clear();
                        let mut m = mask;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            row.push((l as u32, scratch.fast_rows[fidx * wu + l]));
                        }
                        let (eb, shared_reuse) = fast_pricing[fidx];
                        match shared_reuse {
                            None => {
                                let s = scratch.memo.reduce_row(site, &row);
                                totals.global_requests += s.requests;
                                totals.global_transactions += s.transactions;
                                totals.useful_bytes += s.lane_accesses * eb;
                                if traced {
                                    site_global[site as usize].merge(&s);
                                }
                            }
                            Some(reuse) => {
                                let sh = scratch.memo.reduce_row_shared(site, &row, cfg.shared_banks, 4);
                                totals.shared_slots += sh.slots;
                                let lane_accesses = row.len() as u64;
                                let fill_bytes = (lane_accesses * eb) as f64 / reuse.max(1.0);
                                let fill_tx = (fill_bytes / cfg.segment_bytes as f64).ceil() as u64;
                                totals.global_transactions += fill_tx;
                                totals.global_requests += fill_tx;
                                totals.useful_bytes += fill_bytes as u64;
                                if traced {
                                    site_shared[site as usize].merge(&sh);
                                    site_global[site as usize].merge(&AccessSummary {
                                        requests: fill_tx,
                                        transactions: fill_tx,
                                        lane_accesses,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        });
    } else {
        // Reference tree-walking engine: one `Interp` per warp, one pass per lane.
        for blk in 0..total_blocks {
            let bxi = blk % gx;
            let byi = blk / gx;
            for w in 0..warps_per_block {
                let wm = WarpMachine {
                    dev,
                    plan,
                    base: &base,
                    elem_bytes: &elem_bytes,
                    traces: (0..plan.site_count).map(|_| SiteWarpTrace::new(warp)).collect(),
                    lane: 0,
                    lane_ops: vec![0; warp as usize],
                    in_critical: false,
                    atomic_accesses: 0,
                    priv_bufs: HashMap::new(),
                    tid_linear: 0,
                    total_threads,
                    warp_size: warp,
                };
                let _ = wm.warp_size;
                let mut it = Interp::with_env(prog, wm, base_env.clone());
                let mut any_active = false;
                for lane in 0..warp as u64 {
                    let t = w * warp as u64 + lane;
                    if t >= tpb as u64 {
                        break;
                    }
                    let tx = t % bx;
                    let ty = t / bx;
                    let ix = bxi * bx + tx;
                    let iy = byi * by + ty;
                    if ix >= n0 || iy >= n1 {
                        continue;
                    }
                    any_active = true;
                    active_threads += 1;
                    it.m.lane = lane as u32;
                    it.m.tid_linear = blk * tpb as u64 + t;
                    it.m.in_critical = false;
                    // Fresh private buffers for this thread.
                    it.m.priv_bufs.clear();
                    for &(a, len, isf) in &priv_shapes {
                        let elem = prog.array_elem(a);
                        let mut b = Buffer::zeroed(elem, len);
                        if let Some(&(_, op)) = red_arrays.iter().find(|(id, _)| *id == a) {
                            for i in 0..len {
                                if isf {
                                    b.set_f(i, op.identity_f());
                                } else {
                                    b.set_i(i, op.identity_i());
                                }
                            }
                        }
                        it.m.priv_bufs.insert(a, b);
                    }
                    // Thread environment.
                    it.scal.clone_from(&base_env);
                    let v0 = eval_pure(&plan.axes[0].lo, &it.scal).as_i()
                        + ix as i64 * eval_pure(&plan.axes[0].step, &it.scal).as_i();
                    it.scal[plan.axes[0].var.0 as usize] = Value::I(v0);
                    if plan.axes.len() > 1 {
                        let v1 = eval_pure(&plan.axes[1].lo, &it.scal).as_i()
                            + iy as i64 * eval_pure(&plan.axes[1].step, &it.scal).as_i();
                        it.scal[plan.axes[1].var.0 as usize] = Value::I(v1);
                    }
                    // Scalar reduction identities.
                    for (k, &(slot, op, isf)) in red_scalar.iter().enumerate() {
                        let _ = k;
                        it.scal[slot] = if isf { Value::F(op.identity_f()) } else { Value::I(op.identity_i()) };
                    }
                    // Execute the body.
                    for s in &plan.body {
                        it.exec_plain(s);
                    }
                    // Fold reductions.
                    for (k, &(slot, op, _)) in red_scalar.iter().enumerate() {
                        scal_acc[k] = op.combine(scal_acc[k], it.scal[slot]);
                    }
                    for &(a, op) in &red_arrays {
                        let src = &it.m.priv_bufs[&a];
                        let acc = arr_acc.get_mut(&a).expect("acc");
                        for i in 0..src.len() {
                            let cur = if acc.elem.is_float() { Value::F(acc.get_f(i)) } else { Value::I(acc.get_i(i)) };
                            let nv = if src.elem.is_float() { Value::F(src.get_f(i)) } else { Value::I(src.get_i(i)) };
                            let c = op.combine(cur, nv);
                            if acc.elem.is_float() {
                                acc.set_f(i, c.as_f());
                            } else {
                                acc.set_i(i, c.as_i());
                            }
                        }
                        if matches!(plan.reduce_strategy, ReduceStrategy::AtomicSerial) {
                            it.m.atomic_accesses += src.len() as u64;
                        }
                    }
                    if matches!(plan.reduce_strategy, ReduceStrategy::AtomicSerial) && !red_scalar.is_empty() {
                        it.m.atomic_accesses += red_scalar.len() as u64;
                    }
                }
                // Reduce the warp's traces into totals.
                let wm = it.m;
                if any_active {
                    price_warp(
                        plan,
                        cfg,
                        &site_kinds,
                        &elem_bytes,
                        partials_in_shared,
                        &red_arrays,
                        &wm.traces,
                        None,
                        &wm.lane_ops,
                        wm.atomic_accesses,
                        &mut wm.dev.tex_cache,
                        &mut totals,
                        traced,
                        &mut site_global,
                        &mut site_shared,
                    );
                }
            }
        }
    }

    // Apply reductions.
    for (k, &(slot, op, _)) in red_scalar.iter().enumerate() {
        scal[slot] = op.combine(scal[slot], scal_acc[k]);
    }
    for &(a, op) in &red_arrays {
        let acc = &arr_acc[&a];
        // Combine into the device copy (allocating if necessary).
        if dev.bufs[a.0 as usize].is_none() {
            dev.bufs[a.0 as usize] = Some(Buffer::zeroed(acc.elem, acc.len()));
        }
        let dst = dev.bufs[a.0 as usize].as_mut().expect("reduction target");
        for i in 0..acc.len() {
            let cur = if dst.elem.is_float() { Value::F(dst.get_f(i)) } else { Value::I(dst.get_i(i)) };
            let nv = if acc.elem.is_float() { Value::F(acc.get_f(i)) } else { Value::I(acc.get_i(i)) };
            let c = op.combine(cur, nv);
            if dst.elem.is_float() {
                dst.set_f(i, c.as_f());
            } else {
                dst.set_i(i, c.as_i());
            }
        }
    }

    // Tree-reduction overhead.
    if !plan.reductions.is_empty() {
        if let ReduceStrategy::TwoLevelTree { .. } = plan.reduce_strategy {
            let rounds = (tpb.max(2) as f64).log2().ceil() as u64;
            totals.shared_slots += total_blocks * rounds * warps_per_block;
            totals.issue_cycles += (total_blocks * rounds * 2) as f64;
            // Partial writes + second-stage reads.
            let partial_bytes = total_blocks * 8 * plan.reductions.len() as u64;
            totals.global_transactions += 2 * partial_bytes.div_ceil(cfg.segment_bytes as u64).max(1);
            totals.global_requests += 2 * total_blocks.div_ceil(cfg.warp_size as u64).max(1);
        }
    }

    let mut shared_bytes = plan.shared_bytes_per_block;
    if partials_in_shared {
        let red_bytes: u32 = red_arrays
            .iter()
            .map(|(a, _)| {
                let (_, len, _) = priv_shapes.iter().find(|(id, _, _)| id == a).expect("shape");
                *len as u32 * prog.array_elem(*a).size_bytes()
            })
            .sum::<u32>()
            .saturating_mul(tpb / 32);
        shared_bytes = shared_bytes.max(red_bytes.min(cfg.shared_per_sm / 2));
    }

    let footprint = KernelFootprint {
        threads_per_block: tpb,
        shared_bytes_per_block: shared_bytes,
        regs_per_thread: plan.regs_per_thread,
        grid_blocks: total_blocks,
    };
    let mut cost = estimate_kernel(cfg, &footprint, &totals);
    if !plan.reductions.is_empty() {
        // Second-stage kernel launch.
        cost.time_secs += cfg.launch_overhead_us * 1e-6;
    }

    if traced {
        // Per-site coalescing evidence, in site order (deterministic).
        for (i, kind) in site_kinds.iter().enumerate() {
            let SiteKind::Mem(arr) = kind else { continue };
            let g = site_global[i];
            let sh = site_shared[i];
            if g.requests == 0 && g.transactions == 0 && sh.requests == 0 {
                continue;
            }
            let space = if plan.expansion_of(*arr).is_some() {
                if partials_in_shared && red_arrays.iter().any(|(a, _)| a == arr) {
                    "shared"
                } else {
                    "global"
                }
            } else {
                match plan.space_of(*arr) {
                    MemSpace::Global => "global",
                    MemSpace::SharedTiled { .. } => "shared",
                    MemSpace::Constant => "constant",
                    MemSpace::Texture => "texture",
                }
            };
            sink.emit(TraceEvent::CoalesceSite {
                kernel: plan.name.clone(),
                site: i as u32,
                array: prog.array_name(*arr).to_string(),
                space: space.to_string(),
                requests: g.requests + sh.requests,
                transactions: g.transactions,
                lane_accesses: g.lane_accesses,
                shared_slots: sh.slots,
            });
        }
        if dev.tex_cache.hits != tex_hits0 || dev.tex_cache.misses != tex_misses0 {
            sink.emit(dev.tex_cache.trace_event(&format!("{}/texture", plan.name)));
        }
        sink.emit(cost.trace_event(&plan.name, &footprint, &totals, cfg));
    }
    LaunchResult { cost, totals, footprint, active_threads }
}

/// Price one warp's worth of execution evidence into `totals`.
///
/// Shared by both engines: the tree walker feeds it from `WarpMachine`
/// state, the bytecode engine from its thread-local `WarpScratch`. Keeping
/// a single pricing routine is what makes the two engines bit-identical on
/// everything downstream of the traces.
#[allow(clippy::too_many_arguments)]
fn price_warp(
    plan: &KernelPlan,
    cfg: &DeviceConfig,
    site_kinds: &[SiteKind],
    elem_bytes: &[u32],
    partials_in_shared: bool,
    red_arrays: &[(ArrayId, crate::types::ReduceOp)],
    traces: &[SiteWarpTrace],
    touched: Option<&[bool]>,
    lane_ops: &[u64],
    atomic_accesses: u64,
    tex_cache: &mut Cache,
    totals: &mut KernelTotals,
    traced: bool,
    site_global: &mut [AccessSummary],
    site_shared: &mut [SharedSummary],
) {
    totals.warps += 1;
    let mut divergent_rows = 0u64;
    let mut extra_issue = 0.0f64;
    for (i, tr) in traces.iter().enumerate() {
        // The bytecode engine tracks which sites recorded anything this
        // warp; skipping the rest changes nothing (empty traces price to
        // zero) but avoids scanning every lane stream of every site.
        if touched.is_some_and(|t| !t[i]) {
            continue;
        }
        if tr.is_empty() {
            continue;
        }
        match site_kinds[i] {
            SiteKind::Branch => divergent_rows += tr.reduce_divergent_rows(),
            SiteKind::Mem(arr) => {
                let eb = elem_bytes[arr.0 as usize] as u64;
                let space = if plan.expansion_of(arr).is_some() {
                    // Reduction partials may be staged in shared.
                    if partials_in_shared && red_arrays.iter().any(|(a, _)| *a == arr) {
                        MemSpace::SharedTiled { reuse: 1.0 }
                    } else {
                        MemSpace::Global
                    }
                } else {
                    plan.space_of(arr)
                };
                match space {
                    MemSpace::Global => {
                        let s = tr.reduce_global(cfg.segment_bytes);
                        totals.global_requests += s.requests;
                        totals.global_transactions += s.transactions;
                        totals.useful_bytes += s.lane_accesses * eb;
                        if traced {
                            site_global[i].merge(&s);
                        }
                    }
                    MemSpace::SharedTiled { reuse } => {
                        let sh = tr.reduce_shared(cfg.shared_banks, 4);
                        totals.shared_slots += sh.slots;
                        let s = tr.reduce_global(cfg.segment_bytes);
                        let fill_bytes = (s.lane_accesses * eb) as f64 / reuse.max(1.0);
                        let fill_tx = (fill_bytes / cfg.segment_bytes as f64).ceil() as u64;
                        totals.global_transactions += fill_tx;
                        totals.global_requests += fill_tx;
                        totals.useful_bytes += fill_bytes as u64;
                        if traced {
                            site_shared[i].merge(&sh);
                            site_global[i].merge(&AccessSummary {
                                requests: fill_tx,
                                transactions: fill_tx,
                                lane_accesses: s.lane_accesses,
                            });
                        }
                    }
                    MemSpace::Constant => {
                        // Distinct words per row serialize.
                        let s = tr.reduce_global(eb.max(4) as u32);
                        extra_issue += (s.transactions - s.requests) as f64;
                        if traced {
                            site_global[i].merge(&s);
                        }
                    }
                    MemSpace::Texture => {
                        let line = cfg.tex_line_bytes as u64;
                        let (req0, miss0) = (totals.tex_requests, totals.tex_miss_lines);
                        tr.for_each_row(|row| {
                            totals.tex_requests += 1;
                            let mut lines: Vec<u64> = row.iter().map(|a| a / line).collect();
                            lines.sort_unstable();
                            lines.dedup();
                            for l in lines {
                                if !tex_cache.access(l * line) {
                                    totals.tex_miss_lines += 1;
                                }
                            }
                        });
                        if traced {
                            site_global[i].merge(&AccessSummary {
                                requests: totals.tex_requests - req0,
                                transactions: totals.tex_miss_lines - miss0,
                                lane_accesses: 0,
                            });
                        }
                    }
                }
            }
            SiteKind::Unused => {}
        }
    }
    totals.issue_cycles += warp_issue_cycles(lane_ops, divergent_rows) + extra_issue;
    totals.atomic_slots += atomic_accesses;
}

/// Convenience for tests: allocate+upload every array the kernel touches.
pub fn upload_all(prog: &Program, dev: &mut DeviceState, host: &crate::program::HostData) {
    for i in 0..prog.arrays.len() {
        dev.upload(ArrayId(i as u32), &host.bufs[i]);
    }
}

/// Convenience for tests: make a scalar environment from a dataset.
pub fn env_from_dataset(prog: &Program, ds: &crate::program::DataSet) -> Vec<Value> {
    let mut scal: Vec<Value> =
        prog.scalars.iter().map(|d| if d.is_float { Value::F(0.0) } else { Value::I(0) }).collect();
    for (id, v) in &ds.scalars {
        scal[id.0 as usize] = *v;
    }
    scal
}

/// Convenience: bind a kernel axis variable id (for assertions in tests).
pub fn axis_var(plan: &KernelPlan, i: usize) -> ScalarId {
    plan.axes[i].var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::kernel::axis;
    use crate::program::{DataSet, HostData};
    use crate::types::ReduceOp;
    use acceval_sim::ElemType;

    fn setup(n: i64) -> (Program, DataSet) {
        let mut pb = ProgramBuilder::new("t");
        let nn = pb.iscalar("n");
        let _i = pb.iscalar("i");
        let _s = pb.fscalar("s");
        let _x = pb.farray("x", vec![v(nn)]);
        let _y = pb.farray("y", vec![v(nn)]);
        pb.main(vec![]);
        let p = pb.build();
        let ds = DataSet {
            scalars: vec![(nn, Value::I(n))],
            arrays: vec![(ArrayId(0), Buffer::from_f64(ElemType::F64, (0..n).map(|i| i as f64).collect()))],
            label: "t".into(),
        };
        (p, ds)
    }

    #[test]
    fn elementwise_kernel_computes_and_prices() {
        let (p, ds) = setup(1000);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let x = p.array_named("x");
        let y = p.array_named("y");
        let mut k = crate::kernel::KernelPlan::new(
            "add1",
            vec![axis(i, v(n))],
            vec![store(y, vec![v(i)], ld(x, vec![v(i)]) * 2.0)],
        );
        k.finalize();

        let cfg = DeviceConfig::tesla_m2090();
        let mut dev = DeviceState::new(&p, &cfg);
        let host = HostData::materialize(&p, &ds);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let r = launch(&p, &k, &mut dev, &mut scal, &cfg);

        assert_eq!(r.active_threads, 1000);
        let yb = dev.bufs[y.0 as usize].as_ref().unwrap();
        assert_eq!(yb.get_f(7), 14.0);
        // 1000 threads reading f64 unit-stride: 2 tx per full warp per site.
        assert!(r.totals.global_transactions >= 2 * 31 * 2);
        assert!(r.totals.global_transactions <= 2 * 32 * 2 + 8);
        assert!(r.cost.time_secs > 0.0);
    }

    #[test]
    fn strided_kernel_needs_more_transactions() {
        let (p, ds) = setup(4096);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let x = p.array_named("x");
        let y = p.array_named("y");
        // y[i] = x[(i*64) % n] — uncoalesced gather.
        let mut k = crate::kernel::KernelPlan::new(
            "gather",
            vec![axis(i, v(n))],
            vec![store(y, vec![v(i)], ld(x, vec![(v(i) * 64i64) % v(n)]))],
        );
        k.finalize();
        let mut k2 =
            crate::kernel::KernelPlan::new("unit", vec![axis(i, v(n))], vec![store(y, vec![v(i)], ld(x, vec![v(i)]))]);
        k2.finalize();

        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let bad = launch(&p, &k, &mut dev, &mut scal, &cfg);
        let good = launch(&p, &k2, &mut dev, &mut scal, &cfg);
        assert!(
            bad.totals.global_transactions > 5 * good.totals.global_transactions,
            "gather {} vs unit {}",
            bad.totals.global_transactions,
            good.totals.global_transactions
        );
    }

    #[test]
    fn scalar_reduction_matches_serial() {
        let (p, ds) = setup(10_000);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let s = p.scalar_named("s");
        let x = p.array_named("x");
        let mut k =
            crate::kernel::KernelPlan::new("sum", vec![axis(i, v(n))], vec![assign(s, v(s) + ld(x, vec![v(i)]))])
                .with_reduction(ReduceOp::Add, VarRef::Scalar(s));
        k.finalize();

        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        scal[s.0 as usize] = Value::F(5.0); // initial value participates
        launch(&p, &k, &mut dev, &mut scal, &cfg);
        let expect = 5.0 + (0..10_000).map(|i| i as f64).sum::<f64>();
        assert!((scal[s.0 as usize].as_f() - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn private_array_expansion_changes_traffic_not_values() {
        // Each thread fills a private array then writes its sum to y[i].
        let mut pb = ProgramBuilder::new("pr");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let s = pb.fscalar("s");
        let y = pb.farray("y", vec![v(n)]);
        let q = pb.farray("q", vec![16i64.into()]);
        pb.main(vec![]);
        let p = pb.build();
        let ds = DataSet { scalars: vec![(n, Value::I(2048))], arrays: vec![], label: "t".into() };

        let body = vec![
            sfor(j, 0i64, 16i64, vec![store(q, vec![v(j)], (v(i) + v(j)).to_f())]),
            assign(s, 0.0),
            sfor(j, 0i64, 16i64, vec![assign(s, v(s) + ld(q, vec![v(j)]))]),
            store(y, vec![v(i)], v(s)),
        ];
        let mk = |exp: Expansion| {
            let mut k = crate::kernel::KernelPlan::new("priv", vec![axis(i, v(n))], body.clone()).with_private(q, exp);
            k.finalize();
            k
        };
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);

        let run = |k: &crate::kernel::KernelPlan| {
            let mut dev = DeviceState::new(&p, &cfg);
            upload_all(&p, &mut dev, &host);
            let mut scal = env_from_dataset(&p, &ds);
            let r = launch(&p, k, &mut dev, &mut scal, &cfg);
            let yv = dev.bufs[y.0 as usize].as_ref().unwrap().get_f(5);
            (r, yv)
        };
        let (row, yr) = run(&mk(Expansion::RowWise));
        let (col, yc) = run(&mk(Expansion::ColumnWise));
        assert_eq!(yr, yc);
        let expect: f64 = (0..16).map(|j| (5 + j) as f64).sum();
        assert_eq!(yr, expect);
        assert!(
            row.totals.global_transactions > 4 * col.totals.global_transactions,
            "row-wise {} should be far less coalesced than column-wise {}",
            row.totals.global_transactions,
            col.totals.global_transactions
        );
        assert!(row.cost.time_secs > col.cost.time_secs);
    }

    #[test]
    fn two_d_kernel_covers_grid() {
        let mut pb = ProgramBuilder::new("t2");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let j = pb.iscalar("j");
        let a = pb.farray("a", vec![v(n), v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let ds = DataSet { scalars: vec![(n, Value::I(70))], arrays: vec![], label: "t".into() };
        let mut k = crate::kernel::KernelPlan::new(
            "fill2d",
            vec![axis(i, v(n)), axis(j, v(n))],
            vec![store(a, vec![v(i), v(j)], (v(i) * 1000i64 + v(j)).to_f())],
        )
        .with_block(16, 16);
        k.finalize();
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let r = launch(&p, &k, &mut dev, &mut scal, &cfg);
        assert_eq!(r.active_threads, 70 * 70);
        let ab = dev.bufs[a.0 as usize].as_ref().unwrap();
        assert_eq!(ab.get_f(69 * 70 + 69), 69069.0);
        assert_eq!(r.footprint.grid_blocks, 5 * 5);
    }

    #[test]
    fn divergent_branches_cost_issue_cycles() {
        let (p, ds) = setup(4096);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let y = p.array_named("y");
        // Divergent: every other lane takes a different path.
        let body_div =
            vec![if_else((v(i) % 2i64).eq_(0i64), vec![store(y, vec![v(i)], 1.0)], vec![store(y, vec![v(i)], 2.0)])];
        // Uniform: whole warps take the same path.
        let body_uni = vec![if_else(
            ((v(i) / 32i64) % 2i64).eq_(0i64),
            vec![store(y, vec![v(i)], 1.0)],
            vec![store(y, vec![v(i)], 2.0)],
        )];
        let mk = |body: Vec<Stmt>, name: &str| {
            let mut k = crate::kernel::KernelPlan::new(name, vec![axis(i, v(n))], body);
            k.finalize();
            k
        };
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let div = launch(&p, &mk(body_div, "div"), &mut dev, &mut scal, &cfg);
        let uni = launch(&p, &mk(body_uni, "uni"), &mut dev, &mut scal, &cfg);
        assert!(div.totals.issue_cycles > uni.totals.issue_cycles);
    }

    #[test]
    fn texture_placement_reduces_transactions_for_reuse() {
        let (p, ds) = setup(4096);
        let n = p.scalar_named("n");
        let i = p.scalar_named("i");
        let x = p.array_named("x");
        let y = p.array_named("y");
        // Gather with heavy reuse: x[i % 64].
        let body = vec![store(y, vec![v(i)], ld(x, vec![v(i) % 64i64]))];
        let mk = |tex: bool| {
            let mut k = crate::kernel::KernelPlan::new("g", vec![axis(i, v(n))], body.clone());
            if tex {
                k = k.with_placement(x, MemSpace::Texture);
            }
            k.finalize();
            k
        };
        let cfg = DeviceConfig::tesla_m2090();
        let host = HostData::materialize(&p, &ds);
        let mut dev = DeviceState::new(&p, &cfg);
        upload_all(&p, &mut dev, &host);
        let mut scal = env_from_dataset(&p, &ds);
        let plain = launch(&p, &mk(false), &mut dev, &mut scal, &cfg);
        let tex = launch(&p, &mk(true), &mut dev, &mut scal, &cfg);
        let plain_traffic = plain.totals.traffic_bytes(&cfg);
        let tex_traffic = tex.totals.traffic_bytes(&cfg);
        // The y-store traffic (32 KiB) is common to both; the gather's own
        // traffic drops from ~32 KiB to under 1 KiB with the texture cache.
        assert!(
            (tex_traffic as f64) < 0.6 * plain_traffic as f64,
            "texture-cached gather should move far less DRAM traffic ({tex_traffic} vs {plain_traffic})"
        );
        assert!(tex.totals.tex_miss_lines < 100);
    }
}
