//! The sequential host CPU machine: functional storage + cache-simulated
//! timing. This is both the correctness oracle and the paper's "serial on
//! the CPU" baseline that Figure 1 speedups are measured against.

use acceval_sim::{Buffer, Cache, Hierarchy, HostConfig};

use crate::expr::Intrin;
use crate::interp::{Interp, Machine, NoHooks};
use crate::program::{DataSet, HostData, Program};
use crate::types::{ArrayId, SiteId, Value};

/// Host CPU machine.
pub struct CpuMachine {
    /// Host memory image (functional state).
    pub data: HostData,
    hier: Hierarchy,
    /// Byte base address of each array in the simulated address space.
    base: Vec<u64>,
    /// Accumulated cycles.
    pub cycles: f64,
    /// Retired simple ops.
    pub ops: u64,
    /// Loads + stores executed.
    pub accesses: u64,
    ipc: f64,
}

impl CpuMachine {
    /// Build a machine over materialized host data.
    pub fn new(cfg: &HostConfig, data: HostData) -> Self {
        let l1 = Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes);
        let l2 = Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes);
        let hier = Hierarchy::new(l1, l2, cfg.l1_hit_cycles, cfg.l2_hit_cycles, cfg.mem_cycles);
        // Lay arrays out back-to-back at 4 KiB alignment.
        let mut base = Vec::with_capacity(data.bufs.len());
        let mut cur = 0u64;
        for b in &data.bufs {
            base.push(cur);
            cur += (b.size_bytes() + 4095) & !4095;
            cur += 4096; // guard page, avoids accidental set aliasing
        }
        CpuMachine { data, hier, base, cycles: 0.0, ops: 0, accesses: 0, ipc: cfg.ipc }
    }

    /// Cost in cycles of an intrinsic on this CPU (libm-style).
    fn intrin_cycles(f: Intrin) -> f64 {
        match f {
            Intrin::Sqrt => 15.0,
            Intrin::Exp | Intrin::Log => 30.0,
            Intrin::Pow => 45.0,
            Intrin::Sin | Intrin::Cos => 25.0,
            Intrin::Floor => 2.0,
            Intrin::Abs => 1.0,
        }
    }

    /// Byte address of an element, for the cache model.
    #[inline]
    fn addr(&self, array: ArrayId, flat: usize) -> u64 {
        let b = &self.data.bufs[array.0 as usize];
        self.base[array.0 as usize] + b.elem_addr(flat)
    }
}

impl Machine for CpuMachine {
    fn load(&mut self, array: ArrayId, flat: usize, _site: SiteId) -> Value {
        let addr = self.addr(array, flat);
        self.cycles += self.hier.access_cycles(addr);
        self.accesses += 1;
        let b = &self.data.bufs[array.0 as usize];
        if b.elem.is_float() {
            Value::F(b.get_f(flat))
        } else {
            Value::I(b.get_i(flat))
        }
    }

    fn store(&mut self, array: ArrayId, flat: usize, v: Value, _site: SiteId) {
        let addr = self.addr(array, flat);
        self.cycles += self.hier.access_cycles(addr);
        self.accesses += 1;
        let b = &mut self.data.bufs[array.0 as usize];
        if b.elem.is_float() {
            b.set_f(flat, v.as_f());
        } else {
            b.set_i(flat, v.as_i());
        }
    }

    fn ops(&mut self, n: u64) {
        self.ops += n;
        self.cycles += n as f64 / self.ipc;
    }

    fn intrin(&mut self, f: Intrin) {
        self.ops += 1;
        self.cycles += Self::intrin_cycles(f);
    }
}

/// Result of a sequential CPU run.
#[derive(Debug)]
pub struct CpuRun {
    /// Final host memory (program outputs live here).
    pub data: HostData,
    /// Final scalar environment.
    pub scalars: Vec<Value>,
    /// Total cycles consumed.
    pub cycles: f64,
    /// Wall time in seconds at the configured clock.
    pub secs: f64,
    /// Retired simple ops.
    pub ops: u64,
    /// Memory accesses executed.
    pub accesses: u64,
}

/// Run a whole program sequentially on the CPU model.
///
/// This executes the *original OpenMP* program with single-thread semantics
/// (parallel regions run sequentially, critical sections are no-ops), which
/// is exactly the paper's baseline: "sequential CPU versions without OpenMP".
pub fn run_cpu(prog: &Program, ds: &DataSet, cfg: &HostConfig) -> CpuRun {
    let data = HostData::materialize(prog, ds);
    let m = CpuMachine::new(cfg, data);
    let mut it = Interp::new(prog, m, ds);
    let main = prog.main.clone();
    it.run_with(&main, &mut NoHooks);
    let cycles = it.m.cycles;
    CpuRun {
        secs: cfg.cycles_to_secs(cycles),
        cycles,
        ops: it.m.ops,
        accesses: it.m.accesses,
        scalars: it.scal,
        data: it.m.data,
    }
}

/// Extract a named output buffer from a run (convenience for tests).
pub fn output<'r>(prog: &Program, run: &'r CpuRun, name: &str) -> &'r Buffer {
    let id = prog.array_named(name);
    &run.data.bufs[id.0 as usize]
}

/// Extract a named scalar value from a run.
pub fn output_scalar(prog: &Program, run: &CpuRun, name: &str) -> Value {
    run.scalars[prog.scalar_named(name).0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::types::ScalarId;

    fn stream_prog(strided: bool) -> (Program, DataSet, ScalarId) {
        let mut pb = ProgramBuilder::new("stream");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let a = pb.farray("a", vec![v(n)]);
        let idx: crate::expr::Expr = if strided {
            // large stride: (i * 197) % n — defeats the caches
            (v(i) * 197i64) % v(n)
        } else {
            v(i)
        };
        pb.main(vec![sfor(i, 0i64, v(n), vec![store(a, vec![idx.clone()], ld(a, vec![idx]) + 1.0)])]);
        let p = pb.build();
        let ds = DataSet { scalars: vec![(n, Value::I(1 << 16))], arrays: vec![], label: "t".into() };
        (p, ds, n)
    }

    #[test]
    fn sequential_access_cheaper_than_scattered() {
        let cfg = HostConfig::xeon_x5660();
        let (p1, ds1, _) = stream_prog(false);
        let (p2, ds2, _) = stream_prog(true);
        let r1 = run_cpu(&p1, &ds1, &cfg);
        let r2 = run_cpu(&p2, &ds2, &cfg);
        assert!(
            r2.cycles > 1.5 * r1.cycles,
            "scattered ({:.0}) should cost much more than sequential ({:.0})",
            r2.cycles,
            r1.cycles
        );
    }

    #[test]
    fn run_produces_output_and_time() {
        let cfg = HostConfig::xeon_x5660();
        let (p, ds, _) = stream_prog(false);
        let r = run_cpu(&p, &ds, &cfg);
        let a = output(&p, &r, "a");
        assert_eq!(a.get_f(0), 1.0);
        assert!(r.secs > 0.0);
        assert_eq!(r.accesses, 2 * (1 << 16));
    }

    #[test]
    fn intrinsics_cost_more_than_adds() {
        let cfg = HostConfig::xeon_x5660();
        let mut pb = ProgramBuilder::new("intr");
        let i = pb.iscalar("i");
        let x = pb.fscalar("x");
        pb.main(vec![sfor(i, 0i64, 1000i64, vec![assign(x, v(x).exp())])]);
        let p1 = pb.build();

        let mut pb = ProgramBuilder::new("adds");
        let i = pb.iscalar("i");
        let x = pb.fscalar("x");
        pb.main(vec![sfor(i, 0i64, 1000i64, vec![assign(x, v(x) + 1.0)])]);
        let p2 = pb.build();

        let r1 = run_cpu(&p1, &DataSet::default(), &cfg);
        let r2 = run_cpu(&p2, &DataSet::default(), &cfg);
        assert!(r1.cycles > 2.0 * r2.cycles);
    }
}
