//! Content-addressed memoization of kernel launches.
//!
//! A launch on the simulated device is a *pure* function of its content:
//! the plan's geometry-invariant fingerprint, the live launch geometry, the
//! device configuration, the host scalar environment, and the contents of
//! every device array the body can read. The tuning sweep re-runs thousands
//! of launches that are bit-identical under that key — tuning points share
//! their lowering basis, so for most kernels only one knob differs between
//! tasks while every other kernel repeats the exact same work. This module
//! pays for each distinct launch once per process and replays its complete
//! captured effect everywhere else: per-array output deltas, scalar
//! writebacks, the [`LaunchResult`], and the launch's relative trace-event
//! slice, so even `RecordingSink` output is byte-identical on a hit.
//!
//! Keys stay cheap through the generation tags on [`super::gpu::DeviceState`]
//! buffers ([`acceval_sim::BufGen`]): content digests are memoized per
//! (buffer, generation), and replay primes the written buffers' memos from
//! the stored output digests — so steady-state probes hash nothing.
//!
//! The cache is bounded (`ACCEVAL_LAUNCH_CACHE_CAP_MB`, default 512) with
//! LRU eviction, so iterative benchmarks whose inputs change every step
//! miss cleanly without ballooning memory.
//!
//! Below the LRU sits an optional disk tier ([`super::store`]): an in-memory
//! miss probes the persistent store before executing, a disk hit is promoted
//! into the LRU, and captured effects are spilled write-behind — so a fresh
//! process warm-starts from everything earlier processes computed.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use acceval_sim::{Buffer, TraceEvent};

use super::gpu::LaunchResult;
use crate::types::Value;

/// Launch-memoization policy (`ACCEVAL_LAUNCH_CACHE`). The cache is a speed
/// knob, never a results knob: every artifact is bit-identical on, off, and
/// across hit/miss patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchCache {
    /// Enabled (the default). Semantically identical to [`LaunchCache::On`];
    /// the distinct name records that enablement was defaulted, not asked
    /// for, in manifests.
    Auto,
    /// Enabled.
    On,
    /// Disabled: every launch executes.
    Off,
}

/// Process-wide override: 0 = unset (use env), 1 = auto, 2 = on, 3 = off.
static CACHE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static CACHE_FROM_ENV: OnceLock<LaunchCache> = OnceLock::new();

/// The launch-memoization policy: an override installed by
/// [`set_launch_cache_override`] wins, else the `ACCEVAL_LAUNCH_CACHE`
/// environment variable (`auto` | `on` | `off`), else [`LaunchCache::Auto`].
pub fn launch_cache() -> LaunchCache {
    match CACHE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return LaunchCache::Auto,
        2 => return LaunchCache::On,
        3 => return LaunchCache::Off,
        _ => {}
    }
    *CACHE_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_LAUNCH_CACHE") {
        // Fail soft on a malformed value: a typo must not abort a launch
        // deep inside a parallel sweep. Front-end binaries catch it up
        // front via `crate::env::validate_env` and exit with usage.
        Ok(s) => match crate::env::parse_toggle("ACCEVAL_LAUNCH_CACHE", &s) {
            Ok(crate::env::Toggle::On) => LaunchCache::On,
            Ok(crate::env::Toggle::Off) => LaunchCache::Off,
            _ => LaunchCache::Auto,
        },
        Err(_) => LaunchCache::Auto,
    })
}

/// Force a launch-cache policy for this process (tests/benches), overriding
/// the environment. `None` returns control to `ACCEVAL_LAUNCH_CACHE`.
pub fn set_launch_cache_override(p: Option<LaunchCache>) {
    let v = match p {
        None => 0,
        Some(LaunchCache::Auto) => 1,
        Some(LaunchCache::On) => 2,
        Some(LaunchCache::Off) => 3,
    };
    CACHE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Short name of the active launch-cache policy, for manifests.
pub fn launch_cache_name() -> &'static str {
    match launch_cache() {
        LaunchCache::Auto => "auto",
        LaunchCache::On => "on",
        LaunchCache::Off => "off",
    }
}

/// Whether memoization is enabled under the active policy.
pub fn launch_cache_enabled() -> bool {
    launch_cache() != LaunchCache::Off
}

// ---- capacity --------------------------------------------------------------

/// Byte-cap override installed by tests; `u64::MAX` means unset.
static CAP_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);
static CAP_FROM_ENV: OnceLock<u64> = OnceLock::new();

/// Resident-byte cap on cached launch effects: the override installed by
/// [`set_launch_cache_cap_override`] wins, else `ACCEVAL_LAUNCH_CACHE_CAP_MB`
/// (mebibytes), else 512 MiB.
pub fn launch_cache_cap_bytes() -> u64 {
    let o = CAP_OVERRIDE.load(Ordering::Relaxed);
    if o != u64::MAX {
        return o;
    }
    *CAP_FROM_ENV.get_or_init(|| match std::env::var("ACCEVAL_LAUNCH_CACHE_CAP_MB") {
        // Fail soft to the default on a malformed count; see launch_cache().
        Ok(s) => crate::env::parse_cap_mb("ACCEVAL_LAUNCH_CACHE_CAP_MB", &s).unwrap_or(512 << 20),
        Err(_) => 512 << 20,
    })
}

/// Force a byte cap for this process (tests exercise eviction under a tiny
/// cap). `None` returns control to the environment/default.
pub fn set_launch_cache_cap_override(bytes: Option<u64>) {
    CAP_OVERRIDE.store(bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
}

// ---- statistics ------------------------------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static DIGEST_NANOS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_HITS: Cell<u64> = const { Cell::new(0) };
    static TL_DISK_HITS: Cell<u64> = const { Cell::new(0) };
    static TL_MISSES: Cell<u64> = const { Cell::new(0) };
    static TL_DIGEST_NANOS: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn note_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
    TL_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_disk_hit() {
    DISK_HITS.fetch_add(1, Ordering::Relaxed);
    TL_DISK_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
    TL_MISSES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_digest_nanos(n: u64) {
    DIGEST_NANOS.fetch_add(n, Ordering::Relaxed);
    TL_DIGEST_NANOS.with(|c| c.set(c.get() + n));
}

/// Time `f` as digest/key work, charging the elapsed nanoseconds to the
/// digest accounting (global and thread-local).
pub(crate) fn timed_digest<T>(f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let r = f();
    note_digest_nanos(t0.elapsed().as_nanos() as u64);
    r
}

/// Process-lifetime cache counters, for manifests and the sweep report.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheTotals {
    /// Eligible probes answered from the in-memory LRU.
    pub hits: u64,
    /// Eligible probes answered from the persistent store (and promoted
    /// into the LRU).
    pub disk_hits: u64,
    /// Eligible probes that executed and (where possible) captured.
    pub misses: u64,
    /// Entries evicted under the byte cap.
    pub evictions: u64,
    /// Wall time spent hashing buffer contents and assembling keys.
    pub digest_secs: f64,
    /// Bytes currently resident in cached effects.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Snapshot of the process-lifetime cache counters.
pub fn launch_cache_totals() -> CacheTotals {
    let (resident_bytes, entries) = match store().lock() {
        Ok(s) => (s.bytes, s.map.len() as u64),
        Err(_) => (0, 0),
    };
    CacheTotals {
        hits: HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        digest_secs: DIGEST_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
        resident_bytes,
        entries,
    }
}

/// Per-thread cumulative counters (memory hits, disk hits, misses, digest
/// nanos). The sweep snapshots these around each task — launches run on the
/// task's worker thread, so the delta attributes cache behavior to the task
/// exactly.
pub fn thread_cache_counters() -> (u64, u64, u64, u64) {
    (
        TL_HITS.with(|c| c.get()),
        TL_DISK_HITS.with(|c| c.get()),
        TL_MISSES.with(|c| c.get()),
        TL_DIGEST_NANOS.with(|c| c.get()),
    )
}

// ---- keys and effects ------------------------------------------------------

/// Content-addressed identity of one launch. Two launches with equal keys
/// have bit-identical effects: the plan fingerprint covers the body and
/// lowering decisions, the live fields cover geometry retargeting, the
/// config digest covers the priced device, the layout digest covers the
/// address-space layout and array extents, and the scalar/input vectors
/// cover every value the body can observe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaunchKey {
    /// Geometry-invariant plan fingerprint ([`crate::kernel::EngineCache::fingerprint`]).
    pub plan_fp: u128,
    /// Live block shape (mutated by geometry retargeting, hence not in `plan_fp`).
    pub block: (u32, u32),
    /// Live static shared-memory footprint.
    pub shared_bytes: u32,
    /// Registers per thread (occupancy input).
    pub regs: u32,
    /// Effective executing tier (tree = 0, bytecode = 1, native = 2; an
    /// `auto` launch keys the tier it resolved to). The tiers are
    /// bit-identical by contract, but keeping entries separate costs one
    /// duplicate capture and buys independence from that contract.
    pub engine: u8,
    /// Whether the bytecode optimizer was active for the launch. Optimized
    /// and unoptimized streams are byte-identical by contract; like
    /// `engine`, keying the mode buys independence from that contract.
    pub opt: bool,
    /// Whether the launch was traced (traced entries carry an event slice).
    pub traced: bool,
    /// Digest of the device configuration.
    pub cfg_digest: u64,
    /// Digest of the device address-space layout: every array's allocation
    /// state, length, element type, and launch-time extents.
    pub layout_digest: u64,
    /// Full host scalar environment as (tag, raw bits) pairs.
    pub scalars: Vec<(u8, u64)>,
    /// Content digests of the readable device arrays, in array-id order;
    /// `None` marks an unallocated array.
    pub inputs: Vec<(u32, Option<u128>)>,
}

/// One array's captured output: what the launch did to the device copy.
#[derive(Debug, Clone)]
pub enum ArrayOut {
    /// Sparse element writes as (flat index, raw bits) against the
    /// pre-launch contents (chosen when few elements changed).
    Sparse(Vec<(u32, u64)>),
    /// Dense replacement of the whole buffer.
    Full(Arc<Buffer>),
}

/// The complete captured effect of one launch.
#[derive(Debug, Clone)]
pub struct LaunchEffect {
    /// Per-array outputs: (array index, delta, post-launch content digest).
    /// The digest primes the buffer's generation memo on replay.
    pub outputs: Vec<(u32, ArrayOut, u128)>,
    /// Scalar reduction writebacks: post-combine values per scalar slot.
    pub scalar_writes: Vec<(usize, Value)>,
    /// The launch's result (cost, totals, footprint, active threads).
    pub result: LaunchResult,
    /// The launch's relative trace-event slice (empty when untraced).
    pub events: Vec<TraceEvent>,
}

impl LaunchEffect {
    /// Approximate resident bytes of this effect, for the byte cap.
    ///
    /// Element costs come from `mem::size_of`, not hand-kept constants: a
    /// `Vec<(u32, u64)>` element occupies 16 bytes (alignment padding), not
    /// the 12 bytes of its fields, and dense buffers store every element as
    /// 8 bytes (`Vec<f64>`/`Vec<i64>`) regardless of the declared element
    /// width. Scalar writebacks and the actual per-variant trace-event
    /// payloads are accounted too.
    pub(crate) fn resident_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut b = (size_of::<LaunchKey>() + size_of::<Slot>() + size_of::<LaunchEffect>() + 64) as u64;
        for (_, out, _) in &self.outputs {
            b += size_of::<(u32, ArrayOut, u128)>() as u64;
            b += match out {
                ArrayOut::Sparse(w) => (w.len() * size_of::<(u32, u64)>()) as u64,
                ArrayOut::Full(buf) => (buf.len() * size_of::<u64>() + size_of::<Buffer>()) as u64,
            };
        }
        b += (self.scalar_writes.len() * size_of::<(usize, Value)>()) as u64;
        b += self.events.iter().map(TraceEvent::resident_bytes).sum::<u64>();
        b
    }
}

// ---- the store -------------------------------------------------------------

struct Slot {
    effect: Arc<LaunchEffect>,
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct StoreInner {
    map: HashMap<LaunchKey, Slot>,
    bytes: u64,
    tick: u64,
}

static STORE: OnceLock<Mutex<StoreInner>> = OnceLock::new();

fn store() -> &'static Mutex<StoreInner> {
    STORE.get_or_init(|| Mutex::new(StoreInner::default()))
}

/// Look up a launch by key, refreshing its LRU stamp on a hit.
pub fn probe(key: &LaunchKey) -> Option<Arc<LaunchEffect>> {
    let mut s = store().lock().expect("launch cache poisoned");
    s.tick += 1;
    let tick = s.tick;
    let slot = s.map.get_mut(key)?;
    slot.last_used = tick;
    Some(slot.effect.clone())
}

/// Which tier answered a [`probe_two_tier`] lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeTier {
    /// The in-memory LRU.
    Memory,
    /// The persistent store ([`super::store`]); the effect was promoted
    /// into the LRU on the way out.
    Disk,
}

/// Two-tier lookup: the in-memory LRU first, then the persistent store. A
/// disk hit is decoded, promoted into the LRU (without re-spilling), and
/// reported with [`ProbeTier::Disk`] so callers can attribute it.
pub fn probe_two_tier(key: &LaunchKey) -> Option<(Arc<LaunchEffect>, ProbeTier)> {
    if let Some(e) = probe(key) {
        return Some((e, ProbeTier::Memory));
    }
    let eff = Arc::new(super::store::probe_effect(key)?);
    insert_arc(key.clone(), eff.clone());
    Some((eff, ProbeTier::Disk))
}

/// Insert a captured effect, evicting least-recently-used entries to stay
/// under the byte cap, and spill it write-behind to the persistent store
/// (when enabled). An effect that alone exceeds the in-memory cap is not
/// LRU-cached but is still spilled — the disk tier has its own cap.
pub fn insert(key: LaunchKey, effect: LaunchEffect) {
    let effect = Arc::new(effect);
    super::store::spill_effect(&key, &effect);
    insert_arc(key, effect);
}

/// LRU-only insert (no disk spill): shared by [`insert`] and the disk-hit
/// promotion in [`probe_two_tier`], which must not write back what it just
/// read.
fn insert_arc(key: LaunchKey, effect: Arc<LaunchEffect>) {
    let bytes = effect.resident_bytes();
    let cap = launch_cache_cap_bytes();
    if bytes > cap {
        return;
    }
    let mut s = store().lock().expect("launch cache poisoned");
    s.tick += 1;
    let tick = s.tick;
    if let Some(old) = s.map.insert(key, Slot { effect, bytes, last_used: tick }) {
        s.bytes -= old.bytes;
    }
    s.bytes += bytes;
    while s.bytes > cap {
        let Some(victim) = s.map.iter().min_by_key(|(_, slot)| slot.last_used).map(|(k, _)| k.clone()) else {
            break;
        };
        let slot = s.map.remove(&victim).expect("victim present");
        s.bytes -= slot.bytes;
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drop every cached effect (cold-start for benches and tests). Counters
/// are left running; eviction of cleared entries is not counted.
pub fn clear_launch_cache() {
    let mut s = store().lock().expect("launch cache poisoned");
    s.map.clear();
    s.bytes = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_parsing_and_override() {
        set_launch_cache_cap_override(Some(1 << 16));
        assert_eq!(launch_cache_cap_bytes(), 1 << 16);
        set_launch_cache_cap_override(None);
        assert!(launch_cache_cap_bytes() >= 1 << 20, "default cap is at least a MiB");
    }

    #[test]
    fn policy_override_round_trip() {
        set_launch_cache_override(Some(LaunchCache::Off));
        assert!(!launch_cache_enabled());
        assert_eq!(launch_cache_name(), "off");
        set_launch_cache_override(Some(LaunchCache::On));
        assert!(launch_cache_enabled());
        set_launch_cache_override(None);
    }
}
