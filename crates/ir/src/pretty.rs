//! Source-like rendering of programs and kernels.
//!
//! The paper's debuggability discussion (§VI-D) criticizes compilers that
//! emit unreadable intermediate CUDA; ACCEVAL keeps every stage inspectable
//! by rendering IR and kernel plans as C-like text.

use std::fmt::Write;

use crate::expr::{BinOp, Expr, Intrin, UnOp};
use crate::kernel::KernelPlan;
use crate::program::Program;
use crate::stmt::{Stmt, UpdateDir};

/// Render an expression.
pub fn expr(prog: &Program, e: &Expr) -> String {
    match e {
        Expr::F(x) => format!("{x:?}"),
        Expr::I(x) => format!("{x}"),
        Expr::B(x) => format!("{x}"),
        Expr::Var(s) => prog.scalars[s.0 as usize].name.clone(),
        Expr::Load { array, index, .. } => {
            let idx: Vec<String> = index.iter().map(|i| expr(prog, i)).collect();
            format!("{}[{}]", prog.array_name(*array), idx.join("]["))
        }
        Expr::Un(op, a) => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{o}({})", expr(prog, a))
        }
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Min => return format!("min({}, {})", expr(prog, a), expr(prog, b)),
                BinOp::Max => return format!("max({}, {})", expr(prog, a), expr(prog, b)),
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
            };
            format!("({} {o} {})", expr(prog, a), expr(prog, b))
        }
        Expr::Select { cond, t, f } => {
            format!("({} ? {} : {})", expr(prog, cond), expr(prog, t), expr(prog, f))
        }
        Expr::Intrin(f, args) => {
            let name = match f {
                Intrin::Sqrt => "sqrt",
                Intrin::Exp => "exp",
                Intrin::Log => "log",
                Intrin::Pow => "pow",
                Intrin::Sin => "sin",
                Intrin::Cos => "cos",
                Intrin::Floor => "floor",
                Intrin::Abs => "fabs",
            };
            let a: Vec<String> = args.iter().map(|x| expr(prog, x)).collect();
            format!("{name}({})", a.join(", "))
        }
        Expr::CastI(a) => format!("(long)({})", expr(prog, a)),
        Expr::CastF(a) => format!("(double)({})", expr(prog, a)),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Render a statement tree.
pub fn stmt(prog: &Program, s: &Stmt, out: &mut String, depth: usize) {
    match s {
        Stmt::Assign { var, value } => {
            indent(out, depth);
            let _ = writeln!(out, "{} = {};", prog.scalars[var.0 as usize].name, expr(prog, value));
        }
        Stmt::Store { array, index, value, .. } => {
            indent(out, depth);
            let idx: Vec<String> = index.iter().map(|i| expr(prog, i)).collect();
            let _ = writeln!(out, "{}[{}] = {};", prog.array_name(*array), idx.join("]["), expr(prog, value));
        }
        Stmt::If { cond, then_b, else_b, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", expr(prog, cond));
            for t in then_b {
                stmt(prog, t, out, depth + 1);
            }
            if !else_b.is_empty() {
                indent(out, depth);
                out.push_str("} else {\n");
                for t in else_b {
                    stmt(prog, t, out, depth + 1);
                }
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For { var, lo, hi, step, body, par } => {
            if let Some(p) = par {
                indent(out, depth);
                let mut clauses = String::new();
                if p.collapse > 1 {
                    let _ = write!(clauses, " collapse({})", p.collapse);
                }
                for r in &p.reductions {
                    let _ = write!(clauses, " reduction({:?}: ...)", r.op);
                }
                let _ = writeln!(out, "#pragma omp for{clauses}");
            }
            indent(out, depth);
            let name = &prog.scalars[var.0 as usize].name;
            let _ = writeln!(
                out,
                "for ({name} = {}; {name} < {}; {name} += {}) {{",
                expr(prog, lo),
                expr(prog, hi),
                expr(prog, step)
            );
            for t in body {
                stmt(prog, t, out, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            indent(out, depth);
            let _ = writeln!(out, "while ({}) {{", expr(prog, cond));
            for t in body {
                stmt(prog, t, out, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Call { func, scalar_args, array_args } => {
            indent(out, depth);
            let f = &prog.funcs[func.0 as usize];
            let mut args: Vec<String> = scalar_args.iter().map(|a| expr(prog, a)).collect();
            args.extend(array_args.iter().map(|a| prog.array_name(*a).to_string()));
            let _ = writeln!(out, "{}({});", f.name, args.join(", "));
        }
        Stmt::Critical { body } => {
            indent(out, depth);
            out.push_str("#pragma omp critical\n");
            indent(out, depth);
            out.push_str("{\n");
            for t in body {
                stmt(prog, t, out, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Parallel(r) => {
            indent(out, depth);
            let _ = writeln!(out, "#pragma omp parallel  // region {} \"{}\"", r.id.0, r.label);
            indent(out, depth);
            out.push_str("{\n");
            for t in &r.body {
                stmt(prog, t, out, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::DataRegion { clauses, body } => {
            indent(out, depth);
            let fmt = |ids: &[crate::types::ArrayId]| {
                ids.iter().map(|a| prog.array_name(*a).to_string()).collect::<Vec<_>>().join(", ")
            };
            let _ = writeln!(
                out,
                "#pragma acc data copyin({}) copyout({}) copy({}) create({})",
                fmt(&clauses.copyin),
                fmt(&clauses.copyout),
                fmt(&clauses.copy),
                fmt(&clauses.create)
            );
            indent(out, depth);
            out.push_str("{\n");
            for t in body {
                stmt(prog, t, out, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Update { arrays, dir } => {
            indent(out, depth);
            let d = match dir {
                UpdateDir::Host => "host",
                UpdateDir::Device => "device",
            };
            let names: Vec<String> = arrays.iter().map(|a| prog.array_name(*a).to_string()).collect();
            let _ = writeln!(out, "#pragma acc update {d}({})", names.join(", "));
        }
        Stmt::Barrier => {
            indent(out, depth);
            out.push_str("#pragma omp barrier\n");
        }
    }
}

/// Render a whole program.
pub fn program(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program {}", prog.name);
    for a in &prog.arrays {
        let dims: Vec<String> = a.dims.iter().map(|d| expr(prog, d)).collect();
        let _ = writeln!(out, "{:?} {}[{}];", a.elem, a.name, dims.join("]["));
    }
    for f in &prog.funcs {
        let params: Vec<String> = f
            .scalar_params
            .iter()
            .map(|p| prog.scalars[p.0 as usize].name.clone())
            .chain(f.array_params.iter().map(|a| format!("{}[]", prog.array_name(*a))))
            .collect();
        let _ = writeln!(out, "void {}({}) {{", f.name, params.join(", "));
        for s in &f.body {
            stmt(prog, s, &mut out, 1);
        }
        out.push_str("}\n");
    }
    out.push_str("void main() {\n");
    for s in &prog.main {
        stmt(prog, s, &mut out, 1);
    }
    out.push_str("}\n");
    out
}

/// Render a compiled kernel plan (the "generated CUDA" view).
pub fn kernel(prog: &Program, k: &KernelPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "__global__ void {}()  // block ({}, {})", k.name, k.block.0, k.block.1);
    out.push_str("{\n");
    for (d, ax) in k.axes.iter().enumerate() {
        let dim = if d == 0 { "x" } else { "y" };
        let _ = writeln!(
            out,
            "  int {} = {} + (blockIdx.{dim}*blockDim.{dim} + threadIdx.{dim}) * {};  // guard: < {}",
            prog.scalars[ax.var.0 as usize].name,
            expr(prog, &ax.lo),
            expr(prog, &ax.step),
            expr(prog, &ax.count),
        );
    }
    for p in &k.private_arrays {
        let _ = writeln!(out, "  // private {} expanded {:?}", prog.array_name(p.array), p.expansion);
    }
    for (a, sp) in &k.placement {
        let _ = writeln!(out, "  // {} in {:?}", prog.array_name(*a), sp);
    }
    for r in &k.reductions {
        let _ = writeln!(out, "  // reduction {:?} via {:?}", r.op, k.reduce_strategy);
    }
    for s in &k.body {
        stmt(prog, s, &mut out, 1);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::expr::{ld, v};
    use crate::kernel::axis;

    #[test]
    fn renders_program_text() {
        let mut pb = ProgramBuilder::new("demo");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let a = pb.farray("a", vec![v(n)]);
        pb.main(vec![parallel("r0", vec![pfor(i, 0i64, v(n), vec![store(a, vec![v(i)], ld(a, vec![v(i)]) * 2.0)])])]);
        let p = pb.build();
        let txt = program(&p);
        assert!(txt.contains("#pragma omp parallel"));
        assert!(txt.contains("a[i] = (a[i] * 2.0);"));
        assert!(txt.contains("for (i = 0; i < n; i += 1)"));
    }

    #[test]
    fn renders_kernel_text() {
        let mut pb = ProgramBuilder::new("demo");
        let n = pb.iscalar("n");
        let i = pb.iscalar("i");
        let a = pb.farray("a", vec![v(n)]);
        pb.main(vec![]);
        let p = pb.build();
        let mut k = crate::kernel::KernelPlan::new("k0", vec![axis(i, v(n))], vec![store(a, vec![v(i)], 1.0)]);
        k.finalize();
        let txt = kernel(&p, &k);
        assert!(txt.contains("__global__ void k0"));
        assert!(txt.contains("blockIdx.x"));
        assert!(txt.contains("a[i] = 1.0;"));
    }
}
