//! Chunked block-parallel launches must be observationally identical to the
//! serial block walk: same buffer bits, same scalar bits (reduction fold
//! order included), same evidence totals, same priced cost — at any worker
//! count. `ACCEVAL_LAUNCH_PAR` is a speed knob, never a results knob.

use std::sync::Mutex;

use acceval_ir::builder::*;
use acceval_ir::expr::{ld, v};
use acceval_ir::interp::gpu::{
    env_from_dataset, launch_with_engine, set_launch_par_override, upload_all, DeviceState, Engine, LaunchPar,
    LaunchResult,
};
use acceval_ir::kernel::{axis, KernelPlan};
use acceval_ir::program::{DataSet, HostData, Program};
use acceval_ir::types::{ReduceOp, Value, VarRef};
use acceval_sim::{Buffer, DeviceConfig, ElemType, Payload};
use proptest::prelude::*;

/// The parallelism override and `RAYON_NUM_THREADS` are process-global;
/// serialize every test that flips them.
static PAR_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with intra-launch parallelism pinned to `par` and the worker
/// count pinned to `threads`, restoring the defaults on exit (also on
/// panic, so one failing test can't poison the setting for the others).
fn with_par<T>(par: LaunchPar, threads: usize, f: impl FnOnce() -> T) -> T {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            set_launch_par_override(None);
            std::env::remove_var("RAYON_NUM_THREADS");
        }
    }
    let _guard = PAR_LOCK.lock().unwrap();
    let _reset = Reset;
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    set_launch_par_override(Some(par));
    f()
}

/// Launch `plan` on the bytecode engine from a fresh device/scalar state.
fn run_one(p: &Program, ds: &DataSet, plan: &KernelPlan) -> (DeviceState, Vec<Value>, LaunchResult) {
    let cfg = DeviceConfig::tesla_m2090();
    let host = HostData::materialize(p, ds);
    let mut dev = DeviceState::new(p, &cfg);
    upload_all(p, &mut dev, &host);
    let mut scal = env_from_dataset(p, ds);
    let r = launch_with_engine(p, plan, &mut dev, &mut scal, &cfg, Engine::Bytecode);
    (dev, scal, r)
}

fn buffers_bit_equal(a: &Buffer, b: &Buffer) -> bool {
    match (&a.data, &b.data) {
        (Payload::F(x), Payload::F(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Payload::I(x), Payload::I(y)) => x == y,
        _ => false,
    }
}

fn values_bit_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Launch serially and chunked at several worker counts; every observable
/// must match bit-exact.
fn assert_parallel_agrees(p: &Program, ds: &DataSet, plan: &KernelPlan) {
    let (ds0, ss0, rs0) = with_par(LaunchPar::Off, 1, || run_one(p, ds, plan));
    for threads in [2usize, 3, 8] {
        let (dp, sp, rp) = with_par(LaunchPar::On, threads, || run_one(p, ds, plan));
        for (i, (sa, pa)) in ds0.bufs.iter().zip(dp.bufs.iter()).enumerate() {
            match (sa, pa) {
                (None, None) => {}
                (Some(sa), Some(pa)) => assert!(
                    buffers_bit_equal(sa, pa),
                    "kernel {} @ {threads} workers: buffer {i} diverges from serial",
                    plan.name
                ),
                _ => panic!("kernel {} @ {threads} workers: buffer {i} allocated on one path only", plan.name),
            }
        }
        for (i, (a, b)) in ss0.iter().zip(sp.iter()).enumerate() {
            assert!(
                values_bit_equal(a, b),
                "kernel {} @ {threads} workers: scalar {i} diverges: {a:?} vs {b:?}",
                plan.name
            );
        }
        assert_eq!(rs0.totals, rp.totals, "kernel {} @ {threads} workers: totals diverge", plan.name);
        assert_eq!(
            rs0.totals.issue_cycles.to_bits(),
            rp.totals.issue_cycles.to_bits(),
            "kernel {} @ {threads} workers: issue cycles diverge bitwise",
            plan.name
        );
        assert_eq!(rs0.footprint, rp.footprint, "kernel {} @ {threads} workers: footprint diverges", plan.name);
        assert_eq!(
            rs0.active_threads, rp.active_threads,
            "kernel {} @ {threads} workers: active threads diverge",
            plan.name
        );
        assert_eq!(
            rs0.cost.time_secs.to_bits(),
            rp.cost.time_secs.to_bits(),
            "kernel {} @ {threads} workers: priced time diverges",
            plan.name
        );
        assert_eq!(rs0.cost, rp.cost, "kernel {} @ {threads} workers: cost breakdown diverges", plan.name);
    }
}

/// n, x[n] (ramp), y[n] (zero), plus scratch scalars i/j/s/t.
fn fixture(n: i64) -> (Program, DataSet) {
    let mut pb = ProgramBuilder::new("par");
    let nn = pb.iscalar("n");
    let _i = pb.iscalar("i");
    let _j = pb.iscalar("j");
    let _s = pb.fscalar("s");
    let _t = pb.fscalar("t");
    let x = pb.farray("x", vec![v(nn)]);
    let _y = pb.farray("y", vec![v(nn)]);
    pb.main(vec![]);
    let p = pb.build();
    let ds = DataSet {
        scalars: vec![(nn, Value::I(n))],
        arrays: vec![(x, Buffer::from_f64(ElemType::F64, (0..n).map(|k| (k % 89) as f64 * 0.75 + 1.0).collect()))],
        label: "par".into(),
    };
    (p, ds)
}

fn finalized(mut k: KernelPlan) -> KernelPlan {
    k.finalize();
    k
}

/// An eligible streaming kernel: the chunked path must engage (and agree).
#[test]
fn streaming_kernel_agrees_at_any_worker_count() {
    let (p, ds) = fixture(3000);
    let n = p.scalar_named("n");
    let i = p.scalar_named("i");
    let x = p.array_named("x");
    let y = p.array_named("y");
    let body = vec![store(y, vec![v(i)], ld(x, vec![v(i)]) * 2.0 + ld(x, vec![(v(i) + 7i64) % v(n)]))];
    assert_parallel_agrees(&p, &ds, &finalized(KernelPlan::new("stream", vec![axis(i, v(n))], body)));
}

/// Scalar reductions journal per-lane partials and replay them at fold
/// time; the combined scalar must match the serial fold bit-for-bit.
#[test]
fn scalar_reduction_fold_is_order_exact() {
    let (p, ds) = fixture(2111);
    let n = p.scalar_named("n");
    let i = p.scalar_named("i");
    let s = p.scalar_named("s");
    let x = p.array_named("x");
    for op in [ReduceOp::Add, ReduceOp::Max] {
        let body = vec![assign(s, ld(x, vec![v(i)]) * 1.0009765625)];
        let k = KernelPlan::new("red", vec![axis(i, v(n))], body).with_reduction(op, VarRef::Scalar(s));
        assert_parallel_agrees(&p, &ds, &finalized(k));
    }
}

/// A body that loads and stores the same array is ineligible for block
/// parallelism; the parallel setting must transparently stay serial and
/// agree anyway.
#[test]
fn hazard_body_stays_serial_and_agrees() {
    let (p, ds) = fixture(512);
    let n = p.scalar_named("n");
    let i = p.scalar_named("i");
    let j = p.scalar_named("j");
    let x = p.array_named("x");
    let body =
        vec![sfor(j, 0i64, 3i64, vec![store(x, vec![v(i)], ld(x, vec![(v(i) + v(j) * 31i64) % v(n)]) * 0.5 + 1.0)])];
    assert_parallel_agrees(&p, &ds, &finalized(KernelPlan::new("hazard", vec![axis(i, v(n))], body)));
}

/// Build a race-free kernel body from a DNA vector: each gene appends one
/// statement reading `x` and writing only `y[i]` or thread-local scalars,
/// so serial and chunked schedules must agree no matter the partition.
fn dna_kernel(p: &Program, dna: &[(u8, i64)], block: u32) -> KernelPlan {
    let n = p.scalar_named("n");
    let i = p.scalar_named("i");
    let j = p.scalar_named("j");
    let s = p.scalar_named("s");
    let x = p.array_named("x");
    let y = p.array_named("y");
    let mut body: Vec<_> = vec![assign(s, ld(x, vec![v(i)]))];
    for &(op, c) in dna {
        let c = c.rem_euclid(13) + 1;
        let stmt = match op % 6 {
            0 => assign(s, v(s) + ld(x, vec![(v(i) * c) % v(n)])),
            1 => assign(s, (v(s) * 0.75).max(v(i).to_f() / c as f64)),
            2 => iff((v(i) % c).eq_(0i64), vec![assign(s, v(s).sqrt() + 1.0)]),
            3 => sfor(j, 0i64, c, vec![assign(s, v(s) + ld(x, vec![(v(i) + v(j)) % v(n)]) * 0.125)]),
            4 => if_else(
                v(s).lt(c as f64),
                vec![assign(s, v(s) + 2.0)],
                vec![assign(s, v(s) - ld(x, vec![v(i) % v(n)]))],
            ),
            _ => assign(s, (v(i) % c).lt(c / 2 + 1).select(v(s) * 1.25, v(s).abs() + 0.5)),
        };
        body.push(stmt);
    }
    body.push(store(y, vec![v(i)], v(s)));
    let mut k = KernelPlan::new("dna", vec![axis(i, v(n))], body);
    k.block = (block, 1);
    finalized(k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized race-free bodies across block shapes: the chunked
    /// executor agrees with the serial walk warp-for-warp on stats.
    #[test]
    fn random_bodies_agree_chunked(
        dna in prop::collection::vec((0u8..6, 0i64..100), 1..8),
        n in 65i64..400,
        block in prop::sample::select(vec![32u32, 64, 128]),
    ) {
        let (p, ds) = fixture(n);
        let k = dna_kernel(&p, &dna, block);
        assert_parallel_agrees(&p, &ds, &k);
    }
}
